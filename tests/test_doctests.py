"""Run the executable examples embedded in docstrings."""

import doctest
import importlib

import pytest

MODULES = [
    importlib.import_module(name) for name in (
        "repro.analysis.plots",
        "repro.events.engine",
        "repro.harness.sweep",
        "repro.network.message",
        "repro.service.queue",
        "repro.system.collective_set",
    )
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
