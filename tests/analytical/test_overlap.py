"""Tests for the closed-form overlap model, including agreement in
direction with the simulated Fig. 18 sweep."""

import pytest

from repro.analytical.overlap import (
    compute_scale_sweep,
    estimate_overlap,
)
from repro.errors import ReproError


class TestEstimate:
    def test_fully_hidden(self):
        est = estimate_overlap(compute_cycles=100.0, comm_cycles=30.0)
        assert est.exposed_cycles == 0.0
        assert est.exposed_ratio == 0.0

    def test_comm_bound(self):
        est = estimate_overlap(compute_cycles=10.0, comm_cycles=30.0)
        assert est.exposed_cycles == pytest.approx(20.0)
        assert est.total_cycles == pytest.approx(30.0)

    def test_blocking_fraction_always_exposed(self):
        est = estimate_overlap(compute_cycles=1000.0, comm_cycles=30.0,
                               overlappable_fraction=0.5)
        assert est.exposed_cycles == pytest.approx(15.0)

    def test_ratio_bounds(self):
        for compute, comm in ((100.0, 0.0), (0.0, 100.0), (50.0, 50.0)):
            est = estimate_overlap(compute, comm)
            assert 0.0 <= est.exposed_ratio <= 1.0

    def test_validation(self):
        with pytest.raises(ReproError):
            estimate_overlap(-1.0, 10.0)
        with pytest.raises(ReproError):
            estimate_overlap(10.0, 10.0, overlappable_fraction=2.0)


class TestScaleSweep:
    def test_exposure_monotone_in_scale(self):
        sweep = compute_scale_sweep(1000.0, 300.0, [0.5, 1.0, 2.0, 4.0])
        ratios = [e.exposed_ratio for e in sweep]
        assert ratios == sorted(ratios)
        assert ratios[0] == 0.0  # 2000 compute hides 300 comm

    def test_saturates_comm_bound(self):
        sweep = compute_scale_sweep(1000.0, 300.0, [100.0])
        assert sweep[0].total_cycles == pytest.approx(300.0, rel=0.05)

    def test_matches_simulated_fig18_direction(self):
        """The closed form and the simulator agree on the regime: with
        ResNet-50's measured compute (3.9 M/iter) and raw comm demand
        (~1.6 M serialized), exposure is ~0 at 0.5x and large at 4x."""
        sweep = compute_scale_sweep(3.9e6, 1.6e6, [0.5, 4.0])
        assert sweep[0].exposed_ratio < 0.01
        assert sweep[1].exposed_ratio > 0.3

    def test_validation(self):
        with pytest.raises(ReproError):
            compute_scale_sweep(0.0, 1.0, [1.0])
        with pytest.raises(ReproError):
            compute_scale_sweep(1.0, 1.0, [0.0])
