"""Tests for the closed-form cost models, including the paper's Sec. V-B
data-volume arithmetic."""

import pytest

from repro.analytical import (
    CostTable,
    LinkCounts,
    LinkParams,
    alltoall_link_counts,
    bandwidth_lower_bound_cycles,
    direct_all_reduce_cycles,
    direct_reduce_scatter_cycles,
    dollars_per_step,
    hierarchical_all_reduce_volume,
    link_dollars,
    perf_per_link_dollar,
    platform_dollars,
    ring_all_gather_cycles,
    ring_all_reduce_cycles,
    ring_all_to_all_cycles,
    ring_reduce_scatter_cycles,
    torus_link_counts,
)
from repro.errors import CollectiveError, ConfigError

LINK = LinkParams(bytes_per_cycle=100.0, latency_cycles=50.0,
                  endpoint_delay_cycles=10.0)


class TestRingForms:
    def test_reduce_scatter(self):
        # 3 steps x (1000/100 + 60) = 210.
        assert ring_reduce_scatter_cycles(4000.0, 4, LINK) == pytest.approx(210.0)

    def test_all_gather_equals_scatter_without_reduction(self):
        assert ring_all_gather_cycles(4000.0, 4, LINK) == pytest.approx(
            ring_reduce_scatter_cycles(4000.0, 4, LINK))

    def test_all_reduce_is_sum(self):
        assert ring_all_reduce_cycles(4000.0, 4, LINK) == pytest.approx(
            ring_reduce_scatter_cycles(4000.0, 4, LINK)
            + ring_all_gather_cycles(4000.0, 4, LINK))

    def test_reduction_term(self):
        with_reduce = ring_reduce_scatter_cycles(4096.0, 4, LINK, 100.0)
        without = ring_reduce_scatter_cycles(4096.0, 4, LINK)
        assert with_reduce - without == pytest.approx(300.0)

    def test_all_to_all_grows_with_nodes(self):
        small = ring_all_to_all_cycles(8000.0, 4, LINK)
        large = ring_all_to_all_cycles(8000.0, 8, LINK)
        assert large > small

    def test_validation(self):
        with pytest.raises(CollectiveError):
            ring_reduce_scatter_cycles(0.0, 4, LINK)
        with pytest.raises(CollectiveError):
            ring_reduce_scatter_cycles(100.0, 1, LINK)


class TestDirectForms:
    def test_parallel_links_speed_up(self):
        serial = direct_reduce_scatter_cycles(8000.0, 8, LINK, parallel_links=1)
        parallel = direct_reduce_scatter_cycles(8000.0, 8, LINK, parallel_links=7)
        assert parallel < serial

    def test_all_reduce_is_two_steps(self):
        rs = direct_reduce_scatter_cycles(8000.0, 8, LINK, 7)
        ar = direct_all_reduce_cycles(8000.0, 8, LINK, 7)
        assert ar == pytest.approx(2 * rs)

    def test_validation(self):
        with pytest.raises(CollectiveError):
            direct_reduce_scatter_cycles(100.0, 4, LINK, parallel_links=0)


class TestSectionVBVolumes:
    """The per-node traffic arithmetic quoted in Sec. V-B, verbatim."""

    def test_1x64x1_baseline(self):
        assert hierarchical_all_reduce_volume([1, 64, 1], enhanced=False) == \
            pytest.approx(126 / 64)

    def test_1x8x8_baseline(self):
        assert hierarchical_all_reduce_volume([1, 8, 8], enhanced=False) == \
            pytest.approx(28 / 8)

    def test_4x4x4_baseline(self):
        assert hierarchical_all_reduce_volume([4, 4, 4], enhanced=False) == \
            pytest.approx(36 / 8)

    def test_2x8x4_baseline(self):
        assert hierarchical_all_reduce_volume([2, 8, 4], enhanced=False) == \
            pytest.approx(34 / 8)

    def test_volume_ordering_explains_fig10(self):
        """1x8x8 < 2x8x4 < 4x4x4 < 1x64x1 in total volume."""
        v = {shape: hierarchical_all_reduce_volume(list(shape), False)
             for shape in [(1, 64, 1), (1, 8, 8), (2, 8, 4), (4, 4, 4)]}
        assert v[(1, 8, 8)] < v[(2, 8, 4)] < v[(4, 4, 4)]
        # 1x64x1's volume is lower, but its 63-hop ring loses on steps.

    def test_enhanced_cuts_inter_package_traffic(self):
        baseline = hierarchical_all_reduce_volume([4, 4, 4], enhanced=False)
        enhanced = hierarchical_all_reduce_volume([4, 4, 4], enhanced=True)
        assert enhanced < baseline

    def test_enhanced_4x4x4_value(self):
        # RS local 3/4 + 2 dims x (2 * 3/4 / 4) + AG local 3/4 = 2.25.
        assert hierarchical_all_reduce_volume([4, 4, 4], enhanced=True) == \
            pytest.approx(0.75 + 0.75 + 0.75)

    def test_degenerate_dims(self):
        assert hierarchical_all_reduce_volume([1, 1, 1], enhanced=False) == 0.0
        assert hierarchical_all_reduce_volume([1, 8, 1], enhanced=True) == \
            pytest.approx(2 * 7 / 8)


class TestBandwidthFloor:
    def test_all_reduce_moves_twice_the_single_pass_volume(self):
        # 2 x (3/4) x 8000 / 100 = 120 cycles.
        assert bandwidth_lower_bound_cycles("allreduce", 8000.0, 4, 100.0) \
            == pytest.approx(120.0)
        assert bandwidth_lower_bound_cycles("allgather", 8000.0, 4, 100.0) \
            == pytest.approx(60.0)
        assert bandwidth_lower_bound_cycles("alltoall", 8000.0, 4, 100.0) \
            == pytest.approx(60.0)

    def test_unknown_collective(self):
        with pytest.raises(CollectiveError):
            bandwidth_lower_bound_cycles("broadcast", 8000.0, 4, 100.0)

    def test_floor_never_beats_ring_closed_form(self):
        floor = bandwidth_lower_bound_cycles("allreduce", 64000.0, 8, 100.0)
        assert ring_all_reduce_cycles(64000.0, 8, LINK) >= floor


class TestLinkCounts:
    def test_torus_closed_form(self):
        # 2x4x1, 8 NPUs: local 8x2 unidirectional; horizontal 8x1
        # bidirectional rings = 16 links; vertical size 1 contributes 0.
        counts = torus_link_counts(2, 4, 1, local_rings=2,
                                   horizontal_rings=1, vertical_rings=3)
        assert counts == LinkCounts(local=16, package=16, switches=0)

    def test_torus_size1_dims_are_free(self):
        counts = torus_link_counts(1, 8, 1, local_rings=2,
                                   horizontal_rings=4, vertical_rings=2)
        assert counts == LinkCounts(local=0, package=64, switches=0)

    def test_torus_matches_built_fabric(self):
        from repro.config.parameters import SystemConfig, TorusShape
        from repro.config.presets import paper_network_config
        from repro.topology.logical import build_torus_topology

        system = SystemConfig(local_rings=2, horizontal_rings=1,
                              vertical_rings=1)
        topology = build_torus_topology(TorusShape(2, 4, 1),
                                        paper_network_config(), system)
        counts = torus_link_counts(2, 4, 1, local_rings=2,
                                   horizontal_rings=1, vertical_rings=1)
        assert counts.total_links == topology.fabric.total_links()

    def test_alltoall_closed_form(self):
        # 1x8 with 7 switches: no local rings, one uplink per NPU per
        # switch (the fig09 setup).
        counts = alltoall_link_counts(1, 8, local_rings=2, global_switches=7)
        assert counts == LinkCounts(local=0, package=56, switches=7)
        counts = alltoall_link_counts(2, 4, local_rings=2, global_switches=2)
        assert counts == LinkCounts(local=16, package=16, switches=2)

    def test_validation(self):
        with pytest.raises(ConfigError):
            torus_link_counts(0, 4, 1)
        with pytest.raises(ConfigError):
            torus_link_counts(2, 4, 1, local_rings=0)
        with pytest.raises(ConfigError):
            alltoall_link_counts(2, 1)


class TestCostTable:
    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="cost-table"):
            CostTable.from_dict({"link_dollars": 1.0})

    def test_rejects_negative_prices(self):
        with pytest.raises(ConfigError):
            CostTable(npu_dollars=-1.0)
        with pytest.raises(ConfigError):
            CostTable(amortization_seconds=0.0)

    def test_link_dollars_closed_form(self):
        table = CostTable(local_link_dollars_per_gbps=2.0,
                          package_link_dollars_per_gbps=10.0,
                          switch_dollars=5000.0)
        counts = LinkCounts(local=16, package=16, switches=2)
        # 16 x 200 x 2 + 16 x 25 x 10 + 2 x 5000 = 20400.
        assert link_dollars(counts, 200.0, 25.0, table) == \
            pytest.approx(20_400.0)

    def test_platform_dollars_adds_npus(self):
        table = CostTable(npu_dollars=10_000.0)
        counts = LinkCounts(local=16, package=16, switches=2)
        assert platform_dollars(counts, 8, 200.0, 25.0, table) == \
            pytest.approx(80_000.0 + link_dollars(counts, 200.0, 25.0, table))

    def test_dollars_per_step_closed_form(self):
        # $1000 platform, 1 s step, 100 s lifetime -> $10 per step.
        table = CostTable(amortization_seconds=100.0)
        assert dollars_per_step(1000.0, 1e9, table) == pytest.approx(10.0)

    def test_perf_per_link_dollar_closed_form(self):
        # 1 GB in 1 s = 1 GB/s; $2 of interconnect -> 0.5 GB/s/$.
        assert perf_per_link_dollar(1e9, 1e9, 2.0) == pytest.approx(0.5)

    def test_validation(self):
        table = CostTable()
        with pytest.raises(ConfigError):
            dollars_per_step(-1.0, 10.0, table)
        with pytest.raises(ConfigError):
            dollars_per_step(1.0, 0.0, table)
        with pytest.raises(ConfigError):
            perf_per_link_dollar(10.0, 10.0, 0.0)
        with pytest.raises(ConfigError):
            link_dollars(LinkCounts(1, 1), 0.0, 25.0, table)
