"""Tests for the closed-form cost models, including the paper's Sec. V-B
data-volume arithmetic."""

import pytest

from repro.analytical import (
    LinkParams,
    direct_all_reduce_cycles,
    direct_reduce_scatter_cycles,
    hierarchical_all_reduce_volume,
    ring_all_gather_cycles,
    ring_all_reduce_cycles,
    ring_all_to_all_cycles,
    ring_reduce_scatter_cycles,
)
from repro.errors import CollectiveError

LINK = LinkParams(bytes_per_cycle=100.0, latency_cycles=50.0,
                  endpoint_delay_cycles=10.0)


class TestRingForms:
    def test_reduce_scatter(self):
        # 3 steps x (1000/100 + 60) = 210.
        assert ring_reduce_scatter_cycles(4000.0, 4, LINK) == pytest.approx(210.0)

    def test_all_gather_equals_scatter_without_reduction(self):
        assert ring_all_gather_cycles(4000.0, 4, LINK) == pytest.approx(
            ring_reduce_scatter_cycles(4000.0, 4, LINK))

    def test_all_reduce_is_sum(self):
        assert ring_all_reduce_cycles(4000.0, 4, LINK) == pytest.approx(
            ring_reduce_scatter_cycles(4000.0, 4, LINK)
            + ring_all_gather_cycles(4000.0, 4, LINK))

    def test_reduction_term(self):
        with_reduce = ring_reduce_scatter_cycles(4096.0, 4, LINK, 100.0)
        without = ring_reduce_scatter_cycles(4096.0, 4, LINK)
        assert with_reduce - without == pytest.approx(300.0)

    def test_all_to_all_grows_with_nodes(self):
        small = ring_all_to_all_cycles(8000.0, 4, LINK)
        large = ring_all_to_all_cycles(8000.0, 8, LINK)
        assert large > small

    def test_validation(self):
        with pytest.raises(CollectiveError):
            ring_reduce_scatter_cycles(0.0, 4, LINK)
        with pytest.raises(CollectiveError):
            ring_reduce_scatter_cycles(100.0, 1, LINK)


class TestDirectForms:
    def test_parallel_links_speed_up(self):
        serial = direct_reduce_scatter_cycles(8000.0, 8, LINK, parallel_links=1)
        parallel = direct_reduce_scatter_cycles(8000.0, 8, LINK, parallel_links=7)
        assert parallel < serial

    def test_all_reduce_is_two_steps(self):
        rs = direct_reduce_scatter_cycles(8000.0, 8, LINK, 7)
        ar = direct_all_reduce_cycles(8000.0, 8, LINK, 7)
        assert ar == pytest.approx(2 * rs)

    def test_validation(self):
        with pytest.raises(CollectiveError):
            direct_reduce_scatter_cycles(100.0, 4, LINK, parallel_links=0)


class TestSectionVBVolumes:
    """The per-node traffic arithmetic quoted in Sec. V-B, verbatim."""

    def test_1x64x1_baseline(self):
        assert hierarchical_all_reduce_volume([1, 64, 1], enhanced=False) == \
            pytest.approx(126 / 64)

    def test_1x8x8_baseline(self):
        assert hierarchical_all_reduce_volume([1, 8, 8], enhanced=False) == \
            pytest.approx(28 / 8)

    def test_4x4x4_baseline(self):
        assert hierarchical_all_reduce_volume([4, 4, 4], enhanced=False) == \
            pytest.approx(36 / 8)

    def test_2x8x4_baseline(self):
        assert hierarchical_all_reduce_volume([2, 8, 4], enhanced=False) == \
            pytest.approx(34 / 8)

    def test_volume_ordering_explains_fig10(self):
        """1x8x8 < 2x8x4 < 4x4x4 < 1x64x1 in total volume."""
        v = {shape: hierarchical_all_reduce_volume(list(shape), False)
             for shape in [(1, 64, 1), (1, 8, 8), (2, 8, 4), (4, 4, 4)]}
        assert v[(1, 8, 8)] < v[(2, 8, 4)] < v[(4, 4, 4)]
        # 1x64x1's volume is lower, but its 63-hop ring loses on steps.

    def test_enhanced_cuts_inter_package_traffic(self):
        baseline = hierarchical_all_reduce_volume([4, 4, 4], enhanced=False)
        enhanced = hierarchical_all_reduce_volume([4, 4, 4], enhanced=True)
        assert enhanced < baseline

    def test_enhanced_4x4x4_value(self):
        # RS local 3/4 + 2 dims x (2 * 3/4 / 4) + AG local 3/4 = 2.25.
        assert hierarchical_all_reduce_volume([4, 4, 4], enhanced=True) == \
            pytest.approx(0.75 + 0.75 + 0.75)

    def test_degenerate_dims(self):
        assert hierarchical_all_reduce_volume([1, 1, 1], enhanced=False) == 0.0
        assert hierarchical_all_reduce_volume([1, 8, 1], enhanced=True) == \
            pytest.approx(2 * 7 / 8)
