"""Tests for the alternative GPU compute model."""

import pytest

from repro.compute import GemmShape, GpuComputeModel, GpuConfig, SystolicArrayModel
from repro.config import ComputeConfig
from repro.errors import ConfigError, WorkloadError
from repro.models import mlp


class TestGpuModel:
    def test_gemm_cycles_track_macs(self):
        model = GpuComputeModel()
        small = GemmShape(256, 256, 256)
        big = GemmShape(512, 512, 512)
        assert model.gemm_cycles(big) == pytest.approx(
            8 * model.gemm_cycles(small))

    def test_peak_throughput(self):
        """125 TFLOP/s at 70% efficiency and 1 GHz: 43750 MACs/cycle."""
        model = GpuComputeModel(GpuConfig(peak_tflops=125.0, mma_efficiency=0.7))
        g = GemmShape(1000, 1000, 1000)
        assert model.gemm_cycles(g) == pytest.approx(g.macs / 43_750.0)

    def test_kernel_launch_overhead_per_gemm(self):
        model = GpuComputeModel(GpuConfig(kernel_launch_cycles=500.0))
        g = GemmShape(512, 512, 512)
        one = model.estimate(g)
        three = model.estimate([g, g, g])
        assert three.overhead_cycles == pytest.approx(3 * one.overhead_cycles)

    def test_memory_bound_shape_stalls(self):
        model = GpuComputeModel(GpuConfig(dram_bandwidth_gbps=10.0))
        skinny = GemmShape(10_000, 8, 10_000)
        assert model.estimate(skinny).dram_stall_cycles > 0

    def test_compute_scale(self):
        base = GpuComputeModel(GpuConfig())
        fast = GpuComputeModel(GpuConfig(compute_scale=2.0))
        g = GemmShape(1024, 1024, 1024)
        assert fast.layer_cycles(g) == pytest.approx(base.layer_cycles(g) / 2)

    def test_io_override(self):
        model = GpuComputeModel()
        g = GemmShape(4096, 64, 64)
        assert model.estimate(g, io_bytes=0.0).dram_stall_cycles == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            GpuConfig(peak_tflops=0.0)
        with pytest.raises(ConfigError):
            GpuConfig(mma_efficiency=1.5)
        with pytest.raises(WorkloadError):
            GpuComputeModel().estimate([])


class TestModelBuilderInterop:
    def test_mlp_accepts_gpu_model(self):
        """Model builders duck-type the compute model: a GPU model slots in
        wherever the systolic model does (Sec. IV-A portability)."""
        gpu = mlp(compute=GpuComputeModel())
        tpu = mlp(compute=SystolicArrayModel(ComputeConfig()))
        assert gpu.num_layers == tpu.num_layers
        assert gpu.total_compute_cycles > 0
        assert gpu.total_compute_cycles != tpu.total_compute_cycles
