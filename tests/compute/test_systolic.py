"""Tests for the analytical systolic-array compute model."""

import pytest

from repro.compute import GemmShape, SystolicArrayModel
from repro.config import ComputeConfig
from repro.errors import WorkloadError


def make_model(**kwargs) -> SystolicArrayModel:
    defaults = dict(array_rows=256, array_cols=256,
                    dram_bandwidth_gbps=3600.0, non_gemm_overhead_cycles=0.0,
                    clock_ghz=1.0)
    defaults.update(kwargs)
    return SystolicArrayModel(ComputeConfig(**defaults))


class TestGemmCycles:
    def test_streaming_bound(self):
        model = make_model()
        g = GemmShape(1024, 512, 1024)
        fill = 2 * 256 + 256 - 2
        assert model.gemm_cycles(g) == fill + g.macs // (256 * 256)

    def test_fill_drain_floor(self):
        model = make_model()
        tiny = GemmShape(1, 1, 1)
        assert model.gemm_cycles(tiny) == pytest.approx(2 * 256 + 256 - 2 + 1)

    def test_array_size_scales_throughput(self):
        big = make_model(array_rows=256, array_cols=256)
        small = make_model(array_rows=64, array_cols=64)
        g = GemmShape(4096, 1024, 4096)
        assert small.gemm_cycles(g) > big.gemm_cycles(g)


class TestRoofline:
    def test_dram_bound_layer_stalls(self):
        model = make_model(dram_bandwidth_gbps=1.0)
        g = GemmShape(256, 16, 256)  # tiny compute, big relative traffic
        est = model.estimate(g)
        assert est.dram_stall_cycles > 0

    def test_compute_bound_layer_no_stall(self):
        model = make_model(dram_bandwidth_gbps=100_000.0)
        g = GemmShape(4096, 4096, 4096)
        est = model.estimate(g)
        assert est.dram_stall_cycles == 0.0

    def test_io_override_reduces_stall(self):
        model = make_model(dram_bandwidth_gbps=10.0)
        g = GemmShape(10_000, 576, 64)  # im2col-expanded conv
        inflated = model.estimate(g)
        real = model.estimate(g, io_bytes=g.bytes_touched() / 9)
        assert real.dram_stall_cycles < inflated.dram_stall_cycles

    def test_total_is_sum_of_parts(self):
        model = make_model(non_gemm_overhead_cycles=123.0)
        est = model.estimate(GemmShape(512, 512, 512))
        assert est.total_cycles == pytest.approx(
            est.gemm_cycles + est.dram_stall_cycles + est.overhead_cycles)
        assert est.overhead_cycles == pytest.approx(123.0)


class TestScaling:
    def test_compute_scale_divides_everything(self):
        base = make_model()
        fast = make_model(compute_scale=4.0)
        g = GemmShape(2048, 1024, 2048)
        assert fast.layer_cycles(g) == pytest.approx(base.layer_cycles(g) / 4)

    def test_clock_divides_gemm_but_not_dram(self):
        slow = make_model(clock_ghz=1.0, dram_bandwidth_gbps=1.0)
        fast = make_model(clock_ghz=2.0, dram_bandwidth_gbps=1.0)
        g = GemmShape(256, 16, 256)
        # DRAM-bound either way: total dominated by the same stall+gemm sum.
        assert fast.estimate(g).gemm_cycles == pytest.approx(
            slow.estimate(g).gemm_cycles / 2)
        assert fast.estimate(g).total_cycles == pytest.approx(
            slow.estimate(g).total_cycles)

    def test_multi_gemm_layers_accumulate(self):
        model = make_model()
        g = GemmShape(1024, 1024, 1024)
        single = model.layer_cycles(g)
        double = model.layer_cycles([g, g])
        assert double == pytest.approx(2 * single)


class TestValidation:
    def test_empty_shape_list_rejected(self):
        with pytest.raises(WorkloadError):
            make_model().estimate([])

    def test_negative_io_rejected(self):
        with pytest.raises(WorkloadError):
            make_model().io_cycles(-1.0)
