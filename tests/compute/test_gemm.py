"""Tests for GEMM shapes and conv/linear lowering."""

import pytest

from repro.compute import ConvSpec, GemmShape, LinearSpec
from repro.errors import WorkloadError


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_bytes_touched(self):
        g = GemmShape(2, 3, 4)
        assert g.bytes_touched(4) == (6 + 12 + 8) * 4

    def test_transposed(self):
        assert GemmShape(2, 3, 4).transposed == GemmShape(4, 3, 2)

    def test_backward_shapes(self):
        fwd = GemmShape(128, 64, 32)
        d_in, d_w = fwd.backward_shapes()
        assert d_in == GemmShape(128, 32, 64)
        assert d_w == GemmShape(64, 128, 32)

    def test_backward_preserves_macs(self):
        fwd = GemmShape(100, 50, 25)
        d_in, d_w = fwd.backward_shapes()
        assert d_in.macs == fwd.macs
        assert d_w.macs == fwd.macs

    def test_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            GemmShape(0, 1, 1)


class TestConvSpec:
    def test_output_size(self):
        # ResNet stem: 224 -> 112 with 7x7/2 pad 3.
        conv = ConvSpec(3, 64, kernel=7, stride=2, in_size=224, padding=3)
        assert conv.out_size == 112

    def test_same_padding_3x3(self):
        conv = ConvSpec(64, 64, kernel=3, stride=1, in_size=56, padding=1)
        assert conv.out_size == 56

    def test_weight_count(self):
        conv = ConvSpec(64, 128, kernel=3, stride=1, in_size=56, padding=1)
        assert conv.weight_count == 64 * 128 * 9

    def test_im2col_gemm(self):
        conv = ConvSpec(64, 128, kernel=3, stride=1, in_size=56, padding=1)
        gemm = conv.gemm(batch=32)
        assert gemm.m == 32 * 56 * 56
        assert gemm.k == 64 * 9
        assert gemm.n == 128

    def test_activation_count(self):
        conv = ConvSpec(3, 64, kernel=7, stride=2, in_size=224, padding=3)
        assert conv.activation_count(2) == 2 * 64 * 112 * 112

    def test_empty_output_rejected(self):
        with pytest.raises(WorkloadError):
            ConvSpec(3, 8, kernel=7, stride=1, in_size=4)

    def test_bad_batch_rejected(self):
        conv = ConvSpec(3, 8, kernel=3, stride=1, in_size=8, padding=1)
        with pytest.raises(WorkloadError):
            conv.gemm(0)


class TestLinearSpec:
    def test_gemm(self):
        assert LinearSpec(2048, 1000).gemm(32) == GemmShape(32, 2048, 1000)

    def test_weight_count(self):
        assert LinearSpec(2048, 1000).weight_count == 2_048_000

    def test_rejects_bad_features(self):
        with pytest.raises(WorkloadError):
            LinearSpec(0, 10)
