"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.events import CountdownBarrier, EventQueue, Timeline


class TestEventQueue:
    def test_starts_at_time_zero(self):
        assert EventQueue().now == 0.0

    def test_executes_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule_at(5.0, lambda: fired.append("late"))
        q.schedule_at(2.0, lambda: fired.append("early"))
        q.schedule_at(3.5, lambda: fired.append("middle"))
        q.run()
        assert fired == ["early", "middle", "late"]

    def test_same_time_events_fire_fifo(self):
        q = EventQueue()
        fired = []
        for i in range(10):
            q.schedule_at(1.0, lambda i=i: fired.append(i))
        q.run()
        assert fired == list(range(10))

    def test_now_advances_to_event_time(self):
        q = EventQueue()
        seen = []
        q.schedule_at(7.0, lambda: seen.append(q.now))
        q.run()
        assert seen == [7.0]
        assert q.now == 7.0

    def test_schedule_relative_delay(self):
        q = EventQueue()
        seen = []
        q.schedule_at(10.0, lambda: q.schedule(5.0, lambda: seen.append(q.now)))
        q.run()
        assert seen == [15.0]

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule_at(10.0, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_cancellation(self):
        q = EventQueue()
        fired = []
        handle = q.schedule_at(1.0, lambda: fired.append("cancelled"))
        q.schedule_at(2.0, lambda: fired.append("kept"))
        handle.cancel()
        q.run()
        assert fired == ["kept"]
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        handle = q.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        q.run()

    def test_run_until_horizon_inclusive(self):
        q = EventQueue()
        fired = []
        q.schedule_at(1.0, lambda: fired.append(1))
        q.schedule_at(2.0, lambda: fired.append(2))
        q.schedule_at(3.0, lambda: fired.append(3))
        q.run(until=2.0)
        assert fired == [1, 2]
        assert q.now == 2.0
        assert q.pending == 1

    def test_run_resumes_after_horizon(self):
        q = EventQueue()
        fired = []
        q.schedule_at(1.0, lambda: fired.append(1))
        q.schedule_at(5.0, lambda: fired.append(5))
        q.run(until=2.0)
        q.run()
        assert fired == [1, 5]

    def test_max_events_guard(self):
        q = EventQueue()

        def reschedule():
            q.schedule(1.0, reschedule)

        q.schedule(1.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            q.run(max_events=100)

    def test_events_processed_counter(self):
        q = EventQueue()
        for _ in range(7):
            q.schedule(1.0, lambda: None)
        q.run()
        assert q.events_processed == 7

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_step_skips_cancelled(self):
        q = EventQueue()
        h = q.schedule_at(1.0, lambda: None)
        h.cancel()
        assert q.step() is False

    def test_reset(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        q.reset()
        assert q.now == 0.0
        assert q.pending == 0
        assert q.events_processed == 0

    def test_events_scheduled_during_run_execute(self):
        q = EventQueue()
        fired = []
        q.schedule_at(1.0, lambda: q.schedule(1.0, lambda: fired.append("chained")))
        q.run()
        assert fired == ["chained"]

    def test_same_time_in_handler_schedule_fires_in_same_pass(self):
        """An event scheduled *at the current time* from inside a handler
        must fire in the same drain pass, after everything already queued
        for that timestamp — the determinism a fault flip racing a send
        at the same cycle relies on."""
        q = EventQueue()
        fired = []
        q.schedule_at(5.0, lambda: (fired.append("first"),
                                    q.schedule(0.0, lambda: fired.append("nested"))))
        q.schedule_at(5.0, lambda: fired.append("second"))
        q.run()
        assert fired == ["first", "second", "nested"]
        assert q.now == 5.0

    def test_fired_property_set_on_execution(self):
        q = EventQueue()
        handle = q.schedule_at(1.0, lambda: None)
        assert not handle.fired
        q.run()
        assert handle.fired

    def test_cancel_after_fire_is_noop(self):
        """Cancelling an already-fired event (a delivery timer racing its
        message) must neither mark it cancelled nor skew ``pending``."""
        q = EventQueue()
        handle = q.schedule_at(1.0, lambda: None)
        keep = q.schedule_at(2.0, lambda: None)
        q.run(until=1.0)
        handle.cancel()
        assert not handle.cancelled
        assert q.pending == 1
        q.run()
        assert keep.fired

    def test_run_until_past_does_not_rewind(self):
        q = EventQueue()
        q.schedule_at(10.0, lambda: None)
        q.run()
        assert q.now == 10.0
        q.schedule_at(50.0, lambda: None)
        q.run(until=3.0)
        assert q.now == 10.0
        assert q.pending == 1

    def test_run_not_reentrant(self):
        q = EventQueue()
        errors = []

        def nested():
            try:
                q.run()
            except SimulationError as exc:
                errors.append(exc)

        q.schedule(1.0, nested)
        q.run()
        assert len(errors) == 1

    def test_handle_reports_time(self):
        q = EventQueue()
        handle = q.schedule_at(42.0, lambda: None)
        assert handle.time == 42.0


class TestTimeline:
    def test_wraps_queue(self):
        q = EventQueue()
        t = Timeline(q)
        assert t.now == 0.0
        fired = []
        t.after(3.0, lambda: fired.append(t.now))
        q.run()
        assert fired == [3.0]

    def test_call_soon_runs_at_current_time(self):
        t = Timeline()
        fired = []
        t.call_soon(lambda: fired.append(t.now))
        t.queue.run()
        assert fired == [0.0]

    def test_default_queue_created(self):
        assert Timeline().queue.pending == 0


class TestCountdownBarrier:
    def test_fires_after_count_arrivals(self):
        done = []
        barrier = CountdownBarrier(3, lambda: done.append(True))
        barrier.arrive()
        barrier.arrive()
        assert not done
        barrier.arrive()
        assert done == [True]

    def test_zero_count_fires_immediately(self):
        done = []
        CountdownBarrier(0, lambda: done.append(True))
        assert done == [True]

    def test_over_arrival_rejected(self):
        barrier = CountdownBarrier(1, lambda: None)
        barrier.arrive()
        with pytest.raises(SimulationError):
            barrier.arrive()

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            CountdownBarrier(-1, lambda: None)

    def test_remaining_and_done(self):
        barrier = CountdownBarrier(2, lambda: None)
        assert barrier.remaining == 2
        assert not barrier.done
        barrier.arrive()
        assert barrier.remaining == 1
        barrier.arrive()
        assert barrier.done


class TestPendingCount:
    """``pending`` counts live events only; cancelled ones are excluded."""

    def test_pending_excludes_cancelled(self):
        q = EventQueue()
        handles = [q.schedule_at(float(i + 1), lambda: None) for i in range(4)]
        assert q.pending == 4
        handles[1].cancel()
        handles[2].cancel()
        assert q.pending == 2
        assert q.heap_size == 4  # lazily-cancelled entries stay in the heap

    def test_cancel_idempotence_counts_once(self):
        q = EventQueue()
        h = q.schedule_at(1.0, lambda: None)
        h.cancel()
        h.cancel()
        assert q.pending == 0
        assert q.heap_size == 1

    def test_pending_after_discarding_cancelled(self):
        q = EventQueue()
        live = []
        h = q.schedule_at(1.0, lambda: live.append("no"))
        q.schedule_at(2.0, lambda: live.append("yes"))
        h.cancel()
        q.run()
        assert live == ["yes"]
        assert q.pending == 0
        assert q.heap_size == 0

    def test_pending_partial_drain(self):
        q = EventQueue()
        h = q.schedule_at(1.0, lambda: None)
        q.schedule_at(2.0, lambda: None)
        q.schedule_at(3.0, lambda: None)
        h.cancel()
        q.run(until=2.0)
        assert q.pending == 1


class TestResetDeterminism:
    """``reset`` restores the queue to a fresh-construction state."""

    def test_reset_restarts_sequence_numbers(self):
        def trace(q):
            order = []
            for name in ("a", "b", "c"):
                q.schedule_at(1.0, lambda name=name: order.append(name))
            q.run()
            return order

        q = EventQueue()
        first = trace(q)
        q.reset()
        second = trace(q)
        assert first == second == ["a", "b", "c"]

    def test_reset_clears_cancelled_count(self):
        q = EventQueue()
        q.schedule_at(1.0, lambda: None).cancel()
        q.reset()
        assert q.pending == 0
        assert q.heap_size == 0
        q.schedule_at(1.0, lambda: None)
        assert q.pending == 1
