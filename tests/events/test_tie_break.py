"""Tests for the EventQueue tie_breaker hook (schedule perturbation)."""

from repro.events.engine import EventQueue
from repro.sanitize.schedule import SeededTieBreak, trial_seed


def drain_order(queue, n, time=5.0):
    fired = []
    for i in range(n):
        queue.schedule_at(time, lambda i=i: fired.append(i))
    queue.run()
    return fired


class TestTieBreaker:
    def test_default_is_fifo(self):
        assert drain_order(EventQueue(), 6) == list(range(6))

    def test_seeded_breaker_permutes_same_time_events(self):
        permuted = False
        for trial in range(1, 6):
            queue = EventQueue()
            queue.tie_breaker = SeededTieBreak(trial_seed(2020, trial))
            order = drain_order(queue, 6)
            assert sorted(order) == list(range(6))  # all fire exactly once
            if order != list(range(6)):
                permuted = True
        assert permuted, "no seed permuted 6 same-time events"

    def test_same_seed_same_order(self):
        orders = []
        for _ in range(2):
            queue = EventQueue()
            queue.tie_breaker = SeededTieBreak(0xDEADBEEF)
            orders.append(drain_order(queue, 8))
        assert orders[0] == orders[1]

    def test_cross_timestamp_order_untouched(self):
        queue = EventQueue()
        queue.tie_breaker = SeededTieBreak(0xDEADBEEF)
        fired = []
        for time in (30.0, 10.0, 20.0):
            queue.schedule_at(time, lambda t=time: fired.append(t))
        queue.run()
        assert fired == [10.0, 20.0, 30.0]

    def test_rank_computed_at_schedule_time(self):
        """Installing the hook mid-run only affects later schedules."""
        queue = EventQueue()
        fired = []
        for i in range(4):
            queue.schedule_at(5.0, lambda i=i: fired.append(i))
        queue.tie_breaker = SeededTieBreak(1)  # after the pushes: no effect
        queue.run()
        assert fired == [0, 1, 2, 3]

    def test_reset_keeps_hook(self):
        queue = EventQueue()
        breaker = SeededTieBreak(7)
        queue.tie_breaker = breaker
        drain_order(queue, 3)
        queue.reset()
        assert queue.tie_breaker is breaker

    def test_handles_and_cancellation_work_under_permutation(self):
        queue = EventQueue()
        queue.tie_breaker = SeededTieBreak(trial_seed(2020, 1))
        fired = []
        handles = [queue.schedule_at(5.0, lambda i=i: fired.append(i))
                   for i in range(6)]
        handles[2].cancel()
        queue.run()
        assert 2 not in fired
        assert sorted(fired) == [0, 1, 3, 4, 5]
