"""Heap compaction under cancellation pressure.

The reliable transport cancels one delivery timer per acked message, so
a long faulty run leaves the heap mostly dead entries.  Compaction
rebuilds the heap once cancelled entries both cross
``COMPACT_MIN_CANCELLED`` and outnumber the live ones — and because heap
order is (time, seq), the executed event sequence is identical with or
without it.
"""

from repro.events import EventQueue
from repro.sanitize.runtime import RuntimeSanitizer


def fill_and_cancel(queue, scheduled=3_000, cancelled=2_000, sink=None):
    """Schedule `scheduled` events, cancel the first `cancelled` of them."""
    handles = []
    for i in range(scheduled):
        time = 10.0 + i * 0.5
        if sink is None:
            handles.append(queue.schedule_at(time, lambda: None))
        else:
            handles.append(queue.schedule_at(time, lambda t=time: sink.append(t)))
    for handle in handles[:cancelled]:
        handle.cancel()
    return handles


class TestCompaction:
    def test_compacts_past_threshold(self):
        queue = EventQueue()
        fill_and_cancel(queue)
        assert queue.compactions >= 1
        # The rebuild fires at the 1501st cancel (1024 floor crossed and
        # dead entries dominate); the 499 cancels after it stay lazy.
        assert queue.heap_size == 1_499
        assert queue.pending == queue.live_count() == 1_000

    def test_no_compaction_below_threshold(self):
        """1023 cancellations sit just under COMPACT_MIN_CANCELLED."""
        queue = EventQueue()
        fill_and_cancel(queue, scheduled=1_500, cancelled=1_023)
        assert queue.compactions == 0
        assert queue.heap_size == 1_500
        assert queue.pending == queue.live_count() == 477

    def test_cancelled_must_also_outnumber_live(self):
        """Crossing the floor alone is not enough: 1100 dead among 3000
        total do not dominate the heap, so no rebuild happens."""
        queue = EventQueue()
        fill_and_cancel(queue, scheduled=3_000, cancelled=1_100)
        assert queue.compactions == 0
        assert queue.heap_size == 3_000

    def test_firing_order_identical_with_and_without_compaction(self):
        def trace(compaction_enabled):
            queue = EventQueue()
            if not compaction_enabled:
                queue.COMPACT_MIN_CANCELLED = 10**9  # instance override
            fired = []
            fill_and_cancel(queue, sink=fired)
            queue.run()
            return fired, queue.events_processed, queue.now

        compacted = trace(compaction_enabled=True)
        lazy = trace(compaction_enabled=False)
        assert compacted == lazy

    def test_explicit_compact_is_a_noop_when_clean(self):
        queue = EventQueue()
        queue.schedule_at(5.0, lambda: None)
        queue.compact()
        assert queue.compactions == 0
        assert queue.heap_size == 1

    def test_reset_clears_compaction_state(self):
        queue = EventQueue()
        fill_and_cancel(queue)
        assert queue.compactions >= 1
        queue.reset()
        assert queue.compactions == 0
        assert queue.heap_size == queue.pending == 0


class TestPendingHeapInvariant:
    def sanitizer(self):
        return RuntimeSanitizer()

    def test_clean_queue_has_no_findings(self):
        queue = EventQueue()
        fill_and_cancel(queue)
        assert self.sanitizer().event_queue_findings(queue) == []

    def test_drift_is_reported(self):
        queue = EventQueue()
        fill_and_cancel(queue, scheduled=100, cancelled=10)
        queue._cancelled_in_heap += 3  # simulate a lost cancellation
        findings = self.sanitizer().event_queue_findings(queue)
        assert len(findings) == 1
        assert findings[0].code == "pending-count-drift"
        assert "87" in findings[0].message  # the claimed pending count
        assert "90" in findings[0].message  # the recounted live entries


class TestUnifiedDrain:
    """step() and run() drain cancelled heads through one helper
    (_peek_live), so the pending/compaction counters cannot drift between
    the two paths — whichever mix of them executes a run."""

    def test_interleaved_step_and_run_keep_counters_exact(self):
        queue = EventQueue()
        sink = []
        fill_and_cancel(queue, scheduled=200, cancelled=120, sink=sink)
        # Drain a few events one at a time, then let run() finish.
        for _ in range(10):
            assert queue.step()
            assert queue.pending == queue.live_count()
        queue.run()
        assert sink == sorted(sink)
        assert len(sink) == 80
        assert queue.pending == queue.live_count() == 0
        assert queue._cancelled_in_heap == 0
        assert RuntimeSanitizer().event_queue_findings(queue) == []

    def test_step_and_run_execute_identical_sequences(self):
        def build():
            q = EventQueue()
            s = []
            fill_and_cancel(q, scheduled=150, cancelled=60, sink=s)
            return q, s

        stepped, s1 = build()
        while stepped.step():
            pass
        ran, s2 = build()
        ran.run()
        assert s1 == s2
        assert stepped.events_processed == ran.events_processed

    def test_run_until_leaves_cancelled_accounting_consistent(self):
        queue = EventQueue()
        sink = []
        fill_and_cancel(queue, scheduled=100, cancelled=40, sink=sink)
        queue.run(until=30.0)  # mid-heap horizon
        assert queue.pending == queue.live_count()
        queue.run()
        assert queue.pending == queue.live_count() == 0
