"""Calendar-queue scheduler invariants (the PR 10 event-core rewrite).

The adaptive engine boots on a plain binary heap and upgrades itself to
a bucketed calendar once the live population crosses
``CALENDAR_MIN_PENDING``; these tests force the upgrade early by
lowering that threshold on an instance, then check the invariants the
calendar must keep: drain order identical to the heap, tie-break
permutation semantics, cancellation/compaction accounting, ``run(until)``
monotonicity, watcher cadence across fast-forwarded idle gaps, and
pending-count integrity under mixed bucket/overflow load.
"""

from repro.events.engine import EventQueue
from repro.sanitize.schedule import SeededTieBreak


def _delay(i: int) -> float:
    """Deterministic pseudo-random spacing (integer hash, no RNG)."""
    return float((i * 2654435761 >> 7) % 997 + 1)


def calendar_queue(threshold: int = 4) -> EventQueue:
    q = EventQueue()
    q.CALENDAR_MIN_PENDING = threshold
    return q


def heap_queue() -> EventQueue:
    """A queue that never upgrades — the reference schedule."""
    q = EventQueue()
    q.CALENDAR_MIN_PENDING = 1 << 60
    return q


def schedule_workload(q: EventQueue, n: int = 512) -> list:
    fired = []
    for i in range(n):
        q.schedule_at(_delay(i), lambda i=i: fired.append((q.now, i)))
    return fired


class TestCalendarUpgrade:
    def test_upgrades_past_threshold(self):
        q = calendar_queue(threshold=8)
        schedule_workload(q, 64)
        q.run()
        assert q.calendar_active

    def test_stays_on_heap_below_threshold(self):
        q = calendar_queue(threshold=8)
        schedule_workload(q, 4)
        q.run()
        assert not q.calendar_active


class TestModeEquivalence:
    """The structures differ, the schedule must not."""

    def test_drain_order_matches_heap(self):
        runs = []
        for make in (heap_queue, calendar_queue):
            q = make()
            fired = schedule_workload(q)
            q.run()
            runs.append(fired)
        assert runs[0] == runs[1]
        assert len(runs[0]) == 512

    def test_same_time_events_fire_fifo_in_calendar_mode(self):
        q = calendar_queue()
        fired = []
        # Enough spread events to trigger the upgrade, then a same-time
        # cluster that must drain in schedule order.
        for i in range(32):
            q.schedule_at(float(i), lambda: None)
        for i in range(16):
            q.schedule_at(100.0, lambda i=i: fired.append(i))
        q.run()
        assert fired == list(range(16))

    def test_tiebreak_permutation_matches_heap(self):
        """A seeded tie-break permutes same-timestamp drains identically
        in both modes — the race detector's schedules are mode-blind."""
        orders = []
        for make in (heap_queue, calendar_queue):
            q = make()
            q.tie_breaker = SeededTieBreak(0xC0FFEE)
            fired = []
            for i in range(64):
                q.schedule_at(float(i % 4), lambda i=i: fired.append(i))
            q.run()
            orders.append(fired)
        assert orders[0] == orders[1]
        assert sorted(orders[0]) == list(range(64))
        assert orders[0] != list(range(64))  # the seed did permute


class TestCancellationAccounting:
    def test_cancel_then_compact(self):
        q = calendar_queue()
        q.COMPACT_MIN_CANCELLED = 16
        fired = []
        handles = []
        for i in range(256):
            handles.append(
                q.schedule_at(_delay(i), lambda i=i: fired.append(i)))
        for handle in handles[:192]:
            handle.cancel()
        assert q.pending == q.live_count() == 64
        assert q.compactions > 0  # the >2:1 dead ratio forced a rebuild
        q.run()
        assert sorted(fired) == list(range(192, 256))
        assert q.pending == 0

    def test_cancel_after_fire_is_noop(self):
        q = calendar_queue()
        handles = [q.schedule_at(_delay(i), lambda: None) for i in range(64)]
        q.run()
        for handle in handles:
            handle.cancel()  # must not drive pending negative
        assert q.pending == q.live_count() == 0

    def test_pending_matches_live_count_under_churn(self):
        """Incremental pending bookkeeping vs ground-truth recount, checked
        after every dispatch via the watcher hook."""
        q = calendar_queue()
        state = {"i": 0}

        def churn() -> None:
            i = state["i"]
            if i >= 400:
                return
            state["i"] = i + 1
            handle = q.schedule(_delay(i), churn)
            if i % 3 == 0:
                handle.cancel()
                churn()

        def check_no_drift(queue: EventQueue) -> None:
            assert queue.pending == queue.live_count(), "pending drift"

        q.watcher = check_no_drift
        for i in range(32):
            state["i"] += 1
            q.schedule(_delay(i), churn)
        q.run()
        assert q.pending == q.live_count() == 0


class TestRunUntil:
    def test_no_rewind_across_buckets(self):
        q = calendar_queue()
        seen = []
        for i in range(256):
            q.schedule_at(_delay(i), lambda: seen.append(q.now))
        q.run(until=300.0)
        assert q.now <= 300.0
        assert all(t <= 300.0 for t in seen)
        boundary = len(seen)
        q.run()
        assert all(t > 300.0 for t in seen[boundary:])
        assert seen == sorted(seen)  # time never rewound
        assert len(seen) == 256


class TestFastForward:
    def test_idle_gaps_jumped_in_one_step(self):
        """Sparse far-apart events cross many empty buckets; the index
        heap must jump each gap in one pop, not walk bucket-by-bucket."""
        q = calendar_queue()
        fired = []
        # Dense cluster to trigger the upgrade and tune a narrow bucket
        # width, then sparse events separated by huge idle stretches.
        for i in range(64):
            q.schedule_at(float(i), lambda: None)
        for i in range(8):
            q.schedule_at(1e6 + i * 1e5, lambda i=i: fired.append(i))
        q.run()
        assert fired == list(range(8))
        assert q.fast_forwards > 0
        assert q.buckets_skipped >= q.fast_forwards

    def test_watcher_fires_per_dispatch_across_gaps(self):
        q = calendar_queue()
        ticks = []
        q.watcher = lambda queue: ticks.append(queue.now)
        for i in range(64):
            q.schedule_at(float(i), lambda: None)
        for i in range(4):
            q.schedule_at(1e7 + i * 1e6, lambda: None)
        q.run()
        assert len(ticks) == q.events_processed == 68
        assert ticks == sorted(ticks)


class TestOverflow:
    def test_far_future_events_fire_in_order(self):
        """Events past the calendar horizon sit in the overflow heap and
        must migrate in as the calendar advances — interleaved correctly
        with near-term traffic."""
        q = calendar_queue()
        fired = []
        times = [_delay(i) for i in range(128)]
        times += [1e15 + _delay(i) for i in range(32)]  # far past horizon
        for i, t in enumerate(times):
            q.schedule_at(t, lambda i=i: fired.append(i))
        assert q.pending == q.live_count() == 160
        q.run()
        expected = [i for i, _t in sorted(enumerate(times),
                                          key=lambda pair: (pair[1], pair[0]))]
        assert fired == expected

    def test_cancel_in_overflow_accounted(self):
        q = calendar_queue()
        for i in range(64):
            q.schedule_at(_delay(i), lambda: None)
        far = [q.schedule_at(1e15 + i, lambda: None) for i in range(16)]
        for handle in far[::2]:
            handle.cancel()
        assert q.pending == q.live_count() == 64 + 8
        q.run()
        assert q.pending == 0
