"""Tests for logical topology views and builders."""

import pytest

from repro.config import (
    AllToAllShape,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.dims import Dimension
from repro.errors import TopologyError
from repro.topology import (
    build_alltoall_topology,
    build_torus_topology,
)

NET = paper_network_config()


class TestBuilders:
    def test_torus_builder_uses_system_ring_counts(self):
        system = SystemConfig(local_rings=3, horizontal_rings=2, vertical_rings=1)
        topo = build_torus_topology(TorusShape(2, 4, 4), NET, system)
        assert topo.channels_in(Dimension.LOCAL) == 3
        assert topo.channels_in(Dimension.HORIZONTAL) == 4  # 2 bidir
        assert topo.channels_in(Dimension.VERTICAL) == 2    # 1 bidir

    def test_alltoall_builder_uses_switch_count(self):
        system = SystemConfig(global_switches=5)
        topo = build_alltoall_topology(AllToAllShape(2, 4), NET, system)
        assert topo.channels_in(Dimension.ALLTOALL) == 5

    def test_default_system_config(self):
        topo = build_torus_topology(TorusShape(2, 2, 2), NET)
        assert topo.num_npus == 8


class TestScoping:
    def test_unscoped_returns_all_dimensions(self):
        topo = build_torus_topology(TorusShape(2, 4, 3), NET)
        assert topo.dim_sizes() == [
            (Dimension.LOCAL, 2),
            (Dimension.VERTICAL, 3),
            (Dimension.HORIZONTAL, 4),
        ]

    def test_scope_restricts_and_keeps_order(self):
        topo = build_torus_topology(TorusShape(2, 4, 3), NET)
        scoped = topo.dim_sizes(scope=[Dimension.HORIZONTAL, Dimension.LOCAL])
        assert scoped == [(Dimension.LOCAL, 2), (Dimension.HORIZONTAL, 4)]

    def test_unknown_scope_rejected(self):
        topo = build_torus_topology(TorusShape(2, 4, 3), NET)
        with pytest.raises(TopologyError):
            topo.dim_sizes(scope=[Dimension.ALLTOALL])

    def test_degenerate_dim_not_listed(self):
        topo = build_torus_topology(TorusShape(1, 8, 1), NET)
        assert topo.dim_sizes() == [(Dimension.HORIZONTAL, 8)]

    def test_dimensions_property(self):
        topo = build_alltoall_topology(AllToAllShape(2, 4), NET)
        assert topo.dimensions == [Dimension.LOCAL, Dimension.ALLTOALL]
