"""Tests for logical-to-physical ring mapping (Sec. IV-B)."""

import pytest

from repro.config import TorusShape, paper_network_config
from repro.collectives import CollectiveContext, RingAllReduce
from repro.dims import Dimension
from repro.errors import TopologyError
from repro.events import EventQueue
from repro.network import FastBackend
from repro.network.physical import TorusFabric
from repro.topology import MappedRingChannel, map_ring_over_ring

NET = paper_network_config()


def physical_ring(n=8):
    fabric = TorusFabric(TorusShape(1, n, 1), NET, horizontal_rings=1)
    return fabric.channels_for(Dimension.HORIZONTAL, (0, 0))[0]


class TestMapRingOverRing:
    def test_even_mapping_has_two_links_per_hop(self):
        mapped = map_ring_over_ring([0, 2, 4, 6], physical_ring())
        for node in mapped.nodes:
            assert len(mapped.hop_path(node)) == 2

    def test_adjacent_mapping_has_wrap_path(self):
        mapped = map_ring_over_ring([0, 1, 2, 3], physical_ring())
        assert len(mapped.hop_path(3)) == 5  # 3 -> 4 -> 5 -> 6 -> 7 -> 0

    def test_path_concatenates_hops(self):
        mapped = map_ring_over_ring([0, 2, 4, 6], physical_ring())
        path = mapped.path(0, 4)
        assert [(l.src, l.dst) for l in path] == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_ring_interface(self):
        mapped = map_ring_over_ring([0, 2, 4, 6], physical_ring())
        assert mapped.size == 4
        assert mapped.next_node(6) == 0
        assert mapped.prev_node(0) == 6
        assert mapped.node_at_distance(2, 2) == 6
        assert mapped.link_from(0).src == 0


class TestMappedRingValidation:
    def test_rejects_discontinuous_hop(self):
        ring = physical_ring(4)
        good = ring.path(0, 1)
        bad = [ring.path(2, 3)[0]]
        with pytest.raises(TopologyError):
            MappedRingChannel([0, 1], [good, bad])

    def test_rejects_empty_hop(self):
        with pytest.raises(TopologyError):
            MappedRingChannel([0, 1], [[], []])

    def test_rejects_wrong_hop_count(self):
        ring = physical_ring(4)
        with pytest.raises(TopologyError):
            MappedRingChannel([0, 1], [ring.path(0, 1)])

    def test_rejects_duplicate_nodes(self):
        ring = physical_ring(4)
        with pytest.raises(TopologyError):
            MappedRingChannel([0, 0], [ring.path(0, 1), ring.path(1, 0)])

    def test_unknown_node_rejected(self):
        mapped = map_ring_over_ring([0, 2], physical_ring(4))
        with pytest.raises(TopologyError):
            mapped.position(1)


class TestCollectivesOnMappedRings:
    def _time_all_reduce(self, ring, size=1024 * 1024):
        events = EventQueue()
        ctx = CollectiveContext(FastBackend(events, NET))
        algorithm = RingAllReduce(ctx, ring, size)
        algorithm.start_all()
        events.run(max_events=2_000_000)
        assert algorithm.done
        return algorithm.finished_at

    def test_all_reduce_runs_on_mapped_ring(self):
        mapped = map_ring_over_ring([0, 2, 4, 6], physical_ring())
        assert self._time_all_reduce(mapped) > 0

    def test_logical_hops_cost_more_than_physical(self):
        """A 4-ring mapped over an 8-ring pays two physical links per hop,
        so it must be slower than a native 4-ring."""
        native = physical_ring(4)
        mapped = map_ring_over_ring([0, 2, 4, 6], physical_ring(8))
        assert self._time_all_reduce(mapped) > self._time_all_reduce(native)
