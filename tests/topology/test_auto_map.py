"""Tests for automatic logical-onto-physical mapping (Sec. IV-B)."""

import pytest

from repro.collectives import CollectiveOp
from repro.config import (
    CollectiveAlgorithm,
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.dims import Dimension
from repro.errors import TopologyError
from repro.network.physical import TorusFabric
from repro.system import System
from repro.topology import LogicalTopology, map_torus_onto_fabric

NET = paper_network_config()


def physical_ring(n=8, rings=2):
    return TorusFabric(TorusShape(1, n, 1), NET, horizontal_rings=rings)


def run_all_reduce(topology: LogicalTopology, size=1 * MB,
                   algorithm=CollectiveAlgorithm.BASELINE) -> float:
    cfg = SystemConfig(algorithm=algorithm)
    system = System(topology, SimulationConfig(system=cfg, network=NET))
    collective = system.request_collective(CollectiveOp.ALL_REDUCE, size)
    system.run_until_idle(max_events=300_000_000)
    assert collective.done
    return collective.duration_cycles


class TestMappingStructure:
    def test_logical_dims_presented(self):
        topo = map_torus_onto_fabric(TorusShape(2, 2, 2), physical_ring())
        assert topo.dimensions == [Dimension.LOCAL, Dimension.VERTICAL,
                                   Dimension.HORIZONTAL]
        assert topo.dim_sizes() == [(Dimension.LOCAL, 2),
                                    (Dimension.VERTICAL, 2),
                                    (Dimension.HORIZONTAL, 2)]

    def test_channels_share_physical_links(self):
        phys = physical_ring()
        topo = map_torus_onto_fabric(TorusShape(2, 2, 2), phys)
        assert topo.fabric.links is phys.links

    def test_npu_count_must_match(self):
        with pytest.raises(TopologyError):
            map_torus_onto_fabric(TorusShape(2, 2, 2), physical_ring(4))

    def test_group_membership(self):
        topo = map_torus_onto_fabric(TorusShape(2, 2, 2), physical_ring())
        fabric = topo.fabric
        assert fabric.group_of(Dimension.LOCAL, 0) == (0, 0)
        assert fabric.group_of(Dimension.LOCAL, 1) == (0, 0)
        for dim in topo.dimensions:
            for group, channels in fabric.groups(dim).items():
                for node in channels[0].nodes:
                    assert fabric.group_of(dim, node) == group

    def test_rings_per_dim(self):
        topo = map_torus_onto_fabric(TorusShape(2, 2, 2), physical_ring(),
                                     rings_per_dim=2)
        assert topo.channels_in(Dimension.LOCAL) == 2


class TestMappedCollectives:
    def test_all_reduce_completes_on_mapped_topology(self):
        topo = map_torus_onto_fabric(TorusShape(2, 2, 2), physical_ring())
        assert run_all_reduce(topo) > 0

    def test_enhanced_plan_works_when_mapped(self):
        topo = map_torus_onto_fabric(TorusShape(2, 2, 2), physical_ring())
        enhanced = run_all_reduce(topo, algorithm=CollectiveAlgorithm.ENHANCED)
        assert enhanced > 0

    def test_mapped_logical_slower_than_native_physical(self):
        """A 3D logical torus mapped onto a 1D ring shares every logical
        hop over the same few physical links — it must lose to the native
        1D collective (the trade-off the paper's feature quantifies)."""
        phys = physical_ring()
        mapped = map_torus_onto_fabric(TorusShape(2, 2, 2), phys)
        mapped_time = run_all_reduce(mapped)

        native = LogicalTopology(physical_ring())
        native_time = run_all_reduce(native)
        assert mapped_time > native_time

    def test_identity_mapping_matches_native(self):
        """Mapping a 1x8x1 shape onto a 1x8x1 ring with one bidirectional
        ring is the identity (hop = one dedicated physical link in each
        direction): collective time must match the native run exactly."""
        phys = physical_ring(rings=1)
        mapped = map_torus_onto_fabric(TorusShape(1, 8, 1), phys,
                                       rings_per_dim=2)
        native = LogicalTopology(physical_ring(rings=1))
        assert run_all_reduce(mapped) == pytest.approx(
            run_all_reduce(native), rel=1e-9)
