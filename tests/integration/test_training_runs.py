"""Integration tests: full training simulations across workloads,
topologies and backends."""

import pytest

from repro.config import (
    AllToAllShape,
    CollectiveAlgorithm,
    SchedulingPolicy,
    TorusShape,
)
from repro.dims import Dimension
from repro.harness import alltoall_platform, run_training, torus_platform
from repro.models import dlrm, mlp, transformer
from repro.workload import hybrid


class TestMLPRuns:
    def test_mlp_on_torus(self):
        platform = torus_platform(TorusShape(2, 2, 2),
                                  algorithm=CollectiveAlgorithm.ENHANCED)
        model = mlp(compute=platform.config.compute)
        report, system = run_training(model, platform, num_iterations=2)
        assert report.total_cycles > 0
        assert system.scheduler.idle
        assert len(report.iteration_ends) == 2

    def test_mlp_on_alltoall(self):
        platform = alltoall_platform(AllToAllShape(2, 4))
        model = mlp(compute=platform.config.compute)
        report, _ = run_training(model, platform, num_iterations=1)
        assert report.total_comm_cycles > 0

    def test_fifo_and_lifo_both_complete(self):
        for policy in SchedulingPolicy:
            platform = torus_platform(TorusShape(2, 2, 2),
                                      scheduling_policy=policy)
            model = mlp(compute=platform.config.compute)
            report, _ = run_training(model, platform, num_iterations=1)
            assert report.total_cycles > 0


class TestTransformerRuns:
    def test_hybrid_parallel_2x2x2(self):
        platform = torus_platform(TorusShape(2, 2, 2),
                                  algorithm=CollectiveAlgorithm.ENHANCED)
        model = transformer(compute=platform.config.compute,
                            model_parallel_degree=2)
        report, _ = run_training(model, platform, num_iterations=1)
        # Hybrid parallelism: encoders communicate in all three phases.
        enc = report.layers[1]
        assert enc.total_comm_cycles > 0
        assert sum(enc.comm_bytes.values()) > 0

    def test_encoder_comm_roughly_uniform(self):
        """Fig. 13: encoder layers have near-identical communication."""
        platform = torus_platform(TorusShape(2, 2, 2),
                                  algorithm=CollectiveAlgorithm.ENHANCED)
        model = transformer(compute=platform.config.compute,
                            model_parallel_degree=2)
        report, _ = run_training(model, platform, num_iterations=2)
        times = [l.total_comm_cycles for l in report.layers
                 if l.name.startswith("encoder")]
        spread = (max(times) - min(times)) / max(times)
        assert spread < 0.25

    def test_embedding_has_no_comm(self):
        platform = torus_platform(TorusShape(2, 2, 2))
        model = transformer(compute=platform.config.compute,
                            model_parallel_degree=2)
        report, _ = run_training(model, platform, num_iterations=1)
        assert report.layers[0].total_comm_cycles == 0.0


class TestDLRMRuns:
    def test_alltoall_exchange_on_alltoall_fabric(self):
        platform = alltoall_platform(AllToAllShape(2, 4))
        strategy = hybrid(data_dims=(Dimension.LOCAL,),
                          model_dims=(Dimension.ALLTOALL,))
        model = dlrm(compute=platform.config.compute, strategy=strategy)
        report, _ = run_training(model, platform, num_iterations=1)
        exchange = next(l for l in report.layers
                        if l.name == "embedding_exchange")
        assert exchange.total_comm_cycles > 0


class TestCrossConfig:
    def test_enhanced_not_slower_end_to_end(self):
        def total(algorithm):
            platform = torus_platform(TorusShape(2, 2, 2), algorithm=algorithm)
            model = mlp(compute=platform.config.compute)
            report, _ = run_training(model, platform, num_iterations=2)
            return report.total_cycles

        assert total(CollectiveAlgorithm.ENHANCED) <= \
            total(CollectiveAlgorithm.BASELINE) * 1.01

    def test_compute_scale_reduces_compute_time(self):
        def compute_total(scale):
            platform = torus_platform(TorusShape(2, 2, 2), compute_scale=scale)
            model = mlp(compute=platform.config.compute)
            report, _ = run_training(model, platform, num_iterations=1)
            return report.total_compute_cycles

        assert compute_total(2.0) == pytest.approx(compute_total(1.0) / 2)

    def test_run_determinism_across_full_stack(self):
        def run_once():
            platform = torus_platform(TorusShape(2, 2, 2))
            model = mlp(compute=platform.config.compute)
            report, _ = run_training(model, platform, num_iterations=2)
            return report.total_cycles

        assert run_once() == run_once()
