"""Cross-validation: full collective algorithms on the detailed backend.

The strongest check on the fast backend's shortcuts — run the same ring
collective through both backends and compare the finish times.
"""

import pytest

from repro.collectives import (
    CollectiveContext,
    RingAllGather,
    RingAllReduce,
    RingAllToAll,
    RingReduceScatter,
)
from repro.config import LinkConfig, NetworkConfig
from repro.events import EventQueue
from repro.network import FastBackend, Link, RingChannel
from repro.network.detailed import DetailedBackend

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL,
                    vcs_per_vnet=8, buffers_per_vc=64)


def run_collective(algorithm_cls, backend_cls, n=4, size=16 * 1024):
    events = EventQueue()
    links = [Link(i, (i + 1) % n, IDEAL) for i in range(n)]
    ring = RingChannel(list(range(n)), links)
    backend = backend_cls(events, NET)
    ctx = CollectiveContext(backend, reduction_cycles_per_kb=0.0)
    algo = algorithm_cls(ctx, ring, size)
    algo.start_all()
    events.run(max_events=5_000_000)
    assert algo.done
    return algo.finished_at


class TestCollectivesOnDetailedBackend:
    @pytest.mark.parametrize("algorithm_cls", [
        RingReduceScatter, RingAllGather, RingAllReduce,
    ])
    def test_lockstep_ring_collectives_agree(self, algorithm_cls):
        fast = run_collective(algorithm_cls, FastBackend)
        detailed = run_collective(algorithm_cls, DetailedBackend)
        assert detailed == pytest.approx(fast, rel=0.10)

    def test_all_to_all_agrees_loosely(self):
        """All-to-all stresses relay interleaving; allow wider slack."""
        fast = run_collective(RingAllToAll, FastBackend)
        detailed = run_collective(RingAllToAll, DetailedBackend)
        assert detailed == pytest.approx(fast, rel=0.25)

    def test_detailed_backend_scales_with_ring_size(self):
        small = run_collective(RingAllReduce, DetailedBackend, n=3)
        large = run_collective(RingAllReduce, DetailedBackend, n=6)
        assert large > small

    def test_detailed_backend_deterministic(self):
        a = run_collective(RingAllReduce, DetailedBackend)
        b = run_collective(RingAllReduce, DetailedBackend)
        assert a == b
