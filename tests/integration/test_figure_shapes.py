"""Integration tests: small-scale versions of the paper's experiments must
reproduce the qualitative shapes of Figs. 9-12 (orderings, crossovers)."""

import pytest

from repro.collectives import CollectiveOp
from repro.config import AllToAllShape, CollectiveAlgorithm, TorusShape
from repro.config.units import KB, MB
from repro.harness import (
    alltoall_platform,
    run_collective,
    torus_platform,
)


def duration(platform, op, size):
    return run_collective(platform, op, size).duration_cycles


class TestFig9Shapes:
    """1D topology: alltoall vs torus (Sec. V-A)."""

    def _alltoall(self):
        return alltoall_platform(AllToAllShape(1, 8), global_switches=7)

    def _torus(self):
        return torus_platform(TorusShape(1, 8, 1), horizontal_rings=4)

    def test_alltoall_topology_always_wins_all_to_all(self):
        for size in (64 * KB, 1 * MB, 8 * MB):
            a = duration(self._alltoall(), CollectiveOp.ALL_TO_ALL, size)
            t = duration(self._torus(), CollectiveOp.ALL_TO_ALL, size)
            assert a < t, f"alltoall lost at {size}"

    def test_all_reduce_crossover(self):
        """alltoall wins small messages; torus wins large ones."""
        small_a = duration(self._alltoall(), CollectiveOp.ALL_REDUCE, 64 * KB)
        small_t = duration(self._torus(), CollectiveOp.ALL_REDUCE, 64 * KB)
        assert small_a < small_t

        large_a = duration(self._alltoall(), CollectiveOp.ALL_REDUCE, 16 * MB)
        large_t = duration(self._torus(), CollectiveOp.ALL_REDUCE, 16 * MB)
        assert large_t < large_a


class TestFig10Shapes:
    """2D/3D torus at fixed package count, symmetric links, baseline
    algorithm (Sec. V-B) — scaled down to 16 packages for test speed."""

    def _platform(self, shape, rings=2):
        one_d = shape.local == 1 and shape.vertical == 1
        return torus_platform(shape, symmetric=True,
                              horizontal_rings=4 if one_d else rings,
                              vertical_rings=rings)

    def test_2d_beats_1d_in_latency_bound_regime(self):
        """Fewer hops per dimension win while steps are latency-bound
        (Sec. V-B: 63 hops vs 2x7; at very large messages the 1D ring's
        lower volume regains ground — see EXPERIMENTS.md)."""
        one_d = duration(self._platform(TorusShape(1, 16, 1)),
                         CollectiveOp.ALL_REDUCE, 128 * KB)
        two_d = duration(self._platform(TorusShape(1, 4, 4)),
                         CollectiveOp.ALL_REDUCE, 128 * KB)
        assert two_d < one_d

    def test_extra_local_dim_without_need_hurts(self):
        """2x8x4 is worse than 1x8x8: more volume, same bottleneck ring."""
        flat = duration(self._platform(TorusShape(1, 8, 8)),
                        CollectiveOp.ALL_REDUCE, 4 * MB)
        stacked = duration(self._platform(TorusShape(2, 8, 4)),
                           CollectiveOp.ALL_REDUCE, 4 * MB)
        assert flat < stacked


class TestFig11Shapes:
    """Asymmetric hierarchical topology (Sec. V-C), scaled to 2x2 packages."""

    SHAPE = TorusShape(4, 2, 2)

    def test_asymmetric_beats_symmetric(self):
        sym = duration(torus_platform(self.SHAPE, symmetric=True),
                       CollectiveOp.ALL_REDUCE, 4 * MB)
        asym = duration(torus_platform(self.SHAPE, symmetric=False),
                        CollectiveOp.ALL_REDUCE, 4 * MB)
        assert asym < sym

    def test_enhanced_beats_baseline_on_asymmetric(self):
        base = duration(
            torus_platform(self.SHAPE, algorithm=CollectiveAlgorithm.BASELINE),
            CollectiveOp.ALL_REDUCE, 4 * MB)
        enh = duration(
            torus_platform(self.SHAPE, algorithm=CollectiveAlgorithm.ENHANCED),
            CollectiveOp.ALL_REDUCE, 4 * MB)
        assert enh < base

    def test_enhanced_cuts_inter_package_bytes_4x(self):
        def package_bytes(algorithm):
            platform = torus_platform(self.SHAPE, algorithm=algorithm)
            system = platform.build_system()
            system.request_collective(CollectiveOp.ALL_REDUCE, 4 * MB)
            system.run_until_idle(max_events=100_000_000)
            return system.topology.fabric.utilization_report()["package_bytes"]

        base = package_bytes(CollectiveAlgorithm.BASELINE)
        enh = package_bytes(CollectiveAlgorithm.ENHANCED)
        assert enh == pytest.approx(base / 4, rel=0.01)


class TestFig12Shapes:
    """Scaling the enhanced all-reduce (Sec. V-D), scaled-down shapes."""

    def _time(self, shape):
        platform = torus_platform(shape,
                                  algorithm=CollectiveAlgorithm.ENHANCED)
        return run_collective(platform, CollectiveOp.ALL_REDUCE, 2 * MB)

    def test_time_grows_with_modules(self):
        t8 = self._time(TorusShape(2, 2, 2)).duration_cycles
        t16 = self._time(TorusShape(2, 4, 2)).duration_cycles
        t32 = self._time(TorusShape(2, 4, 4)).duration_cycles
        assert t8 < t16 <= t32 * 1.05  # 16 -> 32 plateaus (same ring size)

    def test_plateau_when_bottleneck_ring_unchanged(self):
        """2x4x2 -> 2x4x4 keeps the bottleneck ring at 4 nodes, so the
        relative growth slows compared to 2x2x2 -> 2x4x2, where the
        bottleneck ring doubled (Sec. V-D)."""
        t8 = self._time(TorusShape(2, 2, 2)).duration_cycles
        t16 = self._time(TorusShape(2, 4, 2)).duration_cycles
        t32 = self._time(TorusShape(2, 4, 4)).duration_cycles
        assert t32 / t16 < t16 / t8

    def test_breakdown_has_four_phases(self):
        result = self._time(TorusShape(2, 4, 4))
        rows = result.breakdown.rows()
        assert [r["phase"] for r in rows] == [0, 1, 2, 3, 4]

    def test_network_delays_reflect_link_latencies(self):
        """Phase 1 runs on 90-cycle local links; phases 2/3 on 200-cycle
        inter-package links — the network-delay means must sit above the
        respective propagation latencies."""
        result = self._time(TorusShape(2, 4, 4))
        b = result.breakdown
        assert b.mean_network_delay(1) > 90.0
        assert b.mean_network_delay(2) > 200.0
        assert b.mean_network_delay(3) > 200.0

    def test_queue_delays_present_in_inter_package_phases(self):
        result = self._time(TorusShape(2, 4, 4))
        assert result.breakdown.mean_queue_delay(2) > 0.0
