"""Run-to-run determinism regression tests.

The simulator must be bit-identical across repeated runs in one process:
the event queue tie-breaks same-time events by schedule order, and no
component may key behavior off process-global state (ids, global
counters, hash order).  Each test runs the same workload twice on fresh
platforms and demands identical event counts, finish times and stats.
"""

from repro.collectives import CollectiveContext, RingAllReduce
from repro.collectives.types import CollectiveOp
from repro.config import LinkConfig, NetworkConfig
from repro.config.parameters import AllToAllShape, TorusShape
from repro.events import EventQueue
from repro.harness.runners import alltoall_platform, torus_platform
from repro.network import Link, RingChannel
from repro.network.detailed import DetailedBackend
from repro.sanitize import RuntimeSanitizer

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL,
                    vcs_per_vnet=8, buffers_per_vc=64)


def breakdown_snapshot(breakdown):
    """Everything the Fig. 12b stats depend on, in comparable form."""
    return {
        "phases": {
            phase: (s.messages, s.queue_cycles, s.network_cycles, s.bytes)
            for phase, s in sorted(breakdown.phase_stats.items())
        },
        "ready": tuple(breakdown.ready_queue_delays),
    }


def run_fast(platform_builder, op, size):
    system = platform_builder().build_system()
    collective = system.request_collective(op, size)
    system.run_until_idle(max_events=50_000_000)
    return {
        "events": system.events.events_processed,
        "finished_at": collective.finished_at,
        "duration": collective.duration_cycles,
        "breakdown": breakdown_snapshot(system.breakdown),
    }


def run_detailed(n=4, size=16 * 1024, sanitize=False):
    sanitizer = RuntimeSanitizer() if sanitize else None
    events = (sanitizer.make_event_queue() if sanitizer is not None
              else EventQueue())
    links = [Link(i, (i + 1) % n, IDEAL) for i in range(n)]
    ring = RingChannel(list(range(n)), links)
    backend = DetailedBackend(events, NET, sanitizer=sanitizer)
    ctx = CollectiveContext(backend, reduction_cycles_per_kb=0.0)
    algo = RingAllReduce(ctx, ring, size)
    algo.start_all()
    events.run(max_events=5_000_000)
    assert algo.done
    if sanitizer is not None:
        sanitizer.verify_quiescent()
    return {
        "events": events.events_processed,
        "finished_at": algo.finished_at,
        "flits": backend.total_flits_sent,
    }


class TestFastBackendDeterminism:
    def test_torus_allreduce_identical_twice(self):
        runs = [run_fast(lambda: torus_platform(TorusShape(2, 2, 2)),
                         CollectiveOp.ALL_REDUCE, 256 * 1024)
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_alltoall_platform_identical_twice(self):
        runs = [run_fast(lambda: alltoall_platform(AllToAllShape(2, 4)),
                         CollectiveOp.ALL_TO_ALL, 128 * 1024)
                for _ in range(2)]
        assert runs[0] == runs[1]


class TestDetailedBackendDeterminism:
    def test_ring_allreduce_identical_twice(self):
        assert run_detailed() == run_detailed()

    def test_identical_with_and_without_interleaved_runs(self):
        """A run between two identical runs must not perturb them (no
        process-global counters leaking into simulation behavior)."""
        first = run_detailed(n=4)
        run_detailed(n=6)  # unrelated interleaved simulation
        second = run_detailed(n=4)
        assert first == second

    def test_sanitizer_does_not_change_results(self):
        plain = run_detailed(sanitize=False)
        checked = run_detailed(sanitize=True)
        assert plain == checked
