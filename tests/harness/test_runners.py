"""Tests for the shared experiment runners and the cheap figure harnesses."""

from repro.collectives import CollectiveOp
from repro.config import (
    AllToAllShape,
    TorusShape,
)
from repro.config.units import KB, MB
from repro.harness import (
    alltoall_platform,
    fig09,
    fig12,
    run_collective,
    run_training,
    sweep_collective,
    torus_platform,
)
from repro.models import mlp


class TestPlatformBuilders:
    def test_torus_platform_builds(self):
        platform = torus_platform(TorusShape(2, 2, 2))
        system = platform.build_system()
        assert system.topology.num_npus == 8

    def test_symmetric_flag_equalizes_links(self):
        platform = torus_platform(TorusShape(2, 2, 2), symmetric=True)
        net = platform.config.network
        assert net.local_link.bandwidth_gbps == net.package_link.bandwidth_gbps

    def test_ring_counts_forwarded(self):
        platform = torus_platform(TorusShape(1, 8, 1), horizontal_rings=4)
        system = platform.build_system()
        from repro.dims import Dimension
        assert system.topology.channels_in(Dimension.HORIZONTAL) == 8

    def test_alltoall_platform_builds(self):
        platform = alltoall_platform(AllToAllShape(1, 8), global_switches=7)
        system = platform.build_system()
        assert system.topology.num_npus == 8

    def test_fresh_system_per_build(self):
        platform = torus_platform(TorusShape(2, 2, 2))
        assert platform.build_system() is not platform.build_system()


class TestRunners:
    def test_run_collective_result_fields(self):
        platform = torus_platform(TorusShape(2, 2, 2))
        result = run_collective(platform, CollectiveOp.ALL_REDUCE, 256 * KB)
        assert result.duration_cycles > 0
        assert result.num_npus == 8
        assert result.op is CollectiveOp.ALL_REDUCE

    def test_sweep_is_monotone_in_size(self):
        results = sweep_collective(
            lambda: torus_platform(TorusShape(2, 2, 2)),
            CollectiveOp.ALL_REDUCE,
            sizes=(256 * KB, 1 * MB, 4 * MB),
        )
        durations = [r.duration_cycles for r in results]
        assert durations == sorted(durations)

    def test_run_training_returns_report_and_system(self):
        platform = torus_platform(TorusShape(2, 2, 2))
        model = mlp(compute=platform.config.compute)
        report, system = run_training(model, platform, num_iterations=1)
        assert report.total_cycles > 0
        assert system.scheduler.idle


class TestFigureHarnesses:
    def test_fig09_rows(self):
        result = fig09.run(sizes=(64 * KB,), collective=CollectiveOp.ALL_REDUCE)
        rows = result.rows()
        assert len(rows) == 1
        assert rows[0]["alltoall_cycles"] > 0
        assert rows[0]["torus_cycles"] > 0

    def test_fig12_breakdown_structure(self):
        result = fig12.run(size_bytes=512 * KB,
                           shapes=(TorusShape(2, 2, 2), TorusShape(2, 4, 2)))
        totals = result.total_rows()
        assert [r["modules"] for r in totals] == [8, 16]
        breakdowns = result.breakdown_rows()
        assert set(breakdowns) == {"torus-2x2x2", "torus-2x4x2"}
