"""Tests for the collective bandwidth test harness."""

import pytest

from repro.collectives import CollectiveOp
from repro.config import TorusShape
from repro.config.units import KB, MB
from repro.errors import CollectiveError
from repro.harness import format_points, measure, torus_platform, traffic_factor


class TestTrafficFactor:
    def test_all_reduce(self):
        assert traffic_factor(CollectiveOp.ALL_REDUCE, 8) == pytest.approx(14 / 8)

    def test_one_shot_collectives(self):
        for op in (CollectiveOp.REDUCE_SCATTER, CollectiveOp.ALL_GATHER,
                   CollectiveOp.ALL_TO_ALL):
            assert traffic_factor(op, 4) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(CollectiveError):
            traffic_factor(CollectiveOp.ALL_REDUCE, 1)
        with pytest.raises(CollectiveError):
            traffic_factor(CollectiveOp.NONE, 4)


class TestMeasure:
    def _points(self, op=CollectiveOp.ALL_REDUCE,
                sizes=(256 * KB, 1 * MB, 4 * MB)):
        return measure(lambda: torus_platform(TorusShape(2, 2, 2)), op, sizes)

    def test_latency_monotone(self):
        points = self._points()
        latencies = [p.latency_cycles for p in points]
        assert latencies == sorted(latencies)

    def test_bandwidth_grows_toward_saturation(self):
        """Larger payloads amortize latency: algbw must increase."""
        points = self._points()
        bandwidths = [p.algbw_bytes_per_cycle for p in points]
        assert bandwidths == sorted(bandwidths)

    def test_busbw_below_aggregate_link_bandwidth(self):
        """Bus bandwidth cannot exceed a node's aggregate link bandwidth."""
        platform = torus_platform(TorusShape(2, 2, 2))
        system = platform.build_system()
        fabric = system.topology.fabric
        per_node_out = sum(
            l.config.effective_bytes_per_cycle() for l in fabric.links
        ) / fabric.num_npus
        for point in self._points(sizes=(8 * MB,)):
            assert point.busbw_bytes_per_cycle < per_node_out

    def test_algbw_definition(self):
        point = self._points(sizes=(1 * MB,))[0]
        assert point.algbw_bytes_per_cycle == pytest.approx(
            point.size_bytes / point.latency_cycles)

    def test_format_contains_all_points(self):
        points = self._points(sizes=(256 * KB, 1 * MB))
        text = format_points(points)
        assert "algbw" in text
        assert len(text.splitlines()) == 2 + len(points)
