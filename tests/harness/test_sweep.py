"""Tests for the generic parameter-sweep utility."""

import pytest

from repro.errors import ReproError
from repro.harness.sweep import sweep


class TestSweep:
    def test_runs_every_value(self):
        seen = []
        result = sweep("x", [1, 2, 3], lambda v: (seen.append(v), float(v))[1])
        assert seen == [1, 2, 3]
        assert result.values() == [1.0, 2.0, 3.0]

    def test_argmin(self):
        result = sweep("chunks", [1, 4, 16], lambda c: 1000.0 / c)
        assert result.argmin() == 16

    def test_table_speedups(self):
        result = sweep("alg", ["base", "enh"],
                       lambda a: 1000.0 if a == "base" else 250.0)
        table = result.table()
        assert table.speedup("enh", "base") == pytest.approx(4.0)

    def test_rows_are_csv_ready(self):
        from repro.analysis.export import rows_to_csv

        result = sweep("n", [2, 4], lambda n: float(n * 10))
        csv_text = rows_to_csv(result.rows)
        assert "n,cycles" in csv_text

    def test_empty_values_rejected(self):
        with pytest.raises(ReproError):
            sweep("x", [], lambda v: 1.0)

    def test_none_metric_rejected(self):
        with pytest.raises(ReproError):
            sweep("x", [1], lambda v: None)

    def test_real_simulation_sweep(self):
        """Sweep chunk counts on a real platform."""
        from repro.collectives import CollectiveOp
        from repro.config import TorusShape
        from repro.config.units import MB
        from repro.harness import run_collective, torus_platform

        def run(chunks):
            platform = torus_platform(TorusShape(2, 2, 2),
                                      preferred_set_splits=chunks)
            return run_collective(platform, CollectiveOp.ALL_REDUCE,
                                  2 * MB).duration_cycles

        result = sweep("chunks", [1, 4], run)
        assert result.argmin() == 4
