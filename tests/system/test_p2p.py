"""Tests for point-to-point transfers through the system layer."""

import pytest

from repro.config import (
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import KB, MB
from repro.errors import NetworkError
from repro.system import System
from repro.topology import build_torus_topology

NET = paper_network_config()


def make_system(shape=TorusShape(2, 2, 2), **kwargs) -> System:
    cfg = SystemConfig(**kwargs)
    topo = build_torus_topology(shape, NET, cfg)
    return System(topo, SimulationConfig(system=cfg, network=NET))


class TestP2P:
    def test_transfer_completes(self):
        sys_ = make_system()
        transfer = sys_.request_p2p(0, 5, 1 * MB)
        sys_.run_until_idle(max_events=1_000_000)
        assert transfer.done
        assert transfer.duration_cycles > 0

    def test_neighbour_faster_than_far_node(self):
        sys_ = make_system(TorusShape(1, 8, 1), horizontal_rings=1)
        near = sys_.request_p2p(0, 1, 1 * MB, name="near")
        sys_.run_until_idle(max_events=1_000_000)

        sys2 = make_system(TorusShape(1, 8, 1), horizontal_rings=1)
        far = sys2.request_p2p(0, 4, 1 * MB, name="far")
        sys2.run_until_idle(max_events=1_000_000)
        assert near.duration_cycles < far.duration_cycles

    def test_chunking_neutral_under_cut_through(self):
        """The fast backend forwards messages packet-pipelined, so chunking
        a P2P transfer neither helps nor hurts materially — it exists for
        interleaving fairness with concurrent traffic."""
        fine = make_system(TorusShape(1, 8, 1), horizontal_rings=1,
                           preferred_set_splits=16)
        t_fine = fine.request_p2p(0, 4, 8 * MB)
        fine.run_until_idle(max_events=1_000_000)

        coarse = make_system(TorusShape(1, 8, 1), horizontal_rings=1,
                             preferred_set_splits=1)
        t_coarse = coarse.request_p2p(0, 4, 8 * MB)
        coarse.run_until_idle(max_events=1_000_000)
        assert t_fine.duration_cycles == pytest.approx(
            t_coarse.duration_cycles, rel=0.05)

    def test_callback_after_completion(self):
        sys_ = make_system()
        transfer = sys_.request_p2p(0, 3, 64 * KB)
        sys_.run_until_idle(max_events=1_000_000)
        seen = []
        transfer.on_complete(seen.append)
        assert seen == [transfer]

    def test_self_send_rejected(self):
        sys_ = make_system()
        with pytest.raises(NetworkError):
            sys_.request_p2p(2, 2, 1 * MB)

    def test_concurrent_transfers_share_links(self):
        solo = make_system(TorusShape(1, 4, 1), horizontal_rings=1)
        t = solo.request_p2p(0, 1, 4 * MB)
        solo.run_until_idle(max_events=1_000_000)

        busy = make_system(TorusShape(1, 4, 1), horizontal_rings=1)
        transfers = [busy.request_p2p(0, 1, 4 * MB) for _ in range(3)]
        busy.run_until_idle(max_events=1_000_000)
        assert max(x.finished_at for x in transfers) > t.duration_cycles

    def test_p2p_and_collectives_coexist(self):
        from repro.collectives import CollectiveOp

        sys_ = make_system()
        collective = sys_.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB)
        transfer = sys_.request_p2p(0, 7, 1 * MB)
        sys_.run_until_idle(max_events=50_000_000)
        assert collective.done and transfer.done
