"""Tests for set -> chunk splitting (Table II granularity)."""

import pytest

from repro.errors import CollectiveError
from repro.system import split_into_chunks


class TestSplitIntoChunks:
    def test_even_split(self):
        assert split_into_chunks(16384, 4) == [4096.0] * 4

    def test_sum_preserved(self):
        chunks = split_into_chunks(1_000_003, 16)
        assert sum(chunks) == pytest.approx(1_000_003)
        assert len(chunks) == 16

    def test_tiny_sets_collapse(self):
        """Sets below splits x 1 KB keep chunk sizes meaningful."""
        chunks = split_into_chunks(2048, 16)
        assert len(chunks) == 2

    def test_sub_kb_set_is_single_chunk(self):
        assert split_into_chunks(100, 16) == [100.0]

    def test_single_split(self):
        assert split_into_chunks(5000, 1) == [5000.0]

    def test_rejects_nonpositive_size(self):
        with pytest.raises(CollectiveError):
            split_into_chunks(0, 4)

    def test_rejects_nonpositive_splits(self):
        with pytest.raises(CollectiveError):
            split_into_chunks(1024, 0)

    def test_chunks_equal_sized(self):
        chunks = split_into_chunks(999_999, 7)
        assert len(set(chunks)) == 1
