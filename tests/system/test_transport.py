"""Reliable transport: timeout/retry/backoff over a faulty network.

Covers the acceptance scenarios of the fault-injection work: a transient
link flap heals through retransmission with deterministic stats on both
backends; a permanent directed failure reroutes along the surviving ring
direction; a bidirectional cut fails fast naming the dead link and the
stuck ranks.  The no-fault pass-through (wrapping must not change a
single cycle) is asserted by ``benchmarks/bench_transport_overhead.py``
and spot-checked here.
"""

from dataclasses import replace

import pytest

from repro.collectives.types import CollectiveOp
from repro.config import LinkConfig, NetworkConfig
from repro.config.parameters import TorusShape, TransportConfig
from repro.config.presets import paper_simulation_config
from repro.errors import CollectiveError, ConfigError, TransportError
from repro.events import EventQueue
from repro.harness.runners import run_collective, torus_platform
from repro.network import FastBackend, FaultSchedule, FaultState, Link
from repro.network.detailed import DetailedBackend
from repro.network.message import Message
from repro.sanitize import RuntimeSanitizer
from repro.system import ReliableTransport, System, TransportFailure
from repro.topology.logical import build_torus_topology

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL)

#: Aggressive knobs so failure paths resolve in a few thousand cycles.
FAST_FAIL = TransportConfig(timeout_cycles=2000, timeout_per_byte=0.5,
                            max_retries=2, backoff_base_cycles=100,
                            backoff_max_cycles=1000)


def with_transport(spec, transport=None):
    spec.config = replace(
        spec.config,
        system=replace(spec.config.system,
                       transport=transport or TransportConfig()))
    return spec


class TestTransportConfig:
    def test_defaults_valid(self):
        cfg = TransportConfig()
        assert cfg.max_retries >= 1

    @pytest.mark.parametrize("kwargs", [
        {"timeout_cycles": 0},
        {"timeout_per_byte": -1.0},
        {"max_retries": -1},
        {"backoff_factor": 0.5},
        {"backoff_base_cycles": 100, "backoff_max_cycles": 10},
        {"jitter": 1.5},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TransportConfig(**kwargs)


class TestUnitTransport:
    def make(self, config=None, faults=None):
        events = EventQueue()
        backend = FastBackend(events, NET)
        if faults is not None:
            backend.faults = faults
        transport = ReliableTransport(backend, config or TransportConfig())
        return events, backend, transport

    def test_healthy_delivery_no_retries(self):
        events, _backend, transport = self.make()
        link = Link(0, 1, IDEAL)
        delivered = []
        transport.send(Message(src=0, dst=1, size_bytes=4096.0, tag="t"),
                       [link], delivered.append)
        events.run()
        assert len(delivered) == 1
        stats = transport.snapshot_stats()
        assert stats.messages == 1 and stats.sends == 1
        assert stats.retries == 0 and stats.timeouts == 0

    def test_recovers_after_transient_loss(self):
        faults = FaultState()
        faults.down.add((0, 1))
        events, _backend, transport = self.make(config=FAST_FAIL,
                                                faults=faults)
        events.schedule_at(3000, lambda: faults.down.discard((0, 1)))
        link = Link(0, 1, IDEAL)
        delivered = []
        transport.send(Message(src=0, dst=1, size_bytes=1024.0, tag="t"),
                       [link], delivered.append)
        events.run()
        assert len(delivered) == 1
        stats = transport.snapshot_stats()
        assert stats.retries >= 1
        assert stats.recovered == 1
        assert stats.failed == 0
        assert stats.drops >= 1

    def test_budget_exhaustion_raises_without_callback(self):
        faults = FaultState()
        faults.down.add((0, 1))
        events, _backend, transport = self.make(config=FAST_FAIL,
                                                faults=faults)
        link = Link(0, 1, IDEAL)
        transport.send(Message(src=0, dst=1, size_bytes=1024.0, tag="t"),
                       [link], lambda m: None)
        with pytest.raises(TransportError, match="0->1"):
            events.run()

    def test_budget_exhaustion_invokes_on_failed(self):
        faults = FaultState()
        faults.down.add((0, 1))
        events, _backend, transport = self.make(config=FAST_FAIL,
                                                faults=faults)
        link = Link(0, 1, IDEAL)
        failures: list[TransportFailure] = []
        transport.send(Message(src=0, dst=1, size_bytes=1024.0, tag="t"),
                       [link], lambda m: None, on_failed=failures.append)
        events.run()
        assert len(failures) == 1
        failure = failures[0]
        assert failure.attempts == 1 + FAST_FAIL.max_retries
        assert failure.dead_links == [(0, 1)]
        assert "link 0->1 down" in failure.describe()
        assert transport.snapshot_stats().failed == 1

    def test_faults_setter_reaches_inner_backend(self):
        events, backend, transport = self.make()
        state = FaultState()
        transport.faults = state
        assert backend.faults is state
        assert transport.faults is state

    def test_delegates_backend_surface(self):
        _events, backend, transport = self.make()
        assert transport.now == backend.now
        assert transport.supports_failure_callback


def run_flap(seed=0, size=1024 * 1024):
    """1 MB all-reduce on a symmetric 8-ring with a link flap mid-run."""
    spec = with_transport(torus_platform(TorusShape(1, 8, 1)))
    spec.fault_schedule = FaultSchedule.from_dict({
        "seed": seed,
        "events": [
            {"time": 1000, "action": "link_down", "link": [1, 2]},
            {"time": 400_000, "action": "link_up", "link": [1, 2]},
        ],
    })
    return run_collective(spec, CollectiveOp.ALL_REDUCE, size, sanitize=True)


class TestTransientFlap:
    def test_completes_with_retries_and_is_deterministic(self):
        r1, r2 = run_flap(), run_flap()
        stats = r1.transport_stats
        assert stats.retries > 0
        assert stats.recovered > 0
        assert stats.failed == 0
        assert r1.duration_cycles == r2.duration_cycles
        assert stats.as_dict() == r2.transport_stats.as_dict()

    def test_no_fault_run_has_silent_transport(self):
        spec = with_transport(torus_platform(TorusShape(1, 8, 1)))
        plain = torus_platform(TorusShape(1, 8, 1))
        wrapped = run_collective(spec, CollectiveOp.ALL_REDUCE, 1024 * 1024)
        bare = run_collective(plain, CollectiveOp.ALL_REDUCE, 1024 * 1024)
        assert wrapped.duration_cycles == bare.duration_cycles
        assert wrapped.transport_stats.retries == 0
        assert wrapped.transport_stats.timeouts == 0
        assert bare.transport_stats is None


class TestDetailedBackendFlap:
    def run(self, size=512 * 1024):
        config = paper_simulation_config()
        config = replace(config, system=replace(config.system,
                                                transport=TransportConfig()))
        topology = build_torus_topology(TorusShape(1, 4, 1), config.network,
                                        config.system)
        sanitizer = RuntimeSanitizer()
        events = sanitizer.make_event_queue()
        backend = DetailedBackend(events, config.network, sanitizer=sanitizer)
        sched = FaultSchedule.from_dict({"events": [
            {"time": 500, "action": "link_down", "link": [1, 2]},
            {"time": 120_000, "action": "link_up", "link": [1, 2]},
        ]})
        system = System(topology, config, backend=backend, events=events,
                        sanitizer=sanitizer, fault_schedule=sched)
        coll = system.request_collective(CollectiveOp.ALL_REDUCE, size)
        system.run_until_idle(max_events=50_000_000)
        assert coll.done
        sanitizer.verify_quiescent()
        return coll.duration_cycles, system.transport_stats().as_dict()

    def test_flit_level_flap_recovers_deterministically(self):
        t1, s1 = self.run()
        t2, s2 = self.run()
        assert (t1, s1) == (t2, s2)
        assert s1["retries"] > 0
        assert s1["drops"] > 0
        assert s1["failed"] == 0


class TestGracefulDegradation:
    def test_permanent_directed_failure_reroutes(self):
        spec = with_transport(torus_platform(TorusShape(1, 8, 1)), FAST_FAIL)
        spec.fault_schedule = FaultSchedule.from_dict({"events": [
            {"time": 1000, "action": "link_down", "link": [1, 2]}]})
        result = run_collective(spec, CollectiveOp.ALL_REDUCE, 64 * 1024,
                                sanitize=True)
        # Budget exhaustion is what triggers the reroute; the collective
        # still completes on the surviving (counter-rotating) direction.
        assert result.transport_stats.failed > 0
        assert result.duration_cycles > 0

    def test_bidirectional_cut_fails_fast_with_diagnostic(self):
        spec = with_transport(torus_platform(TorusShape(1, 4, 1)), FAST_FAIL)
        spec.fault_schedule = FaultSchedule.from_dict({"events": [
            {"time": 1000, "action": "link_down", "link": [1, 2]},
            {"time": 1000, "action": "link_down", "link": [2, 1]},
            {"time": 1000, "action": "link_down", "link": [0, 1]},
            {"time": 1000, "action": "link_down", "link": [1, 0]}]})
        with pytest.raises(CollectiveError) as exc:
            run_collective(spec, CollectiveOp.ALL_REDUCE, 64 * 1024)
        text = str(exc.value)
        assert "cannot make progress" in text
        assert "stuck ranks" in text
        assert "transport gave up" in text


class TestCliIntegration:
    def test_fault_schedule_flag_end_to_end(self, tmp_path, capsys):
        import json

        from repro.cli import main

        sched = tmp_path / "flap.json"
        sched.write_text(json.dumps({
            "events": [
                {"time": 1000, "action": "link_down", "link": [1, 2]},
                {"time": 400_000, "action": "link_up", "link": [1, 2]},
            ]}))
        rc = main(["collective", "--topology", "Torus", "--shape", "1x8x1",
                   "--op", "allreduce", "--size-mb", "1",
                   "--fault-schedule", str(sched), "--sanitize"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "retries" in out
