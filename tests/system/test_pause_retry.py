"""node_pause × transport retry interplay.

A paused endpoint is flow control, not path failure: the fault layer
classifies those drops as ``node_paused`` and the transport waits them
out with backoff *without* charging the ``max_retries`` budget — a pause
outlasting the whole retry budget must still end in delivery once the
node resumes.  The ``max_paused_waits`` valve bounds the wait so a
watchdog-less run still terminates when the node never comes back.
"""

from dataclasses import replace

import pytest

from repro.collectives.types import CollectiveOp
from repro.config import LinkConfig, NetworkConfig
from repro.config.parameters import ConfigError, TorusShape, TransportConfig
from repro.events import EventQueue
from repro.harness.runners import run_collective, torus_platform
from repro.network import FastBackend, FaultState, Link
from repro.network.fault_schedule import FaultAction, FaultEvent, FaultSchedule
from repro.network.message import Message
from repro.system import ReliableTransport

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL)

#: One retry of budget, short timers: a multi-timeout pause would exhaust
#: the budget immediately if paused drops were charged against it.
TIGHT = TransportConfig(timeout_cycles=1_000.0, timeout_per_byte=0.0,
                        max_retries=1, backoff_base_cycles=100.0,
                        backoff_factor=1.0, backoff_max_cycles=100.0,
                        jitter=0.0, max_paused_waits=1_000)


def make_transport(config=TIGHT):
    events = EventQueue()
    backend = FastBackend(events, NET)
    backend.faults = FaultState()
    transport = ReliableTransport(backend, config)
    return events, backend.faults, transport


class TestPausedDestination:
    def test_pause_outlasting_retry_budget_still_delivers(self):
        """Ten timeout windows of pause >> max_retries=1, yet the message
        must arrive after the resume without on_failed ever firing."""
        events, faults, transport = make_transport()
        faults.paused.add(1)
        events.schedule_at(12_000.0, lambda: faults.paused.discard(1))

        delivered, failures = [], []
        transport.send(Message(src=0, dst=1, size_bytes=512.0, tag="t"),
                       [Link(0, 1, IDEAL)], delivered.append,
                       on_failed=failures.append)
        events.run(max_events=100_000)

        assert len(delivered) == 1
        assert not failures
        stats = transport.snapshot_stats()
        assert stats.paused_waits > TIGHT.max_retries
        assert stats.failed == 0
        assert stats.recovered == 1

    def test_paused_waits_not_counted_as_retries(self):
        """The retries counter tracks budget consumption only; waiting out
        a pause is accounted separately (paused_waits)."""
        events, faults, transport = make_transport()
        faults.paused.add(1)
        events.schedule_at(5_000.0, lambda: faults.paused.discard(1))

        delivered = []
        transport.send(Message(src=0, dst=1, size_bytes=512.0, tag="t"),
                       [Link(0, 1, IDEAL)], delivered.append,
                       on_failed=lambda f: pytest.fail(f.describe()))
        events.run(max_events=100_000)

        stats = transport.snapshot_stats()
        assert delivered
        assert stats.paused_waits >= 3
        assert stats.retries == 0, (
            "paused-endpoint waits must not consume the retry budget")

    def test_never_resuming_node_hits_the_valve(self):
        """max_paused_waits bounds the wait: a permanent pause fails with
        the pause named as the loss reason instead of looping forever."""
        config = replace(TIGHT, max_paused_waits=4)
        events, faults, transport = make_transport(config)
        faults.paused.add(1)

        failures = []
        transport.send(Message(src=0, dst=1, size_bytes=512.0, tag="t"),
                       [Link(0, 1, IDEAL)],
                       lambda m: pytest.fail("must not deliver"),
                       on_failed=failures.append)
        events.run(max_events=100_000)

        assert len(failures) == 1
        assert "paused" in failures[0].reason
        stats = transport.snapshot_stats()
        assert stats.failed == 1
        assert stats.paused_waits == 5  # 4 allowed waits + the fatal one

    def test_link_down_still_burns_budget_while_pause_does_not(self):
        """Mixed history: drops during the pause are free; once the path
        turns into a real link failure, max_retries applies from there."""
        events, faults, transport = make_transport()
        faults.paused.add(1)
        # Resume the node but kill the link at the same moment: the
        # remaining attempts are real path failures.
        def flip():
            faults.paused.discard(1)
            faults.down.add((0, 1))
        events.schedule_at(5_000.0, flip)

        failures = []
        transport.send(Message(src=0, dst=1, size_bytes=512.0, tag="t"),
                       [Link(0, 1, IDEAL)],
                       lambda m: pytest.fail("must not deliver"),
                       on_failed=failures.append)
        events.run(max_events=100_000)

        assert len(failures) == 1
        assert "down" in failures[0].reason
        stats = transport.snapshot_stats()
        # Budget consumed by the post-resume attempts only.
        assert stats.paused_waits >= 3
        assert stats.retries <= TIGHT.max_retries

    def test_max_paused_waits_validated(self):
        with pytest.raises(ConfigError):
            TransportConfig(max_paused_waits=-1)


class TestSystemLevelPause:
    def spec(self):
        spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
        spec.config = replace(
            spec.config,
            system=replace(
                spec.config.system,
                transport=TransportConfig(timeout_cycles=2_000.0,
                                          timeout_per_byte=0.1,
                                          max_retries=2,
                                          backoff_base_cycles=500.0,
                                          backoff_max_cycles=2_000.0,
                                          jitter=0.0)))
        spec.fault_schedule = FaultSchedule([
            FaultEvent(time=500.0, action=FaultAction.NODE_PAUSE, node=3),
            FaultEvent(time=30_000.0, action=FaultAction.NODE_RESUME, node=3),
        ])
        return spec

    def test_collective_survives_long_pause(self):
        """The pause spans many timeout windows with max_retries=2; the
        collective must complete after the resume, not fail spuriously."""
        result = run_collective(self.spec(), CollectiveOp.ALL_REDUCE,
                                256 * 1024)
        stats = result.transport_stats
        assert stats.paused_waits > 0
        assert stats.failed == 0
        assert result.duration_cycles > 30_000.0  # waited for the resume

    def test_pause_recovery_is_deterministic(self):
        a = run_collective(self.spec(), CollectiveOp.ALL_REDUCE, 256 * 1024)
        b = run_collective(self.spec(), CollectiveOp.ALL_REDUCE, 256 * 1024)
        assert a.duration_cycles == b.duration_cycles
        assert a.transport_stats.as_dict() == b.transport_stats.as_dict()
