"""Tests for the ready queue, dispatcher and LSQ bookkeeping (Fig. 7)."""

import pytest

from repro.collectives import CollectiveOp
from repro.config import (
    CollectiveAlgorithm,
    SchedulingPolicy,
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import KB, MB
from repro.system import System
from repro.topology import build_torus_topology

NET = paper_network_config()


def make_system(**system_kwargs) -> System:
    system_cfg = SystemConfig(**system_kwargs)
    topo = build_torus_topology(TorusShape(2, 2, 2), NET, system_cfg)
    return System(topo, SimulationConfig(system=system_cfg, network=NET))


class TestDispatcher:
    def test_small_set_dispatches_fully(self):
        sys_ = make_system(preferred_set_splits=4)
        sys_.request_collective(CollectiveOp.ALL_REDUCE, 64 * KB)
        assert sys_.scheduler.ready_count == 0
        assert sys_.scheduler.in_flight_count == 4

    def test_threshold_limits_initial_issue(self):
        """With T=2 and P=2, a 16-chunk set issues only 2 chunks at first."""
        sys_ = make_system(preferred_set_splits=16, dispatch_threshold=2,
                           dispatch_batch=2)
        sys_.request_collective(CollectiveOp.ALL_REDUCE, 16 * MB)
        assert sys_.scheduler.in_flight_count == 2
        assert sys_.scheduler.ready_count == 14

    def test_dispatch_continues_as_chunks_drain(self):
        sys_ = make_system(preferred_set_splits=16, dispatch_threshold=2,
                           dispatch_batch=2)
        collective = sys_.request_collective(CollectiveOp.ALL_REDUCE, 16 * MB)
        sys_.run_until_idle(max_events=50_000_000)
        assert collective.done
        assert sys_.scheduler.ready_count == 0

    def test_first_phase_count_tracks_issue(self):
        sys_ = make_system(preferred_set_splits=8, dispatch_threshold=8,
                           dispatch_batch=16)
        sys_.request_collective(CollectiveOp.ALL_REDUCE, 8 * MB)
        assert sys_.scheduler.first_phase_count == 8

    def test_idle_after_drain(self):
        sys_ = make_system()
        sys_.request_collective(CollectiveOp.ALL_REDUCE, 64 * KB)
        sys_.run_until_idle(max_events=10_000_000)
        assert sys_.scheduler.idle


class TestSchedulingPolicy:
    def _completion_order(self, policy: SchedulingPolicy) -> list[str]:
        sys_ = make_system(
            scheduling_policy=policy,
            preferred_set_splits=4,
            dispatch_threshold=1,
            dispatch_batch=1,
        )
        order = []
        for name in ("first", "second", "third"):
            c = sys_.request_collective(CollectiveOp.ALL_REDUCE, 4 * MB,
                                        name=name)
            c.on_complete(lambda cc: order.append(cc.name))
        sys_.run_until_idle(max_events=100_000_000)
        return order

    def test_fifo_completes_in_request_order(self):
        assert self._completion_order(SchedulingPolicy.FIFO) == [
            "first", "second", "third"]

    def test_lifo_prioritizes_latest_request(self):
        """LIFO serves the most recently requested collective first
        (Sec. III-E first-layer prioritization), so the first request
        finishes last."""
        order = self._completion_order(SchedulingPolicy.LIFO)
        assert order[-1] == "first"

    def test_policies_differ(self):
        assert (self._completion_order(SchedulingPolicy.FIFO)
                != self._completion_order(SchedulingPolicy.LIFO))


class TestReadyQueueStats:
    def test_p0_delays_recorded(self):
        sys_ = make_system(preferred_set_splits=16, dispatch_threshold=1,
                           dispatch_batch=1)
        sys_.request_collective(CollectiveOp.ALL_REDUCE, 16 * MB)
        sys_.run_until_idle(max_events=100_000_000)
        assert len(sys_.breakdown.ready_queue_delays) == 16
        assert sys_.breakdown.mean_ready_queue_delay > 0.0

    def test_immediate_dispatch_has_zero_p0(self):
        sys_ = make_system(preferred_set_splits=4, dispatch_threshold=8,
                           dispatch_batch=16)
        sys_.request_collective(CollectiveOp.ALL_REDUCE, 4 * MB)
        sys_.run_until_idle(max_events=50_000_000)
        assert sys_.breakdown.mean_ready_queue_delay == pytest.approx(0.0)


class TestLSQReporting:
    def test_lsq_counts_match_channels(self):
        sys_ = make_system(local_rings=2, vertical_rings=1, horizontal_rings=1,
                           algorithm=CollectiveAlgorithm.ENHANCED)
        collective = sys_.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB)
        counts = sys_.scheduler.lsq_counts(collective.plan)
        # Enhanced: RS local (2 rings), AR vertical (2 = 1 bidir),
        # AR horizontal (2), AG local (2).
        assert counts == [2, 2, 2, 2]
        sys_.run_until_idle(max_events=50_000_000)
