"""Regression tests for nondeterminism the source linter flagged.

Each class pins one fixed bug: order-sensitive float accumulation in the
stats (now fsum over stored samples) and the process-global chunk-id
counter (now per-Scheduler).  See docs/DETERMINISM.md.
"""

import math
from types import SimpleNamespace

from repro.collectives.context import PhaseStats
from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape
from repro.harness.runners import run_collective, torus_platform
from repro.system.stats import DelayBreakdown

#: Values chosen so naive left-to-right += rounds differently than the
#: reverse order (1.0 absorbs the 1e-16 ulps one at a time).
ILL_CONDITIONED = [1.0, 1e-16, 1e-16, 1e-16, -1.0, 1e16, -1e16]


def message(q=0.0, n=0.0, size=0.0):
    return SimpleNamespace(queueing_cycles=q, network_cycles=n,
                           size_bytes=size)


class TestPhaseStatsOrderInvariance:
    def test_totals_independent_of_record_order(self):
        forward, backward = PhaseStats(), PhaseStats()
        for value in ILL_CONDITIONED:
            forward.record(message(q=value, n=value, size=value))
        for value in reversed(ILL_CONDITIONED):
            backward.record(message(q=value, n=value, size=value))
        assert forward.queue_cycles == backward.queue_cycles
        assert forward.network_cycles == backward.network_cycles
        assert forward.bytes == backward.bytes
        # And the total is the exact (fsum) one, not the drifted naive sum.
        assert forward.queue_cycles == math.fsum(ILL_CONDITIONED)

    def test_merge_order_invariant(self):
        def build(values):
            stats = PhaseStats()
            for value in values:
                stats.record(message(q=value))
            return stats

        a, b = build(ILL_CONDITIONED[:3]), build(ILL_CONDITIONED[3:])
        ab = PhaseStats()
        ab.merge_from(a)
        ab.merge_from(b)
        ba = PhaseStats()
        ba.merge_from(b)
        ba.merge_from(a)
        assert ab.queue_cycles == ba.queue_cycles
        assert ab.messages == ba.messages

    def test_as_dict_round_trip_preserves_totals(self):
        stats = PhaseStats()
        for value in ILL_CONDITIONED:
            stats.record(message(q=value, n=2 * value, size=1.0))
        again = PhaseStats.from_dict(stats.as_dict())
        assert again.queue_cycles == stats.queue_cycles
        assert again.network_cycles == stats.network_cycles
        assert again.messages == stats.messages


class TestReadyQueueDelayOrderInvariance:
    def test_mean_independent_of_dispatch_order(self):
        forward, backward = DelayBreakdown(), DelayBreakdown()
        for delay in ILL_CONDITIONED:
            forward.record_ready_queue(delay)
        for delay in reversed(ILL_CONDITIONED):
            backward.record_ready_queue(delay)
        assert (forward.mean_ready_queue_delay
                == backward.mean_ready_queue_delay)


class TestPerSystemChunkIds:
    def test_chunk_numbering_restarts_per_system(self):
        """Chunk ids must depend on this run alone, not on how many
        systems the process built before (they key the PRIORITY-policy
        FIFO tie-break and appear in diagnostics)."""
        spec = torus_platform(TorusShape(2, 2, 2))
        observed = []
        for _ in range(2):
            system = spec.build_system()
            system.scheduler.keep_completed = True
            system.request_collective(CollectiveOp.ALL_REDUCE, 64 * 1024,
                                      name="probe")
            system.run_until_idle()
            ids = sorted(ready.chunk_id for ready, _ in
                         system.scheduler.completed_executions)
            observed.append(ids)
        assert observed[0] == observed[1]
        assert observed[0][0] == 0
        assert observed[0] == list(range(len(observed[0])))

    def test_repeat_runs_bit_identical(self):
        spec = torus_platform(TorusShape(2, 2, 2))
        results = [run_collective(spec, CollectiveOp.ALL_REDUCE, 64 * 1024)
                   for _ in range(2)]
        assert (results[0].duration_cycles == results[1].duration_cycles)
        assert (results[0].breakdown.rows() == results[1].breakdown.rows())
