"""End-to-end tests of the System facade's collective API."""

import pytest

from repro.collectives import CollectiveOp
from repro.config import (
    CollectiveAlgorithm,
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import KB, MB
from repro.dims import Dimension
from repro.system import System
from repro.topology import build_torus_topology

NET = paper_network_config()


def make_system(**kwargs) -> System:
    system_cfg = SystemConfig(**kwargs)
    topo = build_torus_topology(TorusShape(2, 2, 2), NET, system_cfg)
    return System(topo, SimulationConfig(system=system_cfg, network=NET))


class TestRequestCollective:
    def test_all_reduce_completes(self):
        sys_ = make_system()
        c = sys_.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB)
        end = sys_.run_until_idle(max_events=50_000_000)
        assert c.done
        assert c.finished_at == end
        assert c.duration_cycles > 0

    @pytest.mark.parametrize("op", [
        CollectiveOp.ALL_GATHER,
        CollectiveOp.REDUCE_SCATTER,
        CollectiveOp.ALL_TO_ALL,
    ])
    def test_other_collectives_complete(self, op):
        sys_ = make_system()
        c = sys_.request_collective(op, 256 * KB)
        sys_.run_until_idle(max_events=50_000_000)
        assert c.done

    def test_none_op_completes_without_traffic(self):
        sys_ = make_system()
        c = sys_.request_collective(CollectiveOp.NONE, 1 * MB)
        sys_.run_until_idle()
        assert c.done
        assert sys_.backend.messages_delivered == 0

    def test_scoped_collective_stays_in_scope(self):
        sys_ = make_system()
        c = sys_.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB,
                                    scope=[Dimension.VERTICAL])
        sys_.run_until_idle(max_events=50_000_000)
        assert c.done
        assert [p.dim for p in c.plan] == [Dimension.VERTICAL]

    def test_completion_callback_after_done(self):
        sys_ = make_system()
        c = sys_.request_collective(CollectiveOp.ALL_REDUCE, 64 * KB)
        sys_.run_until_idle(max_events=10_000_000)
        seen = []
        c.on_complete(seen.append)  # registered after completion
        assert seen == [c]

    def test_concurrent_sets_all_complete(self):
        sys_ = make_system()
        sets = [sys_.request_collective(CollectiveOp.ALL_REDUCE, 512 * KB)
                for _ in range(5)]
        sys_.run_until_idle(max_events=100_000_000)
        assert all(s.done for s in sets)

    def test_concurrent_sets_slower_than_alone(self):
        solo = make_system()
        s = solo.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB)
        solo.run_until_idle(max_events=50_000_000)

        busy = make_system()
        sets = [busy.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB)
                for _ in range(4)]
        busy.run_until_idle(max_events=100_000_000)
        assert max(x.finished_at for x in sets) > s.finished_at

    def test_per_set_breakdown_populated(self):
        sys_ = make_system(algorithm=CollectiveAlgorithm.ENHANCED)
        c = sys_.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB)
        sys_.run_until_idle(max_events=50_000_000)
        assert c.breakdown.num_phases == len(c.plan)

    def test_schedule_exposes_event_queue(self):
        sys_ = make_system()
        fired = []
        sys_.schedule(100.0, lambda: fired.append(sys_.now))
        sys_.run_until_idle()
        assert fired == [100.0]

    def test_run_until_partial(self):
        sys_ = make_system()
        sys_.request_collective(CollectiveOp.ALL_REDUCE, 8 * MB)
        sys_.run_until(10.0)
        assert sys_.now == pytest.approx(10.0)

    def test_reduction_rate_override_slows_collective(self):
        fast_sys = make_system()
        fast = fast_sys.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB,
                                           reduction_cycles_per_kb=0.0)
        fast_sys.run_until_idle(max_events=50_000_000)

        slow_sys = make_system()
        slow = slow_sys.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB,
                                           reduction_cycles_per_kb=100.0)
        slow_sys.run_until_idle(max_events=50_000_000)
        assert slow.duration_cycles > fast.duration_cycles

    def test_determinism(self):
        def run_once():
            sys_ = make_system()
            sets = [sys_.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB)
                    for _ in range(3)]
            sys_.run_until_idle(max_events=100_000_000)
            return [s.finished_at for s in sets]

        assert run_once() == run_once()
