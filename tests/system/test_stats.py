"""Tests for the delay-breakdown statistics (Figs. 12b/16 machinery)."""

import pytest

from repro.network import Message
from repro.system import DelayBreakdown


def delivered_message(queue=5.0, network=20.0, size=100.0):
    m = Message(0, 1, size)
    m.created_at = 0.0
    m.injected_at = queue
    m.delivered_at = queue + network
    return m


class TestDelayBreakdown:
    def test_record_and_means(self):
        b = DelayBreakdown()
        b.record_message(1, delivered_message(queue=10.0, network=30.0))
        b.record_message(1, delivered_message(queue=20.0, network=50.0))
        assert b.mean_queue_delay(1) == pytest.approx(15.0)
        assert b.mean_network_delay(1) == pytest.approx(40.0)

    def test_ready_queue_is_p0(self):
        b = DelayBreakdown()
        b.record_ready_queue(100.0)
        b.record_ready_queue(200.0)
        assert b.mean_ready_queue_delay == pytest.approx(150.0)

    def test_empty_breakdown(self):
        b = DelayBreakdown()
        assert b.mean_ready_queue_delay == 0.0
        assert b.mean_queue_delay(1) == 0.0
        assert b.num_phases == 0

    def test_rows_structure(self):
        b = DelayBreakdown()
        b.record_ready_queue(50.0)
        b.record_message(1, delivered_message())
        b.record_message(3, delivered_message())
        rows = b.rows()
        assert [r["phase"] for r in rows] == [0, 1, 2, 3]
        assert rows[0]["queue"] == pytest.approx(50.0)
        assert rows[2]["queue"] == 0.0  # phase 2 had no traffic

    def test_merge_from(self):
        a, b = DelayBreakdown(), DelayBreakdown()
        a.record_message(1, delivered_message(queue=10.0))
        b.record_message(1, delivered_message(queue=30.0))
        b.record_ready_queue(7.0)
        a.merge_from(b)
        assert a.mean_queue_delay(1) == pytest.approx(20.0)
        assert a.ready_queue_delays == [7.0]

    def test_phase_stats_bytes(self):
        b = DelayBreakdown()
        b.record_message(2, delivered_message(size=300.0))
        b.record_message(2, delivered_message(size=700.0))
        assert b.phase_stats[2].bytes == pytest.approx(1000.0)
        assert b.phase_stats[2].messages == 2
