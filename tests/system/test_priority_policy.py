"""Tests for the Sec. III-E first-layer priority scheduling extension."""

from repro.collectives import CollectiveOp
from repro.config import (
    SchedulingPolicy,
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.system import System
from repro.topology import build_torus_topology

NET = paper_network_config()


def make_system(policy: SchedulingPolicy) -> System:
    system_cfg = SystemConfig(
        scheduling_policy=policy,
        preferred_set_splits=4,
        dispatch_threshold=1,
        dispatch_batch=1,
    )
    topo = build_torus_topology(TorusShape(2, 2, 2), NET, system_cfg)
    return System(topo, SimulationConfig(system=system_cfg, network=NET))


def completion_order(policy: SchedulingPolicy, layer_order=(5, 3, 0)) -> list[int]:
    """Issue collectives for layers in ``layer_order`` (backprop issues
    deep layers first) and return layer-id completion order."""
    sys_ = make_system(policy)
    done = []
    for layer in layer_order:
        c = sys_.request_collective(CollectiveOp.ALL_REDUCE, 4 * MB,
                                    layer_id=layer, name=f"layer{layer}")
        c.on_complete(lambda cc: done.append(cc.layer_id))
    sys_.run_until_idle(max_events=200_000_000)
    return done


class TestPriorityPolicy:
    def test_first_layer_finishes_first(self):
        """Sec. III-E: layer 0's gradients, issued last, must complete
        before later layers' collectives under the priority policy."""
        order = completion_order(SchedulingPolicy.PRIORITY)
        assert order[0] == 0

    def test_priority_orders_all_layers(self):
        order = completion_order(SchedulingPolicy.PRIORITY)
        assert order == [0, 3, 5]

    def test_fifo_completes_in_issue_order(self):
        assert completion_order(SchedulingPolicy.FIFO) == [5, 3, 0]

    def test_unlabelled_collectives_go_last(self):
        sys_ = make_system(SchedulingPolicy.PRIORITY)
        done = []
        anon = sys_.request_collective(CollectiveOp.ALL_REDUCE, 4 * MB,
                                       name="anon")
        anon.on_complete(lambda c: done.append("anon"))
        labelled = sys_.request_collective(CollectiveOp.ALL_REDUCE, 4 * MB,
                                           layer_id=9, name="layer9")
        labelled.on_complete(lambda c: done.append("layer9"))
        sys_.run_until_idle(max_events=200_000_000)
        assert done == ["layer9", "anon"]

    def test_priority_helps_first_layer_latency(self):
        """Layer 0's collective completes no later under PRIORITY than
        under FIFO when issued last."""
        def layer0_finish(policy):
            sys_ = make_system(policy)
            finish = {}
            for layer in (5, 3, 0):
                c = sys_.request_collective(CollectiveOp.ALL_REDUCE, 4 * MB,
                                            layer_id=layer)
                c.on_complete(lambda cc: finish.__setitem__(cc.layer_id,
                                                            cc.finished_at))
            sys_.run_until_idle(max_events=200_000_000)
            return finish[0]

        assert layer0_finish(SchedulingPolicy.PRIORITY) <= \
            layer0_finish(SchedulingPolicy.FIFO)
