"""SimulationService + ServiceDaemon: admission, execution, recovery.

The crash-recovery acceptance contract lives here: a daemon killed with
jobs queued and in-flight restarts against the same state directory,
completes every job bit-identically, and re-simulates nothing that had
already completed.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import EXIT_OK, EXIT_PARTIAL, ConfigError
from repro.parallel import SupervisionPolicy
from repro.service import (
    JobState,
    PayloadError,
    QueueFullError,
    ServiceConfig,
    ServiceDaemon,
    SimulationService,
    parse_payload,
)
from repro.service.jobs import JobStore

#: A tiny-but-real payload: 2x2x2 torus, 64 KB allreduce, 4 chunks.
PAYLOAD = {"op": "allreduce", "size_mb": 0.0625, "shape": "2x2x2",
           "preferred_set_splits": 4}

DEADLINE_S = 60.0


def _config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(host="127.0.0.1", port=0,
                    state_dir=str(tmp_path / "state"), queue_limit=8)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _drain_all(service: SimulationService) -> None:
    """Run every queued job inline (no worker thread: deterministic)."""
    while True:
        job = service.queue.get(timeout=0.01)
        if job is None:
            return
        service.run_job(job)


class TestJobStore:
    def test_ids_are_sequential_and_key_tagged(self):
        store = JobStore()
        payload = parse_payload(PAYLOAD)
        key = payload.content_key()
        job1, _ = store.submit(payload, key)
        store.finish(job1, JobState.DONE)
        job2, _ = store.submit(payload, key)
        assert job1.job_id.startswith("job-000001-")
        assert job2.job_id.startswith("job-000002-")
        assert key[:12] in job1.job_id

    def test_restore_keeps_fresh_ids_ahead(self):
        store = JobStore()
        payload = parse_payload(PAYLOAD)
        restored = store.restore("job-000007-abc", payload, "k1", 0)
        store.finish(restored, JobState.DONE)
        fresh, _ = store.submit(payload, payload.content_key())
        assert int(fresh.job_id.split("-")[1]) > 7

    def test_forget_rolls_back_admission(self):
        store = JobStore()
        payload = parse_payload(PAYLOAD)
        job, _ = store.submit(payload, "k")
        store.forget(job)
        assert store.get(job.job_id) is None
        again, deduped = store.submit(payload, "k")
        assert not deduped  # the forgotten job no longer coalesces

    def test_wait_for_change_times_out(self):
        store = JobStore()
        job, _ = store.submit(parse_payload(PAYLOAD), "k")
        start = time.monotonic()
        assert store.wait_for_change(job, job.version, timeout=0.05) == 0
        assert time.monotonic() - start < 5.0


class TestAdmission:
    def test_submit_validates_before_queueing(self, tmp_path):
        service = SimulationService(_config(tmp_path))
        try:
            with pytest.raises(PayloadError):
                service.submit({"op": "bogus", "size_mb": 1})
            assert len(service.queue) == 0
            assert service.store.counts()["total"] == 0
        finally:
            service.drain()

    def test_queue_full_rolls_back_and_surfaces_429_material(self, tmp_path):
        service = SimulationService(_config(tmp_path, queue_limit=1))
        try:
            service.submit(PAYLOAD)
            with pytest.raises(QueueFullError):
                service.submit({**PAYLOAD, "size_mb": 0.125})
            # The bounced job left no trace: admission rolled back.
            assert service.store.counts()["total"] == 1
            assert len(service.queue) == 1
        finally:
            service.drain()

    def test_identical_inflight_payloads_coalesce(self, tmp_path):
        service = SimulationService(_config(tmp_path))
        try:
            job1, deduped1 = service.submit(PAYLOAD)
            job2, deduped2 = service.submit(dict(PAYLOAD))
            assert not deduped1 and deduped2
            assert job1.job_id == job2.job_id
            assert job1.deduped_hits == 1
            assert len(service.queue) == 1  # one simulation serves both
            # A different payload does not coalesce.
            other, deduped3 = service.submit({**PAYLOAD, "size_mb": 0.125})
            assert not deduped3 and other.job_id != job1.job_id
        finally:
            service.drain()

    def test_completed_key_does_not_coalesce_but_replays(self, tmp_path):
        service = SimulationService(_config(tmp_path))
        try:
            job1, _ = service.submit(PAYLOAD)
            _drain_all(service)
            assert job1.state is JobState.DONE
            job2, deduped = service.submit(dict(PAYLOAD))
            assert not deduped and job2.job_id != job1.job_id
            sims_before = service.executor.simulations_run
            _drain_all(service)
            assert job2.state is JobState.DONE
            # Zero re-simulation: the journal/cache replayed the result.
            assert service.executor.simulations_run == sims_before
            assert job2.result == job1.result
        finally:
            service.drain()

    def test_draining_service_refuses_submissions(self, tmp_path):
        from repro.service import QueueClosedError

        service = SimulationService(_config(tmp_path))
        assert service.drain() == EXIT_OK
        with pytest.raises(QueueClosedError):
            service.submit(PAYLOAD)

    def test_config_validation(self, tmp_path):
        with pytest.raises(ConfigError):
            _config(tmp_path, queue_limit=0)
        with pytest.raises(ConfigError):
            ServiceConfig(state_dir="")


class TestExecution:
    def test_job_completes_with_result_headline(self, tmp_path):
        service = SimulationService(_config(tmp_path))
        try:
            job, _ = service.submit(PAYLOAD)
            _drain_all(service)
            assert job.state is JobState.DONE
            assert job.result["duration_cycles"] > 0
            assert job.result["num_npus"] == 8
            assert job.result["op"] == "allreduce"
            assert job.attempts == 1
        finally:
            service.drain()

    def test_poison_job_quarantined_daemon_keeps_serving(self, tmp_path):
        """A payload that blows its event budget lands in quarantine
        with a diagnostic bundle; the next client is unaffected."""
        policy = SupervisionPolicy(point_event_budget=50, max_retries=0)
        service = SimulationService(_config(tmp_path, policy=policy))
        try:
            poison, _ = service.submit(PAYLOAD)
            _drain_all(service)
            assert poison.state is JobState.QUARANTINED
            assert poison.failure_class == "event-budget"
            assert poison.error
            assert poison.bundle_path and "poison" in poison.bundle_path
            with open(poison.bundle_path) as f:
                bundle = json.load(f)
            assert bundle["kind"] == "poison-point"
        finally:
            assert service.drain() == EXIT_PARTIAL


class TestCrashRecovery:
    def test_acceptance_sigkill_restart_zero_resimulation(self, tmp_path):
        """The ISSUE acceptance contract, in-process: kill a daemon with
        one job completed and two still queued; the restart completes
        everything, and a second restart re-simulates nothing at all."""
        config = _config(tmp_path)
        first = SimulationService(config)
        done_job, _ = first.submit(PAYLOAD)
        first.run_job(first.queue.get(timeout=1.0))
        assert done_job.state is JobState.DONE
        queued_a, _ = first.submit({**PAYLOAD, "size_mb": 0.125})
        queued_b, _ = first.submit({**PAYLOAD, "size_mb": 0.25,
                                    "priority": 5})
        # Simulated SIGKILL: no drain, no journal close, lock left behind
        # (the restart reclaims it because the "owner" shows as our own
        # dead... er, same-pid process; the cross-process liveness path
        # is covered in tests/parallel/test_supervisor.py).
        first.executor.close()

        second = SimulationService(_config(tmp_path))
        try:
            assert second.replayed_done == 1
            assert second.resumed_jobs == 2
            replayed = second.store.get(done_job.job_id)
            assert replayed.state is JobState.DONE
            assert replayed.from_journal
            assert replayed.result == done_job.result  # bit-identical
            assert second.executor.simulations_run == 0
            # Priority survives the journal: the resumed high-priority
            # job drains first.
            assert [j.job_id for j in second.queue.snapshot()] == \
                [queued_b.job_id, queued_a.job_id]
            _drain_all(second)
            assert second.executor.simulations_run == 2  # only the unrun
            for job_id in (queued_a.job_id, queued_b.job_id):
                assert second.store.get(job_id).state is JobState.DONE
        finally:
            second.drain()

        # Third life: EVERYTHING replays, zero simulations.
        third = SimulationService(_config(tmp_path))
        try:
            assert third.replayed_done == 3
            assert third.resumed_jobs == 0
            assert third.executor.simulations_run == 0
            assert (third.store.get(queued_b.job_id).result
                    == second.store.get(queued_b.job_id).result)
        finally:
            assert third.drain() == EXIT_OK

    def test_resumed_jobs_bypass_a_smaller_restart_limit(self, tmp_path):
        first = SimulationService(_config(tmp_path, queue_limit=8))
        for i in range(4):
            first.submit({**PAYLOAD, "size_mb": 0.0625 * (i + 1)})
        first.executor.close()  # simulated kill

        second = SimulationService(_config(tmp_path, queue_limit=2))
        try:
            assert second.resumed_jobs == 4  # force=True admitted all
            assert len(second.queue) == 4
        finally:
            second.drain()

    def test_quarantined_outcome_replays_without_rerun(self, tmp_path):
        policy = SupervisionPolicy(point_event_budget=50, max_retries=0)
        first = SimulationService(_config(tmp_path, policy=policy))
        poison, _ = first.submit(PAYLOAD)
        _drain_all(first)
        assert poison.state is JobState.QUARANTINED
        first.drain()

        second = SimulationService(_config(tmp_path, policy=policy))
        try:
            replayed = second.store.get(poison.job_id)
            assert replayed.state is JobState.QUARANTINED
            assert replayed.failure_class == "event-budget"
            assert second.executor.simulations_run == 0
        finally:
            second.drain()


class _Client:
    """Tiny urllib client against a bound ServiceDaemon."""

    def __init__(self, address):
        host, port = address
        self.base = f"http://{host}:{port}"

    def get(self, path):
        try:
            with urllib.request.urlopen(f"{self.base}{path}") as r:
                return r.status, json.loads(r.read())
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read())

    def post(self, path, body, raw=False):
        data = body if raw else json.dumps(body).encode()
        req = urllib.request.Request(f"{self.base}{path}", data=data)
        try:
            with urllib.request.urlopen(req) as r:
                return r.status, json.loads(r.read()), r.headers
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read()), e.headers


@pytest.fixture()
def daemon(tmp_path):
    d = ServiceDaemon(_config(tmp_path))
    d.start()
    yield d
    d.stop()


class TestHTTP:
    def test_health_and_readiness(self, daemon):
        client = _Client(daemon.address)
        assert client.get("/healthz") == (200, {"status": "ok"})
        status, body = client.get("/readyz")
        assert status == 200 and body["status"] == "ready"
        assert body["queue"]["limit"] == 8

    def test_malformed_json_is_400(self, daemon):
        status, body, _ = _Client(daemon.address).post(
            "/v1/jobs", b"{not json", raw=True)
        assert status == 400
        assert body["error"] == "invalid-json"

    def test_invalid_payload_is_structured_400(self, daemon):
        status, body, _ = _Client(daemon.address).post(
            "/v1/jobs", {"op": "bogus", "size_mb": -1})
        assert status == 400
        assert body["error"] == "invalid-payload"
        assert {e["field"] for e in body["errors"]} >= {"op", "size_mb"}

    def test_unknown_routes_are_404(self, daemon):
        client = _Client(daemon.address)
        assert client.get("/nope")[0] == 404
        assert client.get("/v1/jobs/job-999999-missing")[0] == 404
        assert client.post("/v1/nope", {})[0] == 404

    def test_submit_poll_complete(self, daemon):
        client = _Client(daemon.address)
        status, body, _ = client.post("/v1/jobs", PAYLOAD)
        assert status == 202
        job_id = body["job_id"]
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            status, job = client.get(f"/v1/jobs/{job_id}")
            if job["state"] in ("done", "quarantined"):
                break
            time.sleep(0.05)
        assert job["state"] == "done"
        assert job["result"]["duration_cycles"] > 0
        status, listing = client.get("/v1/jobs")
        assert [j["job_id"] for j in listing["jobs"]] == [job_id]

    def test_progress_stream_ends_with_terminal_state(self, daemon):
        client = _Client(daemon.address)
        _, body, _ = client.post("/v1/jobs", PAYLOAD)
        url = f"{client.base}/v1/jobs/{body['job_id']}/progress"
        lines = []
        with urllib.request.urlopen(url, timeout=DEADLINE_S) as response:
            for raw in response:
                lines.append(json.loads(raw))
                if lines[-1]["state"] in ("done", "quarantined"):
                    break
        assert lines[-1]["state"] == "done"
        assert lines[-1]["result"]["duration_cycles"] > 0

    def test_duplicate_submit_reports_deduplicated(self, tmp_path):
        # No worker: the first job stays in-flight while we resubmit.
        daemon = ServiceDaemon(_config(tmp_path))
        import threading

        thread = threading.Thread(target=daemon.httpd.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            client = _Client(daemon.address)
            _, first, _ = client.post("/v1/jobs", PAYLOAD)
            _, second, _ = client.post("/v1/jobs", PAYLOAD)
            assert not first["deduplicated"]
            assert second["deduplicated"]
            assert second["job_id"] == first["job_id"]
        finally:
            daemon.httpd.shutdown()
            daemon.httpd.server_close()
            daemon.service.drain()

    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        daemon = ServiceDaemon(_config(tmp_path, queue_limit=1,
                                       retry_after_s=3.0))
        import threading

        thread = threading.Thread(target=daemon.httpd.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            client = _Client(daemon.address)
            status, _, _ = client.post("/v1/jobs", PAYLOAD)
            assert status == 202
            status, body, headers = client.post(
                "/v1/jobs", {**PAYLOAD, "size_mb": 0.125})
            assert status == 429
            assert body["error"] == "queue-full"
            assert headers["Retry-After"] == "3"
            # Health stays green under backpressure.
            assert client.get("/healthz")[0] == 200
        finally:
            daemon.httpd.shutdown()
            daemon.httpd.server_close()
            daemon.service.drain()

    def test_quarantined_job_response_inlines_bundle(self, tmp_path):
        policy = SupervisionPolicy(point_event_budget=50, max_retries=0)
        daemon = ServiceDaemon(_config(tmp_path, policy=policy))
        daemon.start()
        try:
            client = _Client(daemon.address)
            _, body, _ = client.post("/v1/jobs", PAYLOAD)
            deadline = time.monotonic() + DEADLINE_S
            while time.monotonic() < deadline:
                status, job = client.get(f"/v1/jobs/{body['job_id']}")
                if job["state"] in ("done", "quarantined"):
                    break
                time.sleep(0.05)
            assert job["state"] == "quarantined"
            assert job["failure_class"] == "event-budget"
            # The client gets the diagnostic bundle itself, not just a
            # server-local path it cannot open.
            assert job["bundle"]["kind"] == "poison-point"
        finally:
            daemon.stop()

    def test_graceful_stop_drains_queued_jobs(self, tmp_path):
        daemon = ServiceDaemon(_config(tmp_path))
        daemon.start()
        client = _Client(daemon.address)
        _, body, _ = client.post("/v1/jobs", PAYLOAD)
        code = daemon.stop()  # SIGTERM path: drain, then unbind
        assert code == EXIT_OK
        job = daemon.service.store.get(body["job_id"])
        assert job.state is JobState.DONE
