"""BoundedJobQueue: priority order, backpressure, drain semantics."""

import threading

import pytest

from repro.errors import ConfigError
from repro.service.queue import (
    BoundedJobQueue,
    QueueClosedError,
    QueueFullError,
)


class TestOrdering:
    def test_higher_priority_first(self):
        q = BoundedJobQueue(limit=8)
        q.put("low", priority=0)
        q.put("high", priority=9)
        q.put("mid", priority=5)
        assert [q.get(), q.get(), q.get()] == ["high", "mid", "low"]

    def test_fifo_within_priority_band(self):
        """Equal-priority jobs drain in admission order — deterministic
        SIGTERM drain and no starvation inside a band."""
        q = BoundedJobQueue(limit=8)
        for name in ("a", "b", "c"):
            q.put(name, priority=3)
        assert [q.get(), q.get(), q.get()] == ["a", "b", "c"]

    def test_snapshot_shows_drain_order(self):
        q = BoundedJobQueue(limit=8)
        q.put("low", priority=0)
        q.put("high", priority=7)
        assert q.snapshot() == ["high", "low"]
        assert len(q) == 2


class TestBackpressure:
    def test_full_queue_raises_not_blocks(self):
        q = BoundedJobQueue(limit=2, retry_after_s=2.5)
        q.put("a")
        q.put("b")
        with pytest.raises(QueueFullError) as excinfo:
            q.put("c")
        assert excinfo.value.limit == 2
        assert excinfo.value.retry_after_s == 2.5
        assert len(q) == 2  # rejected job was not admitted

    def test_force_bypasses_capacity_for_journal_resume(self):
        q = BoundedJobQueue(limit=1)
        q.put("a")
        q.put("resumed", force=True)  # re-admitted from a previous life
        assert len(q) == 2

    def test_force_never_bypasses_closed(self):
        q = BoundedJobQueue(limit=4)
        q.close()
        with pytest.raises(QueueClosedError):
            q.put("x", force=True)

    def test_capacity_frees_as_jobs_drain(self):
        q = BoundedJobQueue(limit=1)
        q.put("a")
        with pytest.raises(QueueFullError):
            q.put("b")
        assert q.get() == "a"
        q.put("b")  # slot is free again

    @pytest.mark.parametrize("kwargs", [
        {"limit": 0}, {"limit": -1},
        {"limit": 4, "retry_after_s": 0.0},
        {"limit": 4, "retry_after_s": -1.0},
    ])
    def test_bad_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            BoundedJobQueue(**kwargs)


class TestDrain:
    def test_close_refuses_admissions_but_drains_queued(self):
        q = BoundedJobQueue(limit=4)
        q.put("a")
        q.put("b")
        q.close()
        with pytest.raises(QueueClosedError):
            q.put("c")
        assert q.get() == "a"
        assert q.get() == "b"
        assert q.get() is None  # closed and empty: drain complete

    def test_get_timeout_returns_none(self):
        q = BoundedJobQueue(limit=4)
        assert q.get(timeout=0.01) is None

    def test_close_wakes_blocked_getter(self):
        q = BoundedJobQueue(limit=4)
        results = []

        def getter():
            results.append(q.get(timeout=10.0))

        thread = threading.Thread(target=getter)
        thread.start()
        q.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results == [None]

    def test_producer_consumer_threads(self):
        """Concurrent producers and one consumer: every admitted job is
        delivered exactly once."""
        q = BoundedJobQueue(limit=1000)
        produced = 200
        seen = []

        def producer(base):
            for i in range(produced // 2):
                q.put((base, i), priority=i % 3)

        def consumer():
            while len(seen) < produced:
                item = q.get(timeout=5.0)
                assert item is not None
                seen.append(item)

        threads = [threading.Thread(target=producer, args=(b,))
                   for b in ("x", "y")] + [threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert len(seen) == produced
        assert len(set(seen)) == produced
