"""SimulationPayload: the strict admission schema of astra-repro serve.

Every way a client can get a payload wrong must surface as a structured
PayloadError listing ALL the problems at once (not just the first), and
a valid payload must round-trip canonically and key identically to the
CLI platform it mirrors.
"""

import pytest

from repro.collectives.types import CollectiveOp
from repro.config.parameters import (
    CollectiveAlgorithm,
    SchedulingPolicy,
    TopologyKind,
)
from repro.config.units import MB
from repro.errors import ConfigError
from repro.parallel import collective_cache_key
from repro.service.schema import (
    MAX_PRIORITY,
    MAX_SIZE_MB,
    PAYLOAD_VERSION,
    PayloadError,
    build_payload_platform,
    lint_payload,
    parse_payload,
)

GOOD = {"op": "allreduce", "size_mb": 0.0625}


class TestValidPayloads:
    def test_minimal_payload_gets_cli_defaults(self):
        payload = parse_payload(GOOD)
        assert payload.op is CollectiveOp.ALL_REDUCE
        assert payload.size_bytes == 0.0625 * MB
        assert payload.topology is TopologyKind.TORUS
        assert payload.shape == (2, 4, 4)
        assert payload.algorithm is CollectiveAlgorithm.BASELINE
        assert payload.scheduling_policy is SchedulingPolicy.LIFO
        assert payload.priority == 0

    def test_canonical_round_trips(self):
        payload = parse_payload({**GOOD, "algorithm": "enhanced",
                                 "shape": "2x2x2", "priority": 3})
        again = parse_payload(payload.canonical())
        assert again == payload
        assert again.canonical() == payload.canonical()
        assert again.canonical()["schema"] == PAYLOAD_VERSION

    def test_shape_accepts_string_and_list(self):
        assert parse_payload({**GOOD, "shape": "2x2x2"}).shape == (2, 2, 2)
        assert parse_payload({**GOOD, "shape": [2, 2, 2]}).shape == (2, 2, 2)

    def test_alltoall_payload(self):
        payload = parse_payload({"op": "alltoall", "size_mb": 0.0625,
                                 "topology": "AllToAll", "shape": "2x4"})
        assert payload.platform_spec().name.startswith("alltoall")

    def test_content_key_matches_cache_key_of_spec(self):
        """The dedup/journal key IS the RunCache key of the built spec —
        one identity from admission to cache to journal."""
        payload = parse_payload(GOOD)
        expected = collective_cache_key(payload.platform_spec(), payload.op,
                                        payload.size_bytes)
        assert payload.content_key() == expected

    def test_priority_not_in_content_key(self):
        """Priority is queueing metadata, not simulation input: two
        payloads differing only in priority must coalesce."""
        low = parse_payload({**GOOD, "priority": 0})
        high = parse_payload({**GOOD, "priority": 9})
        assert low.content_key() == high.content_key()

    def test_builder_is_picklable_and_rebuilds(self):
        import pickle

        payload = parse_payload(GOOD)
        canonical = payload.canonical()
        rebuilt = pickle.loads(pickle.dumps(
            (build_payload_platform, canonical)))
        spec = rebuilt[0](rebuilt[1])
        assert spec.name == payload.platform_spec().name


class TestRejection:
    def test_non_object_rejected(self):
        with pytest.raises(PayloadError):
            parse_payload(["not", "an", "object"])

    def test_missing_required_fields_all_reported(self):
        with pytest.raises(PayloadError) as excinfo:
            parse_payload({})
        fields = {e["field"] for e in excinfo.value.errors}
        assert {"op", "size_mb"} <= fields

    def test_unknown_key_rejected_with_typo_hint(self):
        with pytest.raises(PayloadError) as excinfo:
            parse_payload({**GOOD, "algoritm": "enhanced"})
        err = next(e for e in excinfo.value.errors
                   if e["field"] == "algoritm")
        assert err["code"] == "unknown-parameter"
        assert "algorithm" in err["message"]

    def test_all_errors_collected_not_just_first(self):
        with pytest.raises(PayloadError) as excinfo:
            parse_payload({"op": "bogus", "size_mb": -1, "priority": 99,
                           "compute_scale": 0})
        fields = {e["field"] for e in excinfo.value.errors}
        assert {"op", "size_mb", "priority", "compute_scale"} <= fields

    @pytest.mark.parametrize("field,value", [
        ("op", "nope"),
        ("topology", "Ring"),
        ("algorithm", "quantum"),
        ("scheduling_policy", "RANDOM"),
    ])
    def test_bad_enums_rejected(self, field, value):
        with pytest.raises(PayloadError) as excinfo:
            parse_payload({**GOOD, field: value})
        assert any(e["field"] == field and e["code"] == "bad-enum-value"
                   for e in excinfo.value.errors)

    @pytest.mark.parametrize("field,value", [
        ("size_mb", 0), ("size_mb", -4), ("size_mb", MAX_SIZE_MB * 2),
        ("size_mb", "eight"), ("size_mb", True),
        ("priority", -1), ("priority", MAX_PRIORITY + 1), ("priority", 1.5),
        ("local_rings", 0), ("preferred_set_splits", 0),
        ("compute_scale", -1.0), ("symmetric", "yes"),
        ("shape", "axbxc"), ("shape", "2x4"), ("shape", [0, 2, 2]),
        ("schema", PAYLOAD_VERSION + 1),
    ])
    def test_out_of_range_values_rejected(self, field, value):
        with pytest.raises(PayloadError) as excinfo:
            parse_payload({**GOOD, field: value})
        assert any(e["field"] == field for e in excinfo.value.errors)

    def test_torus_shape_arity_checked_against_topology(self):
        with pytest.raises(PayloadError):
            parse_payload({**GOOD, "topology": "AllToAll", "shape": "2x2x2"})

    def test_error_payload_is_structured(self):
        with pytest.raises(PayloadError) as excinfo:
            parse_payload({"op": "nope"})
        body = excinfo.value.to_dict()
        assert body["error"] == "invalid-payload"
        assert all({"field", "code", "message"} <= set(e)
                   for e in body["errors"])

    def test_payload_error_is_config_error(self):
        """Service rejections sit on the exit-code-2 class hierarchy."""
        assert issubclass(PayloadError, ConfigError)


class TestStaticLintRouting:
    def test_cross_parameter_lint_runs_at_admission(self):
        """A schema-valid payload whose built platform fails the static
        lint (flit/packet misalignment style errors) is still a 400."""
        findings = lint_payload({**GOOD, "shape": "2x2x2"}, source="t")
        assert findings == []  # a good payload lints clean

    def test_lint_run_spec_routes_payload_documents(self):
        from repro.sanitize.static_lint import lint_run_spec

        report = lint_run_spec({"op": "bogus", "size_mb": 1.0},
                               source="payload.json")
        assert report.findings
        assert any(f.param == "op" for f in report.findings)
        clean = lint_run_spec(dict(GOOD), source="payload.json")
        assert clean.findings == []

    def test_lint_cli_accepts_payload_file(self, tmp_path):
        import json

        from repro.cli import main

        good = tmp_path / "payload.json"
        good.write_text(json.dumps(GOOD))
        assert main(["lint", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"op": "bogus", "size_mb": -1}))
        assert main(["lint", str(bad)]) == 1
