"""Tests for the `astra-repro search` subcommand."""

import json

from repro.cli import build_arg_parser, main

EXAMPLE = "examples/configs/search_fig09.json"


def small_space(tmp_path, **overrides):
    """A fast 4-NPU space file for CLI runs."""
    data = {
        "name": "cli-unit",
        "num_npus": 4,
        "collective": "allreduce",
        "size_bytes": 65536,
        "axes": {
            "topology": ["Torus", "AllToAll"],
            "torus_shape": ["1x4x1", "2x2x1"],
            "alltoall_shape": ["1x4", "2x2"],
            "algorithm": ["baseline", "enhanced"],
            "scheduling_policy": ["LIFO"],
            "chunks": [1, 4],
            "local_rings": [1, 2],
            "horizontal_rings": [1],
            "vertical_rings": [1],
            "global_switches": [1, 2],
            "symmetric": [False],
        },
    }
    data.update(overrides)
    path = tmp_path / "space.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestArguments:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["search", "--space", EXAMPLE])
        assert args.objective == "time"
        assert args.strategy == "evolutionary"
        assert args.budget == 32
        assert args.seed == 2020

    def test_lambda_flag(self):
        args = build_arg_parser().parse_args(
            ["search", "--space", EXAMPLE, "--lambda", "12"])
        assert args.lam == 12


class TestSearchCommand:
    def test_basic_run(self, tmp_path, capsys):
        code = main(["search", "--space", small_space(tmp_path),
                     "--budget", "6", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "evaluated 6 unique points (6 simulated, budget 6)" in out
        assert "rank" in out
        assert "seed: 5" in out

    def test_missing_space_file(self, tmp_path, capsys):
        code = main(["search", "--space", str(tmp_path / "nope.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_space_is_config_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"num_npus": 8, "axes": {"chunks": []}}))
        code = main(["search", "--space", str(path)])
        assert code == 2

    def test_jobs_values_give_identical_output(self, tmp_path, capsys):
        space = small_space(tmp_path)
        assert main(["search", "--space", space, "--budget", "8",
                     "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["search", "--space", space, "--budget", "8",
                     "--jobs", "3"]) == 0
        fanned = capsys.readouterr().out
        assert serial == fanned

    def test_out_writes_ranked_frontier_json(self, tmp_path, capsys):
        out_path = tmp_path / "frontier.json"
        code = main(["search", "--space", small_space(tmp_path),
                     "--budget", "5", "--out", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["evaluations"] == 5
        scores = [row["score"] for row in payload["frontier"]]
        assert scores == sorted(scores)
        assert {"genome", "label", "duration_cycles", "score",
                "floor_cycles", "dollars"} <= set(payload["frontier"][0])

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path, capsys):
        space = small_space(tmp_path)
        cache = str(tmp_path / "cache")
        argv = ["--cache-dir", cache, "search", "--space", space,
                "--budget", "6"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "(6 simulated" in cold
        assert "6 stored" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "(0 simulated" in warm
        assert "6 hits" in warm
        assert "0 stored" in warm
        # The ranked tables (between the accounting line and the cache
        # summary) match bit for bit.
        assert cold.splitlines()[3:-1] == warm.splitlines()[3:-1]
        assert warm.splitlines()[3:-1]

    def test_trajectory_and_resume(self, tmp_path, capsys):
        space = small_space(tmp_path)
        log = str(tmp_path / "traj.jsonl")
        assert main(["search", "--space", space, "--budget", "6",
                     "--trajectory", log]) == 0
        capsys.readouterr()
        assert main(["search", "--space", space, "--budget", "4",
                     "--trajectory", log, "--resume"]) == 0
        out = capsys.readouterr().out
        # 4 new evaluations; the frontier folds in the 6 resumed points.
        assert "evaluated 4 unique points (4 simulated, budget 4)" in out
        with open(log) as f:
            records = [json.loads(line) for line in f if line.strip()]
        assert len(records) == 1 + 6 + 4

    def test_objective_and_strategy_flags(self, tmp_path, capsys):
        code = main(["search", "--space", small_space(tmp_path),
                     "--budget", "4", "--objective", "cost",
                     "--strategy", "random", "--generation-size", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "objective: cost" in out
        assert "strategy: random" in out

    def test_top_limits_table(self, tmp_path, capsys):
        code = main(["search", "--space", small_space(tmp_path),
                     "--budget", "6", "--top", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "... and 4 more points" in out
