"""Tests for the search loop: budget accounting, --jobs determinism,
warm-cache reruns, trajectory resume, and the fig09 acceptance bar."""

import json

import pytest

from repro.errors import ConfigError
from repro.parallel import ParallelExecutor, RunCache
from repro.search import (
    SearchSpace,
    load_trajectory,
    make_objective,
    make_strategy,
    rank_frontier,
    run_search,
)

SPEC = {
    "name": "driver-unit",
    "num_npus": 4,
    "collective": "allreduce",
    "size_bytes": 65536,
    "axes": {
        "topology": ["Torus", "AllToAll"],
        "torus_shape": ["1x4x1", "2x2x1"],
        "alltoall_shape": ["1x4", "2x2"],
        "algorithm": ["baseline", "enhanced"],
        "scheduling_policy": ["LIFO"],
        "chunks": [1, 4],
        "local_rings": [1, 2],
        "horizontal_rings": [1, 2],
        "vertical_rings": [1],
        "global_switches": [1, 2],
        "symmetric": [False],
    },
}


def fingerprint(trajectory):
    return [(e.genome, e.label, e.duration_cycles, e.score) for e in trajectory]


def search(seed=2020, budget=8, strategy="random", jobs=1, cache=None,
           spec=SPEC, objective="time", **kwargs):
    space = SearchSpace.from_dict(spec)
    obj = make_objective(objective, space.cost_table, space.size_bytes)
    strat = make_strategy(strategy, space, seed)
    ex = ParallelExecutor(jobs=jobs, cache=cache)
    trajectory = run_search(space, obj, strat, budget=budget, executor=ex,
                            **kwargs)
    return trajectory, ex


class TestBudgetAndDedup:
    def test_budget_bounds_unique_evaluations(self):
        trajectory, ex = search(budget=5)
        assert len(trajectory) == 5
        assert len({e.genome for e in trajectory}) == 5
        assert ex.simulations_run == 5

    def test_small_space_exhausts_before_budget(self):
        spec = dict(SPEC, axes={
            "topology": ["Torus"], "torus_shape": ["2x2x1"],
            "alltoall_shape": ["2x2"], "scheduling_policy": ["LIFO"],
            "chunks": [1, 4], "local_rings": [1], "horizontal_rings": [1],
            "vertical_rings": [1], "global_switches": [1],
            "algorithm": ["baseline"], "symmetric": [False]})
        space = SearchSpace.from_dict(spec)
        unique = len(space.enumerate_genomes())
        trajectory, ex = search(budget=50, spec=spec)
        assert len(trajectory) == unique
        assert ex.simulations_run == unique

    def test_bad_budget(self):
        with pytest.raises(ConfigError, match="budget"):
            search(budget=0)

    def test_scores_are_simulated_cycles_for_time_objective(self):
        trajectory, _ = search(budget=4)
        for evaluation in trajectory:
            assert evaluation.score == evaluation.duration_cycles
            assert evaluation.duration_cycles >= evaluation.floor_cycles
            assert evaluation.dollars > 0


class TestJobsDeterminism:
    @pytest.mark.parametrize("strategy", ["random", "evolutionary"])
    def test_bit_identical_across_jobs(self, strategy):
        serial, _ = search(strategy=strategy, jobs=1, budget=10)
        fanned, _ = search(strategy=strategy, jobs=3, budget=10)
        assert fingerprint(serial) == fingerprint(fanned)

    def test_ranked_frontier_is_stable(self):
        a, _ = search(jobs=1, budget=10)
        b, _ = search(jobs=2, budget=10)
        assert fingerprint(rank_frontier(a)) == fingerprint(rank_frontier(b))


class TestWarmCache:
    @pytest.mark.parametrize("strategy", ["random", "evolutionary"])
    def test_rerun_performs_zero_simulations(self, tmp_path, strategy):
        cold, cold_ex = search(strategy=strategy, budget=8,
                               cache=RunCache(str(tmp_path)))
        warm, warm_ex = search(strategy=strategy, budget=8,
                               cache=RunCache(str(tmp_path)))
        assert cold_ex.simulations_run == 8
        assert warm_ex.simulations_run == 0
        assert warm_ex.cache.stats.hits == 8
        assert fingerprint(cold) == fingerprint(warm)


class TestTrajectoryLog:
    def test_log_replays_into_memo(self, tmp_path):
        path = str(tmp_path / "traj.jsonl")
        trajectory, _ = search(budget=6, trajectory_path=path)
        space = SearchSpace.from_dict(SPEC)
        objective = make_objective("time", space.cost_table, space.size_bytes)
        memo = load_trajectory(path, space, objective)
        assert len(memo) == 6
        assert fingerprint(memo.values()) == fingerprint(trajectory)

    def test_header_guards_against_space_mismatch(self, tmp_path):
        path = str(tmp_path / "traj.jsonl")
        search(budget=2, trajectory_path=path)
        other = SearchSpace.from_dict(dict(SPEC, size_bytes=1024))
        objective = make_objective("time", other.cost_table, other.size_bytes)
        with pytest.raises(ConfigError, match="different space"):
            load_trajectory(path, other, objective)

    def test_resume_skips_prior_points(self, tmp_path):
        path = str(tmp_path / "traj.jsonl")
        first, first_ex = search(budget=6, trajectory_path=path)
        assert first_ex.simulations_run == 6
        # Same seed resumes by replaying the proposal stream: the first 6
        # unique proposals are served from the preloaded memo, so only
        # genuinely new points are simulated.
        second, second_ex = search(budget=4, trajectory_path=path,
                                   resume=True)
        assert second_ex.simulations_run == len(second) == 4
        assert not {e.genome for e in second} & {e.genome for e in first}
        # The log now carries all evaluations for a future resume.
        space = SearchSpace.from_dict(SPEC)
        objective = make_objective("time", space.cost_table, space.size_bytes)
        assert len(load_trajectory(path, space, objective)) == 10

    def test_resume_requires_path(self):
        with pytest.raises(ConfigError, match="trajectory"):
            search(budget=2, resume=True)

    def test_log_lines_are_json(self, tmp_path):
        path = str(tmp_path / "traj.jsonl")
        search(budget=3, trajectory_path=path)
        with open(path) as f:
            records = [json.loads(line) for line in f]
        assert records[0]["type"] == "header"
        assert len(records) == 4
        assert all("duration_cycles" in r for r in records[1:])


class TestObjectives:
    def test_cost_objective_reranks(self):
        time_traj, _ = search(budget=10, objective="time")
        cost_traj, _ = search(budget=10, objective="cost")
        # Same seed, same strategy: identical visited points, different
        # scores (cost folds in platform dollars).
        assert [e.genome for e in time_traj] == [e.genome for e in cost_traj]
        assert [e.score for e in time_traj] != [e.score for e in cost_traj]

    def test_perf_per_link_dollar_scores_are_negative(self):
        trajectory, _ = search(budget=4, objective="perf-per-link-dollar")
        assert all(e.score < 0 for e in trajectory)


class TestFig09Acceptance:
    """The ISSUE acceptance bar: a seeded search matches the best point
    of the fig09-equivalent space with far fewer evaluations than
    exhaustive enumeration."""

    def test_search_matches_exhaustive_best_with_fewer_evaluations(self):
        spec = json.load(open("examples/configs/search_fig09.json"))
        spec["size_bytes"] = 65536  # keep the tier-1 suite fast
        space = SearchSpace.from_dict(spec)
        objective = make_objective("time", space.cost_table,
                                   space.size_bytes)

        genomes = space.enumerate_genomes()
        import functools

        from repro.parallel import RunPoint
        from repro.search import platform_for_point

        ex = ParallelExecutor(jobs=4)
        points = [space.decode(g) for g in genomes]
        results = ex.run_points([
            RunPoint(builder=functools.partial(platform_for_point, p),
                     op=space.collective, size_bytes=space.size_bytes)
            for p in points])
        exhaustive_best = min(r.duration_cycles for r in results)

        budget = 48
        assert budget < len(genomes)
        strategy = make_strategy("evolutionary", space, seed=2020)
        trajectory = run_search(space, objective, strategy, budget=budget,
                                executor=ParallelExecutor(jobs=4))
        search_best = rank_frontier(trajectory)[0]
        assert search_best.score <= exhaustive_best
