"""Tests for the declarative search space: JSON loading, validation,
genome encode/decode/canonicalization, and feasibility."""

import random

import pytest

from repro.errors import ConfigError
from repro.search import (
    AXIS_NAMES,
    SearchSpace,
    parse_shape_value,
    platform_for_point,
)

SPEC = {
    "name": "unit",
    "num_npus": 8,
    "collective": "allreduce",
    "size_bytes": 65536,
    "axes": {
        "topology": ["Torus", "AllToAll"],
        "torus_shape": ["2x4x1", "1x8x1"],
        "alltoall_shape": ["2x4", "1x8"],
        "algorithm": ["baseline", "enhanced"],
        "scheduling_policy": ["LIFO"],
        "chunks": [1, 4],
        "local_rings": [1, 2],
        "horizontal_rings": [1, 2],
        "vertical_rings": [1],
        "global_switches": [2, 7],
        "symmetric": [False],
    },
}


def space_for(**overrides) -> SearchSpace:
    data = dict(SPEC)
    data.update(overrides)
    return SearchSpace.from_dict(data)


class TestLoading:
    def test_round_trip(self):
        space = space_for()
        assert space.num_npus == 8
        assert space.collective.value == "allreduce"
        assert space.axes["torus_shape"] == ((2, 4, 1), (1, 8, 1))

    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigError, match="unknown search-space keys"):
            space_for(budget=10)

    def test_unknown_axis(self):
        data = dict(SPEC, axes={"topologee": ["Torus"]})
        with pytest.raises(ConfigError, match="unknown axes"):
            SearchSpace.from_dict(data)

    def test_empty_axis(self):
        data = dict(SPEC, axes={"chunks": []})
        with pytest.raises(ConfigError, match="non-empty"):
            SearchSpace.from_dict(data)

    def test_shape_product_must_match_num_npus(self):
        data = dict(SPEC, axes={"torus_shape": ["2x4x4"]})
        with pytest.raises(ConfigError, match="num_npus"):
            SearchSpace.from_dict(data)

    def test_bad_collective(self):
        with pytest.raises(ConfigError, match="unknown collective"):
            space_for(collective="allermost")

    def test_num_npus_required(self):
        with pytest.raises(ConfigError, match="num_npus"):
            SearchSpace.from_dict({"collective": "allreduce"})

    def test_defaults_fill_omitted_axes(self):
        space = SearchSpace.from_dict({"num_npus": 8})
        for axis in AXIS_NAMES:
            assert space.axes[axis], axis

    def test_unknown_cost_key(self):
        with pytest.raises(ConfigError, match="cost-table"):
            space_for(cost={"link_dollars": 1.0})

    def test_unknown_constraint(self):
        with pytest.raises(ConfigError, match="unknown constraints"):
            space_for(constraints={"max_watts": 5})


class TestShapeValues:
    def test_string_and_list_forms_agree(self):
        assert parse_shape_value("2x4x1", 3, 8, "t") == (2, 4, 1)
        assert parse_shape_value([2, 4, 1], 3, 8, "t") == (2, 4, 1)

    def test_wrong_arity(self):
        with pytest.raises(ConfigError, match="3 dimensions"):
            parse_shape_value("2x4", 3, 8, "t")

    def test_garbage(self):
        with pytest.raises(ConfigError, match="bad shape"):
            parse_shape_value("2xbanana", 3, 8, "t")


class TestGenomes:
    def test_decode_torus_point(self):
        space = space_for()
        genome = space.canonical((0,) * len(AXIS_NAMES))
        point = space.decode(genome)
        assert point.topology == "Torus"
        assert point.shape == (2, 4, 1)
        assert point.num_npus == 8
        assert "torus-2x4x1" in point.label

    def test_canonical_zeroes_dead_genes(self):
        space = space_for()
        # Torus genome: the alltoall_shape and global_switches genes are
        # dead, so two genomes differing only there collapse together.
        base = [0] * len(AXIS_NAMES)
        variant = list(base)
        variant[AXIS_NAMES.index("alltoall_shape")] = 1
        variant[AXIS_NAMES.index("global_switches")] = 1
        assert space.canonical(base) == space.canonical(variant)

    def test_canonical_zeroes_size1_dim_rings(self):
        space = space_for()
        genome = [0] * len(AXIS_NAMES)
        genome[AXIS_NAMES.index("torus_shape")] = 1  # 1x8x1
        variant = list(genome)
        variant[AXIS_NAMES.index("local_rings")] = 1  # dead: local dim is 1
        assert space.canonical(genome) == space.canonical(variant)

    def test_canonical_keeps_live_genes(self):
        space = space_for()
        a = [0] * len(AXIS_NAMES)
        b = list(a)
        b[AXIS_NAMES.index("chunks")] = 1
        assert space.canonical(a) != space.canonical(b)

    def test_out_of_range_gene(self):
        space = space_for()
        genome = [0] * len(AXIS_NAMES)
        genome[0] = 99
        with pytest.raises(ConfigError, match="out of range"):
            space.decode(genome)

    def test_enumerate_is_unique_feasible_and_deterministic(self):
        space = space_for()
        genomes = space.enumerate_genomes()
        assert len(genomes) == len(set(genomes))
        assert all(space.is_feasible(g) for g in genomes)
        assert genomes == space.enumerate_genomes()
        assert len(genomes) < space.num_genomes()

    def test_enumerate_guard(self):
        space = space_for()
        with pytest.raises(ConfigError, match="refusing to enumerate"):
            space.enumerate_genomes(limit=3)


class TestFeasibility:
    def test_switches_capped_by_packages(self):
        space = space_for()
        genome = [0] * len(AXIS_NAMES)
        genome[AXIS_NAMES.index("topology")] = 1  # AllToAll
        genome[AXIS_NAMES.index("alltoall_shape")] = 0  # 2x4: 3 peer pkgs
        genome[AXIS_NAMES.index("global_switches")] = 1  # 7 switches
        assert not space.is_feasible(genome)
        genome[AXIS_NAMES.index("alltoall_shape")] = 1  # 1x8: 7 peers, OK
        assert space.is_feasible(genome)

    def test_max_links_per_npu(self):
        tight = space_for(constraints={"max_links_per_npu": 2})
        loose = space_for(constraints={"max_links_per_npu": 64})
        genomes = loose.enumerate_genomes()
        assert len(tight.enumerate_genomes()) < len(genomes)
        for genome in tight.enumerate_genomes():
            counts = tight.decode(genome).link_counts()
            assert counts.total_links <= 2 * tight.num_npus

    def test_max_platform_dollars(self):
        space = space_for(constraints={"max_platform_dollars": 90_000})
        for genome in space.enumerate_genomes():
            point = space.decode(genome)
            assert point.dollars(space.cost_table) <= 90_000

    def test_impossible_constraints_raise_on_sampling(self):
        space = space_for(constraints={"max_platform_dollars": 1})
        with pytest.raises(ConfigError, match="no feasible point"):
            space.random_genome(random.Random(0))


class TestSamplingAndVariation:
    def test_random_genome_is_seeded(self):
        space = space_for()
        a = [space.random_genome(random.Random(9)) for _ in range(10)]
        b = [space.random_genome(random.Random(9)) for _ in range(10)]
        assert a == b
        assert all(space.is_feasible(g) for g in a)

    def test_mutate_changes_and_stays_feasible(self):
        space = space_for()
        rng = random.Random(3)
        genome = space.random_genome(rng)
        mutants = [space.mutate(rng, genome) for _ in range(20)]
        assert all(space.is_feasible(m) for m in mutants)
        assert any(m != genome for m in mutants)

    def test_crossover_mixes_parents(self):
        space = space_for()
        rng = random.Random(4)
        a = space.random_genome(rng)
        b = space.random_genome(rng)
        child = space.crossover(rng, a, b)
        assert space.is_feasible(child)
        assert child == space.canonical(child)


class TestPlatformBuilding:
    def test_torus_platform(self):
        space = space_for()
        point = space.decode(space.canonical((0,) * len(AXIS_NAMES)))
        spec = platform_for_point(point)
        assert spec.name == "torus-2x4x1"
        assert spec.config.system.scheduling_policy.value == "LIFO"

    def test_alltoall_platform_carries_policy_and_switches(self):
        space = SearchSpace.from_dict(dict(
            SPEC,
            axes=dict(SPEC["axes"], topology=["AllToAll"],
                      scheduling_policy=["PRIORITY"], global_switches=[7],
                      alltoall_shape=["1x8"]),
        ))
        point = space.decode(space.canonical((0,) * len(AXIS_NAMES)))
        spec = platform_for_point(point)
        assert spec.name == "alltoall-1x8"
        assert spec.config.system.global_switches == 7
        assert spec.config.system.scheduling_policy.value == "PRIORITY"
