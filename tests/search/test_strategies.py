"""Tests for the seeded strategies: determinism, population dynamics,
and the factory."""

import pytest

from repro.errors import ConfigError
from repro.search import (
    EvolutionaryStrategy,
    RandomStrategy,
    SearchSpace,
    make_strategy,
)

SPEC = {
    "num_npus": 8,
    "collective": "allreduce",
    "size_bytes": 65536,
    "axes": {
        "torus_shape": ["2x4x1", "1x8x1"],
        "alltoall_shape": ["2x4", "1x8"],
        "scheduling_policy": ["LIFO", "FIFO"],
        "chunks": [1, 4, 16],
        "vertical_rings": [1],
        "symmetric": [False],
    },
}


def space():
    return SearchSpace.from_dict(SPEC)


class TestRandomStrategy:
    def test_seeded_determinism(self):
        a = RandomStrategy(space(), seed=11, generation_size=6)
        b = RandomStrategy(space(), seed=11, generation_size=6)
        for _ in range(4):
            assert a.ask() == b.ask()

    def test_different_seeds_diverge(self):
        a = RandomStrategy(space(), seed=1, generation_size=8)
        b = RandomStrategy(space(), seed=2, generation_size=8)
        assert a.ask() != b.ask()

    def test_generation_size(self):
        strat = RandomStrategy(space(), seed=0, generation_size=5)
        assert len(strat.ask()) == 5

    def test_bad_generation_size(self):
        with pytest.raises(ConfigError):
            RandomStrategy(space(), seed=0, generation_size=0)


class TestEvolutionaryStrategy:
    def test_first_generation_is_mu_plus_lambda(self):
        strat = EvolutionaryStrategy(space(), seed=5, mu=3, lam=4)
        assert len(strat.ask()) == 7

    def test_population_truncates_to_mu_best(self):
        strat = EvolutionaryStrategy(space(), seed=5, mu=2, lam=3)
        asked = strat.ask()
        strat.tell([(g, float(i)) for i, g in enumerate(asked)])
        assert len(strat.population) == 2
        assert [score for score, _ in strat.population] == [0.0, 1.0]

    def test_tell_order_does_not_matter(self):
        scored = [(g, float(i % 3))
                  for i, g in enumerate(space().enumerate_genomes()[:6])]
        a = EvolutionaryStrategy(space(), seed=5, mu=4, lam=4)
        b = EvolutionaryStrategy(space(), seed=5, mu=4, lam=4)
        a.ask(), b.ask()
        a.tell(scored)
        b.tell(list(reversed(scored)))
        assert a.population == b.population

    def test_children_are_feasible_canonical(self):
        sp = space()
        strat = EvolutionaryStrategy(sp, seed=5, mu=2, lam=6)
        asked = strat.ask()
        strat.tell([(g, float(i)) for i, g in enumerate(asked)])
        children = strat.ask()
        assert len(children) == 6
        for child in children:
            assert sp.is_feasible(child)
            assert child == sp.canonical(child)

    def test_seeded_determinism_across_generations(self):
        def trajectory(seed):
            strat = EvolutionaryStrategy(space(), seed=seed, mu=2, lam=4)
            out = []
            for _ in range(3):
                asked = strat.ask()
                out.append(asked)
                strat.tell([(g, float(sum(g))) for g in asked])
            return out

        assert trajectory(42) == trajectory(42)
        assert trajectory(42) != trajectory(43)

    def test_keeps_best_score_for_repeated_genome(self):
        strat = EvolutionaryStrategy(space(), seed=5, mu=1, lam=1)
        genome = strat.ask()[0]
        strat.tell([(genome, 9.0)])
        strat.tell([(genome, 4.0)])
        assert strat.population == [(4.0, genome)]
        strat.tell([(genome, 7.0)])
        assert strat.population == [(4.0, genome)]

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            EvolutionaryStrategy(space(), seed=0, mu=0)
        with pytest.raises(ConfigError):
            EvolutionaryStrategy(space(), seed=0, mutation_rate=0.0)


class TestFactory:
    def test_names(self):
        assert make_strategy("random", space(), 1).name == "random"
        assert make_strategy("evolutionary", space(), 1).name == "evolutionary"

    def test_parameters_thread_through(self):
        strat = make_strategy("evolutionary", space(), 1, mu=5, lam=9,
                              mutation_rate=0.5)
        assert (strat.mu, strat.lam, strat.mutation_rate) == (5, 9, 0.5)

    def test_unknown_name(self):
        with pytest.raises(ConfigError, match="unknown strategy"):
            make_strategy("annealing", space(), 1)
