"""Tests for the search-space static lint (`astra-repro lint` on
search-space JSONs and the seeded good/bad fixtures)."""

import json

from repro.cli import main
from repro.sanitize import lint_run_spec, lint_search_space, lint_spec_file

GOOD = "examples/configs/search_fig09.json"
BAD_AXIS = "tests/data/badconfigs/bad_search_space_axis.json"
BAD_BOUNDS = "tests/data/badconfigs/bad_search_space_bounds.json"


def checks_of(findings):
    return {f.code for f in findings}


def good_data():
    with open(GOOD) as f:
        return json.load(f)


class TestLintSearchSpace:
    def test_shipped_example_is_clean(self):
        assert lint_search_space(good_data(), source=GOOD) == []

    def test_unknown_top_level_key(self):
        data = good_data()
        data["budgit"] = 3
        findings = lint_search_space(data)
        assert "unknown-parameter" in checks_of(findings)

    def test_unknown_axis_with_suggestion(self):
        data = good_data()
        data["axes"]["topologee"] = ["Torus"]
        findings = lint_search_space(data)
        assert any(f.code == "unknown-parameter"
                   and "topology" in f.message for f in findings)

    def test_empty_axis(self):
        data = good_data()
        data["axes"]["chunks"] = []
        findings = lint_search_space(data)
        assert "empty-axis" in checks_of(findings)

    def test_out_of_range_bounds(self):
        data = good_data()
        data["size_bytes"] = 0
        data["axes"]["local_rings"] = [0]
        data["constraints"]["max_links_per_npu"] = -1
        params = {f.param for f in lint_search_space(data)}
        assert {"size_bytes", "axes.local_rings",
                "constraints.max_links_per_npu"} <= params

    def test_missing_num_npus(self):
        data = good_data()
        del data["num_npus"]
        findings = lint_search_space(data)
        assert "missing-parameter" in checks_of(findings)

    def test_bad_collective(self):
        data = good_data()
        data["collective"] = "all-of-them"
        findings = lint_search_space(data)
        assert any(f.param == "collective" for f in findings)

    def test_unknown_cost_key(self):
        data = good_data()
        data["cost"]["link_dollars"] = 1.0
        findings = lint_search_space(data)
        assert any(f.param == "cost.link_dollars" for f in findings)

    def test_shape_mismatch_caught_by_construction(self):
        data = good_data()
        data["axes"]["torus_shape"] = ["2x4x4"]
        findings = lint_search_space(data)
        assert "search-space-error" in checks_of(findings)

    def test_not_an_object(self):
        findings = lint_search_space(["axes"])
        assert "malformed-spec" in checks_of(findings)


class TestRouting:
    def test_run_spec_routes_axes_documents(self):
        report = lint_run_spec(good_data(), source=GOOD)
        assert report.ok(strict=True)

    def test_spec_file_routes_fixtures(self):
        assert lint_spec_file(GOOD).ok(strict=True)
        assert not lint_spec_file(BAD_AXIS).ok(strict=False)
        assert not lint_spec_file(BAD_BOUNDS).ok(strict=False)

    def test_ordinary_run_specs_still_lint(self):
        report = lint_spec_file("examples/configs/paper_torus.json")
        assert report.ok(strict=False)


class TestCli:
    def test_good_fixture_strict(self, capsys):
        assert main(["lint", GOOD, "--strict"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_bad_fixtures_fail(self, capsys):
        assert main(["lint", BAD_AXIS]) == 1
        assert main(["lint", BAD_BOUNDS]) == 1
        out = capsys.readouterr().out
        assert "empty-axis" in out
        assert "out-of-range" in out
