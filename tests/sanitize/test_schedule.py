"""Tests for the schedule-perturbation race detector."""

import json

from repro.config.parameters import TorusShape
from repro.harness import fig09, fig12
from repro.harness.runners import torus_platform
from repro.sanitize.findings import Severity
from repro.sanitize.schedule import (
    InjectedRaceProbe,
    ScheduleReport,
    SeededTieBreak,
    payload_diff,
    run_schedule_trials,
    trial_seed,
)


class _CommutativeProbe:
    """Order-insensitive fixture: sums indices (addition commutes)."""

    label = "commutative"

    def run(self, queue, on_system=None):
        acc = []
        for i in range(6):
            queue.schedule_at(10.0, lambda i=i: acc.append(i))
        queue.run()
        return {"total": sum(acc), "final_time": queue.now}


class _RacySystemProbe:
    """Order-sensitive events on a real System, to exercise the
    watchdog-format state bundle (wait_for + diagnostics) in bisection."""

    label = "racy-system"

    def run(self, queue, on_system=None):
        platform = torus_platform(TorusShape(2, 2, 2))
        system = platform.build_system(events=queue)
        if on_system is not None:
            on_system(system)
        acc = []
        for i in range(4):
            queue.schedule_at(5.0, lambda i=i: acc.append(i))
        system.run_until_idle()
        digest = 0
        for i in acc:
            digest = digest * 31 + i
        return {"digest": digest}


class TestSeedDerivation:
    def test_trial_seeds_deterministic_and_distinct(self):
        seeds = [trial_seed(2020, t) for t in range(1, 9)]
        assert seeds == [trial_seed(2020, t) for t in range(1, 9)]
        assert len(set(seeds)) == 8

    def test_tie_break_is_pythonhashseed_free(self):
        """Ranks come from splitmix64, not hash() — fixed values forever."""
        breaker = SeededTieBreak(1)
        assert breaker(0.0, 0) == breaker(123.0, 0)  # time not mixed in
        assert breaker(0.0, 0) != breaker(0.0, 1)


class TestIdenticalOutcome:
    def test_commutative_probe_is_identical(self):
        report = run_schedule_trials(_CommutativeProbe(), trials=4)
        assert report.identical
        assert report.divergence is None
        assert len(report.outcomes) == 5  # baseline + 4 permutations
        fingerprints = {o.fingerprint for o in report.outcomes}
        assert len(fingerprints) == 1
        assert report.to_findings().ok()
        assert "bit-identical" in report.summary()

    def test_report_serializes(self):
        report = run_schedule_trials(_CommutativeProbe(), trials=2)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["identical"] is True
        assert data["divergence"] is None
        assert len(data["outcomes"]) == 3


class TestDivergenceDetection:
    def test_injected_race_is_caught_and_bisected(self):
        report = run_schedule_trials(InjectedRaceProbe(), trials=4)
        assert not report.identical
        div = report.divergence
        assert div is not None
        # The race is at the very first permuted event: FIFO fires seq 0
        # first, the permutation fires some other seq.
        assert div.first_divergence_index == 0
        assert div.baseline_event["seq"] == 0
        assert div.diverging_event["seq"] != 0
        assert div.baseline_event["time"] == div.diverging_event["time"]
        assert div.payload_diff == ["digest"]
        assert "schedule race" in report.summary()

    def test_divergence_stops_trials_early(self):
        report = run_schedule_trials(InjectedRaceProbe(), trials=8)
        assert len(report.outcomes) == 2  # baseline + first diverging trial

    def test_divergent_findings_gate_exit_code(self):
        findings = run_schedule_trials(
            InjectedRaceProbe(), trials=2).to_findings()
        assert not findings.ok()
        assert findings.errors[0].code == "schedule-divergence"
        assert findings.errors[0].severity is Severity.ERROR

    def test_snapshot_state_in_bundle(self):
        report = run_schedule_trials(InjectedRaceProbe(), trials=2)
        state = report.divergence.baseline_state
        assert state["events_processed"] == 0  # stopped before the race
        assert state["diagnostics"]["fired_order"] == []

    def test_system_probe_bundles_watchdog_format(self):
        report = run_schedule_trials(_RacySystemProbe(), trials=4)
        assert not report.identical
        for state in (report.divergence.baseline_state,
                      report.divergence.diverging_state):
            assert "wait-for summary" in state["wait_for"]
            assert "progress_vector" in state["diagnostics"]
        # The bundle is JSON-serializable like a watchdog stall bundle.
        json.dumps(report.to_dict())


class TestHarnessProbes:
    def test_fig09_probe_batch(self):
        labels = [p.label for p in fig09.schedule_probes()]
        assert len(labels) == 4
        assert all(label.startswith("fig09/") for label in labels)

    def test_fig12_probe_batch(self):
        labels = [p.label for p in fig12.schedule_probes()]
        assert len(labels) == 2
        assert all(label.startswith("fig12/") for label in labels)

    def test_smallest_fig12_config_is_schedule_identical(self):
        """A fast end-to-end identity proof on a real collective run (the
        full fig09/fig12 sweep runs in CI via ``analyze --schedule``)."""
        probe = fig12.schedule_probes(
            size_bytes=64 * 1024, shapes=(TorusShape(2, 2, 2),))[0]
        report = run_schedule_trials(probe, trials=2)
        assert report.identical, report.summary()
        assert report.outcomes[0].events_processed > 0
        assert (report.outcomes[0].events_processed
                == report.outcomes[1].events_processed)


class TestPayloadDiff:
    def test_nested_paths(self):
        a = {"x": 1, "rows": [{"q": 1.0}, {"q": 2.0}]}
        b = {"x": 1, "rows": [{"q": 1.0}, {"q": 2.5}]}
        assert payload_diff(a, b) == ["rows[1].q"]

    def test_missing_keys_count_as_diff(self):
        assert payload_diff({"a": 1}, {}) == ["a"]

    def test_equal_payloads(self):
        assert payload_diff({"a": [1, 2]}, {"a": [1, 2]}) == []
