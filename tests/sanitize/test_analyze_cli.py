"""Tests for the ``astra-repro analyze`` subcommand and exit-code contract."""

import json

from repro.cli import build_arg_parser, main


class TestAnalyzeSource:
    def test_shipped_sources_exit_zero(self, capsys):
        assert main(["analyze", "--source"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_dirty_tree_exits_one(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text(
            "import random\nx = random.random()\n")
        assert main(["analyze", "--source", str(tmp_path)]) == 1
        assert "unseeded-random" in capsys.readouterr().out

    def test_warning_only_exits_zero_unless_strict(self, tmp_path, capsys):
        (tmp_path / "warn.py").write_text(
            "def f(xs):\n"
            "    total_cycles = 0.0\n"
            "    for x in xs:\n"
            "        total_cycles += x\n"
            "    return total_cycles\n")
        assert main(["analyze", "--source", str(tmp_path)]) == 0
        assert main(["analyze", "--source", str(tmp_path), "--strict"]) == 1
        capsys.readouterr()

    def test_json_output(self, tmp_path, capsys):
        (tmp_path / "dirty.py").write_text("import time\nt = time.time()\n")
        assert main(["analyze", "--source", str(tmp_path), "--json"]) == 1
        reports = json.loads(capsys.readouterr().out)
        finding = reports[0]["findings"][0]
        assert finding["code"] == "wall-clock"
        assert finding["line"] == 2


class TestAnalyzeSchedule:
    def test_inject_race_exits_one_with_divergence_report(self, capsys):
        assert main(["analyze", "--inject-race"]) == 1
        out = capsys.readouterr().out
        assert "schedule race in injected-race" in out
        assert "diverged from the FIFO baseline at event #0" in out

    def test_report_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "analysis.json"
        assert main(["analyze", "--inject-race", "--report", str(path)]) == 1
        capsys.readouterr()
        payload = json.loads(path.read_text())
        div = payload["schedule"][0]["divergence"]
        assert div["first_divergence_index"] == 0
        assert div["payload_diff"] == ["digest"]
        assert payload["schedule"][0]["identical"] is False

    def test_schedule_flags_parse(self):
        args = build_arg_parser().parse_args(
            ["analyze", "--schedule", "--schedule-trials", "3",
             "--schedule-seed", "99"])
        assert args.schedule_trials == 3
        assert args.schedule_seed == 99


class TestCollectiveCheckSchedule:
    def test_small_run_is_identical(self, capsys):
        code = main(["collective", "--op", "allreduce", "--size-mb", "0.0625",
                     "--shape", "2x2x2", "--check-schedule",
                     "--schedule-trials", "2"])
        assert code == 0
        assert "bit-identical" in capsys.readouterr().out


class TestExitCodeContract:
    def test_documented_in_both_helps(self):
        parser = build_arg_parser()
        # The subparsers action is the one whose choices map command
        # names to parsers (flag actions also carry non-dict choices).
        subparsers = next(a for a in parser._actions
                          if isinstance(getattr(a, "choices", None), dict))
        for command in ("lint", "analyze"):
            text = subparsers.choices[command].format_help()
            assert "exit status:" in text
            assert "2  usage or configuration error" in text

    def test_usage_error_exits_two(self, capsys):
        assert main(["analyze", "--source", "/nonexistent/nowhere"]) == 2
        assert "error" in capsys.readouterr().err
