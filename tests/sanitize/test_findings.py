"""Tests for the findings machinery: severity ordering, sorting, merging."""

import json

import pytest

from repro.sanitize.findings import (
    Finding,
    LintReport,
    Severity,
    merge_reports,
    reports_to_json,
)


def finding(severity=Severity.ERROR, code="c", param="p", message="m",
            source="", line=0):
    return Finding(severity=severity, code=code, param=param,
                   message=message, source=source, line=line)


class TestSeverityOrdering:
    def test_ranks(self):
        assert Severity.ERROR.rank == 0
        assert Severity.WARNING.rank == 1
        assert Severity.INFO.rank == 2

    def test_comparison(self):
        assert Severity.ERROR < Severity.WARNING < Severity.INFO
        assert not Severity.INFO < Severity.ERROR

    def test_sorted_most_severe_first(self):
        shuffled = [Severity.INFO, Severity.ERROR, Severity.WARNING]
        assert sorted(shuffled) == [
            Severity.ERROR, Severity.WARNING, Severity.INFO]

    def test_comparison_with_non_severity_raises(self):
        with pytest.raises(TypeError):
            Severity.ERROR < 3  # noqa: B015 - the comparison is the test


class TestFindingSortKey:
    def test_severity_dominates(self):
        warn = finding(Severity.WARNING, source="a.py", line=1)
        err = finding(Severity.ERROR, source="z.py", line=99)
        assert sorted([warn, err], key=Finding.sort_key) == [err, warn]

    def test_same_severity_sorts_by_source_then_line(self):
        a2 = finding(source="a.py", line=2)
        a1 = finding(source="a.py", line=1)
        b1 = finding(source="b.py", line=1)
        ordered = sorted([b1, a2, a1], key=Finding.sort_key)
        assert ordered == [a1, a2, b1]

    def test_sorted_findings_does_not_mutate(self):
        report = LintReport(source="x")
        report.add(Severity.INFO, "later", "", "m")
        report.add(Severity.ERROR, "first", "", "m")
        ordered = report.sorted_findings()
        assert [f.code for f in ordered] == ["first", "later"]
        assert [f.code for f in report.findings] == ["later", "first"]


class TestFormat:
    def test_param_included_when_present(self):
        text = finding(param="net.bw", source="cfg.json").format()
        assert "net.bw: " in text
        assert text.startswith("cfg.json: error: [c]")

    def test_empty_param_omitted(self):
        text = finding(param="").format()
        assert ": :" not in text
        assert "[c] m" in text

    def test_to_dict_round_trips_line_and_severity(self):
        data = finding(Severity.WARNING, line=17).to_dict()
        assert data["severity"] == "warning"
        assert data["line"] == 17


class TestLintReport:
    def test_ok_and_strict(self):
        report = LintReport(source="x")
        assert report.ok()
        report.add(Severity.WARNING, "w", "", "m")
        assert report.ok()
        assert not report.ok(strict=True)
        report.add(Severity.ERROR, "e", "", "m")
        assert not report.ok()

    def test_reports_to_json_parses(self):
        report = LintReport(source="x")
        report.add(Severity.ERROR, "e", "p", "m", line=3)
        data = json.loads(reports_to_json([report]))
        assert data[0]["errors"] == 1
        assert data[0]["findings"][0]["line"] == 3


class TestMergeReports:
    def _reports(self):
        a = LintReport(source="a.py")
        a.add(Severity.WARNING, "slow", "", "w1", line=5)
        b = LintReport(source="b.py")
        b.add(Severity.ERROR, "bad", "", "e1", line=2)
        return a, b

    def test_merged_keeps_per_finding_source(self):
        a, b = self._reports()
        merged = merge_reports([a, b], source="all")
        assert merged.source == "all"
        assert {f.source for f in merged.findings} == {"a.py", "b.py"}

    def test_merged_order_independent_of_input_order(self):
        a, b = self._reports()
        forward = merge_reports([a, b]).findings
        backward = merge_reports([b, a]).findings
        assert forward == backward
        assert [f.code for f in forward] == ["bad", "slow"]

    def test_merge_empty(self):
        merged = merge_reports([], source="none")
        assert merged.findings == []
        assert merged.ok()
