"""Tests for the AST determinism linter (repro.sanitize.source_lint)."""

import textwrap

from repro.sanitize.findings import Severity
from repro.sanitize.source_lint import (
    RULE_CODES,
    default_source_root,
    iter_python_files,
    lint_source_text,
    lint_source_tree,
)


def lint(code: str, **kwargs):
    return lint_source_text(textwrap.dedent(code), source="snippet.py",
                            **kwargs)


def codes(report):
    return [f.code for f in report.findings]


class TestUnseededRandom:
    def test_module_level_random_flagged(self):
        report = lint("""
            import random
            x = random.random()
        """)
        assert "unseeded-random" in codes(report)

    def test_seeded_instance_ok(self):
        report = lint("""
            import random
            rng = random.Random(42)
            x = rng.random()
        """)
        assert "unseeded-random" not in codes(report)

    def test_unseeded_instance_flagged(self):
        report = lint("""
            import random
            rng = random.Random()
        """)
        assert "unseeded-random" in codes(report)

    def test_numpy_module_level_flagged_through_alias(self):
        report = lint("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert "unseeded-random" in codes(report)

    def test_numpy_seeded_generator_ok(self):
        report = lint("""
            import numpy as np
            rng = np.random.default_rng(7)
        """)
        assert "unseeded-random" not in codes(report)

    def test_numpy_unseeded_generator_flagged(self):
        report = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert "unseeded-random" in codes(report)


class TestWallClock:
    def test_time_time_flagged(self):
        report = lint("""
            import time
            t = time.time()
        """)
        assert "wall-clock" in codes(report)

    def test_perf_counter_flagged(self):
        report = lint("""
            import time
            t = time.perf_counter()
        """)
        assert "wall-clock" in codes(report)

    def test_datetime_now_flagged(self):
        report = lint("""
            import datetime
            t = datetime.datetime.now()
        """)
        assert "wall-clock" in codes(report)


class TestUnorderedIteration:
    def test_for_over_set_flagged(self):
        report = lint("""
            def f(items):
                seen = set(items)
                for item in seen:
                    print(item)
        """)
        assert "unordered-iteration" in codes(report)

    def test_for_over_sorted_set_ok(self):
        report = lint("""
            def f(items):
                seen = set(items)
                for item in sorted(seen):
                    print(item)
        """)
        assert "unordered-iteration" not in codes(report)

    def test_list_of_set_flagged(self):
        report = lint("""
            def f(items):
                seen = {i for i in items}
                return list(seen)
        """)
        assert "unordered-iteration" in codes(report)

    def test_set_in_fstring_flagged(self):
        report = lint("""
            def f(items):
                bad = set(items)
                return f"got {bad}"
        """)
        assert "unordered-iteration" in codes(report)

    def test_list_of_list_ok(self):
        report = lint("""
            def f(items):
                ordered = [i for i in items]
                return list(ordered)
        """)
        assert "unordered-iteration" not in codes(report)


class TestIdOrdering:
    def test_sort_key_id_flagged(self):
        report = lint("""
            def f(items):
                return sorted(items, key=id)
        """)
        assert "id-ordering" in codes(report)

    def test_id_comparison_flagged(self):
        report = lint("""
            def f(a, b):
                return id(a) < id(b)
        """)
        assert "id-ordering" in codes(report)

    def test_plain_sort_ok(self):
        report = lint("""
            def f(items):
                return sorted(items)
        """)
        assert "id-ordering" not in codes(report)


class TestFloatAccumulation:
    def test_cycle_accumulation_in_loop_warned(self):
        report = lint("""
            def f(samples):
                total_cycles = 0.0
                for s in samples:
                    total_cycles += s
                return total_cycles
        """)
        assert "float-accumulation" in codes(report)
        flagged = next(f for f in report.findings
                       if f.code == "float-accumulation")
        assert flagged.severity is Severity.WARNING

    def test_counter_accumulation_ok(self):
        report = lint("""
            def f(samples):
                count = 0
                for _ in samples:
                    count += 1
                return count
        """)
        assert "float-accumulation" not in codes(report)


class TestMutableDefaultArg:
    def test_list_default_flagged(self):
        report = lint("""
            def f(acc=[]):
                return acc
        """)
        assert "mutable-default-arg" in codes(report)

    def test_dict_call_default_flagged(self):
        report = lint("""
            def f(acc=dict()):
                return acc
        """)
        assert "mutable-default-arg" in codes(report)

    def test_tuple_default_ok(self):
        report = lint("""
            def f(acc=()):
                return acc
        """)
        assert "mutable-default-arg" not in codes(report)


class TestSuppressions:
    def test_same_line_suppression(self):
        report = lint("""
            import time
            t = time.time()  # det: allow[wall-clock] host profiling
        """)
        assert codes(report) == []

    def test_line_above_suppression(self):
        report = lint("""
            import time
            # det: allow[wall-clock] host profiling
            t = time.time()
        """)
        assert codes(report) == []

    def test_file_level_suppression(self):
        report = lint("""
            import time  # det: allow-file[wall-clock] measures host time
            a = time.time()
            b = time.perf_counter()
        """)
        assert codes(report) == []

    def test_unused_suppression_warned(self):
        report = lint("""
            x = 1  # det: allow[wall-clock] nothing here needs it
        """)
        assert codes(report) == ["unused-suppression"]

    def test_wrong_code_does_not_suppress(self):
        report = lint("""
            import time
            t = time.time()  # det: allow[unseeded-random] wrong code
        """)
        assert "wall-clock" in codes(report)
        assert "unused-suppression" in codes(report)

    def test_suppression_in_docstring_ignored(self):
        report = lint('''
            def f():
                """Example: x = 1  # det: allow[wall-clock] in docs only."""
                return 1
        ''')
        assert codes(report) == []


class TestEntryPoints:
    def test_syntax_error_reported_as_finding(self):
        report = lint_source_text("def broken(:\n", source="bad.py")
        assert codes(report) == ["syntax-error"]
        assert report.findings[0].severity is Severity.ERROR

    def test_findings_sorted_and_line_anchored(self):
        report = lint("""
            import time
            def f(items):
                t = time.time()
                for i in set(items):
                    pass
        """)
        assert report.findings == sorted(report.findings,
                                         key=lambda f: f.sort_key())
        assert all(f.line > 0 for f in report.findings)
        assert all(f.param == f"L{f.line}" for f in report.findings)

    def test_ignore_filters_rules(self):
        report = lint("""
            import time
            t = time.time()
        """, ignore=("wall-clock",))
        assert codes(report) == []

    def test_tree_lints_every_file_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "__pycache__"
        sub.mkdir()
        (sub / "skip.py").write_text("import time\ntime.time()\n")
        reports = lint_source_tree(str(tmp_path))
        assert [r.source for r in reports] == ["a.py", "b.py"]
        assert codes(reports[1]) == ["wall-clock"]

    def test_iter_python_files_accepts_single_file(self, tmp_path):
        path = tmp_path / "one.py"
        path.write_text("x = 1\n")
        assert iter_python_files(str(path)) == [str(path)]

    def test_rule_codes_are_stable(self):
        assert "unseeded-random" in RULE_CODES
        assert "schedule-divergence" not in RULE_CODES  # dynamic, not AST


class TestShippedTreeIsClean:
    def test_zero_findings_on_shipped_sources(self):
        """The acceptance gate: ``astra-repro analyze --source`` on the
        shipped simulator reports no findings at all (not just no ERRORs;
        justified cases carry ``det: allow`` suppressions in-source)."""
        reports = lint_source_tree(default_source_root())
        flagged = [f.format() for r in reports for f in r.findings]
        assert flagged == []
