"""Tests for the runtime invariant checkers (repro.sanitize.runtime).

Each checker class gets a deliberately injected violation — corrupted
event heap, stolen flit, duplicated delivery, barrier over-arrival,
truncated run — plus clean end-to-end runs on both backends proving the
sanitizer stays silent on healthy simulations.
"""

import heapq

import pytest

from repro.collectives import CollectiveContext, RingAllReduce
from repro.collectives.types import CollectiveOp
from repro.config import LinkConfig, NetworkConfig
from repro.config.parameters import TorusShape
from repro.errors import SanitizerError
from repro.events import CountdownBarrier
from repro.events.engine import _ScheduledEvent
from repro.harness.runners import run_collective, torus_platform
from repro.network import Link, RingChannel
from repro.network.detailed import DetailedBackend
from repro.network.message import Message
from repro.sanitize import RuntimeSanitizer, SanitizerConfig
from repro.system.sys_layer import System
from repro.topology.logical import build_torus_topology

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL,
                    vcs_per_vnet=4, buffers_per_vc=16)


class TestSanitizedEventQueue:
    def test_normal_run_is_clean(self):
        q = RuntimeSanitizer().make_event_queue()
        fired = []
        q.schedule_at(1.0, lambda: fired.append(1))
        q.schedule_at(2.0, lambda: fired.append(2))
        q.run()
        assert fired == [1, 2]

    def test_time_travel_detected(self):
        q = RuntimeSanitizer().make_event_queue()
        q.schedule_at(10.0, lambda: None)
        q.run()
        # Corrupt the heap behind schedule_at's back: an event in the past.
        stale = _ScheduledEvent(time=5.0, tiebreak=0, seq=-1, callback=lambda: None)
        heapq.heappush(q._heap, (stale.time, stale.tiebreak, stale.seq, stale))
        with pytest.raises(SanitizerError, match="time-travel"):
            q.step()

    def test_zero_delay_livelock_detected(self):
        sanitizer = RuntimeSanitizer(SanitizerConfig(livelock_threshold=50))
        q = sanitizer.make_event_queue()

        def respawn():
            q.schedule(0.0, respawn)

        q.schedule_at(1.0, respawn)
        with pytest.raises(SanitizerError, match="livelock"):
            q.run(max_events=10_000)

    def test_time_advance_resets_livelock_counter(self):
        sanitizer = RuntimeSanitizer(SanitizerConfig(livelock_threshold=10))
        q = sanitizer.make_event_queue()
        # 25 same-time bursts of 5 events each: never trips the threshold.
        for burst in range(25):
            for _ in range(5):
                q.schedule_at(float(burst), lambda: None)
        q.run()
        assert q.events_processed == 125

    def test_cancelled_events_skipped(self):
        q = RuntimeSanitizer().make_event_queue()
        fired = []
        handle = q.schedule_at(1.0, lambda: fired.append("no"))
        q.schedule_at(2.0, lambda: fired.append("yes"))
        handle.cancel()
        q.run()
        assert fired == ["yes"]
        assert q.pending == 0

    def test_bad_threshold_rejected(self):
        with pytest.raises(SanitizerError):
            SanitizerConfig(livelock_threshold=0)


class TestConservationChecker:
    def test_balanced_ledgers_are_clean(self):
        sanitizer = RuntimeSanitizer()
        msg = Message(src=0, dst=1, size_bytes=1024.0, tag="t")
        sanitizer.conservation.message_sent(msg)
        sanitizer.conservation.flits_created(msg, 2)
        sanitizer.conservation.flit_delivered(msg)
        sanitizer.conservation.flit_delivered(msg)
        sanitizer.conservation.message_delivered(msg)
        assert sanitizer.quiescence_findings() == []
        sanitizer.verify_quiescent()

    def test_message_leak_detected(self):
        sanitizer = RuntimeSanitizer()
        sanitizer.conservation.message_sent(None)
        findings = sanitizer.quiescence_findings()
        assert [f.code for f in findings] == ["message-leak"]
        with pytest.raises(SanitizerError, match="message-leak"):
            sanitizer.verify_quiescent()

    def test_flit_leak_detected(self):
        sanitizer = RuntimeSanitizer()
        msg = Message(src=0, dst=3, size_bytes=1024.0, tag="leak")
        sanitizer.conservation.flits_created(msg, 4)
        sanitizer.conservation.flit_delivered(msg)
        findings = sanitizer.quiescence_findings()
        assert any(f.code == "flit-leak" and "3 of 4" in f.message
                   for f in findings)

    def test_duplicated_flit_raises_immediately(self):
        sanitizer = RuntimeSanitizer()
        msg = Message(src=0, dst=1, size_bytes=64.0, tag="dup")
        sanitizer.conservation.flits_created(msg, 1)
        sanitizer.conservation.flit_delivered(msg)
        with pytest.raises(SanitizerError, match="flit conservation"):
            sanitizer.conservation.flit_delivered(msg)

    def test_unmatched_credit_release_raises(self):
        sanitizer = RuntimeSanitizer()

        class FakePort:
            link = Link(0, 1, IDEAL)

        with pytest.raises(SanitizerError, match="credit"):
            sanitizer.conservation.on_credit_released(FakePort(), 0)

    def test_stolen_flit_leaks_on_detailed_backend(self):
        """Pop a queued flit mid-run: the sanitizer reports the leak."""
        sanitizer = RuntimeSanitizer()
        events = sanitizer.make_event_queue()
        n = 4
        links = [Link(i, (i + 1) % n, IDEAL) for i in range(n)]
        ring = RingChannel(list(range(n)), links)
        backend = DetailedBackend(events, NET, sanitizer=sanitizer)
        delivered = []
        msg = Message(src=0, dst=2, size_bytes=4096.0, tag="steal")
        backend.send(msg, ring.path(0, 2), delivered.append)

        def steal():
            for port in backend._ports.values():
                for queue in port.queues:
                    if queue:
                        queue.popleft()
                        return

        events.schedule(1.0, steal)
        events.run(max_events=100_000)
        assert not delivered
        codes = {f.code for f in sanitizer.quiescence_findings()}
        assert "flit-leak" in codes
        assert "message-leak" in codes
        with pytest.raises(SanitizerError):
            sanitizer.verify_quiescent()


class TestBarrierChecker:
    def test_over_arrival_raises_sanitizer_error(self):
        sanitizer = RuntimeSanitizer()
        barrier = CountdownBarrier(1, lambda: None, name="b",
                                   sanitizer=sanitizer)
        barrier.arrive()
        with pytest.raises(SanitizerError, match="over-arrival"):
            barrier.arrive()

    def test_under_arrival_reported_at_quiescence(self):
        sanitizer = RuntimeSanitizer()
        CountdownBarrier(3, lambda: None, name="stuck", sanitizer=sanitizer)
        findings = sanitizer.quiescence_findings()
        assert any(f.code == "barrier-under-arrival" and "stuck" in f.message
                   for f in findings)

    def test_completed_barriers_are_clean(self):
        sanitizer = RuntimeSanitizer()
        barrier = CountdownBarrier(2, lambda: None, sanitizer=sanitizer)
        barrier.arrive()
        barrier.arrive()
        assert sanitizer.quiescence_findings() == []
        assert sanitizer.barriers.registered == 1
        assert sanitizer.barriers.fired_count == 1


class TestDrainDeadlock:
    def test_truncated_run_reports_outstanding_collectives(self):
        sanitizer = RuntimeSanitizer()
        platform = torus_platform(TorusShape(2, 2, 2))
        topology = build_torus_topology(
            TorusShape(2, 2, 2), platform.config.network,
            platform.config.system)
        system = System(topology, platform.config, sanitizer=sanitizer)
        system.request_collective(CollectiveOp.ALL_REDUCE, 64 * 1024,
                                  name="stalled")
        for _ in range(10):
            system.events.step()
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.verify_quiescent(system)
        text = str(excinfo.value)
        assert "drain-deadlock" in text
        assert "wait-for summary" in text
        assert "stalled" in text


class TestCleanEndToEnd:
    def test_fast_backend_full_run_clean(self):
        platform = torus_platform(TorusShape(2, 2, 2))
        result = run_collective(platform, CollectiveOp.ALL_REDUCE,
                                256 * 1024, sanitize=True)
        assert result.duration_cycles > 0

    def test_fast_backend_alltoall_platform_clean(self):
        from repro.config.parameters import AllToAllShape
        from repro.harness.runners import alltoall_platform

        platform = alltoall_platform(AllToAllShape(2, 4))
        result = run_collective(platform, CollectiveOp.ALL_TO_ALL,
                                128 * 1024, sanitize=True)
        assert result.duration_cycles > 0

    def test_detailed_backend_full_run_clean(self):
        sanitizer = RuntimeSanitizer()
        events = sanitizer.make_event_queue()
        n = 4
        links = [Link(i, (i + 1) % n, IDEAL) for i in range(n)]
        ring = RingChannel(list(range(n)), links)
        backend = DetailedBackend(events, NET, sanitizer=sanitizer)
        ctx = CollectiveContext(backend, reduction_cycles_per_kb=0.0)
        algo = RingAllReduce(ctx, ring, 16 * 1024)
        algo.start_all()
        events.run(max_events=5_000_000)
        assert algo.done
        assert sanitizer.quiescence_findings() == []
        sanitizer.verify_quiescent()

    def test_training_run_clean(self):
        from repro.harness.runners import run_training
        from repro.models import mlp

        platform = torus_platform(TorusShape(2, 2, 1))
        model = mlp(compute=platform.config.compute)
        report, system = run_training(model, platform, num_iterations=1,
                                      sanitize=True)
        assert report.total_cycles > 0
        assert system.sanitizer is not None

    def test_disabled_sanitizer_leaves_no_trace(self):
        platform = torus_platform(TorusShape(2, 2, 1))
        system = platform.build_system()
        assert system.sanitizer is None
        assert type(system.events).__name__ == "EventQueue"
        assert system.backend.sanitizer is None
