"""Tests for the static lint pass (repro.sanitize.static_lint)."""

import dataclasses

import pytest

from repro.config.io import config_to_dict
from repro.config.parameters import (
    AllToAllShape,
    NetworkConfig,
    TopologyKind,
    TorusShape,
)
from repro.config.presets import paper_simulation_config
from repro.sanitize import (
    Severity,
    lint_config,
    lint_presets,
    lint_run_spec,
    lint_topology,
)
from repro.sanitize.findings import Finding, LintReport, reports_to_json
from repro.sanitize.static_lint import (
    lint_config_dict,
    lint_faults,
    lint_supervision,
)


def codes(findings):
    return {f.code for f in findings}


def error_codes(findings):
    return {f.code for f in findings if f.severity is Severity.ERROR}


def with_link(network: NetworkConfig, which: str, **overrides) -> NetworkConfig:
    link = dataclasses.replace(getattr(network, which), **overrides)
    return dataclasses.replace(network, **{which: link})


class TestConfigLint:
    def test_paper_config_has_no_errors(self):
        findings = lint_config(paper_simulation_config())
        assert not error_codes(findings)

    def test_flit_packet_misalignment(self):
        config = paper_simulation_config()
        network = with_link(config.network, "package_link",
                            packet_size_bytes=300)
        config = dataclasses.replace(config, network=network)
        findings = lint_config(config)
        assert "flit-packet-misalignment" in error_codes(findings)

    def test_packet_smaller_than_flit(self):
        config = paper_simulation_config()
        network = with_link(config.network, "local_link", packet_size_bytes=64)
        config = dataclasses.replace(config, network=network)
        assert "flit-packet-misalignment" in error_codes(lint_config(config))

    def test_flit_width_not_byte_aligned(self):
        config = paper_simulation_config()
        network = dataclasses.replace(config.network, flit_width_bits=1001)
        config = dataclasses.replace(config, network=network)
        assert "flit-width-not-byte-aligned" in error_codes(lint_config(config))

    def test_inverted_bandwidth_hierarchy_warns(self):
        config = paper_simulation_config()
        network = with_link(config.network, "local_link", bandwidth_gbps=10.0)
        config = dataclasses.replace(config, network=network)
        findings = lint_config(config)
        assert "inverted-bandwidth-hierarchy" in codes(findings)
        assert "inverted-bandwidth-hierarchy" not in error_codes(findings)


class TestConfigDictLint:
    def test_roundtrip_dict_is_clean(self):
        data = config_to_dict(paper_simulation_config())
        config, findings = lint_config_dict(data)
        assert config is not None
        assert not error_codes(findings)

    def test_unknown_parameter_with_suggestion(self):
        data = config_to_dict(paper_simulation_config())
        data["network"]["local_link"]["bandwith_gbps"] = 100.0
        del data["network"]["local_link"]["bandwidth_gbps"]
        config, findings = lint_config_dict(data)
        assert config is None
        unknown = [f for f in findings if f.code == "unknown-parameter"]
        assert unknown and "bandwidth_gbps" in unknown[0].message

    def test_out_of_range_gives_parameter_path(self):
        data = config_to_dict(paper_simulation_config())
        data["network"]["package_link"]["efficiency"] = 1.5
        config, findings = lint_config_dict(data)
        assert config is None
        bad = [f for f in findings if f.code == "out-of-range"]
        assert bad and bad[0].param == "network.package_link.efficiency"


class TestTopologyLint:
    def test_good_torus(self):
        config = paper_simulation_config()
        findings = lint_topology(TopologyKind.TORUS, (2, 4, 4), config,
                                 expected_npus=32)
        assert not error_codes(findings)

    def test_dim_product_mismatch(self):
        config = paper_simulation_config()
        findings = lint_topology(TopologyKind.TORUS, (2, 4, 4), config,
                                 expected_npus=64)
        assert "dim-product-mismatch" in error_codes(findings)

    def test_shape_arity(self):
        config = paper_simulation_config()
        findings = lint_topology(TopologyKind.TORUS, (4, 4), config)
        assert "shape-arity" in error_codes(findings)

    def test_alltoall_structure_clean(self):
        config = paper_simulation_config()
        findings = lint_topology(TopologyKind.ALLTOALL, (4, 16), config,
                                 expected_npus=64)
        assert not error_codes(findings)

    def test_structural_lint_all_preset_fabrics(self):
        from repro.sanitize.static_lint import lint_fabric_structure
        from repro.topology.logical import (
            build_alltoall_topology,
            build_torus_topology,
        )

        config = paper_simulation_config()
        for topology in (
            build_torus_topology(TorusShape(2, 4, 4), config.network,
                                 config.system),
            build_torus_topology(TorusShape(1, 8, 1), config.network,
                                 config.system),
            build_alltoall_topology(AllToAllShape(4, 16), config.network,
                                    config.system),
        ):
            assert not error_codes(lint_fabric_structure(topology))


class TestFaultLint:
    def test_in_range_is_clean(self):
        findings = lint_faults({"count": 2, "bandwidth_factor": 0.5,
                                "kind": "package"})
        assert not findings

    def test_factor_above_one(self):
        findings = lint_faults({"bandwidth_factor": 1.5})
        assert "fault-factor-out-of-range" in error_codes(findings)

    def test_factor_zero(self):
        findings = lint_faults({"bandwidth_factor": 0.0})
        assert "fault-factor-out-of-range" in error_codes(findings)

    def test_negative_latency(self):
        findings = lint_faults({"extra_latency_cycles": -5})
        assert "fault-factor-out-of-range" in error_codes(findings)

    def test_count_exceeds_links(self):
        findings = lint_faults({"count": 999}, num_links=10)
        assert "fault-count-exceeds-links" in error_codes(findings)

    def test_bad_kind(self):
        findings = lint_faults({"kind": "cosmic"})
        assert "unknown-parameter" in error_codes(findings)


class TestRunSpecLint:
    def test_full_good_spec(self):
        spec = {
            "config": config_to_dict(paper_simulation_config()),
            "topology": {"kind": "Torus", "shape": "2x2x2"},
            "expected_npus": 8,
            "faults": {"count": 1, "bandwidth_factor": 0.5, "kind": "package"},
        }
        report = lint_run_spec(spec, source="spec")
        assert report.ok()
        assert not report.errors

    def test_bare_config_dict_accepted(self):
        report = lint_run_spec(config_to_dict(paper_simulation_config()))
        assert report.ok()

    def test_non_dict_rejected(self):
        report = lint_run_spec([1, 2, 3])
        assert "malformed-spec" in error_codes(report.findings)

    def test_defaults_used_without_config(self):
        report = lint_run_spec({
            "topology": {"kind": "AllToAll", "shape": "2x4"},
            "expected_npus": 8,
        })
        assert report.ok()


class TestSupervisionLint:
    def test_good_section_in_run_spec(self):
        report = lint_run_spec({
            "topology": {"kind": "Torus", "shape": "2x2x2"},
            "supervision": {"point_timeout_s": 30.0, "max_retries": 2,
                            "on_poison": "quarantine"},
        })
        assert report.ok()

    def test_unknown_key_suggests_closest(self):
        findings = lint_supervision({"point_timeout": 30.0})
        assert "unknown-parameter" in error_codes(findings)
        assert "point_timeout_s" in findings[0].message

    def test_range_rules(self):
        findings = lint_supervision({"point_timeout_s": -1.0,
                                     "max_retries": -2,
                                     "backoff_factor": 0.5})
        assert len([f for f in findings if f.code == "out-of-range"]) == 3

    def test_on_poison_enum(self):
        findings = lint_supervision({"on_poison": "explode"})
        assert "out-of-range" in error_codes(findings)

    def test_non_dict_section(self):
        findings = lint_supervision(["timeout", 30])
        assert "malformed-spec" in error_codes(findings)

    def test_policy_construction_catches_the_rest(self):
        # Non-numeric values skip the raw range rules; constructing the
        # policy itself surfaces the TypeError as a finding.
        findings = lint_supervision({"point_timeout_s": "forever"})
        assert "supervision-invalid" in error_codes(findings)


class TestPresets:
    def test_all_shipped_presets_clean(self):
        reports = lint_presets()
        assert len(reports) >= 5
        for report in reports:
            assert report.ok(), report.format()


class TestFindings:
    def test_format_and_to_dict(self):
        finding = Finding(Severity.ERROR, "some-code", "a.b", "broken",
                          source="here")
        assert finding.format() == "here: error: [some-code] a.b: broken"
        assert finding.to_dict()["severity"] == "error"

    def test_report_strictness(self):
        report = LintReport(source="x")
        report.add(Severity.WARNING, "w", "p", "m")
        assert report.ok()
        assert not report.ok(strict=True)

    def test_reports_to_json_roundtrip(self):
        import json

        report = LintReport(source="x")
        report.add(Severity.ERROR, "e", "p", "m")
        parsed = json.loads(reports_to_json([report]))
        assert parsed[0]["errors"] == 1
        assert parsed[0]["findings"][0]["code"] == "e"


@pytest.mark.parametrize("name", [
    "dimension_mismatch", "flit_misalignment", "bad_fault_factor",
    "bad_fault_schedule_action", "bad_fault_schedule_link"])
def test_seeded_bad_configs_flag_errors(name):
    import os

    from repro.sanitize import lint_spec_file

    path = os.path.join(os.path.dirname(__file__), "..", "data",
                        "badconfigs", f"{name}.json")
    report = lint_spec_file(path)
    assert report.errors, f"{name} should produce at least one error"


def test_shipped_examples_are_clean():
    import glob
    import os

    from repro.sanitize import lint_spec_file

    pattern = os.path.join(os.path.dirname(__file__), "..", "..",
                           "examples", "configs", "*.json")
    paths = glob.glob(pattern)
    assert len(paths) >= 3
    for path in paths:
        report = lint_spec_file(path)
        assert not report.errors, report.format()
