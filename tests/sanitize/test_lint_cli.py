"""Tests for the ``astra-repro lint`` subcommand and --sanitize flag."""

import json
import os

import pytest

from repro.cli import build_arg_parser, main

DATA = os.path.join(os.path.dirname(__file__), "..", "data", "badconfigs")
EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples", "configs")


def bad(name):
    return os.path.join(DATA, name)


def example(name):
    return os.path.join(EXAMPLES, name)


class TestLintCommand:
    def test_presets_default_exit_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "torus-2x4x4" in out

    def test_dimension_mismatch_exits_nonzero(self, capsys):
        assert main(["lint", bad("dimension_mismatch.json")]) == 1
        assert "dim-product-mismatch" in capsys.readouterr().out

    def test_flit_misalignment_exits_nonzero(self, capsys):
        assert main(["lint", bad("flit_misalignment.json")]) == 1
        assert "flit-packet-misalignment" in capsys.readouterr().out

    def test_bad_fault_factor_exits_nonzero(self, capsys):
        assert main(["lint", bad("bad_fault_factor.json")]) == 1
        assert "fault-factor-out-of-range" in capsys.readouterr().out

    def test_shipped_examples_exit_zero(self, capsys):
        specs = [example(n) for n in sorted(os.listdir(EXAMPLES))]
        assert specs, "no example configs shipped"
        assert main(["lint"] + specs) == 0

    def test_json_output_machine_readable(self, capsys):
        assert main(["lint", "--json", bad("dimension_mismatch.json")]) == 1
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["errors"] >= 1
        finding = next(f for f in reports[0]["findings"]
                       if f["severity"] == "error")
        assert finding["code"] == "dim-product-mismatch"
        assert finding["param"] == "topology.shape"
        assert finding["source"].endswith("dimension_mismatch.json")

    def test_missing_file_reported(self, capsys):
        assert main(["lint", "/nonexistent/nowhere.json"]) == 1
        assert "unreadable-file" in capsys.readouterr().out

    def test_invalid_json_reported(self, tmp_path, capsys):
        p = tmp_path / "broken.json"
        p.write_text("{not json")
        assert main(["lint", str(p)]) == 1
        assert "invalid-json" in capsys.readouterr().out

    def test_strict_flag_parsed(self):
        args = build_arg_parser().parse_args(["lint", "--strict", "--json"])
        assert args.strict and args.json and args.specs == []

    def test_explicit_presets_with_files(self, capsys):
        code = main(["lint", "--presets", example("paper_torus.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "torus-2x4x4" in out and "paper_torus.json" in out


class TestSanitizeFlag:
    def test_collective_with_sanitize(self, capsys):
        code = main(["collective", "--op", "allreduce", "--size-mb", "0.25",
                     "--shape", "2x2x1", "--sanitize"])
        assert code == 0
        assert "cycles" in capsys.readouterr().out

    def test_flag_available_on_all_platform_commands(self):
        parser = build_arg_parser()
        for cmd in (["train"], ["collective"], ["bandwidth"]):
            args = parser.parse_args(cmd + ["--sanitize"])
            assert args.sanitize

    @pytest.mark.parametrize("cmd", ["train", "collective", "bandwidth"])
    def test_flag_defaults_off(self, cmd):
        args = build_arg_parser().parse_args([cmd])
        assert args.sanitize is False
