"""Tests for the comparison-table helper."""

import pytest

from repro.analysis import ComparisonTable
from repro.errors import ReproError


class TestComparisonTable:
    def test_speedup(self):
        table = ComparisonTable()
        table.add("baseline", 1000.0)
        table.add("enhanced", 250.0)
        assert table.speedup("enhanced", "baseline") == pytest.approx(4.0)

    def test_best(self):
        table = ComparisonTable()
        table.add("a", 300.0)
        table.add("b", 100.0)
        table.add("c", 200.0)
        assert table.best() == "b"

    def test_format_contains_rows_and_speedups(self):
        table = ComparisonTable(metric="cycles")
        table.add("baseline", 1000.0)
        table.add("enhanced", 500.0)
        text = table.format(baseline="baseline")
        assert "baseline" in text
        assert "2.00x" in text

    def test_duplicate_label_rejected(self):
        table = ComparisonTable()
        table.add("x", 1.0)
        with pytest.raises(ReproError):
            table.add("x", 2.0)

    def test_nonpositive_value_rejected(self):
        with pytest.raises(ReproError):
            ComparisonTable().add("x", 0.0)

    def test_empty_table_errors(self):
        with pytest.raises(ReproError):
            ComparisonTable().best()
        with pytest.raises(ReproError):
            ComparisonTable().format()

    def test_unknown_label(self):
        table = ComparisonTable()
        table.add("a", 1.0)
        with pytest.raises(ReproError):
            table.speedup("a", "zzz")
