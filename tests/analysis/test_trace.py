"""Tests for timeline collection and Chrome-trace export."""

import json

import pytest

from repro.analysis.trace import (
    PhaseSpan,
    collect_timeline,
    phase_occupancy,
    to_chrome_trace,
)
from repro.collectives import CollectiveOp
from repro.config import (
    CollectiveAlgorithm,
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.errors import ReproError
from repro.system import System
from repro.topology import build_torus_topology

NET = paper_network_config()


def traced_run(trace=True):
    cfg = SystemConfig(algorithm=CollectiveAlgorithm.ENHANCED,
                       preferred_set_splits=4)
    topo = build_torus_topology(TorusShape(2, 2, 2), NET, cfg)
    system = System(topo, SimulationConfig(system=cfg, network=NET),
                    trace=trace)
    system.request_collective(CollectiveOp.ALL_REDUCE, 1 * MB, name="ar")
    system.run_until_idle(max_events=50_000_000)
    return system


class TestTimeline:
    def test_spans_cover_all_chunks_and_phases(self):
        system = traced_run()
        spans = collect_timeline(system)
        # 4 chunks x 4 enhanced phases.
        assert len(spans) == 16
        assert {s.chunk_index for s in spans} == {0, 1, 2, 3}
        assert {s.phase_index for s in spans} == {1, 2, 3, 4}

    def test_spans_ordered_and_positive(self):
        spans = collect_timeline(traced_run())
        for span in spans:
            assert span.end >= span.start >= 0.0

    def test_phases_sequential_within_chunk(self):
        spans = collect_timeline(traced_run())
        by_chunk = {}
        for span in spans:
            by_chunk.setdefault(span.chunk_index, []).append(span)
        for chunk_spans in by_chunk.values():
            for a, b in zip(chunk_spans, chunk_spans[1:]):
                assert b.start >= a.start

    def test_untraced_system_rejected(self):
        system = traced_run(trace=False)
        with pytest.raises(ReproError):
            collect_timeline(system)

    def test_phase_labels(self):
        spans = collect_timeline(traced_run())
        labels = {s.phase_label for s in spans}
        assert "P1:reducescatter@local" in labels
        assert "P4:allgather@local" in labels


class TestChromeTrace:
    def test_valid_json_with_events(self):
        system = traced_run()
        trace = json.loads(to_chrome_trace(system))
        events = trace["traceEvents"]
        duration_events = [e for e in events if e["ph"] == "X"]
        assert len(duration_events) == 16
        assert all(e["dur"] >= 0 for e in duration_events)

    def test_process_metadata_present(self):
        system = traced_run()
        trace = json.loads(to_chrome_trace(system))
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "ar"

    def test_timebase_scaling(self):
        system = traced_run()
        fine = json.loads(to_chrome_trace(system, cycles_per_microsecond=1.0))
        coarse = json.loads(to_chrome_trace(system, cycles_per_microsecond=1000.0))
        fine_dur = max(e["dur"] for e in fine["traceEvents"] if e["ph"] == "X")
        coarse_dur = max(e["dur"] for e in coarse["traceEvents"] if e["ph"] == "X")
        assert fine_dur == pytest.approx(1000.0 * coarse_dur)

    def test_bad_timebase(self):
        with pytest.raises(ReproError):
            to_chrome_trace(traced_run(), cycles_per_microsecond=0.0)


class TestOccupancy:
    def test_occupancy_sums_durations(self):
        spans = [
            PhaseSpan(0, "s", 0, 1, "P1", 0.0, 10.0),
            PhaseSpan(0, "s", 1, 1, "P1", 5.0, 25.0),
            PhaseSpan(0, "s", 0, 2, "P2", 10.0, 15.0),
        ]
        occ = phase_occupancy(spans)
        assert occ == {1: 30.0, 2: 5.0}

    def test_real_run_occupancy(self):
        spans = collect_timeline(traced_run())
        occ = phase_occupancy(spans)
        assert set(occ) == {1, 2, 3, 4}
        # Inter-package phases dominate occupancy on the asymmetric fabric.
        assert occ[2] + occ[3] > occ[1] + occ[4]
