"""Tests for JSON/CSV result export."""

import json

import pytest

from repro.analysis.export import (
    breakdown_to_dict,
    report_to_dict,
    report_to_json,
    rows_to_csv,
)
from repro.collectives import CollectiveOp
from repro.config import (
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.system import DelayBreakdown, System
from repro.topology import build_torus_topology
from repro.workload import (
    CommSpec,
    DATA_PARALLEL,
    DNNModel,
    LayerSpec,
    TrainingLoop,
)


@pytest.fixture(scope="module")
def report():
    net = paper_network_config()
    cfg = SystemConfig()
    topo = build_torus_topology(TorusShape(2, 2, 2), net, cfg)
    system = System(topo, SimulationConfig(system=cfg, network=net))
    model = DNNModel("export-demo", (
        LayerSpec("a", 1000.0, 800.0, 600.0,
                  weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, 1 * MB)),
    ), DATA_PARALLEL)
    return TrainingLoop(system, model, num_iterations=1).run()


class TestReportExport:
    def test_dict_fields(self, report):
        d = report_to_dict(report)
        assert d["model"] == "export-demo"
        assert d["total_cycles"] == report.total_cycles
        assert len(d["layers"]) == 1
        assert d["layers"][0]["comm_bytes"]["weight_grad"] == 1 * MB

    def test_json_round_trip(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed["num_iterations"] == 1
        assert parsed["layers"][0]["name"] == "a"

    def test_breakdown_dict(self):
        b = DelayBreakdown()
        b.record_ready_queue(5.0)
        d = breakdown_to_dict(b)
        assert d["rows"][0]["queue"] == 5.0
        assert d["phases"] == {}


class TestCsvExport:
    def test_basic_rows(self):
        csv_text = rows_to_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_key_selection(self):
        csv_text = rows_to_csv([{"a": 1, "b": 2}], keys=["b"])
        assert csv_text.strip().splitlines()[0] == "b"

    def test_empty_rows(self):
        assert rows_to_csv([]) == ""
