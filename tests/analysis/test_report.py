"""Tests for report formatting helpers."""

import pytest

from repro.analysis import (
    RunSummary,
    format_breakdown,
    format_layer_table,
    layer_rows,
)
from repro.collectives import CollectiveOp
from repro.config import (
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.system import DelayBreakdown, System
from repro.topology import build_torus_topology
from repro.workload import (
    CommSpec,
    DATA_PARALLEL,
    DNNModel,
    LayerSpec,
    TrainingLoop,
)


@pytest.fixture(scope="module")
def report():
    net = paper_network_config()
    system_cfg = SystemConfig()
    topo = build_torus_topology(TorusShape(2, 2, 2), net, system_cfg)
    system = System(topo, SimulationConfig(system=system_cfg, network=net))
    model = DNNModel("demo", (
        LayerSpec("a", 1000.0, 800.0, 600.0,
                  weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, 1 * MB)),
        LayerSpec("b", 1000.0, 800.0, 600.0,
                  weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, 1 * MB)),
    ), DATA_PARALLEL)
    return TrainingLoop(system, model, num_iterations=1).run()


class TestLayerRows:
    def test_rows_in_model_order(self, report):
        rows = layer_rows(report)
        assert [r.name for r in rows] == ["a", "b"]
        assert [r.index for r in rows] == [0, 1]

    def test_totals(self, report):
        row = layer_rows(report)[0]
        assert row.compute_cycles == pytest.approx(2400.0)
        assert row.total_comm_cycles == row.weight_grad_comm_cycles


class TestFormatting:
    def test_layer_table_contains_layers(self, report):
        table = format_layer_table(report)
        assert "a" in table and "b" in table
        assert "compute" in table

    def test_layer_table_max_rows(self, report):
        table = format_layer_table(report, max_rows=1)
        assert "b" not in table.splitlines()[-1]

    def test_breakdown_format(self):
        b = DelayBreakdown()
        b.record_ready_queue(10.0)
        text = format_breakdown(b)
        assert "P0" in text
        assert "queue" in text

    def test_run_summary(self, report):
        summary = RunSummary.from_report(report)
        assert summary.model_name == "demo"
        text = summary.format()
        assert "demo" in text
        assert "exposed" in text
        assert f"{summary.num_iterations} iteration" in text
