"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis import bar_chart, series_chart
from repro.errors import ReproError


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart([{"x": "a", "v": 5.0}, {"x": "b", "v": 10.0}],
                          "x", "v", width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_labels_aligned(self):
        chart = bar_chart([{"x": "a", "v": 1}, {"x": "long", "v": 2}],
                          "x", "v", width=4)
        assert all(line.index("│") == chart.splitlines()[0].index("│")
                   for line in chart.splitlines())

    def test_title(self):
        chart = bar_chart([{"x": "a", "v": 1}], "x", "v", title="T")
        assert chart.splitlines()[0] == "T"

    def test_zero_values_allowed(self):
        chart = bar_chart([{"x": "a", "v": 0.0}], "x", "v")
        assert "0" in chart

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            bar_chart([{"x": "a", "v": -1.0}], "x", "v")

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart([], "x", "v")

    def test_bad_width(self):
        with pytest.raises(ReproError):
            bar_chart([{"x": "a", "v": 1}], "x", "v", width=0)


class TestSeriesChart:
    ROWS = [
        {"size": 64, "alltoall": 900.0, "torus": 3200.0},
        {"size": 512, "alltoall": 4500.0, "torus": 14400.0},
    ]

    def test_one_group_per_row(self):
        chart = series_chart(self.ROWS, "size", ["alltoall", "torus"])
        assert chart.count("size=") == 2
        assert chart.count("alltoall") == 2

    def test_largest_value_gets_longest_bar(self):
        chart = series_chart(self.ROWS, "size", ["alltoall", "torus"], width=20)
        lines = [l for l in chart.splitlines() if "│" in l]
        torus_large = next(l for l in lines if "14,400" in l)
        assert torus_large.count("█") == 20

    def test_needs_series(self):
        with pytest.raises(ReproError):
            series_chart(self.ROWS, "size", [])

    def test_needs_rows(self):
        with pytest.raises(ReproError):
            series_chart([], "size", ["a"])
