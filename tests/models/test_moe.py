"""Tests for the Mixture-of-Experts workload."""

import pytest

from repro.collectives import CollectiveOp
from repro.errors import WorkloadError
from repro.models import moe_transformer
from repro.models.moe import NUM_BLOCKS


class TestMoeStructure:
    def test_alternating_blocks(self):
        model = moe_transformer()
        names = [l.name for l in model.layers]
        assert len(names) == 2 * NUM_BLOCKS
        assert names[0] == "attention1"
        assert names[1] == "moe_ffn1"

    def test_moe_layers_use_all_to_all(self):
        model = moe_transformer()
        for layer in model.layers:
            if layer.name.startswith("moe_ffn"):
                assert layer.forward_comm.op is CollectiveOp.ALL_TO_ALL
                assert layer.input_grad_comm.op is CollectiveOp.ALL_TO_ALL
            else:
                assert layer.forward_comm.op is CollectiveOp.ALL_GATHER

    def test_exchange_scales_with_leaving_fraction(self):
        """More expert-parallel peers -> a larger token fraction leaves."""
        two = moe_transformer(expert_parallel_degree=2)
        four = moe_transformer(expert_parallel_degree=4)
        assert four.layer("moe_ffn1").forward_comm.size_bytes > \
            two.layer("moe_ffn1").forward_comm.size_bytes

    def test_capacity_factor_scales_exchange(self):
        lean = moe_transformer(capacity_factor=1.0)
        padded = moe_transformer(capacity_factor=1.5)
        assert padded.layer("moe_ffn1").forward_comm.size_bytes == \
            pytest.approx(1.5 * lean.layer("moe_ffn1").forward_comm.size_bytes)

    def test_expert_weight_bytes_follow_local_experts(self):
        """Sharding experts over more NPUs shrinks per-NPU expert weights."""
        two = moe_transformer(num_experts=8, expert_parallel_degree=2)
        four = moe_transformer(num_experts=8, expert_parallel_degree=4)
        assert four.layer("moe_ffn1").weight_grad_comm.size_bytes == \
            pytest.approx(two.layer("moe_ffn1").weight_grad_comm.size_bytes / 2)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            moe_transformer(num_experts=8, expert_parallel_degree=3)
        with pytest.raises(WorkloadError):
            moe_transformer(capacity_factor=0.5)


class TestMoeRuns:
    def test_trains_on_torus(self):
        from repro.config import CollectiveAlgorithm, TorusShape
        from repro.harness import run_training, torus_platform

        platform = torus_platform(TorusShape(2, 2, 2),
                                  algorithm=CollectiveAlgorithm.ENHANCED)
        model = moe_transformer(compute=platform.config.compute,
                                expert_parallel_degree=2)
        report, _ = run_training(model, platform, num_iterations=1)
        moe = next(l for l in report.layers if l.name == "moe_ffn1")
        assert moe.total_comm_cycles > 0
