"""Tests for the ResNet-50 workload definition."""

import pytest

from repro.collectives import CollectiveOp
from repro.models import resnet50, total_parameters
from repro.models.resnet50 import _architecture
from repro.workload import ParallelismKind


class TestArchitecture:
    def test_54_weighted_layers(self):
        """conv1 + 16 bottlenecks x 3 + 4 projections + fc = 54."""
        model = resnet50()
        assert model.num_layers == 54

    def test_parameter_count_matches_published(self):
        """ResNet-50 has ~25.5 M parameters (conv + fc, no BN/bias)."""
        assert total_parameters() == pytest.approx(25.5e6, rel=0.01)

    def test_stage_structure(self):
        names = [c.name for c in _architecture()]
        assert names[0] == "conv1"
        assert names.count("conv2_1_down") == 1
        # 3 + 4 + 6 + 3 bottlenecks, each with a/b/c convs.
        for stage, blocks in ((2, 3), (3, 4), (4, 6), (5, 3)):
            a_layers = [n for n in names if n.startswith(f"conv{stage}_")
                        and n.endswith("_a")]
            assert len(a_layers) == blocks

    def test_spatial_sizes_halve_per_stage(self):
        convs = {c.name: c.spec for c in _architecture()}
        assert convs["conv1"].out_size == 112
        assert convs["conv2_1_a"].in_size == 56
        assert convs["conv3_1_b"].out_size == 28
        assert convs["conv4_1_b"].out_size == 14
        assert convs["conv5_1_b"].out_size == 7

    def test_channel_progression(self):
        convs = {c.name: c.spec for c in _architecture()}
        assert convs["conv2_1_c"].out_channels == 256
        assert convs["conv3_1_c"].out_channels == 512
        assert convs["conv4_1_c"].out_channels == 1024
        assert convs["conv5_1_c"].out_channels == 2048


class TestWorkload:
    def test_data_parallel_weight_grad_only(self):
        model = resnet50()
        assert model.strategy.kind is ParallelismKind.DATA
        for layer in model.layers:
            assert layer.weight_grad_comm.op is CollectiveOp.ALL_REDUCE
            assert not layer.forward_comm.active
            assert not layer.input_grad_comm.active

    def test_comm_bytes_equal_parameter_bytes(self):
        model = resnet50(bytes_per_element=4)
        assert model.total_comm_bytes == pytest.approx(4 * total_parameters())

    def test_compute_cycles_positive_and_finite(self):
        model = resnet50()
        for layer in model.layers:
            assert layer.forward_cycles > 0
            assert layer.input_grad_cycles > 0
            assert layer.weight_grad_cycles > 0

    def test_minibatch_scales_compute_not_comm(self):
        small = resnet50(minibatch=16)
        large = resnet50(minibatch=64)
        assert large.total_compute_cycles > small.total_compute_cycles
        assert large.total_comm_bytes == pytest.approx(small.total_comm_bytes)

    def test_deep_layers_have_bigger_gradients(self):
        model = resnet50()
        conv2 = model.layer("conv2_1_b").weight_grad_comm.size_bytes
        conv5 = model.layer("conv5_1_b").weight_grad_comm.size_bytes
        assert conv5 == pytest.approx(conv2 * 64)
