"""Tests for the Transformer, DLRM and MLP workload definitions."""

import pytest

from repro.collectives import CollectiveOp
from repro.errors import WorkloadError
from repro.models import dlrm, mlp, transformer
from repro.models.transformer import NUM_ENCODER_LAYERS
from repro.workload import ParallelismKind, TrainingPhase


class TestTransformer:
    def test_layer_structure(self):
        model = transformer()
        names = [l.name for l in model.layers]
        assert names[0] == "embedding"
        assert names[-1] == "output_proj"
        assert len([n for n in names if n.startswith("encoder")]) == \
            NUM_ENCODER_LAYERS

    def test_hybrid_strategy(self):
        assert transformer().strategy.kind is ParallelismKind.HYBRID

    def test_encoders_structurally_identical(self):
        """Fig. 13's premise: layers 1-6 are the same structurally."""
        model = transformer()
        encoders = [l for l in model.layers if l.name.startswith("encoder")]
        first = encoders[0]
        for enc in encoders[1:]:
            assert enc.forward_cycles == first.forward_cycles
            assert enc.forward_comm == first.forward_comm
            assert enc.weight_grad_comm == first.weight_grad_comm

    def test_embedding_has_no_communication(self):
        """Fig. 13 caption: some layers may not have communications."""
        model = transformer()
        emb = model.layer("embedding")
        assert not emb.forward_comm.active
        assert not emb.weight_grad_comm.active

    def test_encoder_comm_types(self):
        enc = transformer().layer("encoder1")
        assert enc.forward_comm.op is CollectiveOp.ALL_GATHER
        assert enc.input_grad_comm.op is CollectiveOp.ALL_REDUCE
        assert enc.weight_grad_comm.op is CollectiveOp.ALL_REDUCE

    def test_model_parallel_degree_shrinks_shards(self):
        whole = transformer(model_parallel_degree=1)
        halved = transformer(model_parallel_degree=2)
        assert halved.layer("encoder1").weight_grad_comm.size_bytes == \
            pytest.approx(whole.layer("encoder1").weight_grad_comm.size_bytes / 2)
        assert halved.layer("encoder1").forward_cycles < \
            whole.layer("encoder1").forward_cycles

    def test_bad_degree_rejected(self):
        with pytest.raises(WorkloadError):
            transformer(model_parallel_degree=3)


class TestDLRM:
    def test_structure(self):
        model = dlrm()
        names = [l.name for l in model.layers]
        assert names[0] == "bottom_mlp1"
        assert "embedding_exchange" in names
        assert names[-1] == "top_mlp4"

    def test_embedding_uses_all_to_all(self):
        exchange = dlrm().layer("embedding_exchange")
        assert exchange.forward_comm.op is CollectiveOp.ALL_TO_ALL
        assert exchange.input_grad_comm.op is CollectiveOp.ALL_TO_ALL

    def test_mlps_use_all_reduce(self):
        model = dlrm()
        for layer in model.layers:
            if layer.name != "embedding_exchange":
                assert layer.weight_grad_comm.op is CollectiveOp.ALL_REDUCE

    def test_exchange_size_scales_with_batch(self):
        small = dlrm(minibatch=128)
        large = dlrm(minibatch=512)
        assert large.layer("embedding_exchange").forward_comm.size_bytes == \
            pytest.approx(4 * small.layer("embedding_exchange").forward_comm.size_bytes)

    def test_hybrid_scopes(self):
        strategy = dlrm().strategy
        assert strategy.kind is ParallelismKind.HYBRID
        assert strategy.scope(TrainingPhase.FORWARD) == strategy.model_dims


class TestMLP:
    def test_default_structure(self):
        model = mlp()
        assert model.num_layers == 4
        assert model.strategy.kind is ParallelismKind.DATA

    def test_custom_widths(self):
        model = mlp(widths=(128, 64), input_features=32)
        assert model.num_layers == 2
        assert model.layer("fc1").weight_grad_comm.size_bytes == 32 * 128 * 4

    def test_empty_widths_rejected(self):
        with pytest.raises(WorkloadError):
            mlp(widths=())
