"""Failure context propagation through hierarchical multi-phase plans.

When a phase of a multi-dimensional collective dies for good, the
``CollectiveError`` must name *which* phase of *which* plan over *which*
dimension got stuck — "message 6->2 gave up" alone is useless in a
3-phase hierarchical all-reduce spanning three torus dimensions.
"""

from dataclasses import replace

import pytest

from repro.collectives import CollectiveContext
from repro.collectives.direct_algorithms import DirectAllReduce
from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape, TransportConfig
from repro.errors import CollectiveError
from repro.events import EventQueue
from repro.harness.runners import run_collective, torus_platform
from repro.network import FastBackend, FaultState
from repro.network.fault_schedule import FaultAction, FaultEvent, FaultSchedule
from repro.system import ReliableTransport

from collective_helpers import IDEAL_NET, make_switches

FAST_FAIL = TransportConfig(timeout_cycles=2_000.0, timeout_per_byte=0.5,
                            max_retries=2, backoff_base_cycles=100.0,
                            backoff_max_cycles=1_000.0, jitter=0.0)


def faulty_spec(dead_links):
    """A 2x2x2 torus with fast-fail transport and links down from t=0."""
    spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
    spec.config = replace(
        spec.config, system=replace(spec.config.system, transport=FAST_FAIL))
    spec.fault_schedule = FaultSchedule([
        FaultEvent(time=0.0, action=FaultAction.LINK_DOWN, link=link)
        for link in dead_links
    ])
    return spec


class TestHierarchicalContext:
    def test_dead_dimension_names_phase_and_dimension(self):
        """Both directions of the 2<->6 vertical link are down, so even
        the counter-rotating spare ring cannot route around it; the error
        must carry the hierarchical plan position, not just the message."""
        with pytest.raises(CollectiveError) as excinfo:
            run_collective(faulty_spec([(2, 6), (6, 2)]),
                           CollectiveOp.ALL_REDUCE, 256 * 1024)
        message = str(excinfo.value)
        assert "phase " in message
        assert "of set" in message  # "... of set0/c..": the owning plan
        assert "allreduce over" in message
        assert "stuck ranks" in message
        assert "transport gave up" in message

    def test_context_names_the_dimension_of_the_dead_link(self):
        """The 2<->6 hop is a VERTICAL-dimension ring edge on 2x2x2; a
        failure there must not be attributed to another dimension."""
        with pytest.raises(CollectiveError, match="VERTICAL"):
            run_collective(faulty_spec([(2, 6), (6, 2)]),
                           CollectiveOp.ALL_REDUCE, 256 * 1024)

    def test_degraded_link_completes_without_error(self):
        """Sanity check on the scenario above: a merely *degraded* link on
        the same hop slows the phase down but never raises."""
        spec = faulty_spec([])
        spec.fault_schedule = FaultSchedule([
            FaultEvent(time=0.0, action=FaultAction.LINK_DEGRADE,
                       link=(2, 6), bandwidth_factor=0.25,
                       extra_latency_cycles=500.0),
        ])
        healthy = run_collective(faulty_spec([]), CollectiveOp.ALL_REDUCE,
                                 256 * 1024)
        degraded = run_collective(spec, CollectiveOp.ALL_REDUCE, 256 * 1024)
        assert degraded.duration_cycles > healthy.duration_cycles


class TestDirectContext:
    def make_allreduce(self):
        events = EventQueue()
        backend = FastBackend(events, IDEAL_NET)
        backend.faults = FaultState()
        transport = ReliableTransport(backend, FAST_FAIL)
        ctx = CollectiveContext(transport, endpoint_delay_cycles=10.0,
                                reduction_cycles_per_kb=0.0)
        nodes = [0, 1, 2, 3]
        switches = make_switches(2, nodes)
        allreduce = DirectAllReduce(ctx, nodes, switches, 64 * 1024,
                                    label="dar")
        return events, backend.faults, switches, allreduce

    def test_setter_forwards_to_both_stages(self):
        _, _, _, allreduce = self.make_allreduce()
        allreduce.fail_context = "phase 9/9 (allreduce over ALLTOALL) of x"
        assert allreduce._scatter.fail_context == allreduce.fail_context
        assert allreduce._gather.fail_context == allreduce.fail_context

    def test_fail_fast_message_carries_context_and_switch(self):
        events, faults, switches, allreduce = self.make_allreduce()
        allreduce.fail_context = "phase 2/3 (allreduce over ALLTOALL) of t"
        faults.down.add((0, switches[0].switch_id))  # kill node 0's uplink
        with pytest.raises(CollectiveError) as excinfo:
            allreduce.start_all()
            events.run(max_events=1_000_000)
        message = str(excinfo.value)
        assert "in phase 2/3 (allreduce over ALLTOALL) of t" in message
        assert "switch" in message
        assert "stuck ranks" in message
