"""Pytest fixtures for collective algorithm tests."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from collective_helpers import Platform  # noqa: E402


@pytest.fixture
def platform():
    return Platform()
