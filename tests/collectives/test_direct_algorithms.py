"""Tests for the switch-based direct collective algorithms (Fig. 5 right)."""

import pytest

from repro.collectives import (
    DirectAllGather,
    DirectAllReduce,
    DirectAllToAll,
    DirectReduceScatter,
)
from repro.errors import CollectiveError

from collective_helpers import Platform, make_switches

NODES = [0, 1, 2, 3]


def one_step_cycles(message_bytes: float, reduction: float = 0.0) -> float:
    """With one dedicated switch per peer pair, a direct step costs one
    message serialization on the uplink (pipelined into the downlink) plus
    two link latencies, one packet forwarding, the router hop, and the
    endpoint delay + reduction."""
    ser = message_bytes / 100.0
    first_packet = min(message_bytes, 512.0) / 100.0
    return (ser + 50.0) + first_packet + 1.0 + 50.0 + 10.0 + reduction


class TestDirectReduceScatter:
    def test_exact_time_dedicated_switches(self, platform):
        switches = make_switches(3, NODES)
        algo = DirectReduceScatter(platform.ctx, NODES, switches, 4000.0)
        algo.start_all()
        platform.run()
        assert algo.done
        assert algo.finished_at == pytest.approx(one_step_cycles(1000.0))

    def test_single_switch_serializes_uplinks(self, platform):
        """With one switch, a node's three sends share one uplink."""
        switches = make_switches(1, NODES)
        algo = DirectReduceScatter(platform.ctx, NODES, switches, 4000.0)
        algo.start_all()
        platform.run()
        dedicated = one_step_cycles(1000.0)
        assert algo.finished_at > dedicated + 15.0

    def test_reduction_delay_applies(self):
        p = Platform(reduction_per_kb=100.0)
        switches = make_switches(3, NODES)
        algo = DirectReduceScatter(p.ctx, NODES, switches, 4096.0)
        algo.start_all()
        p.run()
        assert algo.finished_at == pytest.approx(one_step_cycles(1024.0, 100.0))

    def test_needs_a_switch(self, platform):
        with pytest.raises(CollectiveError):
            DirectReduceScatter(platform.ctx, NODES, [], 4000.0)

    def test_per_node_done(self, platform):
        done = []
        switches = make_switches(3, NODES)
        algo = DirectReduceScatter(platform.ctx, NODES, switches, 4000.0,
                                   on_node_done=done.append)
        algo.start_all()
        platform.run()
        assert sorted(done) == NODES


class TestDirectAllGather:
    def test_no_reduction(self):
        p = Platform(reduction_per_kb=1000.0)
        switches = make_switches(3, NODES)
        algo = DirectAllGather(p.ctx, NODES, switches, 4000.0)
        algo.start_all()
        p.run()
        assert algo.finished_at == pytest.approx(one_step_cycles(1000.0))


class TestDirectAllToAll:
    def test_same_cost_as_gather(self, platform):
        switches = make_switches(3, NODES)
        a2a = DirectAllToAll(platform.ctx, NODES, switches, 4000.0)
        a2a.start_all()
        platform.run()

        p2 = Platform()
        ag = DirectAllGather(p2.ctx, NODES, make_switches(3, NODES), 4000.0)
        ag.start_all()
        p2.run()
        assert a2a.finished_at == pytest.approx(ag.finished_at)


class TestDirectAllReduce:
    def test_is_two_steps(self, platform):
        switches = make_switches(3, NODES)
        algo = DirectAllReduce(platform.ctx, NODES, switches, 4000.0)
        algo.start_all()
        platform.run()
        assert algo.done
        assert algo.finished_at == pytest.approx(2 * one_step_cycles(1000.0))

    def test_tracks_per_node_state(self, platform):
        switches = make_switches(3, NODES)
        algo = DirectAllReduce(platform.ctx, NODES, switches, 4000.0)
        algo.start_all()
        platform.run()
        assert all(algo.node_done(n) for n in NODES)
        assert algo.started_at == 0.0


class TestSwitchSpreading:
    def test_lsq_offset_rotates_switches(self, platform):
        """Different chunks (lsq offsets) must use different switches for
        the same peer pair, spreading load."""
        switches = make_switches(3, NODES)
        a0 = DirectReduceScatter(platform.ctx, NODES, switches, 4000.0,
                                 lsq_offset=0)
        a1 = DirectReduceScatter(platform.ctx, NODES, switches, 4000.0,
                                 lsq_offset=1)
        s0 = a0._switch_for(0, 1)
        s1 = a1._switch_for(0, 1)
        assert s0.switch_id != s1.switch_id

    def test_distance_spread_contention_free(self, platform):
        """switches == peers: each sender's peers use distinct switches."""
        switches = make_switches(3, NODES)
        algo = DirectReduceScatter(platform.ctx, NODES, switches, 4000.0)
        for src in NODES:
            used = {algo._switch_for(src, dst).switch_id
                    for dst in NODES if dst != src}
            assert len(used) == 3

    def test_duplicate_nodes_rejected(self, platform):
        with pytest.raises(CollectiveError):
            DirectReduceScatter(platform.ctx, [0, 0, 1],
                                make_switches(1, [0, 1]), 100.0)
