"""Tests for the collective execution context and per-phase stats."""

import pytest

from repro.collectives import CollectiveContext, PhaseStats
from repro.config import LinkConfig, NetworkConfig
from repro.errors import CollectiveError
from repro.events import EventQueue
from repro.network import FastBackend, Link, Message

IDEAL = LinkConfig(bandwidth_gbps=100.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL)


def make_ctx(**kwargs):
    events = EventQueue()
    return events, CollectiveContext(FastBackend(events, NET), **kwargs)


class TestContext:
    def test_reduction_cycles_scale_per_kb(self):
        _, ctx = make_ctx(reduction_cycles_per_kb=10.0)
        assert ctx.reduction_cycles(2048.0) == pytest.approx(20.0)
        assert ctx.reduction_cycles(0.0) == 0.0

    def test_after_uses_event_queue(self):
        events, ctx = make_ctx()
        fired = []
        ctx.after(7.0, lambda: fired.append(ctx.now))
        events.run()
        assert fired == [7.0]

    def test_send_records_stats_by_phase(self):
        recorded = []
        events, ctx = make_ctx(stats_sink=lambda p, m: recorded.append((p, m)))
        link = Link(0, 1, IDEAL)
        ctx.send(0, 1, 1000.0, [link], tag="t",
                 on_delivered=lambda m: None, phase_index=3)
        events.run()
        assert len(recorded) == 1
        phase, message = recorded[0]
        assert phase == 3
        assert message.delivered_at == pytest.approx(60.0)

    def test_send_without_sink(self):
        events, ctx = make_ctx()
        done = []
        ctx.send(0, 1, 100.0, [Link(0, 1, IDEAL)], tag=None,
                 on_delivered=done.append)
        events.run()
        assert len(done) == 1

    def test_validation(self):
        with pytest.raises(CollectiveError):
            make_ctx(endpoint_delay_cycles=-1.0)
        with pytest.raises(CollectiveError):
            make_ctx(reduction_cycles_per_kb=-1.0)


class TestPhaseStats:
    def test_record_accumulates(self):
        stats = PhaseStats()
        for q, n in ((10.0, 40.0), (20.0, 60.0)):
            m = Message(0, 1, 100.0)
            m.created_at, m.injected_at, m.delivered_at = 0.0, q, q + n
            stats.record(m)
        assert stats.messages == 2
        assert stats.mean_queue_cycles == pytest.approx(15.0)
        assert stats.mean_network_cycles == pytest.approx(50.0)
        assert stats.bytes == pytest.approx(200.0)

    def test_empty_means(self):
        stats = PhaseStats()
        assert stats.mean_queue_cycles == 0.0
        assert stats.mean_network_cycles == 0.0
