"""Correctness and timing tests for the ring collective algorithms.

All timing checks use the idealized link of conftest (100 B/cycle,
50-cycle latency, 10-cycle endpoint delay, no reduction unless stated):
per-step cost for a message of m bytes is m/100 + 50 + 10.
"""

import pytest

from repro.collectives import (
    RingAllGather,
    RingAllReduce,
    RingAllToAll,
    RingReduceScatter,
)
from repro.config import InjectionPolicy, PacketRouting
from repro.errors import CollectiveError

from collective_helpers import Platform, make_ring


def step_cycles(message_bytes: float, reduction: float = 0.0) -> float:
    return message_bytes / 100.0 + 50.0 + 10.0 + reduction


class TestRingReduceScatter:
    def test_exact_time_four_nodes(self, platform):
        ring = make_ring(4)
        algo = RingReduceScatter(platform.ctx, ring, 4000.0)
        algo.start_all()
        platform.run()
        assert algo.done
        # 3 steps of 1000 B messages, lock-step across nodes.
        assert algo.finished_at == pytest.approx(3 * step_cycles(1000.0))

    def test_all_nodes_complete(self, platform):
        ring = make_ring(5)
        algo = RingReduceScatter(platform.ctx, ring, 5000.0)
        algo.start_all()
        platform.run()
        assert all(algo.node_done(n) for n in ring.nodes)

    def test_reduction_delay_adds_per_step(self):
        plain = Platform()
        ring = make_ring(4)
        a1 = RingReduceScatter(plain.ctx, ring, 4096.0)
        a1.start_all()
        plain.run()

        reducing = Platform(reduction_per_kb=100.0)
        ring2 = make_ring(4)
        a2 = RingReduceScatter(reducing.ctx, ring2, 4096.0)
        a2.start_all()
        reducing.run()
        # 3 steps x 1 KB messages x 100 cycles/KB.
        assert a2.finished_at - a1.finished_at == pytest.approx(300.0)

    def test_two_node_ring_single_step(self, platform):
        ring = make_ring(2)
        algo = RingReduceScatter(platform.ctx, ring, 2000.0)
        algo.start_all()
        platform.run()
        assert algo.finished_at == pytest.approx(step_cycles(1000.0))

    def test_skewed_join_buffers_receives(self, platform):
        """A node that joins late must still process messages that arrived
        early (per-node phase progression, Sec. IV-B)."""
        ring = make_ring(3)
        algo = RingReduceScatter(platform.ctx, ring, 3000.0)
        algo.start_node(0)
        algo.start_node(1)
        platform.events.schedule(500.0, lambda: algo.start_node(2))
        platform.run()
        assert algo.done
        assert algo.finished_at > 500.0

    def test_double_join_rejected(self, platform):
        ring = make_ring(3)
        algo = RingReduceScatter(platform.ctx, ring, 300.0)
        algo.start_node(0)
        with pytest.raises(CollectiveError):
            algo.start_node(0)

    def test_foreign_node_rejected(self, platform):
        algo = RingReduceScatter(platform.ctx, make_ring(3), 300.0)
        with pytest.raises(CollectiveError):
            algo.start_node(99)

    def test_rejects_nonpositive_size(self, platform):
        with pytest.raises(CollectiveError):
            RingReduceScatter(platform.ctx, make_ring(3), 0.0)

    def test_per_node_done_callbacks(self, platform):
        done_nodes = []
        ring = make_ring(4)
        algo = RingReduceScatter(platform.ctx, ring, 400.0,
                                 on_node_done=done_nodes.append)
        algo.start_all()
        platform.run()
        assert sorted(done_nodes) == [0, 1, 2, 3]

    def test_all_done_callback_fires_once(self, platform):
        fired = []
        algo = RingReduceScatter(platform.ctx, make_ring(3), 300.0,
                                 on_all_done=lambda: fired.append(True))
        algo.start_all()
        platform.run()
        assert fired == [True]


class TestRingAllGather:
    def test_exact_time_four_nodes(self, platform):
        ring = make_ring(4)
        algo = RingAllGather(platform.ctx, ring, 4000.0)
        algo.start_all()
        platform.run()
        assert algo.finished_at == pytest.approx(3 * step_cycles(1000.0))

    def test_no_reduction_delay(self):
        reducing = Platform(reduction_per_kb=1000.0)
        ring = make_ring(4)
        algo = RingAllGather(reducing.ctx, ring, 4096.0)
        algo.start_all()
        reducing.run()
        assert algo.finished_at == pytest.approx(3 * step_cycles(1024.0))


class TestRingAllReduce:
    def test_is_scatter_plus_gather(self, platform):
        ring = make_ring(4)
        algo = RingAllReduce(platform.ctx, ring, 4000.0)
        algo.start_all()
        platform.run()
        assert algo.done
        assert algo.finished_at == pytest.approx(6 * step_cycles(1000.0))

    def test_matches_separate_stages(self):
        p1 = Platform()
        ar = RingAllReduce(p1.ctx, make_ring(5), 5000.0)
        ar.start_all()
        p1.run()

        p2 = Platform()
        ring = make_ring(5)
        ag = RingAllGather(p2.ctx, ring, 5000.0)
        rs = RingReduceScatter(p2.ctx, ring, 5000.0,
                               on_node_done=ag.start_node)
        rs.start_all()
        p2.run()
        assert ar.finished_at == pytest.approx(ag.finished_at)

    def test_node_done_tracking(self, platform):
        ring = make_ring(3)
        algo = RingAllReduce(platform.ctx, ring, 300.0)
        algo.start_all()
        platform.run()
        assert all(algo.node_done(n) for n in ring.nodes)
        assert algo.started_at == 0.0


class TestRingAllToAll:
    def test_completes_software_routing(self, platform):
        ring = make_ring(4)
        algo = RingAllToAll(platform.ctx, ring, 4000.0)
        algo.start_all()
        platform.run()
        assert algo.done

    def test_software_slower_than_hardware(self):
        """Software routing relays at every intermediate NPU (paying the
        endpoint delay per hop); hardware routing cuts through (Table III
        #14).  Compared under aggressive injection so both modes inject
        identically and only the per-hop handling differs."""
        soft = Platform(endpoint_delay=500.0,
                        packet_routing=PacketRouting.SOFTWARE,
                        injection_policy=InjectionPolicy.AGGRESSIVE)
        a_soft = RingAllToAll(soft.ctx, make_ring(6), 6000.0)
        a_soft.start_all()
        soft.run()

        hard = Platform(endpoint_delay=500.0,
                        packet_routing=PacketRouting.HARDWARE,
                        injection_policy=InjectionPolicy.AGGRESSIVE)
        a_hard = RingAllToAll(hard.ctx, make_ring(6), 6000.0)
        a_hard.start_all()
        hard.run()
        assert a_hard.finished_at < a_soft.finished_at

    def test_aggressive_injection_not_slower(self):
        normal = Platform(injection_policy=InjectionPolicy.NORMAL)
        a_normal = RingAllToAll(normal.ctx, make_ring(5), 5000.0)
        a_normal.start_all()
        normal.run()

        aggressive = Platform(injection_policy=InjectionPolicy.AGGRESSIVE)
        a_aggr = RingAllToAll(aggressive.ctx, make_ring(5), 5000.0)
        a_aggr.start_all()
        aggressive.run()
        assert a_aggr.finished_at <= a_normal.finished_at

    def test_two_node_ring(self, platform):
        ring = make_ring(2)
        algo = RingAllToAll(platform.ctx, ring, 2000.0)
        algo.start_all()
        platform.run()
        assert algo.done
        assert algo.finished_at == pytest.approx(step_cycles(1000.0))

    def test_hardware_aggressive_combination(self):
        p = Platform(packet_routing=PacketRouting.HARDWARE,
                     injection_policy=InjectionPolicy.AGGRESSIVE)
        algo = RingAllToAll(p.ctx, make_ring(4), 4000.0)
        algo.start_all()
        p.run()
        assert algo.done

    def test_messages_reach_correct_destinations(self, platform):
        """Every node must receive exactly n-1 final messages."""
        ring = make_ring(5)
        algo = RingAllToAll(platform.ctx, ring, 5000.0)
        algo.start_all()
        platform.run()
        assert all(count == 4 for count in algo._received.values())
