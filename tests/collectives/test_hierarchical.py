"""Tests for multi-phase chunk execution over real fabrics."""

import pytest

from repro.collectives import (
    ChunkExecution,
    CollectiveContext,
    CollectiveOp,
    build_phase_plan,
)
from repro.config import (
    AllToAllShape,
    CollectiveAlgorithm,
    TorusShape,
    paper_network_config,
)
from repro.dims import Dimension
from repro.errors import CollectiveError
from repro.events import EventQueue
from repro.network import FastBackend
from repro.network.physical import AllToAllFabric, TorusFabric

NET = paper_network_config()


def make_platform():
    events = EventQueue()
    backend = FastBackend(events, NET)
    return events, CollectiveContext(backend)


def run_chunk(fabric, plan, size, chunk_index=0, stats=None):
    events = EventQueue()
    backend = FastBackend(events, NET)
    ctx = CollectiveContext(backend, stats_sink=stats)
    done = []
    chunk = ChunkExecution(ctx, fabric, plan, size, chunk_index=chunk_index,
                           on_done=done.append)
    chunk.start()
    events.run(max_events=10_000_000)
    assert done, "chunk never completed"
    return chunk


class TestTorusExecution:
    def test_baseline_all_reduce_completes(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims)
        chunk = run_chunk(fabric, plan, 64 * 1024)
        assert chunk.done
        assert chunk.finished_at > 0

    def test_enhanced_beats_baseline_on_asymmetric_fabric(self):
        def time_for(algorithm):
            fabric = TorusFabric(TorusShape(4, 4, 4), NET)
            dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
            plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims, algorithm)
            return run_chunk(fabric, plan, 1024 * 1024).finished_at

        baseline = time_for(CollectiveAlgorithm.BASELINE)
        enhanced = time_for(CollectiveAlgorithm.ENHANCED)
        # Sec. V-C: the 4-phase algorithm cuts inter-package volume by 4x.
        assert enhanced < baseline / 2

    def test_empty_plan_completes_immediately(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        chunk = run_chunk(fabric, [], 1024)
        assert chunk.finished_at == 0.0

    def test_chunk_index_selects_different_rings(self):
        """Chunks land on their LSQ's dedicated ring: two chunks with
        different indices must use different local rings."""
        fabric = TorusFabric(TorusShape(2, 2, 2), NET, local_rings=2)
        dims = [(Dimension.LOCAL, 2)]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims)

        events = EventQueue()
        ctx = CollectiveContext(FastBackend(events, NET))
        c0 = ChunkExecution(ctx, fabric, plan, 64 * 1024, chunk_index=0)
        c1 = ChunkExecution(ctx, fabric, plan, 64 * 1024, chunk_index=1)
        c0.start()
        c1.start()
        events.run(max_events=10_000_000)
        # Both finished at the same time: no shared links, no queueing.
        assert c0.finished_at == pytest.approx(c1.finished_at)

        # Same index twice -> shared ring -> the pair takes longer.
        events2 = EventQueue()
        fabric2 = TorusFabric(TorusShape(2, 2, 2), NET, local_rings=2)
        ctx2 = CollectiveContext(FastBackend(events2, NET))
        d0 = ChunkExecution(ctx2, fabric2, plan, 64 * 1024, chunk_index=0)
        d1 = ChunkExecution(ctx2, fabric2, plan, 64 * 1024, chunk_index=2)
        d0.start()
        d1.start()
        events2.run(max_events=10_000_000)
        assert max(d0.finished_at, d1.finished_at) > c0.finished_at

    def test_scoped_plan_only_uses_scoped_dimension(self):
        fabric = TorusFabric(TorusShape(2, 4, 4), NET)
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE,
                                [(Dimension.VERTICAL, 4)])
        chunk = run_chunk(fabric, plan, 64 * 1024)
        for link in fabric.links:
            if link.kind == "local":
                assert link.stats.messages == 0

    def test_double_start_rejected(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        events = EventQueue()
        ctx = CollectiveContext(FastBackend(events, NET))
        chunk = ChunkExecution(ctx, fabric, [], 1024)
        chunk.start()
        with pytest.raises(CollectiveError):
            chunk.start()

    def test_rejects_nonpositive_chunk(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        events = EventQueue()
        ctx = CollectiveContext(FastBackend(events, NET))
        with pytest.raises(CollectiveError):
            ChunkExecution(ctx, fabric, [], 0.0)


class TestPhaseTracking:
    def test_stats_cover_all_phases(self):
        fabric = TorusFabric(TorusShape(4, 4, 4), NET)
        dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims,
                                CollectiveAlgorithm.ENHANCED)
        seen_phases = set()
        run_chunk(fabric, plan, 256 * 1024,
                  stats=lambda phase, msg: seen_phases.add(phase))
        assert seen_phases == {1, 2, 3, 4}

    def test_on_phase_done_fires_in_order(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims)
        drained = []
        events = EventQueue()
        ctx = CollectiveContext(FastBackend(events, NET))
        chunk = ChunkExecution(ctx, fabric, plan, 64 * 1024,
                               on_phase_done=lambda ci, p: drained.append(p))
        chunk.start()
        events.run(max_events=10_000_000)
        assert drained == [0, 1, 2]

    def test_min_phase_progression(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims)
        events = EventQueue()
        ctx = CollectiveContext(FastBackend(events, NET))
        chunk = ChunkExecution(ctx, fabric, plan, 64 * 1024)
        chunk.start()
        assert chunk.current_min_phase == 0
        events.run(max_events=10_000_000)
        assert chunk.current_min_phase == len(plan)


class TestAllToAllFabricExecution:
    def test_hierarchical_all_reduce(self):
        fabric = AllToAllFabric(AllToAllShape(2, 4), NET)
        dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims,
                                CollectiveAlgorithm.ENHANCED)
        assert [p.dim for p in plan] == [Dimension.LOCAL, Dimension.ALLTOALL,
                                         Dimension.LOCAL]
        chunk = run_chunk(fabric, plan, 64 * 1024)
        assert chunk.done

    def test_hierarchical_all_to_all(self):
        fabric = AllToAllFabric(AllToAllShape(2, 4), NET)
        dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
        plan = build_phase_plan(CollectiveOp.ALL_TO_ALL, dims)
        chunk = run_chunk(fabric, plan, 64 * 1024)
        assert chunk.done

    def test_single_nam_alltoall(self):
        fabric = AllToAllFabric(AllToAllShape(1, 8), NET, global_switches=7)
        dims = [(d, fabric.dim_size(d)) for d in fabric.dimensions]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims)
        chunk = run_chunk(fabric, plan, 64 * 1024)
        assert chunk.done
