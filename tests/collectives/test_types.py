"""Tests for collective phase-plan construction (Sec. III-D)."""

import pytest

from repro.collectives import CollectiveOp, PhaseSpec, build_phase_plan
from repro.config import CollectiveAlgorithm
from repro.dims import Dimension
from repro.errors import CollectiveError

DIMS_3D = [(Dimension.LOCAL, 4), (Dimension.VERTICAL, 4), (Dimension.HORIZONTAL, 4)]


class TestAllReducePlans:
    def test_baseline_is_per_dimension_all_reduce(self):
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, DIMS_3D,
                                CollectiveAlgorithm.BASELINE)
        assert [p.op for p in plan] == [CollectiveOp.ALL_REDUCE] * 3
        assert [p.dim for p in plan] == [Dimension.LOCAL, Dimension.VERTICAL,
                                         Dimension.HORIZONTAL]
        assert all(p.size_fraction == 1.0 for p in plan)

    def test_enhanced_is_four_phase(self):
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, DIMS_3D,
                                CollectiveAlgorithm.ENHANCED)
        assert [p.op for p in plan] == [
            CollectiveOp.REDUCE_SCATTER,
            CollectiveOp.ALL_REDUCE,
            CollectiveOp.ALL_REDUCE,
            CollectiveOp.ALL_GATHER,
        ]
        assert plan[0].dim is Dimension.LOCAL
        assert plan[-1].dim is Dimension.LOCAL
        # Inter-package phases carry 1/M of the data (Sec. V-C: "reduce
        # the volume of data across inter-package links by 4x").
        assert plan[1].size_fraction == pytest.approx(0.25)
        assert plan[2].size_fraction == pytest.approx(0.25)

    def test_enhanced_without_local_dim_falls_back(self):
        dims = [(Dimension.VERTICAL, 8), (Dimension.HORIZONTAL, 8)]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims,
                                CollectiveAlgorithm.ENHANCED)
        assert [p.op for p in plan] == [CollectiveOp.ALL_REDUCE] * 2

    def test_enhanced_single_dimension_falls_back(self):
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE,
                                [(Dimension.LOCAL, 4)],
                                CollectiveAlgorithm.ENHANCED)
        assert [p.op for p in plan] == [CollectiveOp.ALL_REDUCE]

    def test_size_one_dimensions_skipped(self):
        dims = [(Dimension.LOCAL, 1), (Dimension.VERTICAL, 8),
                (Dimension.HORIZONTAL, 1)]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims)
        assert [p.dim for p in plan] == [Dimension.VERTICAL]

    def test_alltoall_dimension_plan(self):
        dims = [(Dimension.LOCAL, 4), (Dimension.ALLTOALL, 16)]
        plan = build_phase_plan(CollectiveOp.ALL_REDUCE, dims,
                                CollectiveAlgorithm.ENHANCED)
        assert [p.dim for p in plan] == [Dimension.LOCAL, Dimension.ALLTOALL,
                                         Dimension.LOCAL]


class TestReduceScatterPlans:
    def test_fractions_shrink(self):
        plan = build_phase_plan(CollectiveOp.REDUCE_SCATTER, DIMS_3D)
        assert [p.size_fraction for p in plan] == [
            pytest.approx(1.0), pytest.approx(0.25), pytest.approx(1 / 16)]

    def test_order_is_traversal_order(self):
        plan = build_phase_plan(CollectiveOp.REDUCE_SCATTER, DIMS_3D)
        assert [p.dim for p in plan] == [Dimension.LOCAL, Dimension.VERTICAL,
                                         Dimension.HORIZONTAL]


class TestAllGatherPlans:
    def test_reverse_order_growing_fractions(self):
        plan = build_phase_plan(CollectiveOp.ALL_GATHER, DIMS_3D)
        assert [p.dim for p in plan] == [Dimension.HORIZONTAL,
                                         Dimension.VERTICAL, Dimension.LOCAL]
        assert [p.size_fraction for p in plan] == [
            pytest.approx(1 / 16), pytest.approx(0.25), pytest.approx(1.0)]

    def test_inverse_of_reduce_scatter(self):
        rs = build_phase_plan(CollectiveOp.REDUCE_SCATTER, DIMS_3D)
        ag = build_phase_plan(CollectiveOp.ALL_GATHER, DIMS_3D)
        assert [p.dim for p in rs] == [p.dim for p in reversed(ag)]
        assert [p.size_fraction for p in rs] == [
            pytest.approx(p.size_fraction) for p in reversed(ag)]


class TestAllToAllPlans:
    def test_one_phase_per_dimension_full_fraction(self):
        plan = build_phase_plan(CollectiveOp.ALL_TO_ALL, DIMS_3D)
        assert [p.op for p in plan] == [CollectiveOp.ALL_TO_ALL] * 3
        assert all(p.size_fraction == 1.0 for p in plan)


class TestEdgeCases:
    def test_none_op_yields_empty_plan(self):
        assert build_phase_plan(CollectiveOp.NONE, DIMS_3D) == []

    def test_all_degenerate_dims_yield_empty_plan(self):
        dims = [(Dimension.LOCAL, 1), (Dimension.VERTICAL, 1)]
        assert build_phase_plan(CollectiveOp.ALL_REDUCE, dims) == []

    def test_phase_spec_rejects_none(self):
        with pytest.raises(CollectiveError):
            PhaseSpec(Dimension.LOCAL, CollectiveOp.NONE, 1.0)

    def test_phase_spec_rejects_bad_fraction(self):
        with pytest.raises(CollectiveError):
            PhaseSpec(Dimension.LOCAL, CollectiveOp.ALL_REDUCE, 0.0)
        with pytest.raises(CollectiveError):
            PhaseSpec(Dimension.LOCAL, CollectiveOp.ALL_REDUCE, 1.5)
