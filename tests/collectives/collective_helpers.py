"""Shared fixtures for collective algorithm tests: idealized platforms
where timing can be computed by hand."""

import pytest

from repro.collectives import CollectiveContext
from repro.config import LinkConfig, NetworkConfig
from repro.events import EventQueue
from repro.network import FastBackend, Link, RingChannel, SwitchChannel

#: 100 B/cycle, 50-cycle latency, no efficiency loss, no quantum overhead.
IDEAL_LINK = LinkConfig(bandwidth_gbps=100.0, latency_cycles=50.0,
                        packet_size_bytes=512, efficiency=1.0,
                        message_quantum_bytes=None)
IDEAL_NET = NetworkConfig(local_link=IDEAL_LINK, package_link=IDEAL_LINK)


def make_ring(n: int) -> RingChannel:
    nodes = list(range(n))
    links = [Link(i, (i + 1) % n, IDEAL_LINK) for i in range(n)]
    return RingChannel(nodes, links)


def make_switches(num_switches: int, nodes: list[int]) -> list[SwitchChannel]:
    switches = []
    base = max(nodes) + 1
    for s in range(num_switches):
        sid = base + s
        ups = {n: Link(n, sid, IDEAL_LINK) for n in nodes}
        downs = {n: Link(sid, n, IDEAL_LINK) for n in nodes}
        switches.append(SwitchChannel(sid, nodes, ups, downs))
    return switches


class Platform:
    """EventQueue + backend + context bundle for algorithm tests."""

    def __init__(self, endpoint_delay=10.0, reduction_per_kb=0.0, **ctx_kwargs):
        self.events = EventQueue()
        self.backend = FastBackend(self.events, IDEAL_NET)
        self.ctx = CollectiveContext(
            self.backend,
            endpoint_delay_cycles=endpoint_delay,
            reduction_cycles_per_kb=reduction_per_kb,
            **ctx_kwargs,
        )

    def run(self, max_events=5_000_000):
        self.events.run(max_events=max_events)


@pytest.fixture
def platform():
    return Platform()
