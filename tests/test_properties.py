"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.analytical import (
    LinkParams,
    hierarchical_all_reduce_volume,
    ring_all_reduce_cycles,
)
from repro.collectives import (
    CollectiveContext,
    CollectiveOp,
    RingAllGather,
    RingAllReduce,
    RingReduceScatter,
    build_phase_plan,
)
from repro.config import CollectiveAlgorithm, LinkConfig, NetworkConfig
from repro.dims import Dimension
from repro.events import EventQueue
from repro.network import FastBackend, Link, RingChannel
from repro.system import split_into_chunks
from repro.workload import dumps, loads

IDEAL = LinkConfig(bandwidth_gbps=100.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL)
PARAMS = LinkParams(bytes_per_cycle=100.0, latency_cycles=50.0,
                    endpoint_delay_cycles=10.0)


def make_ring(n):
    links = [Link(i, (i + 1) % n, IDEAL) for i in range(n)]
    return RingChannel(list(range(n)), links)


def run_ring(algorithm_cls, n, size):
    events = EventQueue()
    ctx = CollectiveContext(FastBackend(events, NET),
                            reduction_cycles_per_kb=0.0)
    algo = algorithm_cls(ctx, make_ring(n), size)
    algo.start_all()
    events.run(max_events=5_000_000)
    assert algo.done
    return algo.finished_at


# -- event queue ordering ------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e9,
                          allow_nan=False), min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(times):
    q = EventQueue()
    fired = []
    for t in times:
        q.schedule_at(t, lambda t=t: fired.append(q.now))
    q.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


# -- ring collectives ------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=8),
       size=st.floats(min_value=1024.0, max_value=16e6))
def test_ring_all_reduce_matches_analytical(n, size):
    """On an uncontended dedicated ring, the simulation must agree with
    the closed form exactly (all nodes run in lock step)."""
    simulated = run_ring(RingAllReduce, n, size)
    analytical = ring_all_reduce_cycles(size, n, PARAMS)
    assert math.isclose(simulated, analytical, rel_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=8),
       size=st.floats(min_value=1024.0, max_value=1e6))
def test_all_reduce_equals_scatter_plus_gather(n, size):
    ar = run_ring(RingAllReduce, n, size)
    rs = run_ring(RingReduceScatter, n, size)
    ag = run_ring(RingAllGather, n, size)
    assert math.isclose(ar, rs + ag, rel_tol=1e-9)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=6),
       small=st.floats(min_value=1024.0, max_value=1e5),
       factor=st.floats(min_value=1.5, max_value=20.0))
def test_ring_time_monotone_in_size(n, small, factor):
    assert run_ring(RingAllReduce, n, small * factor) > \
        run_ring(RingAllReduce, n, small)


# -- chunking ------------------------------------------------------------------------

@given(total=st.floats(min_value=1.0, max_value=1e9),
       splits=st.integers(min_value=1, max_value=64))
def test_chunks_sum_to_total(total, splits):
    chunks = split_into_chunks(total, splits)
    assert math.isclose(sum(chunks), total, rel_tol=1e-9)
    assert 1 <= len(chunks) <= splits
    assert all(c > 0 for c in chunks)


# -- phase plans ------------------------------------------------------------------------

_dims = st.lists(
    st.sampled_from([Dimension.LOCAL, Dimension.VERTICAL, Dimension.HORIZONTAL]),
    min_size=1, max_size=3, unique=True,
).flatmap(lambda ds: st.tuples(
    st.just(ds),
    st.lists(st.integers(min_value=2, max_value=16),
             min_size=len(ds), max_size=len(ds)),
)).map(lambda pair: list(zip(*pair)))


@given(dims=_dims)
def test_reduce_scatter_and_all_gather_plans_are_inverse(dims):
    rs = build_phase_plan(CollectiveOp.REDUCE_SCATTER, dims)
    ag = build_phase_plan(CollectiveOp.ALL_GATHER, dims)
    assert [p.dim for p in rs] == [p.dim for p in reversed(ag)]
    for a, b in zip(rs, reversed(ag)):
        assert math.isclose(a.size_fraction, b.size_fraction)


@given(dims=_dims)
def test_plan_fractions_are_valid(dims):
    for op in (CollectiveOp.ALL_REDUCE, CollectiveOp.REDUCE_SCATTER,
               CollectiveOp.ALL_GATHER, CollectiveOp.ALL_TO_ALL):
        for algorithm in CollectiveAlgorithm:
            for spec in build_phase_plan(op, dims, algorithm):
                assert 0 < spec.size_fraction <= 1


@given(dims=_dims)
def test_enhanced_never_moves_more_inter_package_bytes(dims):
    sizes = [n for _, n in dims]
    baseline = hierarchical_all_reduce_volume(sizes, enhanced=False)
    enhanced = hierarchical_all_reduce_volume(sizes, enhanced=True)
    assert enhanced <= baseline + 1e-12


# -- workload parser round trip -----------------------------------------------------------

_comm = st.sampled_from(["NONE", "ALLREDUCE", "ALLGATHER", "REDUCESCATTER",
                         "ALLTOALL"])


@st.composite
def _workload_text(draw):
    num_layers = draw(st.integers(min_value=1, max_value=5))
    lines = ["DATA", str(num_layers)]
    for i in range(num_layers):
        ops = [draw(_comm) for _ in range(3)]
        sizes = [0 if op == "NONE" else draw(st.integers(1, 10**9))
                 for op in ops]
        lines.append(f"layer{i}")
        lines.append(" ".join(str(draw(st.integers(0, 10**9)))
                              for _ in range(3)))
        lines.append(" ".join(ops))
        lines.append(" ".join(str(s) for s in sizes))
        lines.append(str(draw(st.floats(min_value=0.0, max_value=100.0,
                                        allow_nan=False))))
    return "\n".join(lines)


@settings(max_examples=50, deadline=None)
@given(text=_workload_text())
def test_parser_round_trip(text):
    model = loads(text, name="prop")
    again = loads(dumps(model), name="prop")
    assert again.layers == model.layers
    assert again.strategy == model.strategy
