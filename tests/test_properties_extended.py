"""Extended property-based tests: direct algorithms, routing, faults,
pipeline bounds, and multi-phase volumes."""

import math

from hypothesis import given, settings, strategies as st

from repro.analytical import direct_all_reduce_cycles, LinkParams
from repro.collectives import CollectiveContext, DirectAllReduce
from repro.config import (
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.events import EventQueue
from repro.network import FastBackend, Link, SwitchChannel
from repro.network.faults import degrade_random_links
from repro.network.physical import TorusFabric
from repro.network.routing import FabricRouter
from repro.system import System
from repro.topology import build_torus_topology
from repro.workload import PipelineStage, PipelineTrainingLoop

IDEAL = LinkConfig(bandwidth_gbps=100.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL,
                    router_latency_cycles=1.0)
PAPER_NET = paper_network_config()


def make_switches(num_switches, nodes):
    switches = []
    base = max(nodes) + 1
    for s in range(num_switches):
        sid = base + s
        ups = {n: Link(n, sid, IDEAL) for n in nodes}
        downs = {n: Link(sid, n, IDEAL) for n in nodes}
        switches.append(SwitchChannel(sid, nodes, ups, downs))
    return switches


# -- direct algorithms vs analytical -------------------------------------------

@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=8),
       size=st.floats(min_value=2048.0, max_value=4e6))
def test_direct_all_reduce_never_beats_analytical_bound(n, size):
    """With one dedicated switch per peer, the simulated direct all-reduce
    can never beat the closed-form serialization + latency bound."""
    events = EventQueue()
    ctx = CollectiveContext(FastBackend(events, NET),
                            reduction_cycles_per_kb=0.0,
                            endpoint_delay_cycles=10.0)
    nodes = list(range(n))
    algo = DirectAllReduce(ctx, nodes, make_switches(max(1, n - 1), nodes), size)
    algo.start_all()
    events.run(max_events=2_000_000)
    assert algo.done
    params = LinkParams(bytes_per_cycle=100.0, latency_cycles=50.0,
                        endpoint_delay_cycles=10.0)
    bound = direct_all_reduce_cycles(size, n, params, parallel_links=n - 1)
    assert algo.finished_at >= bound - 1e-6


# -- routing -------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=3, max_value=12),
       src=st.integers(min_value=0, max_value=11),
       dst=st.integers(min_value=0, max_value=11))
def test_ring_routing_is_shortest_way_round(n, src, dst):
    src, dst = src % n, dst % n
    if src == dst:
        return
    fabric = TorusFabric(TorusShape(1, n, 1), NET, horizontal_rings=1)
    router = FabricRouter(fabric)
    forward = (dst - src) % n
    backward = (src - dst) % n
    assert router.hop_count(src, dst) == min(forward, backward)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_routing_survives_random_degradation(seed):
    """Degrading links changes weights, never connectivity."""
    fabric = TorusFabric(TorusShape(2, 2, 2), NET)
    degrade_random_links(fabric, count=6, bandwidth_factor=0.5, seed=seed)
    router = FabricRouter(fabric)
    assert all(router.reachable(0, d) for d in range(1, 8))


# -- faults ---------------------------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(factor=st.floats(min_value=0.1, max_value=0.9))
def test_degradation_never_speeds_up_collectives(factor):
    from repro.collectives import CollectiveOp

    def all_reduce_time(degrade):
        fabric = TorusFabric(TorusShape(2, 2, 2), PAPER_NET)
        if degrade:
            degrade_random_links(fabric, count=4, bandwidth_factor=factor,
                                 seed=5, kind="package")
        from repro.topology import LogicalTopology

        system = System(LogicalTopology(fabric),
                        SimulationConfig(system=SystemConfig(),
                                         network=PAPER_NET))
        c = system.request_collective(CollectiveOp.ALL_REDUCE, 1 << 20)
        system.run_until_idle(max_events=100_000_000)
        return c.duration_cycles

    assert all_reduce_time(True) >= all_reduce_time(False)


# -- pipeline bounds --------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(stages=st.integers(min_value=2, max_value=6),
       microbatches=st.integers(min_value=1, max_value=12),
       fwd=st.floats(min_value=1000.0, max_value=100_000.0))
def test_pipeline_respects_gpipe_lower_bound(stages, microbatches, fwd):
    cfg = SystemConfig(horizontal_rings=2)
    topo = build_torus_topology(TorusShape(1, 8, 1), PAPER_NET, cfg)
    system = System(topo, SimulationConfig(system=cfg, network=PAPER_NET))
    bwd = 2 * fwd
    stage_list = [PipelineStage(i, i, fwd, bwd, 64 * 1024.0)
                  for i in range(stages)]
    report = PipelineTrainingLoop(system, stage_list, microbatches).run(
        max_events=50_000_000)
    bound = (microbatches + stages - 1) * (fwd + bwd)
    assert report.total_cycles >= bound - 1e-6
    assert 0.0 <= report.bubble_fraction < 1.0


# -- multi-phase volume conservation ----------------------------------------------

@settings(max_examples=10, deadline=None)
@given(local=st.integers(min_value=1, max_value=4),
       horizontal=st.integers(min_value=2, max_value=4),
       vertical=st.integers(min_value=1, max_value=4))
def test_baseline_all_reduce_moves_expected_bytes(local, horizontal, vertical):
    """Measured link bytes must equal the Sec. V-B volume arithmetic:
    per node, sum over dims of 2(n-1)/n times the payload."""
    from repro.analytical import hierarchical_all_reduce_volume
    from repro.collectives import CollectiveOp
    from repro.topology import LogicalTopology

    shape = TorusShape(local, horizontal, vertical)
    fabric = TorusFabric(shape, NET)
    system = System(LogicalTopology(fabric),
                    SimulationConfig(system=SystemConfig(preferred_set_splits=2),
                                     network=NET))
    size = 1 << 20
    system.request_collective(CollectiveOp.ALL_REDUCE, size)
    system.run_until_idle(max_events=200_000_000)
    measured = sum(l.stats.bytes for l in fabric.links)
    expected = (hierarchical_all_reduce_volume(
        [local, horizontal, vertical], enhanced=False) * size * shape.num_npus)
    assert math.isclose(measured, expected, rel_tol=1e-9)
