"""Tests for the astra-repro command line interface."""

import pytest

from repro.cli import build_arg_parser, main
from repro.workload import dumps
from repro.models import mlp


class TestArgumentParsing:
    def test_train_defaults(self):
        args = build_arg_parser().parse_args(["train"])
        assert args.model == "resnet50"
        assert args.shape == "2x4x4"
        assert args.num_passes == 2

    def test_collective_defaults(self):
        args = build_arg_parser().parse_args(["collective"])
        assert args.op == "allreduce"
        assert args.size_mb == 8.0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_arg_parser().parse_args([])


class TestCollectiveCommand:
    def test_torus_all_reduce(self, capsys):
        code = main(["collective", "--op", "allreduce", "--size-mb", "1",
                     "--shape", "2x2x2", "--algorithm", "enhanced"])
        assert code == 0
        out = capsys.readouterr().out
        assert "allreduce" in out
        assert "cycles" in out

    def test_alltoall_topology(self, capsys):
        code = main(["collective", "--topology", "AllToAll", "--shape", "2x4",
                     "--op", "alltoall", "--size-mb", "1"])
        assert code == 0
        assert "alltoall" in capsys.readouterr().out

    def test_breakdown_flag(self, capsys):
        code = main(["collective", "--size-mb", "1", "--shape", "2x2x2",
                     "--breakdown"])
        assert code == 0
        assert "P0" in capsys.readouterr().out

    def test_bad_shape_is_reported(self, capsys):
        code = main(["collective", "--shape", "banana"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_torus_needs_three_dims(self, capsys):
        code = main(["collective", "--shape", "2x4"])
        assert code == 2

    def test_alltoall_needs_two_dims(self, capsys):
        code = main(["collective", "--topology", "AllToAll",
                     "--shape", "2x2x2"])
        assert code == 2


class TestTrainCommand:
    def test_mlp_training(self, capsys):
        code = main(["train", "--model", "mlp", "--shape", "2x2x2",
                     "--num-passes", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mlp" in out
        assert "iteration" in out

    def test_layer_table_flag(self, capsys):
        code = main(["train", "--model", "mlp", "--shape", "2x2x2",
                     "--num-passes", "1", "--layer-table"])
        assert code == 0
        assert "fc1" in capsys.readouterr().out

    def test_workload_file(self, tmp_path, capsys):
        path = tmp_path / "wl.txt"
        path.write_text(dumps(mlp(widths=(256, 128), input_features=64)))
        code = main(["train", "--workload-file", str(path),
                     "--shape", "2x2x2", "--num-passes", "1"])
        assert code == 0


class TestBandwidthCommand:
    def test_bandwidth_table(self, capsys):
        code = main(["bandwidth", "--shape", "2x2x2", "--sizes-mb", "0.25,1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "algbw" in out and "busbw" in out

    def test_bad_sizes_list(self, capsys):
        code = main(["bandwidth", "--shape", "2x2x2", "--sizes-mb", "a,b"])
        assert code == 2


class TestMemoryCommand:
    def test_memory_report(self, capsys):
        code = main(["memory", "--model", "resnet50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "parameters" in out
        assert "HBM" in out

    def test_memory_overflow_flagged(self, capsys):
        code = main(["memory", "--model", "resnet50", "--hbm-gb", "0.1"])
        assert code == 1
        assert "WARNING" in capsys.readouterr().out


class TestGlobalExecutionFlags:
    def test_defaults(self):
        args = build_arg_parser().parse_args(["collective"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache
        assert not args.profile

    def test_profile_prints_phase_table(self, capsys):
        code = main(["--profile", "collective", "--size-mb", "1",
                     "--shape", "2x2x2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile [collective]" in out
        assert "events/sec" in out

    def test_cache_dir_reports_summary_and_reuses(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path), "collective", "--size-mb", "1",
                "--shape", "2x2x2"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 hits" in cold and "1 stored" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "1 hits" in warm and "0 stored" in warm
        # Identical reported cycles from the cached payload.
        assert cold.splitlines()[0] == warm.splitlines()[0]

    def test_no_cache_disables_cache_dir(self, tmp_path, capsys):
        argv = ["--cache-dir", str(tmp_path), "--no-cache", "collective",
                "--size-mb", "1", "--shape", "2x2x2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "run cache" not in out

    def test_jobs_flag_gives_identical_output(self, capsys):
        argv = ["collective", "--size-mb", "1", "--shape", "2x2x2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(["--jobs", "4"] + argv) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_arg_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8421
        assert args.state_dir == "serve-state"
        assert args.queue_limit == 16
        assert args.retry_after == 1.0
        assert args.progress_every_events == 4096

    def test_serve_accepts_supervision_flags(self):
        args = build_arg_parser().parse_args(
            ["serve", "--port", "0", "--queue-limit", "4",
             "--point-timeout", "30", "--max-point-retries", "1",
             "--quarantine-dir", "q"])
        assert args.port == 0
        assert args.queue_limit == 4
        assert args.point_timeout == 30.0
        assert args.max_point_retries == 1
        assert args.quarantine_dir == "q"

    def test_serve_rejects_bad_queue_limit(self, tmp_path, capsys):
        code = main(["serve", "--port", "0", "--queue-limit", "0",
                     "--state-dir", str(tmp_path / "s")])
        assert code == 2
        assert "queue_limit" in capsys.readouterr().err
