"""Smoke tests: the example scripts must run end to end.

The two ResNet-scale examples (quickstart, topology comparison) are
exercised at reduced scale elsewhere; here we execute the fast examples
outright and import-check the rest.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "custom_workload_file.py",
    "logical_mapping.py",
    "pipeline_parallel.py",
]

ALL_EXAMPLES = [
    "quickstart.py",
    "topology_comparison.py",
    "transformer_hybrid.py",
    "dlrm_alltoall.py",
    "custom_workload_file.py",
    "logical_mapping.py",
    "future_topologies.py",
    "pipeline_parallel.py",
    "bandwidth_test.py",
    "design_space_exploration.py",
]


class TestExamples:
    def test_all_examples_exist(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        missing = set(ALL_EXAMPLES) - present
        assert not missing, f"missing examples: {missing}"

    @pytest.mark.parametrize("script", ALL_EXAMPLES)
    def test_examples_compile(self, script):
        path = EXAMPLES / script
        source = path.read_text()
        compile(source, str(path), "exec")

    @pytest.mark.parametrize("script", FAST_EXAMPLES)
    def test_fast_examples_run(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()
