"""Unit tests for clocks, byte units and formatting."""

import pytest

from repro.config.units import Clock, DEFAULT_CLOCK, GB, KB, MB, format_bytes
from repro.errors import ConfigError


class TestClock:
    def test_default_is_one_ghz(self):
        assert DEFAULT_CLOCK.frequency_hz == 1e9

    def test_cycle_second_round_trip(self):
        clock = Clock(frequency_hz=2e9)
        assert clock.seconds_to_cycles(clock.cycles_to_seconds(1000.0)) == pytest.approx(1000.0)

    def test_one_ghz_cycle_is_one_nanosecond(self):
        assert DEFAULT_CLOCK.cycles_to_seconds(1.0) == pytest.approx(1e-9)

    def test_microseconds(self):
        assert DEFAULT_CLOCK.cycles_to_microseconds(1500.0) == pytest.approx(1.5)

    def test_bandwidth_conversion_at_one_ghz(self):
        # 200 GB/s at 1 GHz = 200 bytes per cycle.
        assert DEFAULT_CLOCK.bandwidth_bytes_per_cycle(200.0) == pytest.approx(200.0)

    def test_bandwidth_conversion_scales_with_clock(self):
        clock = Clock(frequency_hz=2e9)
        assert clock.bandwidth_bytes_per_cycle(200.0) == pytest.approx(100.0)

    def test_invalid_frequency(self):
        with pytest.raises(ConfigError):
            Clock(frequency_hz=0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigError):
            DEFAULT_CLOCK.bandwidth_bytes_per_cycle(-1.0)


class TestUnits:
    def test_byte_constants(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    @pytest.mark.parametrize("value,expected", [
        (0, "0 B"),
        (512, "512 B"),
        (2048, "2.0 KB"),
        (4 * MB, "4.0 MB"),
        (3 * GB, "3.0 GB"),
    ])
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ConfigError):
            format_bytes(-1)
