"""Validation tests for the Table III / Table IV parameter dataclasses."""

import pytest

from repro.config import (
    AllToAllShape,
    CollectiveAlgorithm,
    ComputeConfig,
    LinkConfig,
    NetworkConfig,
    SimulationConfig,
    SystemConfig,
    TorusShape,
)
from repro.errors import ConfigError


def make_link(**kwargs):
    defaults = dict(bandwidth_gbps=25.0, latency_cycles=200.0, packet_size_bytes=256)
    defaults.update(kwargs)
    return LinkConfig(**defaults)


class TestLinkConfig:
    def test_effective_bandwidth_applies_efficiency(self):
        link = make_link(bandwidth_gbps=100.0, efficiency=0.5)
        assert link.effective_bytes_per_cycle() == pytest.approx(50.0)

    def test_serialization_without_quantum(self):
        link = make_link(bandwidth_gbps=100.0, efficiency=1.0,
                         message_quantum_bytes=None)
        assert link.serialization_cycles(1000.0) == pytest.approx(10.0)

    def test_serialization_with_quantum_overhead(self):
        link = make_link(bandwidth_gbps=100.0, efficiency=1.0,
                         message_quantum_bytes=512, quantum_overhead_cycles=10.0)
        # 1024 bytes = 2 quanta -> 10.24 wire cycles + 20 overhead.
        assert link.serialization_cycles(1024.0) == pytest.approx(10.24 + 20.0)

    def test_partial_quantum_rounds_up(self):
        link = make_link(bandwidth_gbps=100.0, efficiency=1.0,
                         message_quantum_bytes=512, quantum_overhead_cycles=10.0)
        assert link.serialization_cycles(513.0) == pytest.approx(5.13 + 20.0)

    def test_zero_size_message(self):
        assert make_link().serialization_cycles(0.0) == 0.0

    def test_scaled_multiplies_bandwidth(self):
        link = make_link(bandwidth_gbps=25.0)
        assert link.scaled(8.0).bandwidth_gbps == pytest.approx(200.0)
        assert link.scaled(8.0).latency_cycles == link.latency_cycles

    @pytest.mark.parametrize("kwargs", [
        dict(bandwidth_gbps=0.0),
        dict(latency_cycles=-1.0),
        dict(packet_size_bytes=0),
        dict(efficiency=0.0),
        dict(efficiency=1.5),
        dict(message_quantum_bytes=0),
        dict(quantum_overhead_cycles=-1.0),
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigError):
            make_link(**kwargs)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            make_link().scaled(0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            make_link().serialization_cycles(-1.0)


class TestNetworkConfig:
    def test_flit_width_bytes(self):
        net = NetworkConfig(local_link=make_link(), package_link=make_link(),
                            flit_width_bits=1024)
        assert net.flit_width_bytes == 128

    @pytest.mark.parametrize("kwargs", [
        dict(flit_width_bits=0),
        dict(router_latency_cycles=-1.0),
        dict(vcs_per_vnet=0),
        dict(buffers_per_vc=0),
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigError):
            NetworkConfig(local_link=make_link(), package_link=make_link(), **kwargs)


class TestTorusShape:
    def test_npu_and_package_counts(self):
        shape = TorusShape(4, 4, 4)
        assert shape.num_npus == 64
        assert shape.num_packages == 16

    def test_str(self):
        assert str(TorusShape(2, 4, 8)) == "2x4x8"

    def test_one_dimensional(self):
        assert TorusShape(1, 8, 1).num_npus == 8

    @pytest.mark.parametrize("dims", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_invalid_dimensions(self, dims):
        with pytest.raises(ConfigError):
            TorusShape(*dims)


class TestAllToAllShape:
    def test_counts(self):
        shape = AllToAllShape(4, 16)
        assert shape.num_npus == 64
        assert str(shape) == "4x16"

    def test_needs_two_packages(self):
        with pytest.raises(ConfigError):
            AllToAllShape(1, 1)

    def test_needs_positive_local(self):
        with pytest.raises(ConfigError):
            AllToAllShape(0, 4)


class TestSystemConfig:
    def test_defaults_valid(self):
        cfg = SystemConfig()
        assert cfg.algorithm is CollectiveAlgorithm.BASELINE

    @pytest.mark.parametrize("kwargs", [
        dict(local_rings=0),
        dict(global_switches=0),
        dict(endpoint_delay_cycles=-1.0),
        dict(preferred_set_splits=0),
        dict(dispatch_threshold=0),
        dict(dispatch_batch=0),
        dict(reduction_cycles_per_kb=-1.0),
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigError):
            SystemConfig(**kwargs)


class TestComputeConfig:
    def test_scaled(self):
        cfg = ComputeConfig(compute_scale=1.0)
        assert cfg.scaled(4.0).compute_scale == pytest.approx(4.0)

    @pytest.mark.parametrize("kwargs", [
        dict(array_rows=0),
        dict(dram_bandwidth_gbps=0.0),
        dict(non_gemm_overhead_cycles=-1.0),
        dict(compute_scale=0.0),
        dict(bytes_per_element=0),
        dict(clock_ghz=0.0),
    ])
    def test_invalid_values(self, kwargs):
        with pytest.raises(ConfigError):
            ComputeConfig(**kwargs)


class TestSimulationConfig:
    def test_num_passes_validated(self):
        with pytest.raises(ConfigError):
            SimulationConfig(num_passes=0)
