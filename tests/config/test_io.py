"""Tests for configuration serialization."""

import pytest

from repro.config import (
    CollectiveAlgorithm,
    SchedulingPolicy,
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    load_config,
    paper_simulation_config,
    save_config,
)
from repro.errors import ConfigError


class TestRoundTrip:
    def test_default_bundle(self):
        cfg = paper_simulation_config()
        assert config_from_json(config_to_json(cfg)) == cfg

    def test_non_default_values_survive(self):
        cfg = paper_simulation_config(
            algorithm=CollectiveAlgorithm.ENHANCED,
            scheduling_policy=SchedulingPolicy.FIFO,
            compute_scale=4.0,
            local_bandwidth_scale=0.125,
            num_passes=5,
        )
        again = config_from_json(config_to_json(cfg))
        assert again == cfg
        assert again.system.algorithm is CollectiveAlgorithm.ENHANCED
        assert again.compute.compute_scale == 4.0

    def test_dict_is_json_primitive_only(self):
        import json

        d = config_to_dict(paper_simulation_config())
        json.dumps(d)  # must not raise
        assert d["system"]["algorithm"] == "baseline"

    def test_file_round_trip(self, tmp_path):
        cfg = paper_simulation_config(num_passes=3)
        path = tmp_path / "config.json"
        save_config(cfg, path)
        assert load_config(path) == cfg


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(ConfigError):
            config_from_json("{not json")

    def test_missing_fields(self):
        with pytest.raises(ConfigError):
            config_from_dict({"system": {}})

    def test_bad_enum_value(self):
        d = config_to_dict(paper_simulation_config())
        d["system"]["algorithm"] = "quantum"
        with pytest.raises(ConfigError):
            config_from_dict(d)

    def test_validation_still_applies(self):
        d = config_to_dict(paper_simulation_config())
        d["num_passes"] = 0
        with pytest.raises(ConfigError):
            config_from_dict(d)
