"""The Table IV presets must match the paper's published parameters."""

import pytest

from repro.config import (
    CollectiveAlgorithm,
    PAPER_LOCAL_LINK,
    PAPER_PACKAGE_LINK,
    SchedulingPolicy,
    TopologyKind,
    paper_network_config,
    paper_simulation_config,
    paper_system_config,
    symmetric_network_config,
)


class TestTableIVLinks:
    def test_intra_package_link(self):
        assert PAPER_LOCAL_LINK.bandwidth_gbps == 200.0
        assert PAPER_LOCAL_LINK.latency_cycles == 90.0
        assert PAPER_LOCAL_LINK.packet_size_bytes == 512
        assert PAPER_LOCAL_LINK.efficiency == pytest.approx(0.94)

    def test_inter_package_link(self):
        assert PAPER_PACKAGE_LINK.bandwidth_gbps == 25.0
        assert PAPER_PACKAGE_LINK.latency_cycles == 200.0
        assert PAPER_PACKAGE_LINK.packet_size_bytes == 256
        assert PAPER_PACKAGE_LINK.efficiency == pytest.approx(0.94)

    def test_local_is_8x_package_bandwidth(self):
        # Sec. V-C: "local link bandwidth within a package is assumed to
        # be 8x the inter-package links".
        ratio = PAPER_LOCAL_LINK.bandwidth_gbps / PAPER_PACKAGE_LINK.bandwidth_gbps
        assert ratio == pytest.approx(8.0)

    def test_message_quantum_matches_table_iv(self):
        # Table IV: message size 512 B, endpoint delay 10 cycles.
        assert PAPER_PACKAGE_LINK.message_quantum_bytes == 512
        assert PAPER_PACKAGE_LINK.quantum_overhead_cycles == 10.0


class TestNetworkPresets:
    def test_flit_and_router(self):
        net = paper_network_config()
        assert net.flit_width_bits == 1024
        assert net.router_latency_cycles == 1.0
        assert net.vcs_per_vnet == 50
        assert net.buffers_per_vc == 5000

    def test_local_bandwidth_scale(self):
        net = paper_network_config(local_bandwidth_scale=0.125)
        assert net.local_link.bandwidth_gbps == pytest.approx(25.0)

    def test_symmetric_config_equalizes_links(self):
        net = symmetric_network_config()
        assert net.local_link.bandwidth_gbps == net.package_link.bandwidth_gbps


class TestSystemPresets:
    def test_defaults(self):
        cfg = paper_system_config()
        assert cfg.topology is TopologyKind.TORUS
        assert cfg.scheduling_policy is SchedulingPolicy.LIFO
        assert cfg.local_rings == 2
        assert cfg.endpoint_delay_cycles == 10.0
        assert cfg.preferred_set_splits == 16
        # Sec. V-F: "issues 16 new chunks ... if there are fewer than 8".
        assert cfg.dispatch_threshold == 8
        assert cfg.dispatch_batch == 16

    def test_algorithm_passthrough(self):
        cfg = paper_system_config(algorithm=CollectiveAlgorithm.ENHANCED)
        assert cfg.algorithm is CollectiveAlgorithm.ENHANCED


class TestSimulationPreset:
    def test_bundle(self):
        cfg = paper_simulation_config(compute_scale=2.0, num_passes=3)
        assert cfg.compute.compute_scale == pytest.approx(2.0)
        assert cfg.compute.array_rows == 256
        assert cfg.compute.array_cols == 256
        assert cfg.num_passes == 3
        assert cfg.network is not None
