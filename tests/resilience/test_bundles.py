"""The shared diagnostic-bundle format: write/read round trip."""

from repro.resilience.bundles import read_bundle, write_bundle


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = write_bundle(str(tmp_path / "bundles"), "poison-0",
                            {"kind": "poison-point", "attempts": 3})
        assert path.endswith("poison-0.json")
        assert read_bundle(path) == {"kind": "poison-point", "attempts": 3}

    def test_write_creates_directory_and_trailing_newline(self, tmp_path):
        path = write_bundle(str(tmp_path / "a" / "b"), "x", {"k": 1})
        with open(path) as f:
            text = f.read()
        assert text.endswith("\n")


class TestDefensiveRead:
    def test_missing_bundle_reads_as_none(self, tmp_path):
        assert read_bundle(str(tmp_path / "nope.json")) is None

    def test_truncated_bundle_reads_as_none(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"kind": "poison-po')
        assert read_bundle(str(path)) is None

    def test_non_object_bundle_reads_as_none(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        assert read_bundle(str(path)) is None
