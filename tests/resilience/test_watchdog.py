"""Watchdog stall detection: trips on retry storms, silent on health.

The stall scenario: a node pauses forever while the transport's
``max_paused_waits`` valve is huge, so retransmission timers fire for
eternity without a single delivery — exactly the "events keep firing,
nothing happens" hang the watchdog exists to kill.
"""

import json
from dataclasses import replace

import pytest

from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape, TransportConfig
from repro.errors import ConfigError, StallError
from repro.harness.runners import run_collective, torus_platform
from repro.network.fault_schedule import FaultAction, FaultEvent, FaultSchedule
from repro.resilience import ResilienceConfig, WatchdogConfig

#: Tight timers so the stall develops (and is detected) quickly.
STORMY = TransportConfig(timeout_cycles=2_000.0, timeout_per_byte=0.1,
                         max_retries=3, backoff_base_cycles=500.0,
                         backoff_max_cycles=5_000.0, jitter=0.0,
                         max_paused_waits=10**9)


def stalling_spec(bundle_dir=None, action="abort"):
    """A platform where node 3 pauses at t=1000 and never resumes."""
    spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
    spec.config = replace(
        spec.config, system=replace(spec.config.system, transport=STORMY))
    spec.fault_schedule = FaultSchedule([
        FaultEvent(time=1_000.0, action=FaultAction.NODE_PAUSE, node=3),
    ])
    spec.resilience = ResilienceConfig(
        watchdog=WatchdogConfig(stall_cycles=50_000.0, check_every_events=16,
                                action=action,
                                bundle_dir=bundle_dir),
        label=spec.name)
    return spec


class TestStallDetection:
    def test_retry_storm_trips_stall_error(self):
        with pytest.raises(StallError, match="no progress"):
            run_collective(stalling_spec(), CollectiveOp.ALL_REDUCE,
                           256 * 1024, max_events=2_000_000)

    def test_bundle_written_with_diagnostics(self, tmp_path):
        with pytest.raises(StallError, match="diagnostic bundle"):
            run_collective(stalling_spec(bundle_dir=str(tmp_path)),
                           CollectiveOp.ALL_REDUCE, 256 * 1024,
                           max_events=2_000_000)
        bundles = sorted(tmp_path.glob("stall-*.json"))
        assert len(bundles) == 1
        data = json.loads(bundles[0].read_text())
        assert "wait-for summary" in data["wait_for"]
        assert data["diagnostics"]["faults"]["paused_nodes"] == [3]
        assert data["diagnostics"]["transport"]["paused_waits"] > 0
        assert data["stalled_for_cycles"] >= 50_000.0

    def test_action_checkpoint_also_snapshots(self, tmp_path):
        with pytest.raises(StallError):
            run_collective(stalling_spec(bundle_dir=str(tmp_path),
                                         action="checkpoint"),
                           CollectiveOp.ALL_REDUCE, 256 * 1024,
                           max_events=2_000_000)
        assert list(tmp_path.glob("stall-*.ckpt.json")), (
            "action='checkpoint' must leave a snapshot beside the bundle")

    def test_healthy_run_never_trips_and_is_cycle_identical(self):
        """Criterion 5 spot-check: the watchdog observes through the
        queue watcher, so enabling it must not move a single cycle."""
        def run(watchdog):
            spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
            if watchdog:
                spec.resilience = ResilienceConfig(
                    watchdog=WatchdogConfig(stall_cycles=5_000.0,
                                            check_every_events=1),
                    label=spec.name)
            return run_collective(spec, CollectiveOp.ALL_REDUCE, 256 * 1024)

        bare = run(watchdog=False)
        watched = run(watchdog=True)
        assert watched.duration_cycles == bare.duration_cycles
        assert watched.system.now == bare.system.now
        assert (watched.system.events.events_processed
                == bare.system.events.events_processed)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"stall_cycles": 0.0},
        {"check_every_events": 0},
        {"action": "explode"},
        {"action": "checkpoint"},  # needs bundle_dir
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            WatchdogConfig(**kwargs)
