"""The chaos harness: seeded, classified, never silently hung."""

import random

import pytest

from repro.config.parameters import TorusShape
from repro.errors import (
    CollectiveError,
    ReproError,
    SimulationError,
    StallError,
    TransportError,
)
from repro.harness.runners import torus_platform
from repro.resilience import ChaosConfig, Outcome, run_chaos
from repro.resilience.chaos import _classify, fuzz_schedule, fuzz_transport


class TestCampaign:
    def test_small_fast_campaign_all_classified(self):
        report = run_chaos(ChaosConfig(iterations=8, seed=7,
                                       backends=("fast",)))
        assert len(report.runs) == 8
        assert report.ok, report.format()
        assert all(run.outcome is not Outcome.FAILURE for run in report.runs)

    def test_detailed_backend_iteration(self):
        report = run_chaos(ChaosConfig(iterations=2, seed=3,
                                       backends=("detailed",)))
        assert report.ok, report.format()
        assert all(run.backend == "detailed" for run in report.runs)

    def test_campaign_is_deterministic(self):
        config = ChaosConfig(iterations=6, seed=11, backends=("fast",))
        a = run_chaos(config).to_dict()
        b = run_chaos(config).to_dict()
        assert a == b

    def test_report_round_trips_to_json(self):
        import json

        report = run_chaos(ChaosConfig(iterations=2, seed=0,
                                       backends=("fast",)))
        assert json.loads(json.dumps(report.to_dict())) == report.to_dict()
        assert "verdict" in report.format()

    @pytest.mark.parametrize("kwargs", [
        {"iterations": 0},
        {"backends": ()},
        {"backends": ("fast", "imaginary")},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ReproError):
            ChaosConfig(**kwargs)


class TestFuzzers:
    def fabric(self):
        spec = torus_platform(TorusShape(2, 2, 2))
        return spec.topology_builder(spec.config.system).fabric

    def test_fuzzed_schedule_installs_against_fabric(self):
        """Every fuzzed schedule must reference only real links/nodes."""
        from repro.events import EventQueue

        fabric = self.fabric()
        pairs = sorted({(l.src, l.dst) for l in fabric.links})
        for i in range(20):
            schedule = fuzz_schedule(random.Random(i), pairs, fabric.num_npus)
            schedule.install(fabric, EventQueue())  # raises on a bad ref

    def test_fuzzers_are_seed_deterministic(self):
        fabric = self.fabric()
        pairs = sorted({(l.src, l.dst) for l in fabric.links})
        s1 = fuzz_schedule(random.Random(42), pairs, fabric.num_npus)
        s2 = fuzz_schedule(random.Random(42), pairs, fabric.num_npus)
        assert s1.to_dict() == s2.to_dict()
        assert fuzz_transport(random.Random(42)) == fuzz_transport(
            random.Random(42))


class TestClassification:
    @pytest.mark.parametrize("exc,expected", [
        (StallError("no progress"), Outcome.STALL),
        (CollectiveError("phase 2 stuck"), Outcome.GRACEFUL_FAILURE),
        (TransportError("gave up"), Outcome.GRACEFUL_FAILURE),
        (SimulationError("deadlock\nwait-for summary at t=1: ..."),
         Outcome.DIAGNOSED_DEADLOCK),
        (SimulationError("exceeded max_events=5 (possible livelock)"),
         Outcome.FAILURE),
        (RuntimeError("boom"), Outcome.FAILURE),
    ])
    def test_classify(self, exc, expected):
        outcome, detail = _classify(exc)
        assert outcome is expected
        assert detail
