"""Checkpoint round-trips: a resumed run must be cycle-identical.

The resume guarantee under test (docs/RESILIENCE.md): rebuilding the
platform and replaying through any checkpoint yields the same trajectory
— verified in-stream at the checkpoint's event mark and re-checked here
against the uninterrupted run's final fingerprint — on both backends,
with and without a fault schedule in play.
"""

from dataclasses import replace

import pytest

from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape, TransportConfig
from repro.errors import CheckpointError
from repro.harness.runners import run_collective, run_training, torus_platform
from repro.models import mlp
from repro.network.detailed.backend import DetailedBackend
from repro.network.fault_schedule import FaultAction, FaultEvent, FaultSchedule
from repro.resilience import Checkpoint, CheckpointConfig, ResilienceConfig

SIZES = {"fast": 256 * 1024, "detailed": 16 * 1024}
#: Checkpoint cadence sized well under each backend's healthy run length.
CADENCES = {"fast": 2_000.0, "detailed": 300.0}


def make_spec(backend="fast", schedule=None, resilience=None):
    spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
    if schedule is not None:
        spec.config = replace(
            spec.config,
            system=replace(spec.config.system, transport=TransportConfig()))
        spec.fault_schedule = schedule
    if backend == "detailed":
        spec.backend_factory = (
            lambda events, network, sanitizer:
            DetailedBackend(events, network, sanitizer=sanitizer))
    spec.resilience = resilience
    return spec


def recoverable_schedule(horizon):
    """A flap plus a lossy link, all healed within ``horizon`` cycles, so
    the run completes (with retransmissions) rather than failing."""
    return FaultSchedule([
        FaultEvent(time=0.0, action=FaultAction.DROP, link=(0, 1),
                   probability=0.2),
        FaultEvent(time=horizon * 0.1, action=FaultAction.LINK_DOWN,
                   link=(1, 0)),
        FaultEvent(time=horizon * 0.6, action=FaultAction.LINK_UP,
                   link=(1, 0)),
    ], seed=11)


def final_fingerprint(system):
    data = Checkpoint.capture(system, label="final").to_dict()
    data.pop("digest")
    return data


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["fast", "detailed"])
    @pytest.mark.parametrize("faulty", [False, True], ids=["healthy", "faulty"])
    def test_resume_matches_uninterrupted(self, tmp_path, backend, faulty):
        size = SIZES[backend]

        def schedule():
            if not faulty:
                return None
            return recoverable_schedule(2_000.0 if backend == "detailed"
                                        else 8_000.0)

        baseline_spec = make_spec(backend, schedule(), ResilienceConfig(
            checkpoint=CheckpointConfig(every_cycles=CADENCES[backend],
                                        directory=str(tmp_path)),
            label="t"))
        baseline = run_collective(baseline_spec, CollectiveOp.ALL_REDUCE, size)
        monitor = baseline.system.resilience
        assert monitor.saved_paths, "cadence must produce checkpoints"
        reference = final_fingerprint(baseline.system)

        # Resume from several cadence points: earliest, middle, latest.
        paths = monitor.saved_paths
        picks = {paths[0], paths[len(paths) // 2], paths[-1]}
        for path in picks:
            spec = make_spec(backend, schedule(),
                             ResilienceConfig(resume_from=path, label="t"))
            resumed = run_collective(spec, CollectiveOp.ALL_REDUCE, size)
            assert resumed.system.resilience.resume_verified
            assert resumed.duration_cycles == baseline.duration_cycles
            assert final_fingerprint(resumed.system) == reference

    def test_training_round_trip(self, tmp_path):
        model = mlp(widths=(1024, 512))
        baseline_spec = make_spec(resilience=ResilienceConfig(
            checkpoint=CheckpointConfig(every_cycles=50_000.0,
                                        directory=str(tmp_path)),
            label="t"))
        report, system = run_training(model, baseline_spec, num_iterations=1)
        monitor = system.resilience
        assert monitor.saved_paths
        reference = final_fingerprint(system)

        spec = make_spec(resilience=ResilienceConfig(
            resume_from=monitor.saved_paths[-1], label="t"))
        report2, system2 = run_training(model, spec, num_iterations=1)
        assert system2.resilience.resume_verified
        assert system2.now == system.now
        assert final_fingerprint(system2) == reference


class TestGuards:
    def run_with_checkpoints(self, tmp_path, size=256 * 1024):
        spec = make_spec(resilience=ResilienceConfig(
            checkpoint=CheckpointConfig(every_cycles=2_000.0,
                                        directory=str(tmp_path)),
            label="t"))
        result = run_collective(spec, CollectiveOp.ALL_REDUCE, size)
        return result, result.system.resilience.saved_paths

    def test_wrong_platform_refused(self, tmp_path):
        _, paths = self.run_with_checkpoints(tmp_path)
        other = torus_platform(TorusShape(2, 2, 4), preferred_set_splits=4)
        other.resilience = ResilienceConfig(resume_from=paths[0], label="t")
        with pytest.raises(CheckpointError, match="config"):
            run_collective(other, CollectiveOp.ALL_REDUCE, 256 * 1024)

    def test_divergent_workload_detected(self, tmp_path):
        """Replaying a *different* workload against a checkpoint must fail
        loudly — either the fingerprint mismatches mid-replay or the run
        drains without ever reaching the checkpoint's event mark."""
        _, paths = self.run_with_checkpoints(tmp_path)
        spec = make_spec(resilience=ResilienceConfig(resume_from=paths[-1],
                                                     label="t"))
        with pytest.raises(CheckpointError):
            run_collective(spec, CollectiveOp.ALL_REDUCE, 64 * 1024)

    def test_corrupt_file_rejected(self, tmp_path):
        _, paths = self.run_with_checkpoints(tmp_path)
        path = paths[0]
        text = open(path).read().replace('"messages_delivered": ',
                                         '"messages_delivered": 1')
        open(path, "w").write(text)
        with pytest.raises(CheckpointError, match="digest"):
            Checkpoint.load(path)

    def test_bad_version_rejected(self, tmp_path):
        _, paths = self.run_with_checkpoints(tmp_path)
        ckpt = Checkpoint.load(paths[0])
        data = ckpt.to_dict()
        data["version"] = 999
        with pytest.raises(CheckpointError, match="version"):
            Checkpoint.from_dict(data)

    def test_bad_cadence_rejected(self):
        with pytest.raises(CheckpointError):
            CheckpointConfig(every_cycles=0.0)


class TestOnDemand:
    def test_request_checkpoint_captures_without_cadence(self):
        spec = make_spec(resilience=ResilienceConfig(label="t"))
        # A config with nothing enabled attaches no monitor...
        system = spec.build_system()
        assert system.resilience is None

        # ...but a watchdog-less, cadence-less monitor can still be asked
        # for snapshots (the SIGUSR1 path sets the same flag).
        from repro.resilience import WatchdogConfig

        spec = make_spec(resilience=ResilienceConfig(
            watchdog=WatchdogConfig(), label="t"))
        system = spec.build_system()
        system.resilience.request_checkpoint()
        collective = system.request_collective(CollectiveOp.ALL_REDUCE,
                                               256 * 1024)
        system.run_until_idle()
        assert collective.done
        assert len(system.resilience.checkpoints) == 1
        assert not system.resilience.saved_paths  # nothing written to disk
