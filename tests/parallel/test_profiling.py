"""RunProfile phase timing and the BENCH_* perf-trajectory documents."""

import pytest

from repro.errors import ReproError
from repro.profiling import (
    RunProfile,
    active_profile,
    compare_bench,
    read_bench,
    set_active_profile,
    write_bench,
)


class TestRunProfile:
    def test_phases_accumulate(self):
        profile = RunProfile(name="t")
        with profile.phase("build"):
            pass
        profile.add_phase("simulate", 2.0)
        profile.add_phase("simulate", 1.0)
        assert profile.seconds_of("simulate") == 3.0
        assert profile.total_seconds >= 3.0

    def test_events_per_sec_uses_simulate_phase(self):
        profile = RunProfile(name="t", events=600)
        profile.add_phase("build", 100.0)
        profile.add_phase("simulate", 3.0)
        assert profile.events_per_sec == pytest.approx(200.0)

    def test_events_per_sec_falls_back_to_total(self):
        profile = RunProfile(name="t", events=50)
        profile.add_phase("command", 5.0)
        assert profile.events_per_sec == pytest.approx(10.0)

    def test_record_system(self):
        from repro.collectives.types import CollectiveOp
        from repro.config.parameters import TorusShape
        from repro.harness.runners import torus_platform

        spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
        system = spec.build_system()
        system.request_collective(CollectiveOp.ALL_REDUCE, 64 * 1024.0)
        system.run_until_idle(max_events=10_000_000)
        profile = RunProfile(name="t")
        profile.record_system(system)
        assert profile.events > 0
        assert profile.cycles > 0

    def test_active_profile_roundtrip(self):
        assert active_profile() is None
        profile = RunProfile(name="t")
        set_active_profile(profile)
        try:
            assert active_profile() is profile
        finally:
            set_active_profile(None)


class TestBenchDocuments:
    def _doc(self, events_per_sec):
        profile = RunProfile(name="bench", events=int(events_per_sec))
        profile.add_phase("simulate", 1.0)
        return [profile.as_dict()]

    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "BENCH.json")
        write_bench(path, self._doc(1000.0), label="x")
        doc = read_bench(path)
        assert doc["label"] == "x"
        assert doc["benchmarks"][0]["events_per_sec"] == pytest.approx(1000.0)

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ReproError):
            read_bench(str(path))
        path.write_text('{"schema": 999}')
        with pytest.raises(ReproError):
            read_bench(str(path))

    def test_compare_flags_regression(self):
        baseline = {"benchmarks": self._doc(1000.0)}
        fine = {"benchmarks": self._doc(850.0)}
        slow = {"benchmarks": self._doc(700.0)}
        assert compare_bench(baseline, fine, max_regression=0.20) == []
        messages = compare_bench(baseline, slow, max_regression=0.20)
        assert len(messages) == 1 and "below baseline" in messages[0]

    def test_compare_ignores_new_benchmarks(self):
        baseline = {"benchmarks": []}
        current = {"benchmarks": self._doc(10.0)}
        assert compare_bench(baseline, current) == []

    def test_compare_validates_tolerance(self):
        with pytest.raises(ReproError):
            compare_bench({"benchmarks": []}, {"benchmarks": []},
                          max_regression=1.5)
