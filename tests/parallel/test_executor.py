"""ParallelExecutor: ordering, fallbacks, cache integration."""

import functools

import pytest

from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape
from repro.errors import ReproError
from repro.harness.runners import torus_platform
from repro.parallel import (
    ParallelExecutor,
    RunCache,
    RunPoint,
    configure_default,
    default_executor,
    set_default_executor,
)

KB64 = 64 * 1024.0


def _small_torus():
    return torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)


def _square(x):
    return x * x


@pytest.fixture(autouse=True)
def _clean_default():
    yield
    set_default_executor(None)


class TestMap:
    def test_serial_map_keeps_order(self):
        assert ParallelExecutor(jobs=1).map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_keeps_order(self):
        with ParallelExecutor(jobs=2) as ex:
            assert ex.map(_square, list(range(6))) == [
                x * x for x in range(6)]

    def test_unpicklable_fn_falls_back_in_process(self):
        captured = []

        def closure(x):
            captured.append(x)
            return -x

        assert ParallelExecutor(jobs=4).map(closure, [1, 2]) == [-1, -2]
        assert captured == [1, 2]  # ran here, not in a worker

    def test_jobs_must_be_positive(self):
        with pytest.raises(ReproError):
            ParallelExecutor(jobs=0)


class TestRunPoints:
    def test_serial_points(self):
        ex = ParallelExecutor(jobs=1)
        points = [RunPoint(builder=_small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=s) for s in (KB64, 2 * KB64)]
        results = ex.run_points(points)
        assert [r.size_bytes for r in results] == [KB64, 2 * KB64]
        assert ex.simulations_run == 2
        assert all(r.duration_cycles > 0 for r in results)

    def test_parallel_matches_serial_bit_for_bit(self):
        points = [RunPoint(builder=_small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=s) for s in (KB64, 2 * KB64, 4 * KB64)]
        serial = ParallelExecutor(jobs=1).run_points(points)
        with ParallelExecutor(jobs=4) as ex:
            parallel = ex.run_points(points)
        for a, b in zip(serial, parallel):
            assert a.duration_cycles == b.duration_cycles
            assert a.breakdown.as_dict() == b.breakdown.as_dict()

    def test_unpicklable_builder_runs_in_parent(self):
        shape = TorusShape(2, 2, 2)
        points = [
            RunPoint(builder=lambda: torus_platform(shape,
                                                    preferred_set_splits=4),
                     op=CollectiveOp.ALL_REDUCE, size_bytes=KB64),
            RunPoint(builder=functools.partial(torus_platform, shape,
                                               preferred_set_splits=4),
                     op=CollectiveOp.ALL_REDUCE, size_bytes=KB64),
        ]
        with ParallelExecutor(jobs=2) as ex:
            results = ex.run_points(points)
        assert results[0].duration_cycles == results[1].duration_cycles

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        points = [RunPoint(builder=_small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=s) for s in (KB64, 2 * KB64)]
        cold = ParallelExecutor(jobs=1, cache=RunCache(str(tmp_path)))
        first = cold.run_points(points)
        assert cold.simulations_run == 2
        assert cold.cache.stats.stores == 2

        warm = ParallelExecutor(jobs=1, cache=RunCache(str(tmp_path)))
        second = warm.run_points(points)
        assert warm.simulations_run == 0
        assert warm.cache.stats.hits == 2
        for a, b in zip(first, second):
            assert a.duration_cycles == b.duration_cycles
            assert a.breakdown.as_dict() == b.breakdown.as_dict()

    def test_sanitized_points_bypass_the_cache(self, tmp_path):
        ex = ParallelExecutor(jobs=1, cache=RunCache(str(tmp_path)))
        point = RunPoint(builder=_small_torus, op=CollectiveOp.ALL_REDUCE,
                         size_bytes=KB64, sanitize=True)
        ex.run_points([point])
        ex.run_points([point])
        assert ex.simulations_run == 2
        assert ex.cache.stats.stores == 0


class TestPickleClassification:
    """Genuine unpicklability degrades (logged once); broken
    ``__getstate__`` propagates instead of silently running serial."""

    def test_lambda_degrades_with_one_logged_warning(self, caplog):
        with caplog.at_level("WARNING", logger="repro.parallel"):
            with ParallelExecutor(jobs=2) as ex:
                assert ex.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
                assert ex.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        degradations = [r for r in caplog.records
                        if "not picklable" in r.message]
        assert len(degradations) == 1  # once per executor, not per batch

    def test_broken_getstate_propagates(self):
        class Exploding:
            def __getstate__(self):
                raise RuntimeError("corrupted handle")

            def __call__(self, x):
                return x

        with ParallelExecutor(jobs=2) as ex:
            with pytest.raises(RuntimeError, match="corrupted handle"):
                ex.map(Exploding(), [1, 2])


class TestDefaultExecutor:
    def test_unset_default_is_serial_uncached(self):
        ex = default_executor()
        assert ex.jobs == 1 and ex.cache is None

    def test_configure_default_installs(self, tmp_path):
        ex = configure_default(jobs=3, cache_dir=str(tmp_path))
        assert default_executor() is ex
        assert ex.jobs == 3 and ex.cache is not None

    def test_no_cache_wins_over_cache_dir(self, tmp_path):
        ex = configure_default(jobs=1, cache_dir=str(tmp_path),
                               use_cache=False)
        assert ex.cache is None
