"""Serial-vs-parallel determinism over the Fig. 9-12 design points.

The executor's contract: ``jobs=4`` produces bit-identical
``duration_cycles`` and delay breakdowns to ``jobs=1`` for every point,
in the same order.  Payloads are scaled down from the paper's sweeps to
keep the suite fast — determinism does not depend on payload size.
"""

import pytest

from repro.harness import fig09, fig10, fig11, fig12
from repro.parallel import ParallelExecutor, set_default_executor

SIZES = [64 * 1024.0, 256 * 1024.0]


@pytest.fixture(autouse=True)
def _clean_default():
    yield
    set_default_executor(None)


def _with_jobs(jobs, fn):
    executor = ParallelExecutor(jobs=jobs)
    set_default_executor(executor)
    try:
        return fn()
    finally:
        set_default_executor(None)
        executor.close()


def _assert_identical(serial, parallel):
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.label == b.label
        assert a.size_bytes == b.size_bytes
        assert a.duration_cycles == b.duration_cycles
        assert a.breakdown.as_dict() == b.breakdown.as_dict()


class TestFigureJobsDeterminism:
    def test_fig09_points(self):
        serial = _with_jobs(1, lambda: fig09.run(sizes=SIZES))
        parallel = _with_jobs(4, lambda: fig09.run(sizes=SIZES))
        _assert_identical(serial.alltoall, parallel.alltoall)
        _assert_identical(serial.torus, parallel.torus)

    def test_fig10_points(self):
        from repro.config.parameters import TorusShape

        shapes = (TorusShape(1, 8, 8), TorusShape(4, 4, 4))
        serial = _with_jobs(
            1, lambda: fig10.run(sizes=SIZES[:1], shapes=shapes))
        parallel = _with_jobs(
            4, lambda: fig10.run(sizes=SIZES[:1], shapes=shapes))
        assert serial.by_shape.keys() == parallel.by_shape.keys()
        for label in serial.by_shape:
            _assert_identical(serial.by_shape[label], parallel.by_shape[label])

    def test_fig11_points(self):
        serial = _with_jobs(1, lambda: fig11.run(sizes=SIZES[:1]))
        parallel = _with_jobs(4, lambda: fig11.run(sizes=SIZES[:1]))
        _assert_identical(serial.symmetric, parallel.symmetric)
        _assert_identical(serial.asymmetric_baseline,
                          parallel.asymmetric_baseline)
        _assert_identical(serial.asymmetric_enhanced,
                          parallel.asymmetric_enhanced)

    def test_fig12_points(self):
        serial = _with_jobs(1, lambda: fig12.run(size_bytes=SIZES[0]))
        parallel = _with_jobs(4, lambda: fig12.run(size_bytes=SIZES[0]))
        _assert_identical(serial.results, parallel.results)


class TestChaosJobsDeterminism:
    def test_report_identical_at_any_job_count(self):
        from repro.resilience import ChaosConfig, run_chaos

        config = ChaosConfig(iterations=3, seed=11, backends=("fast",))
        serial = run_chaos(config, executor=ParallelExecutor(jobs=1))
        with ParallelExecutor(jobs=3) as ex:
            parallel = run_chaos(config, executor=ex)
        assert [r.to_dict() for r in serial.runs] == [
            r.to_dict() for r in parallel.runs]
        assert serial.counts == parallel.counts
        assert serial.ok == parallel.ok
