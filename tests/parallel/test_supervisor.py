"""SupervisedExecutor: crash isolation, deadlines, quarantine, resume.

The injectors live in ``_supervision_helpers`` (module-level, so they
pickle into pool workers) and kill/hang only the worker process they run
in — never the test process.
"""

import dataclasses
import functools
import json

import pytest

from repro.collectives.types import CollectiveOp
from repro.errors import ConfigError
from repro.parallel import (
    OutcomeJournal,
    ParallelExecutor,
    PointStatus,
    PoisonPointError,
    RunCache,
    RunPoint,
    SupervisedExecutor,
    SupervisionPolicy,
    configure_default,
    exit_code_for,
    set_default_executor,
)

from _supervision_helpers import (
    always_crash_builder,
    always_raise_builder,
    crash_once_builder,
    crash_once_then,
    hang_builder,
    hang_forever,
    small_torus,
)

KB64 = 64 * 1024.0

#: Generous wall-clock deadline for tests whose hung point sleeps 60s:
#: long enough that a loaded CI box never reaps a genuine simulation.
DEADLINE_S = 20.0


@pytest.fixture(autouse=True)
def _clean_default():
    yield
    set_default_executor(None)


def _points(sizes, builder=small_torus):
    return [RunPoint(builder=builder, op=CollectiveOp.ALL_REDUCE,
                     size_bytes=float(s)) for s in sizes]


class TestPolicy:
    def test_defaults_are_valid(self):
        policy = SupervisionPolicy()
        assert policy.max_retries == 2
        assert policy.on_poison == "quarantine"

    @pytest.mark.parametrize("kwargs", [
        {"point_timeout_s": 0.0},
        {"point_timeout_s": -1.0},
        {"point_event_budget": 0},
        {"max_retries": -1},
        {"backoff_factor": 0.5},
        {"on_poison": "explode"},
        {"poll_interval_s": 0.0},
    ])
    def test_bad_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisionPolicy(**kwargs)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = SupervisionPolicy(backoff_max_s=0.25)
        first = policy.backoff_s("key", 1)
        assert first == policy.backoff_s("key", 1)
        assert policy.backoff_s("key", 2) != first  # new attempt, new draw
        assert all(0 <= policy.backoff_s("k", a) <= 0.25
                   for a in (1, 2, 3, 8))


class TestNoFaultPath:
    def test_bit_identical_to_plain_executor(self):
        points = _points([KB64, 2 * KB64, 4 * KB64])
        plain = ParallelExecutor(jobs=1).run_points(points)
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.run_outcomes(points)
        assert [o.status for o in outcomes] == [PointStatus.OK] * 3
        assert ex.quarantine == []
        for a, o in zip(plain, outcomes):
            assert a.duration_cycles == o.result.duration_cycles
            assert a.breakdown.as_dict() == o.result.breakdown.as_dict()
        assert exit_code_for(outcomes) == 0

    def test_run_points_returns_plain_results(self):
        points = _points([KB64])
        with SupervisedExecutor(jobs=1) as ex:
            results = ex.run_points(points)
        assert results[0].duration_cycles > 0

    def test_warm_cache_serves_without_slots(self, tmp_path):
        points = _points([KB64])
        with SupervisedExecutor(jobs=1, cache=RunCache(str(tmp_path))) as ex:
            first = ex.run_outcomes(points)
            assert ex.simulations_run == 1
            second = ex.run_outcomes(points)
        assert second[0].from_cache and second[0].status is PointStatus.OK
        assert ex.simulations_run == 1
        assert (first[0].result.duration_cycles
                == second[0].result.duration_cycles)


class TestCrashIsolation:
    def test_sigkilled_worker_mid_batch_retries_bit_identical(self, tmp_path):
        """Satellite: a SIGKILLed pool worker mid-batch must not abort
        the batch, and the retried point must match a clean run bit for
        bit."""
        clean = ParallelExecutor(jobs=1).run_points(_points([KB64, 2 * KB64]))

        crasher = functools.partial(crash_once_builder,
                                    str(tmp_path / "armed"))
        points = [RunPoint(builder=crasher, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64),
                  RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=2 * KB64)]
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.run_outcomes(points)

        assert outcomes[0].status is PointStatus.RETRIED
        assert outcomes[0].attempts == 2
        assert outcomes[1].status is PointStatus.OK
        assert ex.quarantine == []
        for reference, outcome in zip(clean, outcomes):
            assert (reference.duration_cycles
                    == outcome.result.duration_cycles)
            assert (reference.breakdown.as_dict()
                    == outcome.result.breakdown.as_dict())
        assert exit_code_for(outcomes) == 0

    def test_broken_pool_retry_exhaustion_quarantines_not_aborts(self):
        """Satellite: a point that kills its worker every attempt lands
        in quarantine; the rest of the batch still completes."""
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64),
                  RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=1, backoff_max_s=0.05)
        with SupervisedExecutor(jobs=2, policy=policy) as ex:
            outcomes = ex.run_outcomes(points)

        assert outcomes[0].status is PointStatus.CRASHED
        assert outcomes[0].attempts == 2  # initial + 1 retry
        assert outcomes[0].failure_class == "crash"
        assert outcomes[1].status is PointStatus.OK
        assert len(ex.quarantine) == 1
        assert ex.quarantine[0].failure_class == "crash"
        assert exit_code_for(outcomes) == 1

    def test_in_simulation_error_classifies_as_error(self):
        points = [RunPoint(builder=always_raise_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            outcomes = ex.run_outcomes(points)
        assert outcomes[0].status is PointStatus.FAILED
        assert outcomes[0].failure_class == "error"
        assert "injected builder failure" in outcomes[0].error


class TestDeadlines:
    def test_hung_point_is_reaped_and_quarantined(self):
        points = [RunPoint(builder=hang_builder, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64),
                  RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64)]
        policy = SupervisionPolicy(point_timeout_s=2.0, max_retries=0)
        with SupervisedExecutor(jobs=2, policy=policy) as ex:
            outcomes = ex.run_outcomes(points)
        assert outcomes[0].status is PointStatus.TIMEOUT
        assert outcomes[0].failure_class == "timeout"
        assert outcomes[1].status is PointStatus.OK
        assert exit_code_for(outcomes) == 1

    def test_event_budget_quarantines_runaway_point(self):
        policy = SupervisionPolicy(point_event_budget=50, max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            outcomes = ex.run_outcomes(_points([KB64]))
        assert outcomes[0].status is PointStatus.FAILED
        assert outcomes[0].failure_class == "event-budget"

    def test_on_poison_fail_raises(self):
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0, on_poison="fail")
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            with pytest.raises(PoisonPointError):
                ex.run_outcomes(points)


class TestQuarantineReport:
    def test_bundle_written_in_watchdog_format(self, tmp_path):
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy,
                                quarantine_dir=str(tmp_path)) as ex:
            outcomes = ex.run_outcomes(points)
        bundle_path = outcomes[0].bundle_path
        assert bundle_path and bundle_path.endswith(".json")
        with open(bundle_path) as f:
            bundle = json.load(f)
        assert bundle["kind"] == "poison-point"
        assert bundle["failure_class"] == "crash"
        assert bundle["attempts"] == 1
        # Same serialized shape as the PR 4 watchdog bundles.
        with open(bundle_path) as f:
            raw = f.read()
        assert raw == json.dumps(bundle, indent=2, sort_keys=True) + "\n"

    def test_report_file_lists_every_poison_point(self, tmp_path):
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            ex.run_outcomes(points)
            path = ex.write_quarantine_report(str(tmp_path / "report.json"))
        with open(path) as f:
            report = json.load(f)
        assert report["kind"] == "quarantine-report"
        assert len(report["quarantined"]) == 1
        assert report["quarantined"][0]["failure_class"] == "crash"
        assert "poison point" in ex.quarantine_summary()


class TestJournalResume:
    def test_resume_skips_completed_and_quarantined(self, tmp_path):
        """Acceptance: an interrupted campaign's journal lets a re-run
        skip past completed AND quarantined points without simulating
        either."""
        journal = str(tmp_path / "journal.jsonl")
        points = [RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64),
                  RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy,
                                journal_path=journal) as ex:
            first = ex.run_outcomes(points)
        assert first[0].status is PointStatus.OK
        assert first[1].status is PointStatus.CRASHED

        with SupervisedExecutor(jobs=1, policy=policy,
                                journal_path=journal) as resumed:
            second = resumed.run_outcomes(points)
        assert resumed.simulations_run == 0
        assert resumed.attempts_total == 0
        assert second[0].from_journal
        assert second[0].status is PointStatus.OK
        assert (second[0].result.duration_cycles
                == first[0].result.duration_cycles)
        assert second[1].from_journal
        assert second[1].status is PointStatus.QUARANTINED
        assert second[1].failure_class == "crash"
        assert exit_code_for(second) == 1

    def test_journal_tolerates_torn_tail_line(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = OutcomeJournal(path)
        journal.append({"type": "outcome", "key": "k1", "status": "ok"})
        with open(path, "a") as f:
            f.write('{"type": "outcome", "key": "k2", "stat')  # torn write
        records = OutcomeJournal.load(path)
        assert set(records) == {"k1"}

    def test_journal_keeps_last_record_per_key(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = OutcomeJournal(path)
        journal.append({"key": "k", "status": "crashed"})
        journal.append({"key": "k", "status": "ok"})
        assert OutcomeJournal.load(path)["k"]["status"] == "ok"


class TestMapOutcomes:
    def test_supervised_map_quarantines_and_continues(self):
        from _supervision_helpers import hang_if_two

        policy = SupervisionPolicy(point_timeout_s=2.0, max_retries=0)
        with SupervisedExecutor(jobs=2, policy=policy) as ex:
            outcomes = ex.map_outcomes(hang_if_two, [0, 1, 2, 3])
        assert [o.result for o in outcomes] == [0, 1, None, 9]
        assert outcomes[2].status is PointStatus.TIMEOUT

    def test_unpicklable_fn_runs_in_parent(self):
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.map_outcomes(lambda x: -x, [1, 2])
        assert [o.result for o in outcomes] == [-1, -2]
        assert all(o.status is PointStatus.OK for o in outcomes)


class TestFig09Acceptance:
    """Acceptance: injected worker crash and injected hang during a
    fig09 batch both finish the batch."""

    SIZES = [KB64, 2 * KB64]

    def _clean_figure(self):
        from repro.harness import fig09

        results = ParallelExecutor(jobs=1).run_points(
            fig09._points(self.SIZES, CollectiveOp.ALL_REDUCE))
        return fig09._split(CollectiveOp.ALL_REDUCE, self.SIZES, results)

    def test_crash_mid_fig09_batch_retries_bit_identical(self, tmp_path):
        from repro.harness import fig09
        from repro.parallel import results_with_gaps

        clean = self._clean_figure()
        points = fig09._points(self.SIZES, CollectiveOp.ALL_REDUCE)
        points[0] = dataclasses.replace(
            points[0],
            builder=functools.partial(crash_once_then,
                                      str(tmp_path / "armed"),
                                      fig09._alltoall))
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.run_outcomes(points)

        assert [o.status for o in outcomes] == [
            PointStatus.RETRIED, PointStatus.OK, PointStatus.OK,
            PointStatus.OK]
        figure = fig09._split(CollectiveOp.ALL_REDUCE, self.SIZES,
                              results_with_gaps(outcomes))
        assert figure.complete
        assert figure.rows() == clean.rows()
        assert exit_code_for(outcomes) == 0

    def test_hang_mid_fig09_batch_quarantines_and_resumes(self, tmp_path):
        from repro.harness import fig09
        from repro.parallel import results_with_gaps

        journal = str(tmp_path / "journal.jsonl")
        points = fig09._points(self.SIZES, CollectiveOp.ALL_REDUCE)
        points[2] = dataclasses.replace(
            points[2],
            builder=functools.partial(hang_forever, fig09._torus))
        policy = SupervisionPolicy(point_timeout_s=2.0, max_retries=0)
        with SupervisedExecutor(jobs=2, policy=policy,
                                journal_path=journal) as ex:
            outcomes = ex.run_outcomes(points)

        assert outcomes[2].status is PointStatus.TIMEOUT
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert len(ex.quarantine) == 1
        assert exit_code_for(outcomes) == 1

        figure = fig09._split(CollectiveOp.ALL_REDUCE, self.SIZES,
                              results_with_gaps(outcomes))
        assert not figure.complete
        rows = figure.rows()
        assert rows[0]["torus_cycles"] is None  # the quarantined point
        assert rows[0]["alltoall_cycles"] is not None
        assert rows[1]["torus_over_alltoall"] is not None

        # Resume past completed AND quarantined points: zero simulations.
        with SupervisedExecutor(jobs=2, policy=policy,
                                journal_path=journal) as resumed:
            second = resumed.run_outcomes(points)
        assert resumed.simulations_run == 0
        assert all(o.from_journal for o in second)
        assert second[2].status is PointStatus.QUARANTINED
        assert (second[0].result.duration_cycles
                == outcomes[0].result.duration_cycles)


class TestConfigureDefault:
    def test_supervision_knobs_build_supervised_executor(self, tmp_path):
        ex = configure_default(jobs=2,
                               supervision=SupervisionPolicy(max_retries=1),
                               journal_path=str(tmp_path / "j.jsonl"))
        assert isinstance(ex, SupervisedExecutor)
        assert ex.policy.max_retries == 1
        ex.close()

    def test_plain_knobs_build_plain_executor(self):
        ex = configure_default(jobs=2)
        assert type(ex) is ParallelExecutor
        ex.close()
