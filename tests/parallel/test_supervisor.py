"""SupervisedExecutor: crash isolation, deadlines, quarantine, resume.

The injectors live in ``_supervision_helpers`` (module-level, so they
pickle into pool workers) and kill/hang only the worker process they run
in — never the test process.
"""

import dataclasses
import functools
import json
import os
import time

import pytest

from repro.collectives.types import CollectiveOp
from repro.errors import ConfigError
from repro.parallel import (
    OutcomeJournal,
    ParallelExecutor,
    PointStatus,
    PoisonPointError,
    RunCache,
    RunPoint,
    SupervisedExecutor,
    SupervisionPolicy,
    configure_default,
    exit_code_for,
    set_default_executor,
)

from _supervision_helpers import (
    always_crash_builder,
    always_raise_builder,
    crash_once_builder,
    crash_once_then,
    hang_builder,
    hang_forever,
    small_torus,
)

KB64 = 64 * 1024.0

#: Generous wall-clock deadline for tests whose hung point sleeps 60s:
#: long enough that a loaded CI box never reaps a genuine simulation.
DEADLINE_S = 20.0


@pytest.fixture(autouse=True)
def _clean_default():
    yield
    set_default_executor(None)


def _points(sizes, builder=small_torus):
    return [RunPoint(builder=builder, op=CollectiveOp.ALL_REDUCE,
                     size_bytes=float(s)) for s in sizes]


class TestPolicy:
    def test_defaults_are_valid(self):
        policy = SupervisionPolicy()
        assert policy.max_retries == 2
        assert policy.on_poison == "quarantine"

    @pytest.mark.parametrize("kwargs", [
        {"point_timeout_s": 0.0},
        {"point_timeout_s": -1.0},
        {"point_event_budget": 0},
        {"max_retries": -1},
        {"backoff_factor": 0.5},
        {"on_poison": "explode"},
        {"poll_interval_s": 0.0},
    ])
    def test_bad_knobs_raise_config_error(self, kwargs):
        with pytest.raises(ConfigError):
            SupervisionPolicy(**kwargs)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = SupervisionPolicy(backoff_max_s=0.25)
        first = policy.backoff_s("key", 1)
        assert first == policy.backoff_s("key", 1)
        assert policy.backoff_s("key", 2) != first  # new attempt, new draw
        assert all(0 <= policy.backoff_s("k", a) <= 0.25
                   for a in (1, 2, 3, 8))


class TestNoFaultPath:
    def test_bit_identical_to_plain_executor(self):
        points = _points([KB64, 2 * KB64, 4 * KB64])
        plain = ParallelExecutor(jobs=1).run_points(points)
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.run_outcomes(points)
        assert [o.status for o in outcomes] == [PointStatus.OK] * 3
        assert ex.quarantine == []
        for a, o in zip(plain, outcomes):
            assert a.duration_cycles == o.result.duration_cycles
            assert a.breakdown.as_dict() == o.result.breakdown.as_dict()
        assert exit_code_for(outcomes) == 0

    def test_run_points_returns_plain_results(self):
        points = _points([KB64])
        with SupervisedExecutor(jobs=1) as ex:
            results = ex.run_points(points)
        assert results[0].duration_cycles > 0

    def test_warm_cache_serves_without_slots(self, tmp_path):
        points = _points([KB64])
        with SupervisedExecutor(jobs=1, cache=RunCache(str(tmp_path))) as ex:
            first = ex.run_outcomes(points)
            assert ex.simulations_run == 1
            second = ex.run_outcomes(points)
        assert second[0].from_cache and second[0].status is PointStatus.OK
        assert ex.simulations_run == 1
        assert (first[0].result.duration_cycles
                == second[0].result.duration_cycles)


class TestCrashIsolation:
    def test_sigkilled_worker_mid_batch_retries_bit_identical(self, tmp_path):
        """Satellite: a SIGKILLed pool worker mid-batch must not abort
        the batch, and the retried point must match a clean run bit for
        bit."""
        clean = ParallelExecutor(jobs=1).run_points(_points([KB64, 2 * KB64]))

        crasher = functools.partial(crash_once_builder,
                                    str(tmp_path / "armed"))
        points = [RunPoint(builder=crasher, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64),
                  RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=2 * KB64)]
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.run_outcomes(points)

        assert outcomes[0].status is PointStatus.RETRIED
        assert outcomes[0].attempts == 2
        assert outcomes[1].status is PointStatus.OK
        assert ex.quarantine == []
        for reference, outcome in zip(clean, outcomes):
            assert (reference.duration_cycles
                    == outcome.result.duration_cycles)
            assert (reference.breakdown.as_dict()
                    == outcome.result.breakdown.as_dict())
        assert exit_code_for(outcomes) == 0

    def test_broken_pool_retry_exhaustion_quarantines_not_aborts(self):
        """Satellite: a point that kills its worker every attempt lands
        in quarantine; the rest of the batch still completes."""
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64),
                  RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=1, backoff_max_s=0.05)
        with SupervisedExecutor(jobs=2, policy=policy) as ex:
            outcomes = ex.run_outcomes(points)

        assert outcomes[0].status is PointStatus.CRASHED
        assert outcomes[0].attempts == 2  # initial + 1 retry
        assert outcomes[0].failure_class == "crash"
        assert outcomes[1].status is PointStatus.OK
        assert len(ex.quarantine) == 1
        assert ex.quarantine[0].failure_class == "crash"
        assert exit_code_for(outcomes) == 1

    def test_in_simulation_error_classifies_as_error(self):
        points = [RunPoint(builder=always_raise_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            outcomes = ex.run_outcomes(points)
        assert outcomes[0].status is PointStatus.FAILED
        assert outcomes[0].failure_class == "error"
        assert "injected builder failure" in outcomes[0].error


class TestDeadlines:
    def test_hung_point_is_reaped_and_quarantined(self):
        points = [RunPoint(builder=hang_builder, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64),
                  RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64)]
        policy = SupervisionPolicy(point_timeout_s=2.0, max_retries=0)
        with SupervisedExecutor(jobs=2, policy=policy) as ex:
            outcomes = ex.run_outcomes(points)
        assert outcomes[0].status is PointStatus.TIMEOUT
        assert outcomes[0].failure_class == "timeout"
        assert outcomes[1].status is PointStatus.OK
        assert exit_code_for(outcomes) == 1

    def test_event_budget_quarantines_runaway_point(self):
        policy = SupervisionPolicy(point_event_budget=50, max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            outcomes = ex.run_outcomes(_points([KB64]))
        assert outcomes[0].status is PointStatus.FAILED
        assert outcomes[0].failure_class == "event-budget"

    def test_on_poison_fail_raises(self):
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0, on_poison="fail")
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            with pytest.raises(PoisonPointError):
                ex.run_outcomes(points)


class TestQuarantineReport:
    def test_bundle_written_in_watchdog_format(self, tmp_path):
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy,
                                quarantine_dir=str(tmp_path)) as ex:
            outcomes = ex.run_outcomes(points)
        bundle_path = outcomes[0].bundle_path
        assert bundle_path and bundle_path.endswith(".json")
        with open(bundle_path) as f:
            bundle = json.load(f)
        assert bundle["kind"] == "poison-point"
        assert bundle["failure_class"] == "crash"
        assert bundle["attempts"] == 1
        # Same serialized shape as the PR 4 watchdog bundles.
        with open(bundle_path) as f:
            raw = f.read()
        assert raw == json.dumps(bundle, indent=2, sort_keys=True) + "\n"

    def test_report_file_lists_every_poison_point(self, tmp_path):
        points = [RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy) as ex:
            ex.run_outcomes(points)
            path = ex.write_quarantine_report(str(tmp_path / "report.json"))
        with open(path) as f:
            report = json.load(f)
        assert report["kind"] == "quarantine-report"
        assert len(report["quarantined"]) == 1
        assert report["quarantined"][0]["failure_class"] == "crash"
        assert "poison point" in ex.quarantine_summary()


class TestJournalResume:
    def test_resume_skips_completed_and_quarantined(self, tmp_path):
        """Acceptance: an interrupted campaign's journal lets a re-run
        skip past completed AND quarantined points without simulating
        either."""
        journal = str(tmp_path / "journal.jsonl")
        points = [RunPoint(builder=small_torus, op=CollectiveOp.ALL_REDUCE,
                           size_bytes=KB64),
                  RunPoint(builder=always_crash_builder,
                           op=CollectiveOp.ALL_REDUCE, size_bytes=KB64)]
        policy = SupervisionPolicy(max_retries=0)
        with SupervisedExecutor(jobs=1, policy=policy,
                                journal_path=journal) as ex:
            first = ex.run_outcomes(points)
        assert first[0].status is PointStatus.OK
        assert first[1].status is PointStatus.CRASHED

        with SupervisedExecutor(jobs=1, policy=policy,
                                journal_path=journal) as resumed:
            second = resumed.run_outcomes(points)
        assert resumed.simulations_run == 0
        assert resumed.attempts_total == 0
        assert second[0].from_journal
        assert second[0].status is PointStatus.OK
        assert (second[0].result.duration_cycles
                == first[0].result.duration_cycles)
        assert second[1].from_journal
        assert second[1].status is PointStatus.QUARANTINED
        assert second[1].failure_class == "crash"
        assert exit_code_for(second) == 1

    def test_journal_tolerates_torn_tail_line(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = OutcomeJournal(path)
        journal.append({"type": "outcome", "key": "k1", "status": "ok"})
        with open(path, "a") as f:
            f.write('{"type": "outcome", "key": "k2", "stat')  # torn write
        records = OutcomeJournal.load(path)
        assert set(records) == {"k1"}

    def test_journal_keeps_last_record_per_key(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = OutcomeJournal(path)
        journal.append({"key": "k", "status": "crashed"})
        journal.append({"key": "k", "status": "ok"})
        assert OutcomeJournal.load(path)["k"]["status"] == "ok"


class TestJournalSharedPath:
    """Shared-journal misuse: concurrent writers must serialize whole
    lines or fail fast with a clear diagnostic — never interleave."""

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        """Four processes appending to one journal simultaneously: every
        line parses, and every record from every writer is present."""
        from concurrent.futures import ProcessPoolExecutor

        from _supervision_helpers import append_journal_lines

        path = str(tmp_path / "journal.jsonl")
        writers, lines_each = 4, 50
        with ProcessPoolExecutor(max_workers=writers) as pool:
            futures = [pool.submit(append_journal_lines, path, w, lines_each)
                       for w in range(writers)]
            assert sorted(f.result() for f in futures) == list(range(writers))
        with open(path) as f:
            raw = f.readlines()
        assert len(raw) == writers * lines_each
        records = [json.loads(line) for line in raw]  # every line whole
        seen = {(r["writer"], r["seq"]) for r in records}
        assert len(seen) == writers * lines_each
        assert len(OutcomeJournal.load(path)) == writers * lines_each

    def test_exclusive_lock_fails_fast_naming_live_owner(self, tmp_path):
        """A second exclusive writer against a journal held by a LIVE
        process gets a ConfigError naming the owner pid, not silent
        sharing."""
        from concurrent.futures import ProcessPoolExecutor

        from _supervision_helpers import hold_journal_lock

        path = str(tmp_path / "journal.jsonl")
        acquired = str(tmp_path / "acquired")
        release = str(tmp_path / "release")
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(hold_journal_lock, path, acquired, release)
            try:
                deadline = time.monotonic() + DEADLINE_S
                while not os.path.exists(acquired):
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                with open(acquired) as f:
                    owner_pid = int(f.read())
                with pytest.raises(ConfigError) as excinfo:
                    OutcomeJournal(path, exclusive=True)
                assert str(owner_pid) in str(excinfo.value)
                assert "its own journal" in str(excinfo.value)
            finally:
                with open(release, "w") as f:
                    f.write("go")
            assert future.result() == owner_pid
        # Owner released: the lock is free for the next daemon.
        OutcomeJournal(path, exclusive=True).close()

    def test_stale_lock_from_dead_owner_is_reclaimed(self, tmp_path):
        """A lock left by a SIGKILLed daemon (dead pid) must not block a
        restart — the acceptance crash-recovery path depends on it."""
        import subprocess
        import sys

        path = str(tmp_path / "journal.jsonl")
        dead = subprocess.run([sys.executable, "-c",
                               "import os; print(os.getpid())"],
                              capture_output=True, text=True, check=True)
        dead_pid = int(dead.stdout)
        with open(f"{path}.lock", "w") as f:
            f.write(f"{dead_pid}\n")
        journal = OutcomeJournal(path, exclusive=True)  # reclaims, no raise
        with open(f"{path}.lock") as f:
            assert int(f.read()) == os.getpid()
        journal.close()
        assert not os.path.exists(f"{path}.lock")

    def test_unreadable_lock_is_treated_as_stale(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(f"{path}.lock", "w") as f:
            f.write("not-a-pid")
        OutcomeJournal(path, exclusive=True).close()

    def test_newer_schema_records_replay_as_empty(self, tmp_path):
        """A journal written by FUTURE code must not resume from
        misunderstood state: other-schema records are skipped, current
        ones still load."""
        from repro.parallel.supervisor import JOURNAL_SCHEMA

        path = str(tmp_path / "journal.jsonl")
        OutcomeJournal(path).append({"type": "outcome", "key": "old",
                                     "status": "ok"})
        with open(path, "a") as f:
            f.write(json.dumps({"schema": JOURNAL_SCHEMA + 1,
                                "type": "outcome", "key": "future",
                                "status": "ok"}) + "\n")
            f.write(json.dumps({"type": "outcome", "key": "versionless",
                                "status": "ok"}) + "\n")
        loaded = OutcomeJournal.load(path)
        assert set(loaded) == {"old"}
        assert [r["key"] for r in OutcomeJournal.load_records(path)] == ["old"]

    def test_job_records_do_not_shadow_outcomes(self, tmp_path):
        """The serve daemon journals "job" submission records into the
        same file; load() must keep returning the outcome for a key."""
        path = str(tmp_path / "journal.jsonl")
        journal = OutcomeJournal(path)
        journal.append({"type": "outcome", "key": "k", "status": "ok",
                        "payload": {"x": 1}})
        journal.append({"type": "job", "key": "k", "job_id": "job-1"})
        loaded = OutcomeJournal.load(path)
        assert loaded["k"]["type"] == "outcome"
        types = [r["type"] for r in OutcomeJournal.load_records(path)]
        assert types == ["outcome", "job"]  # full stream keeps both

    def test_non_exclusive_journals_do_not_lock(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        OutcomeJournal(path).append({"key": "k", "status": "ok"})
        assert not os.path.exists(f"{path}.lock")


class TestMapOutcomes:
    def test_supervised_map_quarantines_and_continues(self):
        from _supervision_helpers import hang_if_two

        policy = SupervisionPolicy(point_timeout_s=2.0, max_retries=0)
        with SupervisedExecutor(jobs=2, policy=policy) as ex:
            outcomes = ex.map_outcomes(hang_if_two, [0, 1, 2, 3])
        assert [o.result for o in outcomes] == [0, 1, None, 9]
        assert outcomes[2].status is PointStatus.TIMEOUT

    def test_unpicklable_fn_runs_in_parent(self):
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.map_outcomes(lambda x: -x, [1, 2])
        assert [o.result for o in outcomes] == [-1, -2]
        assert all(o.status is PointStatus.OK for o in outcomes)


class TestFig09Acceptance:
    """Acceptance: injected worker crash and injected hang during a
    fig09 batch both finish the batch."""

    SIZES = [KB64, 2 * KB64]

    def _clean_figure(self):
        from repro.harness import fig09

        results = ParallelExecutor(jobs=1).run_points(
            fig09._points(self.SIZES, CollectiveOp.ALL_REDUCE))
        return fig09._split(CollectiveOp.ALL_REDUCE, self.SIZES, results)

    def test_crash_mid_fig09_batch_retries_bit_identical(self, tmp_path):
        from repro.harness import fig09
        from repro.parallel import results_with_gaps

        clean = self._clean_figure()
        points = fig09._points(self.SIZES, CollectiveOp.ALL_REDUCE)
        points[0] = dataclasses.replace(
            points[0],
            builder=functools.partial(crash_once_then,
                                      str(tmp_path / "armed"),
                                      fig09._alltoall))
        with SupervisedExecutor(jobs=2) as ex:
            outcomes = ex.run_outcomes(points)

        assert [o.status for o in outcomes] == [
            PointStatus.RETRIED, PointStatus.OK, PointStatus.OK,
            PointStatus.OK]
        figure = fig09._split(CollectiveOp.ALL_REDUCE, self.SIZES,
                              results_with_gaps(outcomes))
        assert figure.complete
        assert figure.rows() == clean.rows()
        assert exit_code_for(outcomes) == 0

    def test_hang_mid_fig09_batch_quarantines_and_resumes(self, tmp_path):
        from repro.harness import fig09
        from repro.parallel import results_with_gaps

        journal = str(tmp_path / "journal.jsonl")
        points = fig09._points(self.SIZES, CollectiveOp.ALL_REDUCE)
        points[2] = dataclasses.replace(
            points[2],
            builder=functools.partial(hang_forever, fig09._torus))
        policy = SupervisionPolicy(point_timeout_s=2.0, max_retries=0)
        with SupervisedExecutor(jobs=2, policy=policy,
                                journal_path=journal) as ex:
            outcomes = ex.run_outcomes(points)

        assert outcomes[2].status is PointStatus.TIMEOUT
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert len(ex.quarantine) == 1
        assert exit_code_for(outcomes) == 1

        figure = fig09._split(CollectiveOp.ALL_REDUCE, self.SIZES,
                              results_with_gaps(outcomes))
        assert not figure.complete
        rows = figure.rows()
        assert rows[0]["torus_cycles"] is None  # the quarantined point
        assert rows[0]["alltoall_cycles"] is not None
        assert rows[1]["torus_over_alltoall"] is not None

        # Resume past completed AND quarantined points: zero simulations.
        with SupervisedExecutor(jobs=2, policy=policy,
                                journal_path=journal) as resumed:
            second = resumed.run_outcomes(points)
        assert resumed.simulations_run == 0
        assert all(o.from_journal for o in second)
        assert second[2].status is PointStatus.QUARANTINED
        assert (second[0].result.duration_cycles
                == outcomes[0].result.duration_cycles)


class TestConfigureDefault:
    def test_supervision_knobs_build_supervised_executor(self, tmp_path):
        ex = configure_default(jobs=2,
                               supervision=SupervisionPolicy(max_retries=1),
                               journal_path=str(tmp_path / "j.jsonl"))
        assert isinstance(ex, SupervisedExecutor)
        assert ex.policy.max_retries == 1
        ex.close()

    def test_plain_knobs_build_plain_executor(self):
        ex = configure_default(jobs=2)
        assert type(ex) is ParallelExecutor
        ex.close()
