"""Content-addressed run cache: keys, purity rules, store semantics."""

import json
import os

import pytest

from repro.collectives.types import CollectiveOp
from repro.config.parameters import TorusShape
from repro.harness.runners import run_collective, torus_platform
from repro.parallel import (
    RunCache,
    collective_cache_key,
    payload_to_result,
    result_to_payload,
)
from repro.parallel.cache import PAYLOAD_SCHEMA


def _spec():
    return torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)


KB64 = 64 * 1024.0


class TestCacheKey:
    def test_same_point_same_key(self):
        k1 = collective_cache_key(_spec(), CollectiveOp.ALL_REDUCE, KB64)
        k2 = collective_cache_key(_spec(), CollectiveOp.ALL_REDUCE, KB64)
        assert k1 == k2
        assert len(k1) == 64  # sha256 hexdigest

    def test_key_varies_with_inputs(self):
        base = collective_cache_key(_spec(), CollectiveOp.ALL_REDUCE, KB64)
        assert collective_cache_key(
            _spec(), CollectiveOp.ALL_GATHER, KB64) != base
        assert collective_cache_key(
            _spec(), CollectiveOp.ALL_REDUCE, 2 * KB64) != base
        assert collective_cache_key(
            _spec(), CollectiveOp.ALL_REDUCE, KB64, backend="detailed") != base
        other = torus_platform(TorusShape(2, 4, 2), preferred_set_splits=4)
        assert collective_cache_key(
            other, CollectiveOp.ALL_REDUCE, KB64) != base

    def test_config_change_invalidates(self):
        """Any simulated parameter lands in the key via the config repr."""
        from dataclasses import replace

        spec = _spec()
        base = collective_cache_key(spec, CollectiveOp.ALL_REDUCE, KB64)
        spec.config = replace(
            spec.config,
            system=replace(spec.config.system, preferred_set_splits=8))
        assert collective_cache_key(
            spec, CollectiveOp.ALL_REDUCE, KB64) != base

    def test_impure_specs_are_uncacheable(self):
        from dataclasses import replace

        from repro.config.parameters import TransportConfig
        from repro.network.fault_schedule import FaultSchedule
        from repro.resilience import ResilienceConfig

        faulty = _spec()
        faulty.fault_schedule = FaultSchedule([])
        assert collective_cache_key(faulty, CollectiveOp.ALL_REDUCE, KB64) is None

        resilient = _spec()
        resilient.resilience = ResilienceConfig()
        assert collective_cache_key(
            resilient, CollectiveOp.ALL_REDUCE, KB64) is None

        custom = _spec()
        custom.backend_factory = lambda e, n, s: None
        assert collective_cache_key(custom, CollectiveOp.ALL_REDUCE, KB64) is None

        transported = _spec()
        transported.config = replace(
            transported.config,
            system=replace(transported.config.system,
                           transport=TransportConfig()))
        assert collective_cache_key(
            transported, CollectiveOp.ALL_REDUCE, KB64) is None


class TestPayloadRoundtrip:
    def test_result_survives_roundtrip(self):
        result = run_collective(_spec(), CollectiveOp.ALL_REDUCE, KB64)
        key = collective_cache_key(_spec(), CollectiveOp.ALL_REDUCE, KB64)
        rebuilt = payload_to_result(
            json.loads(json.dumps(result_to_payload(result, key))))
        assert rebuilt.label == result.label
        assert rebuilt.op == result.op
        assert rebuilt.duration_cycles == result.duration_cycles
        assert rebuilt.num_npus == result.num_npus
        assert rebuilt.breakdown.as_dict() == result.breakdown.as_dict()
        assert rebuilt.system is None


class TestRunCache:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = "a" * 64
        assert cache.get(key) is None
        cache.put(key, {"schema": PAYLOAD_SCHEMA, "key": key, "x": 1})
        assert cache.get(key)["x"] == 1
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1,
                                         "stores": 1, "corrupt": 0}
        assert len(cache) == 1

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        """A truncated entry is a miss AND moves to corrupt/ (counted,
        surfaced in the summary line) so the evidence survives."""
        cache = RunCache(str(tmp_path))
        key = "b" * 64
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as f:
            f.write("{truncated")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 1
        quarantined = os.path.join(str(tmp_path), "corrupt", f"{key}.json")
        assert os.path.exists(quarantined)
        assert not os.path.exists(os.path.join(str(tmp_path), f"{key}.json"))
        assert "1 corrupt quarantined" in cache.summary()
        # The slot is rewritable and serves normally afterwards.
        cache.put(key, {"schema": PAYLOAD_SCHEMA, "key": key, "x": 2})
        assert cache.get(key)["x"] == 2

    def test_schema_mismatch_is_a_plain_miss(self, tmp_path):
        """An old-schema entry is stale, not damaged: no quarantine."""
        cache = RunCache(str(tmp_path))
        key = "c" * 64
        cache.put(key, {"schema": PAYLOAD_SCHEMA + 1, "key": key})
        assert cache.get(key) is None
        assert cache.stats.corrupt == 0
        assert os.path.exists(os.path.join(str(tmp_path), f"{key}.json"))

    def test_wrong_key_entry_is_quarantined(self, tmp_path):
        cache = RunCache(str(tmp_path))
        key = "c" * 64
        cache.put(key, {"schema": PAYLOAD_SCHEMA, "key": "d" * 64})
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_needs_directory(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            RunCache("")


class TestConcurrentClients:
    """Two processes sharing one cache directory must never surface an
    exception to either — races resolve to at-most-one count."""

    def test_namespace_scopes_entries(self, tmp_path):
        a = RunCache(str(tmp_path), namespace="team-a")
        b = RunCache(str(tmp_path), namespace="team-b")
        key = "a" * 64
        a.put(key, {"schema": PAYLOAD_SCHEMA, "key": key, "x": 1})
        assert a.get(key)["x"] == 1
        assert b.get(key) is None  # isolated roots
        assert os.path.isdir(os.path.join(str(tmp_path), "team-a"))
        assert a.directory != b.directory

    @pytest.mark.parametrize("bad", ["", ".", "..", "a/b", ".hidden"])
    def test_bad_namespace_rejected(self, tmp_path, bad):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            RunCache(str(tmp_path), namespace=bad)

    def test_concurrent_same_key_put_is_atomic(self, tmp_path):
        """Interleaved writers of one key never leave a torn entry: the
        per-pid+sequence temp names keep them from clobbering each
        other's in-progress file, and the final rename is atomic."""
        a = RunCache(str(tmp_path))
        b = RunCache(str(tmp_path))
        key = "d" * 64
        a.put(key, {"schema": PAYLOAD_SCHEMA, "key": key, "writer": "a"})
        b.put(key, {"schema": PAYLOAD_SCHEMA, "key": key, "writer": "b"})
        entry = RunCache(str(tmp_path)).get(key)
        assert entry["writer"] in ("a", "b")  # last writer wins, whole
        leftovers = [n for n in os.listdir(str(tmp_path))
                     if n.endswith(".tmp")]
        assert leftovers == []

    def test_corrupt_race_counts_once_and_never_raises(self, tmp_path):
        """Two racing readers notice the same damaged entry; exactly one
        quarantines (and counts) it, the loser sees a plain miss."""
        first = RunCache(str(tmp_path))
        second = RunCache(str(tmp_path))
        key = "e" * 64
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as f:
            f.write("{torn")
        # Both caches have "seen" the damage; the second's move runs
        # after the first already won the os.replace race.
        assert first.get(key) is None
        second._quarantine_corrupt(key)  # the losing racer's attempt
        assert first.stats.corrupt == 1
        assert second.stats.corrupt == 0
        assert os.path.exists(
            os.path.join(str(tmp_path), "corrupt", f"{key}.json"))

    def test_unwritable_quarantine_dir_stays_a_plain_miss(self, tmp_path):
        """A cache root where corrupt/ cannot be created degrades to a
        miss instead of raising at the caller."""
        cache = RunCache(str(tmp_path))
        key = "f" * 64
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(os.path.join(str(tmp_path), f"{key}.json"), "w") as f:
            f.write("{torn")
        with open(os.path.join(str(tmp_path), "corrupt"), "w") as f:
            f.write("not a directory")  # makedirs will fail
        assert cache.get(key) is None  # no exception surfaces
        assert cache.stats.corrupt == 0
        assert cache.stats.misses == 1
