"""Module-level fault injectors for the supervision tests.

Everything here must be importable by name from a pool worker, so these
are plain module-level functions (``functools.partial`` over them stays
picklable).  The crashers kill *only the worker process they run in* —
each one is armed by a marker file created on the first call, so a retry
of the same point takes the clean path and the batch can finish.
"""

import os
import signal
import time

from repro.config.parameters import TorusShape
from repro.harness.runners import torus_platform


def small_torus():
    return torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)


def crash_once_builder(marker_path: str):
    """SIGKILL the current (worker) process on the first call; build the
    small torus platform on every later call.

    The marker file is created *before* the kill so the state survives
    the process death; the retry sees it and proceeds normally.
    """
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as f:
            f.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return small_torus()


def always_crash_builder():
    """SIGKILL the current (worker) process on every call."""
    os.kill(os.getpid(), signal.SIGKILL)


def hang_builder(sleep_s: float = 60.0):
    """Sleep far past any test deadline, then build normally (the
    supervisor must have reaped the worker long before this returns)."""
    time.sleep(sleep_s)
    return small_torus()


def always_raise_builder():
    raise ValueError("injected builder failure")


def crash_once_then(marker_path: str, builder):
    """Generic injector: first call SIGKILLs its worker, later calls
    delegate to ``builder`` — wrap any harness builder with
    ``functools.partial(crash_once_then, marker, builder)``."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as f:
            f.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return builder()


def hang_forever(builder):
    """Generic injector: sleep far past any test deadline before
    delegating (the supervisor must reap the worker first)."""
    time.sleep(60.0)
    return builder()


def flaky_square(marker_dir: str, x: int):
    """``x * x``, but x == 1 SIGKILLs its worker on the first attempt."""
    marker = os.path.join(marker_dir, f"flaky-{x}")
    if x == 1 and not os.path.exists(marker):
        with open(marker, "w") as f:
            f.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def hang_if_two(x: int):
    if x == 2:
        time.sleep(60.0)
    return x * x


def append_journal_lines(path: str, writer_id: int, count: int):
    """Append ``count`` outcome records from one concurrent writer.

    Used by the shared-journal race tests: several processes run this
    simultaneously against one path, and every written line must come
    back whole (O_APPEND single-write atomicity)."""
    from repro.parallel import OutcomeJournal

    journal = OutcomeJournal(path)
    for i in range(count):
        journal.append({"type": "outcome", "key": f"w{writer_id}-k{i}",
                        "status": "ok", "writer": writer_id, "seq": i,
                        "padding": "x" * 256})
    return writer_id


def hold_journal_lock(path: str, acquired_path: str, release_path: str):
    """Take the exclusive journal lock and hold it until told to release.

    Runs in a live subprocess so the lock's owner pid passes the
    ``os.kill(pid, 0)`` liveness probe in the parent's test."""
    from repro.parallel import OutcomeJournal

    journal = OutcomeJournal(path, exclusive=True)
    with open(acquired_path, "w") as f:
        f.write(str(os.getpid()))
    while not os.path.exists(release_path):
        time.sleep(0.02)
    journal.close()
    return os.getpid()
