"""Timing tests for the fast analytical backend."""

import pytest

from repro.config import LinkConfig, NetworkConfig, TorusShape, paper_network_config
from repro.config.parameters import AllToAllShape
from repro.dims import Dimension
from repro.errors import NetworkError
from repro.events import EventQueue
from repro.network import FastBackend, Link, Message, validate_path
from repro.network.physical import AllToAllFabric, TorusFabric

#: An idealized link class for exact hand calculations.
IDEAL = LinkConfig(bandwidth_gbps=100.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
IDEAL_NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL,
                          router_latency_cycles=1.0)


def deliver(backend, src, dst, size, path):
    done = []
    backend.send(Message(src, dst, size), path, done.append)
    backend.events.run()
    assert len(done) == 1
    return done[0]


class TestSingleHop:
    def test_exact_delivery_time(self):
        q = EventQueue()
        backend = FastBackend(q, IDEAL_NET)
        link = Link(0, 1, IDEAL)
        msg = deliver(backend, 0, 1, 1000.0, [link])
        # 1000 B / 100 B-per-cycle + 50 latency.
        assert msg.delivered_at == pytest.approx(60.0)
        assert msg.queueing_cycles == pytest.approx(0.0)
        assert msg.network_cycles == pytest.approx(60.0)

    def test_two_messages_queue_fifo(self):
        q = EventQueue()
        backend = FastBackend(q, IDEAL_NET)
        link = Link(0, 1, IDEAL)
        done = []
        backend.send(Message(0, 1, 1000.0), [link], done.append)
        backend.send(Message(0, 1, 1000.0), [link], done.append)
        q.run()
        assert done[0].delivered_at == pytest.approx(60.0)
        assert done[1].delivered_at == pytest.approx(70.0)
        assert done[1].queueing_cycles == pytest.approx(10.0)

    def test_counters(self):
        q = EventQueue()
        backend = FastBackend(q, IDEAL_NET)
        link = Link(0, 1, IDEAL)
        deliver(backend, 0, 1, 123.0, [link])
        assert backend.messages_delivered == 1
        assert backend.bytes_delivered == pytest.approx(123.0)


class TestMultiHop:
    def test_pipelined_two_hops(self):
        q = EventQueue()
        backend = FastBackend(q, IDEAL_NET)
        l1, l2 = Link(0, 9, IDEAL), Link(9, 1, IDEAL)
        msg = deliver(backend, 0, 1, 5120.0, [l1, l2])
        # Hop 1 head: 512/100 + 50 = 55.12; +router 1; hop 2 starts at
        # 56.12, tail = 56.12 + 51.2 + 50 = 157.32.
        assert msg.delivered_at == pytest.approx(56.12 + 51.2 + 50.0)

    def test_multi_hop_beats_store_and_forward(self):
        q = EventQueue()
        backend = FastBackend(q, IDEAL_NET)
        l1, l2 = Link(0, 9, IDEAL), Link(9, 1, IDEAL)
        msg = deliver(backend, 0, 1, 100_000.0, [l1, l2])
        store_forward = 2 * (1000.0 + 50.0)
        assert msg.delivered_at < store_forward

    def test_switch_path_through_fabric(self):
        net = paper_network_config()
        fabric = AllToAllFabric(AllToAllShape(1, 4), net, global_switches=3)
        q = EventQueue()
        backend = FastBackend(q, net)
        switch = fabric.switch_for(0, 2)
        msg = deliver(backend, 0, 2, 1024.0, switch.path(0, 2))
        assert msg.delivered_at > 2 * net.package_link.latency_cycles


class TestPathValidation:
    def test_empty_path(self):
        with pytest.raises(NetworkError):
            validate_path(Message(0, 1, 1.0), [])

    def test_wrong_source(self):
        with pytest.raises(NetworkError):
            validate_path(Message(0, 1, 1.0), [Link(2, 1, IDEAL)])

    def test_wrong_destination(self):
        with pytest.raises(NetworkError):
            validate_path(Message(0, 1, 1.0), [Link(0, 2, IDEAL)])

    def test_discontinuous_path(self):
        with pytest.raises(NetworkError):
            validate_path(Message(0, 1, 1.0),
                          [Link(0, 5, IDEAL), Link(6, 1, IDEAL)])

    def test_valid_path_accepted(self):
        validate_path(Message(0, 1, 1.0), [Link(0, 5, IDEAL), Link(5, 1, IDEAL)])

    def test_send_rejects_empty_path_cleanly(self):
        """send() on a degenerate path must fail in validation, never
        reach the hop loop (regression: last_tail was unbound there)."""
        backend = FastBackend(EventQueue(), IDEAL_NET)
        with pytest.raises(NetworkError, match="empty path"):
            backend.send(Message(0, 1, 1.0), [], lambda m: None)

    def test_send_rejects_discontinuous_path_cleanly(self):
        backend = FastBackend(EventQueue(), IDEAL_NET)
        with pytest.raises(NetworkError, match="discontinuous"):
            backend.send(Message(0, 1, 1.0),
                         [Link(0, 5, IDEAL), Link(6, 1, IDEAL)],
                         lambda m: None)


class TestScheduling:
    def test_backend_exposes_event_queue(self):
        q = EventQueue()
        backend = FastBackend(q, IDEAL_NET)
        fired = []
        backend.schedule(5.0, lambda: fired.append(backend.now))
        q.run()
        assert fired == [5.0]

    def test_paper_parameters_end_to_end(self):
        """200 GB/s local link at 94% efficiency with 512 B quanta."""
        net = paper_network_config()
        fabric = TorusFabric(TorusShape(2, 2, 1), net)
        ring = fabric.channels_for(Dimension.LOCAL, (0, 0))[0]
        q = EventQueue()
        backend = FastBackend(q, net)
        msg = deliver(backend, ring.nodes[0], ring.nodes[1], 1024 * 1024,
                      ring.path(ring.nodes[0], ring.nodes[1]))
        wire = 1024 * 1024 / (200 * 0.94)
        quanta = 1024 * 1024 / 512 * 10
        assert msg.delivered_at == pytest.approx(wire + quanta + 90.0)
