"""Fault injection exercised on the detailed (flit-level) backend.

The fast-backend fault tests check analytical slowdowns; these verify the
degradation survives wormhole switching — slower serialization, longer
propagation, and credit flow control all still conserving every flit.
"""

import pytest

from repro.collectives import CollectiveContext, RingAllReduce
from repro.config import LinkConfig, NetworkConfig
from repro.config.parameters import TorusShape
from repro.config.presets import paper_simulation_config
from repro.errors import NetworkError
from repro.events import EventQueue
from repro.network import Link, RingChannel
from repro.network.detailed import DetailedBackend
from repro.network.faults import (
    degrade_link,
    degrade_random_links,
    slowest_link_bandwidth,
)
from repro.network.message import Message
from repro.sanitize import RuntimeSanitizer
from repro.topology.logical import build_torus_topology

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL,
                    vcs_per_vnet=8, buffers_per_vc=64)


def run_ring_allreduce(n=4, size=16 * 1024, degrade=None, sanitize=False):
    """One ring all-reduce on the detailed backend; ``degrade`` may mutate
    the link list before the run."""
    sanitizer = RuntimeSanitizer() if sanitize else None
    events = (sanitizer.make_event_queue() if sanitizer is not None
              else EventQueue())
    links = [Link(i, (i + 1) % n, IDEAL) for i in range(n)]
    if degrade is not None:
        degrade(links)
    ring = RingChannel(list(range(n)), links)
    backend = DetailedBackend(events, NET, sanitizer=sanitizer)
    ctx = CollectiveContext(backend, reduction_cycles_per_kb=0.0)
    algo = RingAllReduce(ctx, ring, size)
    algo.start_all()
    events.run(max_events=5_000_000)
    assert algo.done
    if sanitizer is not None:
        sanitizer.verify_quiescent()
    return algo.finished_at


class TestDegradedLinksOnDetailedBackend:
    def test_degraded_bandwidth_slows_collective(self):
        healthy = run_ring_allreduce()
        degraded = run_ring_allreduce(
            degrade=lambda links: degrade_link(links[0], bandwidth_factor=0.25))
        assert degraded > healthy

    def test_extra_latency_slows_collective(self):
        healthy = run_ring_allreduce()
        lagged = run_ring_allreduce(
            degrade=lambda links: degrade_link(links[0],
                                               extra_latency_cycles=5000.0))
        assert lagged > healthy

    def test_deeper_degradation_costs_more(self):
        mild = run_ring_allreduce(
            degrade=lambda links: degrade_link(links[0], bandwidth_factor=0.5))
        severe = run_ring_allreduce(
            degrade=lambda links: degrade_link(links[0], bandwidth_factor=0.1))
        assert severe > mild

    def test_sanitizer_clean_under_degradation(self):
        """Conservation ledgers must balance even on a crippled link."""
        degraded = run_ring_allreduce(
            degrade=lambda links: degrade_link(links[0], bandwidth_factor=0.2,
                                               extra_latency_cycles=1000.0),
            sanitize=True)
        assert degraded > 0

    def test_single_message_sees_degraded_serialization(self):
        events = EventQueue()
        link = Link(0, 1, IDEAL)
        degrade_link(link, bandwidth_factor=0.5)
        backend = DetailedBackend(events, NET)
        done = []
        msg = Message(src=0, dst=1, size_bytes=8192.0, tag="d")
        backend.send(msg, [link], lambda m: done.append(m.delivered_at))
        events.run()

        events2 = EventQueue()
        healthy = Link(0, 1, IDEAL)
        backend2 = DetailedBackend(events2, NET)
        done2 = []
        msg2 = Message(src=0, dst=1, size_bytes=8192.0, tag="h")
        backend2.send(msg2, [healthy], lambda m: done2.append(m.delivered_at))
        events2.run()
        assert done[0] > done2[0]


class TestDegradeRandomLinksOnFabric:
    def test_degraded_fabric_run_is_sanitizer_clean(self):
        from repro.collectives.types import CollectiveOp
        from repro.system.sys_layer import System

        config = paper_simulation_config()
        topology = build_torus_topology(TorusShape(2, 2, 2), config.network,
                                        config.system)
        victims = degrade_random_links(topology.fabric, count=3,
                                       bandwidth_factor=0.5, seed=7)
        assert len(victims) == 3
        assert slowest_link_bandwidth(topology.fabric) < 25.0

        sanitizer = RuntimeSanitizer()
        system = System(topology, config, sanitizer=sanitizer)
        collective = system.request_collective(CollectiveOp.ALL_REDUCE,
                                               128 * 1024)
        system.run_until_idle(max_events=50_000_000)
        assert collective.done

    def test_kind_restriction(self):
        config = paper_simulation_config()
        topology = build_torus_topology(TorusShape(2, 2, 2), config.network,
                                        config.system)
        victims = degrade_random_links(topology.fabric, count=2,
                                       bandwidth_factor=0.5, seed=1,
                                       kind="package")
        assert all(v.kind == "package" for v in victims)

    def test_bad_factor_rejected(self):
        with pytest.raises(NetworkError):
            degrade_link(Link(0, 1, IDEAL), bandwidth_factor=1.5)

    def test_count_exceeding_links_rejected(self):
        config = paper_simulation_config()
        topology = build_torus_topology(TorusShape(1, 2, 1), config.network,
                                        config.system)
        with pytest.raises(NetworkError):
            degrade_random_links(topology.fabric, count=10_000,
                                 bandwidth_factor=0.5)
