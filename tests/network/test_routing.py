"""Tests for the fabric router."""

import pytest

from repro.config import AllToAllShape, TorusShape, paper_network_config
from repro.errors import NetworkError
from repro.network.physical import AllToAllFabric, TorusFabric
from repro.network.routing import FabricRouter

NET = paper_network_config()


class TestTorusRouting:
    def test_neighbour_is_one_hop(self):
        fabric = TorusFabric(TorusShape(1, 8, 1), NET, horizontal_rings=1)
        router = FabricRouter(fabric)
        assert router.hop_count(0, 1) == 1

    def test_bidirectional_rings_allow_short_way_round(self):
        fabric = TorusFabric(TorusShape(1, 8, 1), NET, horizontal_rings=1)
        router = FabricRouter(fabric)
        # 0 -> 7 is one hop backwards on the CCW ring, not 7 hops forward.
        assert router.hop_count(0, 7) == 1

    def test_paths_chain_correctly(self):
        fabric = TorusFabric(TorusShape(2, 4, 4), NET)
        router = FabricRouter(fabric)
        path = router.path(0, fabric.num_npus - 1)
        assert path[0].src == 0
        assert path[-1].dst == fabric.num_npus - 1
        for a, b in zip(path, path[1:]):
            assert a.dst == b.src

    def test_all_pairs_reachable(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        router = FabricRouter(fabric)
        for src in range(8):
            for dst in range(8):
                if src != dst:
                    assert router.reachable(src, dst)

    def test_prefers_low_latency_local_links(self):
        """Within a package the 90-cycle local link beats any inter-package
        detour."""
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        router = FabricRouter(fabric)
        intra = router.path(0, 1)  # same package (local coords 0/1)
        assert all(l.kind == "local" for l in intra)

    def test_diameter(self):
        fabric = TorusFabric(TorusShape(1, 4, 1), NET, horizontal_rings=1)
        router = FabricRouter(fabric)
        assert router.diameter_hops() == 2  # bidirectional 4-ring

    def test_self_path_rejected(self):
        router = FabricRouter(TorusFabric(TorusShape(2, 2, 2), NET))
        with pytest.raises(NetworkError):
            router.path(3, 3)

    def test_unknown_node_rejected(self):
        router = FabricRouter(TorusFabric(TorusShape(2, 2, 2), NET))
        with pytest.raises(NetworkError):
            router.path(0, 10_000)

    def test_path_caching_returns_same_object(self):
        router = FabricRouter(TorusFabric(TorusShape(2, 2, 2), NET))
        assert router.path(0, 5) is router.path(0, 5)


class TestAllToAllRouting:
    def test_cross_package_goes_through_switch(self):
        fabric = AllToAllFabric(AllToAllShape(2, 4), NET)
        router = FabricRouter(fabric)
        path = router.path(0, fabric.npu_id(0, 2))
        assert len(path) == 2  # uplink + downlink

    def test_intra_package_stays_local(self):
        fabric = AllToAllFabric(AllToAllShape(2, 4), NET)
        router = FabricRouter(fabric)
        path = router.path(fabric.npu_id(0, 1), fabric.npu_id(1, 1))
        assert all(l.kind == "local" for l in path)
