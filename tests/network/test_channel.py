"""Unit tests for ring and switch channels."""

import pytest

from repro.config import LinkConfig
from repro.errors import NetworkError, TopologyError
from repro.network import Link, RingChannel, SwitchChannel

CFG = LinkConfig(bandwidth_gbps=25.0, latency_cycles=200.0, packet_size_bytes=256)


def make_ring(nodes):
    links = [Link(nodes[i], nodes[(i + 1) % len(nodes)], CFG)
             for i in range(len(nodes))]
    return RingChannel(nodes, links)


def make_switch(switch_id, nodes):
    uplinks = {n: Link(n, switch_id, CFG) for n in nodes}
    downlinks = {n: Link(switch_id, n, CFG) for n in nodes}
    return SwitchChannel(switch_id, nodes, uplinks, downlinks)


class TestRingChannel:
    def test_neighbours(self):
        ring = make_ring([10, 20, 30, 40])
        assert ring.next_node(10) == 20
        assert ring.next_node(40) == 10
        assert ring.prev_node(10) == 40

    def test_node_at_distance(self):
        ring = make_ring([0, 1, 2, 3])
        assert ring.node_at_distance(1, 2) == 3
        assert ring.node_at_distance(3, 2) == 1

    def test_path_single_hop(self):
        ring = make_ring([0, 1, 2, 3])
        path = ring.path(1, 2)
        assert len(path) == 1
        assert path[0].src == 1 and path[0].dst == 2

    def test_path_wraps(self):
        ring = make_ring([0, 1, 2, 3])
        path = ring.path(3, 1)
        assert [(l.src, l.dst) for l in path] == [(3, 0), (0, 1)]

    def test_link_from(self):
        ring = make_ring([0, 1, 2])
        assert ring.link_from(2).dst == 0

    def test_path_rejects_self(self):
        with pytest.raises(NetworkError):
            make_ring([0, 1]).path(0, 0)

    def test_unknown_node_rejected(self):
        with pytest.raises(TopologyError):
            make_ring([0, 1]).position(99)

    def test_requires_two_nodes(self):
        with pytest.raises(TopologyError):
            RingChannel([0], [])

    def test_rejects_duplicate_nodes(self):
        links = [Link(0, 1, CFG), Link(1, 0, CFG), Link(0, 1, CFG)]
        with pytest.raises(TopologyError):
            RingChannel([0, 1, 0], links)

    def test_rejects_wrong_link_wiring(self):
        links = [Link(0, 2, CFG), Link(1, 0, CFG)]
        with pytest.raises(TopologyError):
            RingChannel([0, 1], links)

    def test_rejects_wrong_link_count(self):
        links = [Link(0, 1, CFG)]
        with pytest.raises(TopologyError):
            RingChannel([0, 1], links)

    def test_two_node_ring(self):
        ring = make_ring([5, 7])
        assert ring.next_node(5) == 7
        assert ring.next_node(7) == 5


class TestSwitchChannel:
    def test_path_goes_through_switch(self):
        switch = make_switch(100, [0, 1, 2])
        path = switch.path(0, 2)
        assert [(l.src, l.dst) for l in path] == [(0, 100), (100, 2)]

    def test_path_rejects_self(self):
        with pytest.raises(NetworkError):
            make_switch(100, [0, 1]).path(1, 1)

    def test_unattached_node_rejected(self):
        with pytest.raises(TopologyError):
            make_switch(100, [0, 1]).path(0, 9)

    def test_requires_two_nodes(self):
        with pytest.raises(TopologyError):
            make_switch(100, [0])

    def test_missing_links_detected(self):
        uplinks = {0: Link(0, 100, CFG)}
        downlinks = {0: Link(100, 0, CFG), 1: Link(100, 1, CFG)}
        with pytest.raises(TopologyError):
            SwitchChannel(100, [0, 1], uplinks, downlinks)

    def test_bad_uplink_wiring_detected(self):
        uplinks = {0: Link(0, 99, CFG), 1: Link(1, 100, CFG)}
        downlinks = {0: Link(100, 0, CFG), 1: Link(100, 1, CFG)}
        with pytest.raises(TopologyError):
            SwitchChannel(100, [0, 1], uplinks, downlinks)
