"""Burst-batching on/off equivalence for the detailed backend (PR 10).

The vectorized flit-burst path (``TxPort._start_burst`` and friends)
must be invisible to simulated time: with bursting force-disabled the
same workload must land on bit-identical cycles, identical *logical*
event counts (``events_simulated``), and identical per-port link stats.
These tests run representative collectives both ways and compare.
"""

import pytest

from repro.collectives import CollectiveOp
from repro.config import AllToAllShape, TorusShape
from repro.config.units import KB
from repro.harness.runners import (
    alltoall_platform,
    run_collective,
    torus_platform,
)
from repro.network.detailed import DetailedBackend
from repro.network.detailed import router

#: Pre-burst regression constant: the serial path's exact cycle count
#: for the 2x2x2 torus 64 KB all-reduce, recorded before the burst work
#: landed.  Both paths must still produce it, bit for bit.
TORUS_AR_64KB_CYCLES = 2601.3617021276464


def _detailed_factory(events, network, sanitizer):
    return DetailedBackend(events, network, sanitizer=sanitizer)


def _run(make_spec, op, size, burst: bool, sanitize: bool = False):
    """One detailed-backend collective with bursting forced on or off.

    Returns ``(duration_cycles, events_simulated, per-port stats)`` where
    port stats are keyed by ``(src, dst)`` — link ids come from a
    process-global counter and differ between builds.
    """
    orig_init = router.TxPort.__init__

    def patched(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        if not burst:
            self.burst_enabled = False

    router.TxPort.__init__ = patched
    try:
        spec = make_spec()
        spec.backend_factory = _detailed_factory
        result = run_collective(spec, op, size, sanitize=sanitize)
    finally:
        router.TxPort.__init__ = orig_init
    system = result.system
    ports = sorted(system.backend._ports.values(),
                   key=lambda p: (p.link.src, p.link.dst))
    stats = [(p.link.src, p.link.dst, p.flits_sent,
              p.link.stats.bytes, p.link.stats.busy_cycles)
             for p in ports]
    return result.duration_cycles, system.events.events_simulated, stats


WORKLOADS = [
    ("torus_allreduce_64kb",
     lambda: torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4),
     CollectiveOp.ALL_REDUCE, 64 * KB),
    ("torus_alltoall_16kb",
     lambda: torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4),
     CollectiveOp.ALL_TO_ALL, 16 * KB),
    ("switch_allgather_64kb",
     lambda: alltoall_platform(AllToAllShape(local=2, packages=4)),
     CollectiveOp.ALL_GATHER, 64 * KB),
]


class TestBurstEquivalence:
    @pytest.mark.parametrize("name,make_spec,op,size", WORKLOADS,
                             ids=[w[0] for w in WORKLOADS])
    def test_cycles_events_and_port_stats_identical(self, name, make_spec,
                                                    op, size):
        on = _run(make_spec, op, size, burst=True)
        off = _run(make_spec, op, size, burst=False)
        assert on[0] == off[0], "duration_cycles diverged"
        assert on[1] == off[1], "logical event count diverged"
        assert on[2] == off[2], "per-port link stats diverged"

    def test_serial_path_preserves_pre_burst_cycles(self):
        name, make_spec, op, size = WORKLOADS[0]
        cycles, _events, _stats = _run(make_spec, op, size, burst=False)
        assert cycles == TORUS_AR_64KB_CYCLES

    def test_burst_path_preserves_pre_burst_cycles(self):
        name, make_spec, op, size = WORKLOADS[0]
        cycles, _events, _stats = _run(make_spec, op, size, burst=True)
        assert cycles == TORUS_AR_64KB_CYCLES

    def test_sanitized_run_identical(self):
        """The conservation checker's bulk ledger must see every flit the
        burst path delivers — and the sanitizer must not perturb cycles."""
        name, make_spec, op, size = WORKLOADS[0]
        plain = _run(make_spec, op, size, burst=True)
        checked = _run(make_spec, op, size, burst=True, sanitize=True)
        assert plain[0] == checked[0]

    def test_faults_disable_bursting(self):
        """Installing a fault state flips every live port to the serial
        path (burst plans cannot survive a mid-run link retiming)."""
        from repro.events import EventQueue
        from tests.network.test_detailed_backend import IDEAL, make_net
        from repro.network import Link, Message

        net = make_net()
        q = EventQueue()
        backend = DetailedBackend(q, net)
        link = Link(0, 1, IDEAL)
        backend.send(Message(0, 1, 4096.0), [link], lambda m: None)
        port = next(iter(backend._ports.values()))
        assert port.burst_enabled

        class _FakeFaults:
            pass

        backend.faults = _FakeFaults()
        assert not port.burst_enabled
        backend.faults = None
        assert port.burst_enabled
