"""Unit tests for the FIFO link model."""

import pytest

from repro.config import LinkConfig
from repro.errors import NetworkError
from repro.network import Link


def make_link(**kwargs) -> Link:
    config = LinkConfig(
        bandwidth_gbps=kwargs.pop("bandwidth_gbps", 100.0),
        latency_cycles=kwargs.pop("latency_cycles", 50.0),
        packet_size_bytes=kwargs.pop("packet_size_bytes", 512),
        efficiency=kwargs.pop("efficiency", 1.0),
        message_quantum_bytes=kwargs.pop("message_quantum_bytes", None),
    )
    return Link(0, 1, config, **kwargs)


class TestReserve:
    def test_idle_link_grants_immediately(self):
        link = make_link()
        start, head, tail = link.reserve(at=100.0, size_bytes=1000.0)
        assert start == pytest.approx(100.0)
        # 1000 B / 100 B-per-cycle = 10 cycles serialization + 50 latency.
        assert tail == pytest.approx(100.0 + 10.0 + 50.0)

    def test_head_arrival_is_first_packet(self):
        link = make_link()
        _, head, _ = link.reserve(at=0.0, size_bytes=5120.0)
        # first packet = 512 B -> 5.12 cycles + 50 latency.
        assert head == pytest.approx(5.12 + 50.0)

    def test_short_message_head_equals_tail(self):
        link = make_link()
        _, head, tail = link.reserve(at=0.0, size_bytes=100.0)
        assert head == pytest.approx(tail)

    def test_fifo_queueing(self):
        link = make_link()
        link.reserve(at=0.0, size_bytes=1000.0)   # occupies [0, 10)
        start, _, tail = link.reserve(at=0.0, size_bytes=1000.0)
        assert start == pytest.approx(10.0)
        assert tail == pytest.approx(10.0 + 10.0 + 50.0)

    def test_gap_between_messages_is_idle(self):
        link = make_link()
        link.reserve(at=0.0, size_bytes=1000.0)
        start, _, _ = link.reserve(at=1000.0, size_bytes=1000.0)
        assert start == pytest.approx(1000.0)

    def test_stats_accumulate(self):
        link = make_link()
        link.reserve(at=0.0, size_bytes=1000.0)
        link.reserve(at=0.0, size_bytes=500.0)
        assert link.stats.messages == 2
        assert link.stats.bytes == pytest.approx(1500.0)
        assert link.stats.busy_cycles == pytest.approx(15.0)
        assert link.stats.queue_cycles == pytest.approx(10.0)

    def test_reset_clears_reservations(self):
        link = make_link()
        link.reserve(at=0.0, size_bytes=10_000.0)
        link.reset()
        assert link.next_free == 0.0
        assert link.stats.messages == 0

    def test_rejects_negative_size(self):
        with pytest.raises(NetworkError):
            make_link().reserve(at=0.0, size_bytes=-1.0)

    def test_rejects_self_loop(self):
        config = LinkConfig(bandwidth_gbps=1.0, latency_cycles=0.0,
                            packet_size_bytes=64)
        with pytest.raises(NetworkError):
            Link(5, 5, config)

    def test_efficiency_slows_serialization(self):
        fast = make_link(efficiency=1.0)
        slow = make_link(efficiency=0.5)
        _, _, fast_tail = fast.reserve(0.0, 1000.0)
        _, _, slow_tail = slow.reserve(0.0, 1000.0)
        assert slow_tail > fast_tail

    def test_quantum_overhead_in_serialization(self):
        plain = make_link()
        quantum = make_link(message_quantum_bytes=512)
        # Rebuild with overhead since make_link pops quantum kwargs.
        cfg = LinkConfig(bandwidth_gbps=100.0, latency_cycles=50.0,
                         packet_size_bytes=512, efficiency=1.0,
                         message_quantum_bytes=512, quantum_overhead_cycles=10.0)
        quantum = Link(0, 1, cfg)
        _, _, plain_tail = plain.reserve(0.0, 1024.0)
        _, _, quantum_tail = quantum.reserve(0.0, 1024.0)
        assert quantum_tail - plain_tail == pytest.approx(20.0)

    def test_link_ids_unique(self):
        assert make_link().link_id != make_link().link_id
