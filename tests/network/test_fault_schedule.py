"""Dynamic fault schedules: parsing, installation, and injection-time drops.

Transport-level recovery is exercised in ``tests/system/test_transport.py``;
here we pin down the schedule format, its validation against a fabric, and
the raw drop semantics both backends share through
``NetworkBackend._drop_if_faulty``.
"""

import os

import pytest

from repro.config import LinkConfig, NetworkConfig
from repro.config.parameters import TorusShape
from repro.config.presets import paper_simulation_config
from repro.errors import ConfigError, NetworkError
from repro.events import EventQueue
from repro.network import FastBackend, FaultAction, FaultSchedule, FaultState, Link
from repro.network.message import Message
from repro.topology.logical import build_torus_topology

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL)

GOOD_SCHEDULE = {
    "seed": 7,
    "events": [
        {"time": 50_000, "action": "link_down", "link": [1, 2]},
        {"time": 250_000, "action": "link_up", "link": [1, 2]},
        {"time": 0, "action": "drop", "link": [2, 3], "probability": 0.02},
        {"time": 100_000, "action": "link_degrade", "link": [3, 0],
         "bandwidth_factor": 0.5, "extra_latency_cycles": 100},
        {"time": 80_000, "action": "node_pause", "node": 3},
        {"time": 120_000, "action": "node_resume", "node": 3},
    ],
}


def build_fabric(n=4):
    config = paper_simulation_config()
    topo = build_torus_topology(TorusShape(1, n, 1), config.network,
                                config.system)
    return topo.fabric


class TestParsing:
    def test_good_schedule_parses_and_sorts(self):
        sched = FaultSchedule.from_dict(GOOD_SCHEDULE)
        assert len(sched) == 6
        assert sched.seed == 7
        times = [e.time for e in sched.events]
        assert times == sorted(times)
        assert sched.events[0].action is FaultAction.DROP

    def test_to_dict_roundtrip(self):
        sched = FaultSchedule.from_dict(GOOD_SCHEDULE)
        again = FaultSchedule.from_dict(sched.to_dict())
        assert again.to_dict() == sched.to_dict()

    def test_from_json(self):
        import json

        sched = FaultSchedule.from_json(json.dumps(GOOD_SCHEDULE))
        assert len(sched) == 6

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_json("{not json")

    def test_missing_file_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_file("/nonexistent/schedule.json")

    def test_bad_fixture_files_rejected(self):
        base = os.path.join(os.path.dirname(__file__), "..", "data",
                            "badconfigs")
        with pytest.raises(ConfigError):
            FaultSchedule.from_file(
                os.path.join(base, "bad_fault_schedule_action.json"))

    @pytest.mark.parametrize("doc", [
        {"events": [{"time": 1, "action": "link_explode", "link": [0, 1]}]},
        {"events": [{"time": 1, "action": "link_down"}]},
        {"events": [{"time": 1, "action": "node_pause"}]},
        {"events": [{"time": -1, "action": "link_down", "link": [0, 1]}]},
        {"events": [{"time": 1, "action": "link_down", "link": [0, 0]}]},
        {"events": [{"time": 1, "action": "link_down", "link": [0]}]},
        {"events": [{"time": 1, "action": "link_down", "link": [0, 1],
                     "surprise": True}]},
        {"events": [{"time": 1, "action": "drop", "link": [0, 1],
                     "probability": 1.5}]},
        {"events": [{"time": 1, "action": "link_degrade", "link": [0, 1],
                     "bandwidth_factor": 0.0}]},
        {"events": [{"time": 1, "action": "link_degrade", "link": [0, 1],
                     "extra_latency_cycles": -5}]},
        {"events": [{"time": True, "action": "link_down", "link": [0, 1]}]},
        {"events": ["link_down"]},
        {"events": {"time": 1}},
        {"seed": "zero", "events": []},
        {"seed": 0, "events": [], "extra": 1},
        [],
    ])
    def test_bad_documents_rejected(self, doc):
        with pytest.raises(ConfigError):
            FaultSchedule.from_dict(doc)


class TestInstall:
    def test_unknown_link_rejected(self):
        fabric = build_fabric(4)
        sched = FaultSchedule.from_dict(
            {"events": [{"time": 1, "action": "link_down", "link": [0, 2]}]})
        with pytest.raises(NetworkError, match="0->2"):
            sched.install(fabric, EventQueue())

    def test_unknown_node_rejected(self):
        fabric = build_fabric(4)
        sched = FaultSchedule.from_dict(
            {"events": [{"time": 1, "action": "node_pause", "node": 9}]})
        with pytest.raises(NetworkError, match="node 9"):
            sched.install(fabric, EventQueue())

    def test_install_returns_seeded_state(self):
        fabric = build_fabric(4)
        events = EventQueue()
        state = FaultSchedule.from_dict(GOOD_SCHEDULE).install(fabric, events)
        assert isinstance(state, FaultState)
        assert state.seed == 7
        assert events.pending == 6

    def test_events_fire_in_time_order(self):
        fabric = build_fabric(4)
        events = EventQueue()
        sched = FaultSchedule.from_dict({"events": [
            {"time": 100, "action": "link_down", "link": [1, 2]},
            {"time": 200, "action": "link_up", "link": [1, 2]},
        ]})
        state = sched.install(fabric, events)
        assert state.down == set()
        events.run(until=100)
        assert state.down == {(1, 2)}
        events.run(until=200)
        assert state.down == set()

    def test_node_pause_resume(self):
        fabric = build_fabric(4)
        events = EventQueue()
        sched = FaultSchedule.from_dict({"events": [
            {"time": 10, "action": "node_pause", "node": 2},
            {"time": 20, "action": "node_resume", "node": 2},
        ]})
        state = sched.install(fabric, events)
        events.run(until=10)
        assert state.paused == {2}
        events.run(until=20)
        assert state.paused == set()

    def test_link_degrade_applies_at_fire_time(self):
        fabric = build_fabric(4)
        events = EventQueue()
        victims = [l for l in fabric.links if (l.src, l.dst) == (1, 2)]
        before = [l.config.bandwidth_gbps for l in victims]
        sched = FaultSchedule.from_dict({"events": [
            {"time": 100, "action": "link_degrade", "link": [1, 2],
             "bandwidth_factor": 0.5, "extra_latency_cycles": 25},
        ]})
        sched.install(fabric, events)
        assert [l.config.bandwidth_gbps for l in victims] == before
        events.run()
        assert all(l.config.bandwidth_gbps == pytest.approx(b / 2)
                   for l, b in zip(victims, before))
        assert all(l.config.latency_cycles >= 25 for l in victims)


class TestDropSemantics:
    def make_backend(self):
        events = EventQueue()
        backend = FastBackend(events, NET)
        backend.faults = FaultState(seed=0)
        return events, backend

    def test_down_link_drops_message(self):
        events, backend = self.make_backend()
        link = Link(0, 1, IDEAL)
        backend.faults.down.add((0, 1))
        delivered = []
        backend.send(Message(src=0, dst=1, size_bytes=1024.0, tag="t"),
                     [link], delivered.append)
        events.run()
        assert delivered == []
        assert backend.messages_dropped == 1
        assert backend.faults.drops_by_reason == {"link 0->1 down": 1}

    def test_paused_node_drops_message(self):
        events, backend = self.make_backend()
        link = Link(0, 1, IDEAL)
        backend.faults.paused.add(1)
        delivered = []
        msg = Message(src=0, dst=1, size_bytes=1024.0, tag="t")
        backend.send(msg, [link], delivered.append)
        events.run()
        assert delivered == []
        assert msg.drop_reason == "node 1 paused"

    def test_healthy_message_delivered(self):
        events, backend = self.make_backend()
        link = Link(0, 1, IDEAL)
        delivered = []
        backend.send(Message(src=0, dst=1, size_bytes=1024.0, tag="t"),
                     [link], delivered.append)
        events.run()
        assert len(delivered) == 1
        assert backend.messages_dropped == 0

    def test_probabilistic_drop_is_seeded(self):
        def run(seed):
            events = EventQueue()
            backend = FastBackend(events, NET)
            backend.faults = FaultState(seed=seed)
            backend.faults.drop_probability[(0, 1)] = 0.5
            link = Link(0, 1, IDEAL)
            outcomes = []
            for i in range(50):
                msg = Message(src=0, dst=1, size_bytes=64.0, tag=f"m{i}")
                backend.send(msg, [link], lambda m: None)
                outcomes.append(msg.drop_reason is not None)
            events.run()
            return outcomes

        a, b = run(3), run(3)
        assert a == b
        assert any(a) and not all(a)
        assert run(4) != a

    def test_default_drop_probability_certain_loss(self):
        events, backend = self.make_backend()
        backend.faults.default_drop_probability = 1.0
        link = Link(0, 1, IDEAL)
        delivered = []
        backend.send(Message(src=0, dst=1, size_bytes=64.0, tag="t"),
                     [link], delivered.append)
        events.run()
        assert delivered == []

    def test_down_links_on_path(self):
        state = FaultState()
        state.down.add((1, 2))
        path = [Link(0, 1, IDEAL), Link(1, 2, IDEAL)]
        assert state.down_links_on(path) == [(1, 2)]


class TestScheduleLint:
    def lint(self, doc):
        from repro.sanitize import lint_fault_schedule

        findings = lint_fault_schedule(doc, source="test")
        return [f for f in findings if f.severity.value == "error"], \
               [f for f in findings if f.severity.value == "warning"]

    def test_good_schedule_is_clean(self):
        errors, _warnings = self.lint(GOOD_SCHEDULE)
        assert errors == []

    def test_bad_action_flagged(self):
        errors, _ = self.lint(
            {"events": [{"time": 1, "action": "meteor_strike"}]})
        assert errors

    def test_bad_seed_flagged(self):
        errors, _ = self.lint({"seed": "x", "events": []})
        assert any(f.param == "fault_schedule.seed" for f in errors)

    def test_link_up_without_down_warns(self):
        errors, warnings = self.lint(
            {"events": [{"time": 1, "action": "link_up", "link": [0, 1]}]})
        assert errors == []
        assert warnings

    def test_run_spec_with_fault_schedule_section(self):
        from repro.sanitize import lint_run_spec

        spec = {"topology": {"kind": "Torus", "shape": "1x4x1"},
                "expected_npus": 4,
                "fault_schedule": {"events": [
                    {"time": 1, "action": "link_down", "link": [0, 1]},
                    {"time": 9, "action": "link_up", "link": [0, 1]}]}}
        report = lint_run_spec(spec, source="test")
        assert not report.errors, report.format()

    def test_bare_schedule_document_linted(self):
        from repro.sanitize import lint_run_spec

        report = lint_run_spec(
            {"events": [{"time": 1, "action": "warp_core_breach"}]},
            source="test")
        assert report.errors
