"""Tests for the flit-level detailed backend, including agreement with the
fast backend on uncontended transfers."""

import pytest

from repro.config import LinkConfig, NetworkConfig
from repro.events import EventQueue
from repro.network import FastBackend, Link, Message
from repro.network.detailed import DetailedBackend, build_packets

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)


def make_net(**kwargs) -> NetworkConfig:
    defaults = dict(local_link=IDEAL, package_link=IDEAL,
                    flit_width_bits=1024, router_latency_cycles=1.0,
                    vcs_per_vnet=4, buffers_per_vc=16)
    defaults.update(kwargs)
    return NetworkConfig(**defaults)


def run_send(backend, src, dst, size, path):
    done = []
    backend.send(Message(src, dst, size), path, done.append)
    backend.events.run(max_events=2_000_000)
    assert len(done) == 1
    return done[0]


class TestFlitDecomposition:
    def test_packets_and_flits(self):
        msg = Message(0, 1, 1200.0)
        packets = build_packets(msg, packet_bytes=512, flit_bytes=128)
        assert [p.size_bytes for p in packets] == [512.0, 512.0, 176.0]
        assert [len(p.flits) for p in packets] == [4, 4, 2]
        head = packets[0].flits[0]
        assert head.is_head and not head.is_tail
        tail = packets[2].flits[-1]
        assert tail.is_tail

    def test_flit_sizes_sum_to_packet(self):
        msg = Message(0, 1, 1000.0)
        for packet in build_packets(msg, 512, 128):
            assert sum(f.size_bytes for f in packet.flits) == pytest.approx(
                packet.size_bytes)


class TestAgreementWithFastBackend:
    @pytest.mark.parametrize("size", [128.0, 512.0, 4096.0, 65536.0])
    def test_single_hop_times_match(self, size):
        net = make_net()
        times = []
        for backend_cls in (FastBackend, DetailedBackend):
            q = EventQueue()
            link = Link(0, 1, IDEAL)
            backend = backend_cls(q, net)
            msg = run_send(backend, 0, 1, size, [link])
            times.append(msg.delivered_at)
        fast, detailed = times
        assert detailed == pytest.approx(fast, rel=0.05)

    def test_two_hop_times_close(self):
        net = make_net()
        times = []
        for backend_cls in (FastBackend, DetailedBackend):
            q = EventQueue()
            l1, l2 = Link(0, 9, IDEAL), Link(9, 1, IDEAL)
            backend = backend_cls(q, net)
            msg = run_send(backend, 0, 1, 8192.0, [l1, l2])
            times.append(msg.delivered_at)
        fast, detailed = times
        # The detailed model pays per-flit router latency; allow 15%.
        assert detailed == pytest.approx(fast, rel=0.15)


class TestContention:
    def test_two_messages_share_link(self):
        net = make_net()
        q = EventQueue()
        link = Link(0, 1, IDEAL)
        backend = DetailedBackend(q, net)
        done = []
        backend.send(Message(0, 1, 4096.0), [link], done.append)
        backend.send(Message(0, 1, 4096.0), [link], done.append)
        q.run(max_events=1_000_000)
        assert len(done) == 2
        solo_q = EventQueue()
        solo = run_send(DetailedBackend(solo_q, net), 0, 1, 4096.0,
                        [Link(0, 1, IDEAL)])
        # Sharing the link must slow at least one message down (flit-level
        # VC interleaving spreads the slowdown over both messages).
        assert max(m.delivered_at for m in done) > solo.delivered_at * 1.2

    def test_credit_limit_stalls_but_completes(self):
        """A tiny downstream buffer forces backpressure on a 2-hop path."""
        net = make_net(vcs_per_vnet=1, buffers_per_vc=1)
        q = EventQueue()
        l1, l2 = Link(0, 9, IDEAL), Link(9, 1, IDEAL)
        backend = DetailedBackend(q, net)
        msg = run_send(backend, 0, 1, 16384.0, [l1, l2])
        roomy_q = EventQueue()
        roomy = run_send(DetailedBackend(roomy_q, make_net()), 0, 1, 16384.0,
                         [Link(0, 9, IDEAL), Link(9, 1, IDEAL)])
        assert msg.delivered_at >= roomy.delivered_at

    def test_flit_counter(self):
        net = make_net()
        q = EventQueue()
        link = Link(0, 1, IDEAL)
        backend = DetailedBackend(q, net)
        run_send(backend, 0, 1, 1024.0, [link])
        assert backend.total_flits_sent == 8  # 2 packets x 4 flits

    def test_vc_assignment_spreads_packets(self):
        net = make_net(vcs_per_vnet=2)
        q = EventQueue()
        link = Link(0, 1, IDEAL)
        backend = DetailedBackend(q, net)
        run_send(backend, 0, 1, 2048.0, [link])
        port = backend._port_for(link)
        assert port.flits_sent == 16
