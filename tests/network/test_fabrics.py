"""Unit tests for the torus and alltoall physical fabric builders."""

import pytest

from repro.config import AllToAllShape, TorusShape, paper_network_config
from repro.dims import Dimension
from repro.errors import TopologyError
from repro.network.physical import AllToAllFabric, TorusFabric

NET = paper_network_config()


class TestTorusCoordinates:
    def test_round_trip(self):
        fabric = TorusFabric(TorusShape(2, 4, 3), NET)
        for npu in range(fabric.num_npus):
            l, h, v = fabric.coords(npu)
            assert fabric.npu_id(l, h, v) == npu

    def test_out_of_range(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        with pytest.raises(TopologyError):
            fabric.coords(8)
        with pytest.raises(TopologyError):
            fabric.npu_id(2, 0, 0)


class TestTorusChannels:
    def test_dimensions_in_traversal_order(self):
        fabric = TorusFabric(TorusShape(2, 4, 4), NET)
        assert fabric.dimensions == [Dimension.LOCAL, Dimension.VERTICAL,
                                     Dimension.HORIZONTAL]

    def test_dim_sizes(self):
        fabric = TorusFabric(TorusShape(2, 4, 3), NET)
        assert fabric.dim_size(Dimension.LOCAL) == 2
        assert fabric.dim_size(Dimension.HORIZONTAL) == 4
        assert fabric.dim_size(Dimension.VERTICAL) == 3

    def test_degenerate_dimensions_absent(self):
        fabric = TorusFabric(TorusShape(1, 8, 1), NET)
        assert fabric.dimensions == [Dimension.HORIZONTAL]

    def test_fully_degenerate_rejected(self):
        with pytest.raises(TopologyError):
            TorusFabric(TorusShape(1, 1, 1), NET)

    def test_local_ring_count(self):
        fabric = TorusFabric(TorusShape(4, 2, 2), NET, local_rings=3)
        for channels in fabric.groups(Dimension.LOCAL).values():
            assert len(channels) == 3

    def test_bidirectional_rings_make_two_channels_each(self):
        fabric = TorusFabric(TorusShape(1, 8, 1), NET, horizontal_rings=4)
        for channels in fabric.groups(Dimension.HORIZONTAL).values():
            assert len(channels) == 8  # 4 bidirectional = 8 unidirectional

    def test_opposite_directions_present(self):
        fabric = TorusFabric(TorusShape(1, 4, 1), NET, horizontal_rings=1)
        cw, ccw = next(iter(fabric.groups(Dimension.HORIZONTAL).values()))
        assert cw.nodes == list(reversed(ccw.nodes)) or \
            cw.next_node(cw.nodes[0]) != ccw.next_node(cw.nodes[0])

    def test_group_membership(self):
        fabric = TorusFabric(TorusShape(2, 4, 4), NET)
        npu = fabric.npu_id(1, 2, 3)
        assert fabric.group_of(Dimension.LOCAL, npu) == (2, 3)
        assert fabric.group_of(Dimension.HORIZONTAL, npu) == (1, 3)
        assert fabric.group_of(Dimension.VERTICAL, npu) == (2, 1)

    def test_vertical_ring_spans_same_local_and_horizontal(self):
        fabric = TorusFabric(TorusShape(2, 4, 4), NET)
        ring = fabric.channels_for(Dimension.VERTICAL, (0, 1))[0]
        for npu in ring.nodes:
            l, h, _v = fabric.coords(npu)
            assert (h, l) == (0, 1)

    def test_link_count_2x4x4(self):
        # Per package: 2 local rings x 2 nodes = 4 local links; 16 packages.
        # Inter: per (dim group) ring of 4: 2 rings cfg -> 4 channels x 4
        # links; horizontal groups = 2*4=8, vertical groups = 8.
        fabric = TorusFabric(TorusShape(2, 4, 4), NET,
                             horizontal_rings=2, vertical_rings=2)
        local = 16 * 2 * 2
        inter = 2 * (8 * 4 * 4)
        assert fabric.total_links() == local + inter

    def test_utilization_report_keys(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        report = fabric.utilization_report()
        assert "local_bytes" in report
        assert "package_bytes" in report


class TestAllToAllFabric:
    def test_coordinates(self):
        fabric = AllToAllFabric(AllToAllShape(4, 8), NET)
        for npu in range(fabric.num_npus):
            l, p = fabric.coords(npu)
            assert fabric.npu_id(l, p) == npu

    def test_dimensions(self):
        fabric = AllToAllFabric(AllToAllShape(4, 8), NET)
        assert fabric.dimensions == [Dimension.LOCAL, Dimension.ALLTOALL]

    def test_no_local_dim_when_single_nam(self):
        fabric = AllToAllFabric(AllToAllShape(1, 8), NET)
        assert fabric.dimensions == [Dimension.ALLTOALL]

    def test_switch_count(self):
        fabric = AllToAllFabric(AllToAllShape(1, 8), NET, global_switches=7)
        assert len(fabric.switches) == 7
        # 7 switches x 8 nodes x (up + down) = 112 links.
        assert fabric.total_links() == 112

    def test_switch_for_latin_square_spread(self):
        """With switches == peers, each of a node's peers maps to a
        distinct switch (Fig. 9's one-link-per-peer configuration)."""
        fabric = AllToAllFabric(AllToAllShape(1, 8), NET, global_switches=7)
        for src in range(8):
            used = {fabric.switch_for(src, dst).switch_id
                    for dst in range(8) if dst != src}
            assert len(used) == 7

    def test_switch_for_downlink_contention_free(self):
        fabric = AllToAllFabric(AllToAllShape(1, 8), NET, global_switches=7)
        for dst in range(8):
            used = {fabric.switch_for(src, dst).switch_id
                    for src in range(8) if src != dst}
            assert len(used) == 7

    def test_switch_for_rejects_intra_package(self):
        fabric = AllToAllFabric(AllToAllShape(2, 4), NET)
        with pytest.raises(TopologyError):
            fabric.switch_for(0, 1)  # same package

    def test_group_of(self):
        fabric = AllToAllFabric(AllToAllShape(2, 4), NET)
        npu = fabric.npu_id(1, 2)
        assert fabric.group_of(Dimension.LOCAL, npu) == (2,)
        assert fabric.group_of(Dimension.ALLTOALL, npu) == (1,)

    def test_alltoall_groups_share_switches(self):
        fabric = AllToAllFabric(AllToAllShape(2, 4), NET, global_switches=3)
        groups = fabric.groups(Dimension.ALLTOALL)
        assert len(groups) == 2
        ids = [tuple(ch.switch_id for ch in chs) for chs in groups.values()]
        assert ids[0] == ids[1]
