"""Tests for the generalized N-D torus and scale-out fabrics (the paper's
stated future-work extensions)."""

import pytest

from repro.collectives import CollectiveOp
from repro.config import (
    CollectiveAlgorithm,
    SimulationConfig,
    SystemConfig,
    paper_network_config,
)
from repro.config.units import MB
from repro.dims import Dimension
from repro.errors import TopologyError
from repro.network.physical import (
    DEFAULT_SCALEOUT_LINK,
    DimensionSpec,
    NDTorusFabric,
    build_4d_torus,
    build_scaleout_torus,
)
from repro.system import System
from repro.topology import LogicalTopology

NET = paper_network_config()


class TestNDTorusConstruction:
    def test_coordinates_round_trip(self):
        fabric = build_4d_torus((2, 3, 2, 4), NET)
        for npu in range(fabric.num_npus):
            assert fabric.npu_id(fabric.coords(npu)) == npu

    def test_four_dimensions_present(self):
        fabric = build_4d_torus((2, 2, 2, 4), NET)
        assert fabric.dimensions == [
            Dimension.LOCAL, Dimension.VERTICAL, Dimension.HORIZONTAL,
            Dimension.FOURTH,
        ]

    def test_five_dimensions(self):
        specs = [
            DimensionSpec(Dimension.LOCAL, 2, NET.local_link,
                          bidirectional=False, kind="local"),
            DimensionSpec(Dimension.VERTICAL, 2, NET.package_link),
            DimensionSpec(Dimension.HORIZONTAL, 2, NET.package_link),
            DimensionSpec(Dimension.FOURTH, 2, NET.package_link),
            DimensionSpec(Dimension.FIFTH, 2, NET.package_link),
        ]
        fabric = NDTorusFabric(specs, NET)
        assert fabric.num_npus == 32
        assert len(fabric.dimensions) == 5

    def test_size_one_dimensions_skipped(self):
        fabric = build_4d_torus((1, 2, 2, 2), NET)
        assert Dimension.LOCAL not in fabric.dimensions

    def test_group_membership_consistent(self):
        fabric = build_4d_torus((2, 2, 2, 2), NET)
        for dim in fabric.dimensions:
            for group, channels in fabric.groups(dim).items():
                for node in channels[0].nodes:
                    assert fabric.group_of(dim, node) == group

    def test_bidirectional_rings_double_channels(self):
        fabric = build_4d_torus((2, 4, 1, 1), NET, inter_rings=2)
        channels = next(iter(fabric.groups(Dimension.VERTICAL).values()))
        assert len(channels) == 4

    def test_rejects_duplicate_dims(self):
        specs = [DimensionSpec(Dimension.VERTICAL, 2, NET.package_link)] * 2
        with pytest.raises(TopologyError):
            NDTorusFabric(specs, NET)

    def test_rejects_out_of_order_dims(self):
        specs = [
            DimensionSpec(Dimension.HORIZONTAL, 2, NET.package_link),
            DimensionSpec(Dimension.VERTICAL, 2, NET.package_link),
        ]
        with pytest.raises(TopologyError):
            NDTorusFabric(specs, NET)

    def test_rejects_alltoall_dim(self):
        with pytest.raises(TopologyError):
            DimensionSpec(Dimension.ALLTOALL, 2, NET.package_link)

    def test_rejects_fully_degenerate(self):
        specs = [DimensionSpec(Dimension.LOCAL, 1, NET.local_link)]
        with pytest.raises(TopologyError):
            NDTorusFabric(specs, NET)


def run_all_reduce(fabric, size=2 * MB):
    topo = LogicalTopology(fabric)
    cfg = SystemConfig(algorithm=CollectiveAlgorithm.ENHANCED)
    system = System(topo, SimulationConfig(system=cfg, network=NET))
    collective = system.request_collective(CollectiveOp.ALL_REDUCE, size)
    system.run_until_idle(max_events=200_000_000)
    assert collective.done
    return collective


class TestCollectivesOnExtensions:
    def test_all_reduce_on_4d(self):
        collective = run_all_reduce(build_4d_torus((2, 2, 2, 4), NET))
        # Enhanced: RS local, AR on three inter dims, AG local = 5 phases.
        assert len(collective.plan) == 5

    def test_4d_matches_3d_when_fourth_is_degenerate(self):
        flat = run_all_reduce(build_4d_torus((2, 4, 4, 1), NET))
        assert len(flat.plan) == 4

    def test_scaleout_dimension_is_outermost_phase(self):
        fabric = build_scaleout_torus((2, 2, 2), 4, NET)
        collective = run_all_reduce(fabric)
        inter_phases = [p.dim for p in collective.plan[1:-1]]
        assert inter_phases[-1] is Dimension.SCALEOUT

    def test_scaleout_slower_than_extra_scaleup_dim(self):
        """The same node count with the outermost dimension on Ethernet-
        class links must be slower than on scale-up links."""
        scaleup = run_all_reduce(build_4d_torus((2, 2, 2, 4), NET))
        scaleout = run_all_reduce(build_scaleout_torus((2, 2, 2), 4, NET))
        assert scaleout.duration_cycles > scaleup.duration_cycles

    def test_scaleout_link_defaults(self):
        assert DEFAULT_SCALEOUT_LINK.bandwidth_gbps < NET.package_link.bandwidth_gbps
        assert DEFAULT_SCALEOUT_LINK.latency_cycles > NET.package_link.latency_cycles

    def test_all_to_all_on_4d(self):
        fabric = build_4d_torus((2, 2, 2, 2), NET)
        topo = LogicalTopology(fabric)
        cfg = SystemConfig()
        system = System(topo, SimulationConfig(system=cfg, network=NET))
        collective = system.request_collective(CollectiveOp.ALL_TO_ALL, 1 * MB)
        system.run_until_idle(max_events=200_000_000)
        assert collective.done
        assert len(collective.plan) == 4
