"""Failure-injection tests: degraded links slow collectives but never
break them."""

import pytest

from repro.collectives import CollectiveContext, CollectiveOp, RingAllReduce
from repro.config import (
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.dims import Dimension
from repro.errors import NetworkError
from repro.events import EventQueue
from repro.network import FastBackend
from repro.network.faults import (
    degrade_link,
    degrade_random_links,
    slowest_link_bandwidth,
)
from repro.network.physical import TorusFabric
from repro.system import System
from repro.topology import LogicalTopology

NET = paper_network_config()


def all_reduce_time(fabric, size=2 * MB):
    topo = LogicalTopology(fabric)
    system = System(topo, SimulationConfig(system=SystemConfig(), network=NET))
    collective = system.request_collective(CollectiveOp.ALL_REDUCE, size)
    system.run_until_idle(max_events=200_000_000)
    return collective.duration_cycles


class TestDegradeLink:
    def test_bandwidth_scaled(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        link = fabric.links[0]
        before = link.config.bandwidth_gbps
        degrade_link(link, bandwidth_factor=0.25)
        assert link.config.bandwidth_gbps == pytest.approx(before / 4)

    def test_extra_latency_added(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        link = fabric.links[0]
        before = link.config.latency_cycles
        degrade_link(link, extra_latency_cycles=500.0)
        assert link.config.latency_cycles == before + 500.0

    def test_validation(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        with pytest.raises(NetworkError):
            degrade_link(fabric.links[0], bandwidth_factor=0.0)
        with pytest.raises(NetworkError):
            degrade_link(fabric.links[0], extra_latency_cycles=-1.0)


class TestCollectivesUnderFaults:
    def test_one_bad_link_slows_the_whole_ring(self):
        """A ring all-reduce runs at the speed of its slowest link."""
        healthy = TorusFabric(TorusShape(1, 4, 1), NET, horizontal_rings=1)
        faulty = TorusFabric(TorusShape(1, 4, 1), NET, horizontal_rings=1)
        ring = faulty.channels_for(Dimension.HORIZONTAL, (0, 0))[0]
        degrade_link(ring.links[0], bandwidth_factor=0.25)

        def ring_time(fabric):
            ring = fabric.channels_for(Dimension.HORIZONTAL, (0, 0))[0]
            events = EventQueue()
            ctx = CollectiveContext(FastBackend(events, NET))
            algo = RingAllReduce(ctx, ring, 1 * MB)
            algo.start_all()
            events.run(max_events=10_000_000)
            assert algo.done
            return algo.finished_at

        assert ring_time(faulty) > 1.5 * ring_time(healthy)

    def test_degraded_fabric_still_completes(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        degrade_random_links(fabric, count=4, bandwidth_factor=0.5, seed=3)
        assert all_reduce_time(fabric) > 0

    def test_degradation_monotone(self):
        def time_with_factor(factor):
            fabric = TorusFabric(TorusShape(2, 2, 2), NET)
            degrade_random_links(fabric, count=4, bandwidth_factor=factor,
                                 seed=1, kind="package")
            return all_reduce_time(fabric)

        assert time_with_factor(0.25) > time_with_factor(0.5) > 0


class TestDegradeRandomLinks:
    def test_deterministic_for_seed(self):
        f1 = TorusFabric(TorusShape(2, 2, 2), NET)
        f2 = TorusFabric(TorusShape(2, 2, 2), NET)
        v1 = degrade_random_links(f1, 3, 0.5, seed=9)
        v2 = degrade_random_links(f2, 3, 0.5, seed=9)
        assert [l.link_id - f1.links[0].link_id for l in v1] == \
            [l.link_id - f2.links[0].link_id for l in v2]

    def test_kind_filter(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        victims = degrade_random_links(fabric, 2, 0.5, kind="local")
        assert all(l.kind == "local" for l in victims)

    def test_count_bounds(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        with pytest.raises(NetworkError):
            degrade_random_links(fabric, 10**6, 0.5)

    def test_slowest_link_reporting(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        degrade_random_links(fabric, 1, 0.1, kind="package")
        assert slowest_link_bandwidth(fabric) == pytest.approx(2.5)

    def test_extra_latency_forwarded_to_victims(self):
        fabric = TorusFabric(TorusShape(2, 2, 2), NET)
        baseline = {l.link_id: l.config.latency_cycles for l in fabric.links}
        victims = degrade_random_links(fabric, 3, seed=5,
                                       extra_latency_cycles=750.0)
        assert len(victims) == 3
        for link in victims:
            assert link.config.latency_cycles == \
                baseline[link.link_id] + 750.0
        untouched = [l for l in fabric.links if l not in victims]
        assert all(l.config.latency_cycles == baseline[l.link_id]
                   for l in untouched)
