"""Unit tests for messages and packetization (Table II granularity)."""

import pytest

from repro.errors import NetworkError
from repro.network import Message, num_packets, packetize


class TestMessage:
    def test_timing_properties(self):
        m = Message(0, 1, 1024.0)
        m.created_at = 10.0
        m.injected_at = 25.0
        m.delivered_at = 100.0
        assert m.queueing_cycles == pytest.approx(15.0)
        assert m.network_cycles == pytest.approx(75.0)
        assert m.total_cycles == pytest.approx(90.0)

    def test_unique_ids(self):
        assert Message(0, 1, 1.0).msg_id != Message(0, 1, 1.0).msg_id

    def test_rejects_negative_size(self):
        with pytest.raises(NetworkError):
            Message(0, 1, -1.0)

    def test_rejects_self_send(self):
        with pytest.raises(NetworkError):
            Message(3, 3, 10.0)

    def test_tag_is_preserved(self):
        m = Message(0, 1, 1.0, tag=("rs", 2))
        assert m.tag == ("rs", 2)


class TestPacketize:
    def test_exact_multiple(self):
        assert packetize(1024, 512) == [512.0, 512.0]

    def test_remainder_packet(self):
        assert packetize(1200, 512) == [512.0, 512.0, 176.0]

    def test_small_message_single_packet(self):
        assert packetize(100, 512) == [100.0]

    def test_zero_size_yields_header_packet(self):
        assert packetize(0, 512) == [0.0]

    def test_sum_preserved(self):
        packets = packetize(999_999, 256)
        assert sum(packets) == pytest.approx(999_999)

    def test_invalid_packet_size(self):
        with pytest.raises(NetworkError):
            packetize(100, 0)

    def test_negative_size(self):
        with pytest.raises(NetworkError):
            packetize(-1, 512)


class TestNumPackets:
    @pytest.mark.parametrize("size,packet,expected", [
        (1024, 512, 2),
        (1025, 512, 3),
        (1, 512, 1),
        (0, 512, 1),
    ])
    def test_counts(self, size, packet, expected):
        assert num_packets(size, packet) == expected

    def test_matches_packetize(self):
        for size in (0, 1, 511, 512, 513, 10_000):
            assert num_packets(size, 512) == len(packetize(size, 512))
