"""Tests for layer descriptors and the DNN model container."""

import pytest

from repro.collectives import CollectiveOp
from repro.errors import WorkloadError
from repro.workload import CommSpec, DNNModel, LayerSpec, DATA_PARALLEL, NO_COMM


def make_layer(name="layer", **kwargs):
    defaults = dict(forward_cycles=100.0, input_grad_cycles=100.0,
                    weight_grad_cycles=100.0)
    defaults.update(kwargs)
    return LayerSpec(name=name, **defaults)


class TestCommSpec:
    def test_none_comm_inactive(self):
        assert not NO_COMM.active

    def test_active_comm(self):
        spec = CommSpec(CollectiveOp.ALL_REDUCE, 1024.0)
        assert spec.active

    def test_none_with_size_rejected(self):
        with pytest.raises(WorkloadError):
            CommSpec(CollectiveOp.NONE, 10.0)

    def test_op_without_size_rejected(self):
        with pytest.raises(WorkloadError):
            CommSpec(CollectiveOp.ALL_REDUCE, 0.0)


class TestLayerSpec:
    def test_totals(self):
        layer = make_layer(
            weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, 500.0))
        assert layer.total_compute_cycles == pytest.approx(300.0)
        assert layer.total_comm_bytes == pytest.approx(500.0)

    def test_rejects_empty_name(self):
        with pytest.raises(WorkloadError):
            make_layer(name="")

    def test_rejects_negative_compute(self):
        with pytest.raises(WorkloadError):
            make_layer(forward_cycles=-1.0)

    def test_rejects_negative_local_update(self):
        with pytest.raises(WorkloadError):
            make_layer(local_update_cycles_per_kb=-1.0)


class TestDNNModel:
    def test_aggregates(self):
        model = DNNModel(
            name="m",
            layers=(make_layer("a"), make_layer("b")),
            strategy=DATA_PARALLEL,
        )
        assert model.num_layers == 2
        assert model.total_compute_cycles == pytest.approx(600.0)

    def test_layer_lookup(self):
        model = DNNModel(name="m", layers=(make_layer("a"),),
                         strategy=DATA_PARALLEL)
        assert model.layer("a").name == "a"
        with pytest.raises(WorkloadError):
            model.layer("zzz")

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(WorkloadError):
            DNNModel(name="m", layers=(make_layer("a"), make_layer("a")),
                     strategy=DATA_PARALLEL)

    def test_empty_model_rejected(self):
        with pytest.raises(WorkloadError):
            DNNModel(name="m", layers=(), strategy=DATA_PARALLEL)

    def test_bad_minibatch_rejected(self):
        with pytest.raises(WorkloadError):
            DNNModel(name="m", layers=(make_layer(),), strategy=DATA_PARALLEL,
                     minibatch=0)
