"""Tests for the training loop: ordering, overlap and exposure accounting."""

import pytest

from repro.collectives import CollectiveOp
from repro.config import (
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.errors import WorkloadError
from repro.system import System
from repro.topology import build_torus_topology
from repro.workload import (
    CommSpec,
    DATA_PARALLEL,
    DNNModel,
    LayerSpec,
    MODEL_PARALLEL,
    TrainingLoop,
    TrainingPhase,
)

NET = paper_network_config()


def make_system(**kwargs) -> System:
    system_cfg = SystemConfig(**kwargs)
    topo = build_torus_topology(TorusShape(2, 2, 2), NET, system_cfg)
    return System(topo, SimulationConfig(system=system_cfg, network=NET))


def layer(name, fwd=100.0, ig=80.0, wg=60.0, wg_comm=None, fwd_comm=None,
          ig_comm=None):
    return LayerSpec(
        name=name,
        forward_cycles=fwd,
        input_grad_cycles=ig,
        weight_grad_cycles=wg,
        forward_comm=fwd_comm or CommSpec(),
        input_grad_comm=ig_comm or CommSpec(),
        weight_grad_comm=wg_comm or CommSpec(),
    )


class TestPureCompute:
    def test_total_time_is_sum_of_compute(self):
        model = DNNModel("nocomm", (layer("a"), layer("b")), DATA_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=1).run()
        assert report.total_cycles == pytest.approx(2 * 240.0)
        assert report.total_exposed_cycles == 0.0

    def test_iterations_scale_linearly(self):
        model = DNNModel("nocomm", (layer("a"),), DATA_PARALLEL)
        r1 = TrainingLoop(make_system(), model, num_iterations=1).run()
        r3 = TrainingLoop(make_system(), model, num_iterations=3).run()
        assert r3.total_cycles == pytest.approx(3 * r1.total_cycles)
        assert len(r3.iteration_ends) == 3

    def test_compute_attributed_per_phase(self):
        model = DNNModel("m", (layer("a", fwd=10, ig=20, wg=30),), DATA_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=2).run()
        layer_report = report.layers[0]
        assert layer_report.compute_cycles[TrainingPhase.FORWARD] == 20.0
        assert layer_report.compute_cycles[TrainingPhase.INPUT_GRAD] == 40.0
        assert layer_report.compute_cycles[TrainingPhase.WEIGHT_GRAD] == 60.0


class TestDataParallelOverlap:
    def _model(self, wg_bytes=1 * MB, fwd=50_000.0):
        wg = CommSpec(CollectiveOp.ALL_REDUCE, wg_bytes)
        return DNNModel("dp", (
            layer("l0", fwd=fwd, wg_comm=wg),
            layer("l1", fwd=fwd, wg_comm=wg),
            layer("l2", fwd=fwd, wg_comm=wg),
        ), DATA_PARALLEL)

    def test_weight_grad_comm_overlaps(self):
        """With generous compute, the deep layers' all-reduces hide fully;
        only the first layers — whose gradients are computed last, with no
        compute left to cover them (Sec. III-E) — expose a sliver."""
        model = self._model(wg_bytes=64 * 1024, fwd=500_000.0)
        report = TrainingLoop(make_system(), model, num_iterations=2).run()
        assert report.layers[2].exposed_cycles == 0.0
        assert report.total_exposed_cycles < 0.01 * report.total_cycles
        assert report.total_comm_cycles > 0.0

    def test_first_layer_comm_fully_exposed(self):
        """Sec. III-E: the first layer's weight-gradient communication is
        fully exposed — back-propagation issues it last."""
        model = self._model(wg_bytes=1 * MB, fwd=500_000.0)
        report = TrainingLoop(make_system(), model, num_iterations=1).run()
        first = report.layers[0]
        # Exposure is the collective's duration minus the only remaining
        # cover (the first layer's input-gradient compute).
        assert first.exposed_cycles > 0.0
        assert first.exposed_cycles <= first.comm_cycles[TrainingPhase.WEIGHT_GRAD]

    def test_fast_compute_exposes_comm(self):
        """With tiny compute the final layers' all-reduce must be exposed."""
        model = self._model(wg_bytes=8 * MB, fwd=10.0)
        report = TrainingLoop(make_system(), model, num_iterations=1).run()
        assert report.total_exposed_cycles > 0.0
        assert report.total_cycles > report.total_compute_cycles

    def test_exposure_shrinks_with_more_compute(self):
        fast = self._model(wg_bytes=4 * MB, fwd=10.0)
        slow = self._model(wg_bytes=4 * MB, fwd=2_000_000.0)
        r_fast = TrainingLoop(make_system(), fast, num_iterations=1).run()
        r_slow = TrainingLoop(make_system(), slow, num_iterations=1).run()
        assert r_slow.exposed_comm_ratio < r_fast.exposed_comm_ratio

    def test_raw_comm_recorded_per_layer(self):
        model = self._model()
        report = TrainingLoop(make_system(), model, num_iterations=2).run()
        for layer_report in report.layers:
            assert layer_report.comm_cycles[TrainingPhase.WEIGHT_GRAD] > 0
            assert layer_report.comm_cycles[TrainingPhase.FORWARD] == 0
            assert len(layer_report.sets) == 2  # one per iteration

    def test_second_iteration_waits_for_first_iterations_gradients(self):
        """One huge layer: iteration 2's forward must block on iteration
        1's weight-gradient collective."""
        wg = CommSpec(CollectiveOp.ALL_REDUCE, 32 * MB)
        model = DNNModel("big", (layer("only", fwd=10.0, ig=10.0, wg=10.0,
                                       wg_comm=wg),), DATA_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=2).run()
        assert report.layers[0].exposed_cycles > 0


class TestModelParallelBlocking:
    def test_forward_comm_blocks_next_layer(self):
        act = CommSpec(CollectiveOp.ALL_GATHER, 4 * MB)
        model = DNNModel("mp", (
            layer("l0", fwd=10.0, fwd_comm=act),
            layer("l1", fwd=10.0),
        ), MODEL_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=1).run()
        # The all-gather duration is fully exposed.
        assert report.layers[0].exposed_cycles > 0
        assert report.total_cycles > report.total_compute_cycles

    def test_model_parallel_ignores_weight_grad_comm(self):
        """Table I: model parallelism exchanges no weight gradients even
        if the layer lists one."""
        wg = CommSpec(CollectiveOp.ALL_REDUCE, 4 * MB)
        model = DNNModel("mp", (layer("l0", wg_comm=wg),), MODEL_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=1).run()
        assert report.total_comm_cycles == 0.0
        assert report.total_cycles == pytest.approx(240.0)

    def test_input_grad_comm_blocks(self):
        ig = CommSpec(CollectiveOp.ALL_REDUCE, 4 * MB)
        model = DNNModel("mp", (
            layer("l0", ig=10.0),
            layer("l1", ig=10.0, ig_comm=ig),
        ), MODEL_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=1).run()
        assert report.layers[1].exposed_cycles > 0


class TestReporting:
    def test_report_metadata(self):
        model = DNNModel("meta", (layer("a"),), DATA_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=2).run()
        assert report.model_name == "meta"
        assert report.num_iterations == 2
        assert [l.name for l in report.layers] == ["a"]

    def test_exposed_ratio_bounds(self):
        wg = CommSpec(CollectiveOp.ALL_REDUCE, 16 * MB)
        model = DNNModel("r", (layer("a", fwd=10.0, ig=10.0, wg=10.0,
                                     wg_comm=wg),), DATA_PARALLEL)
        report = TrainingLoop(make_system(), model, num_iterations=1).run()
        assert 0.0 < report.exposed_comm_ratio < 1.0

    def test_rejects_bad_iteration_count(self):
        model = DNNModel("m", (layer("a"),), DATA_PARALLEL)
        with pytest.raises(WorkloadError):
            TrainingLoop(make_system(), model, num_iterations=0)

    def test_determinism(self):
        wg = CommSpec(CollectiveOp.ALL_REDUCE, 2 * MB)
        model = DNNModel("det", (layer("a", wg_comm=wg),
                                 layer("b", wg_comm=wg)), DATA_PARALLEL)
        r1 = TrainingLoop(make_system(), model, num_iterations=2).run()
        r2 = TrainingLoop(make_system(), model, num_iterations=2).run()
        assert r1.total_cycles == r2.total_cycles
        assert r1.total_exposed_cycles == r2.total_exposed_cycles
