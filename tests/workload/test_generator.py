"""Tests for the synthetic workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workload import (
    MODEL_PARALLEL,
    GeneratorSpec,
    synthetic_model,
)


class TestSyntheticModel:
    def test_deterministic_for_seed(self):
        a = synthetic_model(seed=42)
        b = synthetic_model(seed=42)
        assert a.layers == b.layers

    def test_seeds_differ(self):
        assert synthetic_model(seed=1).layers != synthetic_model(seed=2).layers

    def test_layer_count(self):
        model = synthetic_model(GeneratorSpec(num_layers=7))
        assert model.num_layers == 7

    def test_ranges_respected(self):
        spec = GeneratorSpec(num_layers=50,
                             compute_cycles_range=(100.0, 200.0),
                             comm_bytes_range=(1024.0, 2048.0))
        model = synthetic_model(spec)
        for layer in model.layers:
            assert 100.0 <= layer.forward_cycles <= 200.0
            assert 1024.0 <= layer.weight_grad_comm.size_bytes <= 2048.0

    def test_comm_probability_zero_silences_layers(self):
        spec = GeneratorSpec(num_layers=10, comm_probability=0.0)
        model = synthetic_model(spec)
        assert model.total_comm_bytes == 0.0

    def test_strategy_passthrough(self):
        model = synthetic_model(strategy=MODEL_PARALLEL)
        assert model.strategy is MODEL_PARALLEL

    def test_runs_through_training_loop(self):
        from repro.config import (SimulationConfig, SystemConfig, TorusShape,
                                  paper_network_config)
        from repro.system import System
        from repro.topology import build_torus_topology
        from repro.workload import TrainingLoop

        net = paper_network_config()
        cfg = SystemConfig()
        topo = build_torus_topology(TorusShape(2, 2, 2), net, cfg)
        system = System(topo, SimulationConfig(system=cfg, network=net))
        model = synthetic_model(GeneratorSpec(num_layers=5), seed=7)
        report = TrainingLoop(system, model, num_iterations=1).run(
            max_events=100_000_000)
        assert report.total_cycles > 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            GeneratorSpec(num_layers=0)
        with pytest.raises(WorkloadError):
            GeneratorSpec(compute_cycles_range=(100.0, 50.0))
        with pytest.raises(WorkloadError):
            GeneratorSpec(comm_probability=2.0)
