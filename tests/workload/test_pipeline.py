"""Tests for pipeline-parallel training (GPipe-style)."""

import pytest

from repro.config import (
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import KB, MB
from repro.errors import WorkloadError
from repro.models import mlp
from repro.system import System
from repro.topology import build_torus_topology
from repro.workload import (
    PipelineStage,
    PipelineTrainingLoop,
    partition_model,
)

NET = paper_network_config()


def make_system(shape=TorusShape(1, 8, 1)) -> System:
    cfg = SystemConfig(horizontal_rings=2)
    topo = build_torus_topology(shape, NET, cfg)
    return System(topo, SimulationConfig(system=cfg, network=NET))


def uniform_stages(num_stages=4, fwd=50_000.0, bwd=100_000.0,
                   activation=256 * KB):
    return [PipelineStage(i, i, fwd, bwd, activation)
            for i in range(num_stages)]


class TestPipelineExecution:
    def test_completes(self):
        report = PipelineTrainingLoop(
            make_system(), uniform_stages(), num_microbatches=4
        ).run(max_events=10_000_000)
        assert report.total_cycles > 0
        assert report.num_stages == 4

    def test_all_tasks_executed(self):
        report = PipelineTrainingLoop(
            make_system(), uniform_stages(), num_microbatches=6
        ).run(max_events=10_000_000)
        for stage in report.stages:
            assert stage.forward_tasks == 6
            assert stage.backward_tasks == 6

    def test_more_microbatches_shrink_bubble(self):
        def bubble(m):
            report = PipelineTrainingLoop(
                make_system(), uniform_stages(), num_microbatches=m
            ).run(max_events=20_000_000)
            return report.bubble_fraction

        assert bubble(16) < bubble(4) < bubble(1 + 1)

    def test_bubble_approaches_gpipe_ideal(self):
        """With cheap communication the measured bubble lands near
        (S-1)/(M+S-1)."""
        report = PipelineTrainingLoop(
            make_system(), uniform_stages(activation=1 * KB),
            num_microbatches=8,
        ).run(max_events=20_000_000)
        assert report.bubble_fraction == pytest.approx(
            report.ideal_bubble_fraction, abs=0.05)

    def test_total_time_lower_bound(self):
        """Total time can never beat the zero-communication GPipe bound:
        (M + S - 1) microbatch slots through the slowest stage."""
        fwd, bwd, m = 50_000.0, 100_000.0, 8
        report = PipelineTrainingLoop(
            make_system(), uniform_stages(fwd=fwd, bwd=bwd),
            num_microbatches=m,
        ).run(max_events=20_000_000)
        bound = (m + 4 - 1) * (fwd + bwd)
        assert report.total_cycles >= bound

    def test_multiple_iterations(self):
        one = PipelineTrainingLoop(
            make_system(), uniform_stages(), num_microbatches=4,
            num_iterations=1,
        ).run(max_events=20_000_000)
        two = PipelineTrainingLoop(
            make_system(), uniform_stages(), num_microbatches=4,
            num_iterations=2,
        ).run(max_events=40_000_000)
        assert two.total_cycles > 1.8 * one.total_cycles

    def test_comm_cycles_recorded(self):
        report = PipelineTrainingLoop(
            make_system(), uniform_stages(activation=4 * MB),
            num_microbatches=2,
        ).run(max_events=20_000_000)
        assert report.comm_cycles > 0

    def test_heavier_activations_slow_the_pipeline(self):
        def total(activation):
            return PipelineTrainingLoop(
                make_system(), uniform_stages(activation=activation),
                num_microbatches=4,
            ).run(max_events=20_000_000).total_cycles

        assert total(8 * MB) > total(64 * KB)


class TestValidation:
    def test_needs_two_stages(self):
        with pytest.raises(WorkloadError):
            PipelineTrainingLoop(make_system(), uniform_stages(1), 4)

    def test_stage_indices_checked(self):
        stages = uniform_stages(3)
        stages[2] = PipelineStage(5, 2, 1.0, 1.0, 1024.0)
        with pytest.raises(WorkloadError):
            PipelineTrainingLoop(make_system(), stages, 4)

    def test_distinct_nodes_required(self):
        stages = [PipelineStage(0, 0, 1.0, 1.0, 1024.0),
                  PipelineStage(1, 0, 1.0, 1.0, 1024.0)]
        with pytest.raises(WorkloadError):
            PipelineTrainingLoop(make_system(), stages, 4)

    def test_microbatch_count_checked(self):
        with pytest.raises(WorkloadError):
            PipelineTrainingLoop(make_system(), uniform_stages(), 0)


class TestPartitionModel:
    def test_contiguous_balanced_partition(self):
        model = mlp(widths=(4096,) * 8)
        stages = partition_model(model, nodes=[0, 1, 2, 3],
                                 num_microbatches=4,
                                 activation_bytes=1 * MB)
        assert len(stages) == 4
        total_fwd = sum(s.forward_cycles for s in stages) * 4
        assert total_fwd == pytest.approx(
            sum(l.forward_cycles for l in model.layers))
        # Balanced: no stage more than 2x the mean.
        mean = total_fwd / 4 / 4
        assert all(s.forward_cycles < 2 * mean for s in stages)

    def test_microbatches_divide_compute_and_bytes(self):
        model = mlp(widths=(4096,) * 4)
        coarse = partition_model(model, [0, 1], 1, activation_bytes=1 * MB)
        fine = partition_model(model, [0, 1], 4, activation_bytes=1 * MB)
        assert fine[0].forward_cycles == pytest.approx(
            coarse[0].forward_cycles / 4)
        assert fine[0].activation_bytes == pytest.approx(
            coarse[0].activation_bytes / 4)

    def test_end_to_end_on_mlp(self):
        system = make_system()
        model = mlp(widths=(4096,) * 8, compute=system.config.compute)
        stages = partition_model(model, nodes=[0, 2, 4, 6],
                                 num_microbatches=4,
                                 activation_bytes=512 * KB)
        report = PipelineTrainingLoop(system, stages, 4).run(
            max_events=50_000_000)
        assert report.total_cycles > 0
        assert 0 <= report.bubble_fraction < 1

    def test_validation(self):
        model = mlp(widths=(128, 128))
        with pytest.raises(WorkloadError):
            partition_model(model, [0], 4, 1024.0)
        with pytest.raises(WorkloadError):
            partition_model(model, [0, 1, 2], 4, 1024.0)  # 3 stages, 2 layers
        with pytest.raises(WorkloadError):
            partition_model(model, [0, 1], 0, 1024.0)
        with pytest.raises(WorkloadError):
            partition_model(model, [0, 1], 4, 0.0)


class TestOneFOneB:
    def _run(self, schedule, microbatches=8, num_stages=4):
        from repro.workload import PipelineSchedule  # noqa: F401
        from repro.workload.pipeline import PipelineSchedule as PS

        return PipelineTrainingLoop(
            make_system(), uniform_stages(num_stages),
            num_microbatches=microbatches,
            schedule=PS(schedule),
        ).run(max_events=30_000_000)

    def test_completes_all_tasks(self):
        report = self._run("1f1b")
        for stage in report.stages:
            assert stage.forward_tasks == 8
            assert stage.backward_tasks == 8

    def test_bounds_stashed_activations(self):
        """1F1B's point: stage 0 stashes at most S activations, while
        GPipe stashes all M."""
        gpipe = self._run("gpipe")
        onef = self._run("1f1b")
        assert gpipe.stages[0].peak_stashed_activations == 8
        assert onef.stages[0].peak_stashed_activations <= 4

    def test_throughput_comparable_to_gpipe(self):
        gpipe = self._run("gpipe", microbatches=16)
        onef = self._run("1f1b", microbatches=16)
        assert onef.total_cycles <= gpipe.total_cycles * 1.25

    def test_multi_iteration_1f1b(self):
        from repro.workload.pipeline import PipelineSchedule as PS

        report = PipelineTrainingLoop(
            make_system(), uniform_stages(), num_microbatches=4,
            num_iterations=2, schedule=PS.ONE_F_ONE_B,
        ).run(max_events=40_000_000)
        for stage in report.stages:
            assert stage.forward_tasks == 8  # 4 microbatches x 2 iterations
