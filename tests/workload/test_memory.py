"""Tests for the per-NPU memory footprint estimator."""

import pytest

from repro.config.units import GB, MB
from repro.errors import WorkloadError
from repro.models import mlp, resnet50, transformer
from repro.workload import (
    DEFAULT_HBM_BYTES,
    estimate_footprint,
    validate_fits,
)


class TestEstimates:
    def test_resnet50_data_parallel(self):
        """25.5 M fp32 parameters: params+grads+Adam state = 4x ~102 MB,
        plus activations."""
        footprint = estimate_footprint(resnet50())
        assert footprint.parameter_bytes == pytest.approx(102e6, rel=0.02)
        assert footprint.gradient_bytes == footprint.parameter_bytes
        assert footprint.optimizer_bytes == pytest.approx(
            2 * footprint.parameter_bytes)
        assert footprint.total_bytes < 1 * GB

    def test_data_parallel_sharding_divides(self):
        whole = estimate_footprint(resnet50(), model_parallel_degree=1)
        sharded = estimate_footprint(resnet50(), model_parallel_degree=4)
        assert sharded.parameter_bytes == pytest.approx(
            whole.parameter_bytes / 4)

    def test_hybrid_layers_already_sharded(self):
        """Transformer builders emit per-shard sizes; degree must not
        double-count."""
        model = transformer(model_parallel_degree=2)
        footprint = estimate_footprint(model)
        per_layer = model.layer("encoder1").weight_grad_comm.size_bytes
        assert footprint.parameter_bytes >= per_layer

    def test_activation_override(self):
        footprint = estimate_footprint(mlp(), activation_bytes=123 * MB)
        assert footprint.activation_bytes == 123 * MB

    def test_optimizer_words(self):
        sgd = estimate_footprint(mlp(), optimizer_words=0)
        adam = estimate_footprint(mlp(), optimizer_words=2)
        assert sgd.optimizer_bytes == 0.0
        assert adam.optimizer_bytes > 0.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            estimate_footprint(mlp(), model_parallel_degree=0)
        with pytest.raises(WorkloadError):
            estimate_footprint(mlp(), optimizer_words=-1)


class TestCapacityChecks:
    def test_resnet_fits_default_hbm(self):
        footprint = validate_fits(resnet50())
        assert footprint.fits(DEFAULT_HBM_BYTES)

    def test_undersized_hbm_rejected(self):
        with pytest.raises(WorkloadError, match="needs"):
            validate_fits(resnet50(), capacity_bytes=100 * MB)

    def test_utilization(self):
        footprint = estimate_footprint(resnet50())
        util = footprint.utilization(DEFAULT_HBM_BYTES)
        assert 0 < util < 1
        assert footprint.utilization(footprint.total_bytes) == pytest.approx(1.0)

    def test_bad_capacity(self):
        footprint = estimate_footprint(mlp())
        with pytest.raises(WorkloadError):
            footprint.fits(0.0)
