"""Table I semantics: which training phases communicate per strategy."""

import pytest

from repro.dims import Dimension
from repro.errors import WorkloadError
from repro.workload import (
    DATA_PARALLEL,
    MODEL_PARALLEL,
    TRANSFORMER_HYBRID,
    ParallelismKind,
    TrainingPhase,
    hybrid,
)


class TestTableI:
    """The communication matrix of Table I, verbatim."""

    def test_data_parallel_row(self):
        assert not DATA_PARALLEL.communicates(TrainingPhase.FORWARD)
        assert DATA_PARALLEL.communicates(TrainingPhase.WEIGHT_GRAD)
        assert not DATA_PARALLEL.communicates(TrainingPhase.INPUT_GRAD)

    def test_model_parallel_row(self):
        assert MODEL_PARALLEL.communicates(TrainingPhase.FORWARD)
        assert not MODEL_PARALLEL.communicates(TrainingPhase.WEIGHT_GRAD)
        assert MODEL_PARALLEL.communicates(TrainingPhase.INPUT_GRAD)

    def test_hybrid_row_partially_everything(self):
        for phase in TrainingPhase:
            assert TRANSFORMER_HYBRID.communicates(phase)


class TestScopes:
    def test_pure_strategies_span_all_dimensions(self):
        for phase in TrainingPhase:
            assert DATA_PARALLEL.scope(phase) is None
            assert MODEL_PARALLEL.scope(phase) is None

    def test_hybrid_weight_grads_use_data_dims(self):
        assert TRANSFORMER_HYBRID.scope(TrainingPhase.WEIGHT_GRAD) == (
            Dimension.LOCAL, Dimension.HORIZONTAL)

    def test_hybrid_activations_use_model_dims(self):
        assert TRANSFORMER_HYBRID.scope(TrainingPhase.FORWARD) == (
            Dimension.VERTICAL,)
        assert TRANSFORMER_HYBRID.scope(TrainingPhase.INPUT_GRAD) == (
            Dimension.VERTICAL,)


class TestBlocking:
    def test_weight_grads_overlap(self):
        for strategy in (DATA_PARALLEL, MODEL_PARALLEL, TRANSFORMER_HYBRID):
            assert not strategy.blocking(TrainingPhase.WEIGHT_GRAD)

    def test_activations_and_input_grads_block(self):
        for strategy in (DATA_PARALLEL, MODEL_PARALLEL, TRANSFORMER_HYBRID):
            assert strategy.blocking(TrainingPhase.FORWARD)
            assert strategy.blocking(TrainingPhase.INPUT_GRAD)


class TestValidation:
    def test_hybrid_requires_both_groups(self):
        with pytest.raises(WorkloadError):
            hybrid((Dimension.LOCAL,), ())

    def test_hybrid_rejects_overlapping_groups(self):
        with pytest.raises(WorkloadError):
            hybrid((Dimension.LOCAL,), (Dimension.LOCAL,))

    def test_kind_enum(self):
        assert TRANSFORMER_HYBRID.kind is ParallelismKind.HYBRID
        assert DATA_PARALLEL.kind is ParallelismKind.DATA
