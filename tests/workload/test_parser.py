"""Tests for the Fig. 8 workload file reader/writer."""

import pytest

from repro.collectives import CollectiveOp
from repro.dims import Dimension
from repro.errors import WorkloadError
from repro.workload import ParallelismKind, dumps, loads

VALID = """
# A comment line.
DATA
2
conv1
1000 1100 1200
NONE NONE ALLREDUCE
0 0 37632
1.5
fc  # trailing comments are stripped
500 550 600
NONE NONE ALLREDUCE
0 0 8192000
1.0
"""

HYBRID_TEXT = """
HYBRID data:local,horizontal model:vertical
1
enc
100 100 100
ALLGATHER ALLREDUCE ALLREDUCE
1024 1024 2048
1.0
"""


class TestLoads:
    def test_parses_layers(self):
        model = loads(VALID, name="test")
        assert model.num_layers == 2
        assert model.strategy.kind is ParallelismKind.DATA
        conv1 = model.layer("conv1")
        assert conv1.forward_cycles == 1000.0
        assert conv1.weight_grad_comm.op is CollectiveOp.ALL_REDUCE
        assert conv1.weight_grad_comm.size_bytes == 37632.0
        assert conv1.local_update_cycles_per_kb == 1.5

    def test_comments_and_blanks_ignored(self):
        model = loads(VALID)
        assert model.layer("fc").forward_cycles == 500.0

    def test_hybrid_header(self):
        model = loads(HYBRID_TEXT)
        assert model.strategy.kind is ParallelismKind.HYBRID
        assert model.strategy.data_dims == (Dimension.LOCAL, Dimension.HORIZONTAL)
        assert model.strategy.model_dims == (Dimension.VERTICAL,)

    def test_model_header(self):
        text = HYBRID_TEXT.replace("HYBRID data:local,horizontal model:vertical",
                                   "MODEL")
        assert loads(text).strategy.kind is ParallelismKind.MODEL

    @pytest.mark.parametrize("mutation,match", [
        (("DATA", "BANANAS"), "unknown parallelism"),
        (("2", "two"), "bad layer count"),
        (("NONE NONE ALLREDUCE", "NONE NONE FROBNICATE"), "unknown collective"),
        (("1000 1100 1200", "1000 1100"), "three compute times"),
        (("0 0 37632", "0 37632"), "three sizes"),
    ])
    def test_malformed_inputs(self, mutation, match):
        old, new = mutation
        with pytest.raises(WorkloadError, match=match):
            loads(VALID.replace(old, new, 1))

    def test_truncated_file(self):
        truncated = "\n".join(VALID.strip().splitlines()[:5])
        with pytest.raises(WorkloadError, match="unexpected end"):
            loads(truncated)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WorkloadError, match="trailing"):
            loads(VALID + "\nextra stuff\n")

    def test_hybrid_without_groups_rejected(self):
        with pytest.raises(WorkloadError):
            loads(HYBRID_TEXT.replace(
                "HYBRID data:local,horizontal model:vertical", "HYBRID"))

    def test_unknown_dimension_rejected(self):
        with pytest.raises(WorkloadError, match="unknown dimension"):
            loads(HYBRID_TEXT.replace("model:vertical", "model:diagonal"))


class TestRoundTrip:
    def test_data_parallel_round_trip(self):
        model = loads(VALID, name="rt")
        again = loads(dumps(model), name="rt")
        assert again.num_layers == model.num_layers
        for a, b in zip(model.layers, again.layers):
            assert a == b

    def test_hybrid_round_trip(self):
        model = loads(HYBRID_TEXT, name="rt")
        again = loads(dumps(model), name="rt")
        assert again.strategy == model.strategy
        assert again.layers == model.layers

    def test_dump_format_is_line_oriented(self):
        model = loads(HYBRID_TEXT)
        text = dumps(model)
        lines = text.strip().splitlines()
        assert lines[0].startswith("HYBRID")
        assert lines[1] == "1"
        assert len(lines) == 2 + 5 * model.num_layers


class TestFileIO:
    def test_load_dump_file(self, tmp_path):
        from repro.workload import dump, load

        model = loads(VALID, name="file-test")
        path = tmp_path / "workload.txt"
        dump(model, path)
        again = load(path, name="file-test")
        assert again.layers == model.layers
