"""Fig. 14 — ResNet-50 layer-wise raw communication time on a 2x4x4 torus.

Paper shape: data parallelism means only weight gradients are exchanged;
communication time per layer tracks the layer's parameter volume — the
deep conv5/conv4 stages dominate, conv1 and the 1x1 projections are tiny.
"""

from repro.analysis import layer_rows
from repro.harness import fig14
from repro.workload.parallelism import TrainingPhase

from bench_common import print_table, run_once


def test_fig14_resnet_layerwise_comm(benchmark):
    result = run_once(benchmark, lambda: fig14.run(num_iterations=2))
    report = result.report
    rows = [{
        "layer": r.name,
        "wg_comm_cycles": r.weight_grad_comm_cycles,
    } for r in layer_rows(report)]
    print_table("Fig 14: ResNet-50 layer-wise weight-grad comm (2 iters)",
                rows[:12] + rows[-6:])

    # Data parallelism: weight gradients only (Table I).
    for layer in report.layers:
        assert layer.comm_cycles[TrainingPhase.FORWARD] == 0.0
        assert layer.comm_cycles[TrainingPhase.INPUT_GRAD] == 0.0

    # Bytes exchanged track gradient volume exactly (conv5_1_b has 576x
    # the parameters of conv2_1_a); raw durations also rank the big layer
    # higher, though queueing behind other sets compresses the spread.
    by_name = {r["layer"]: r["wg_comm_cycles"] for r in rows}
    bytes_by_name = {
        layer.name: layer.comm_bytes[TrainingPhase.WEIGHT_GRAD]
        for layer in report.layers
    }
    assert bytes_by_name["conv5_1_b"] == 576 * bytes_by_name["conv2_1_a"]
    assert by_name["conv5_1_b"] > 2 * by_name["conv2_1_a"]
    assert all(r["wg_comm_cycles"] > 0 for r in rows)
