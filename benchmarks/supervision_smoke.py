"""Supervision smoke gate: a sweep with an injected crash and hang.

Runs a small Fig. 9 all-reduce batch through the supervised executor
with two faults injected:

* one point SIGKILLs its worker on the first attempt (must be retried
  and land bit-identical to a clean run), and
* one point hangs past the per-point deadline (must be reaped and
  quarantined, leaving an explicit gap in the partial figure).

The script exercises the full partial-result contract end to end: the
batch finishes, the quarantine report and outcome journal are written,
the partial rows print with a gap, a resumed run replays the journal
without simulating anything, and the process exits 1 (partial results)
per the documented exit-code contract — CI asserts exactly that.
"""

from __future__ import annotations

import argparse
import functools
import os
import signal
import sys
import time
from dataclasses import replace

from repro.collectives import CollectiveOp
from repro.harness import fig09
from repro.parallel import (
    ParallelExecutor,
    PointStatus,
    SupervisedExecutor,
    SupervisionPolicy,
    exit_code_for,
    results_with_gaps,
)

SIZES = [64 * 1024.0, 256 * 1024.0]


def crash_once(marker_path: str, builder):
    """SIGKILL the worker on the first attempt, then build normally."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as f:
            f.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return builder()


def hang(builder):
    """Sleep far past the deadline; the supervisor reaps the worker."""
    time.sleep(600.0)
    return builder()


def _faulty_points(marker_path: str):
    """The Fig. 9 batch with point 0 crashing once and point 2 hanging."""
    points = fig09._points(SIZES, CollectiveOp.ALL_REDUCE)
    points[0] = replace(points[0], builder=functools.partial(
        crash_once, marker_path, fig09._alltoall))
    points[2] = replace(points[2], builder=functools.partial(
        hang, fig09._torus))
    return points


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--work-dir", default="supervision-smoke",
                        help="where markers, journal, and reports land")
    parser.add_argument("--point-timeout", type=float, default=15.0)
    args = parser.parse_args(argv)

    os.makedirs(args.work_dir, exist_ok=True)
    marker = os.path.join(args.work_dir, "crash-armed")
    journal = os.path.join(args.work_dir, "journal.jsonl")
    report_path = os.path.join(args.work_dir, "quarantine-report.json")

    clean = ParallelExecutor(jobs=1).run_points(
        fig09._points(SIZES, CollectiveOp.ALL_REDUCE))

    policy = SupervisionPolicy(point_timeout_s=args.point_timeout,
                               max_retries=1)
    with SupervisedExecutor(jobs=2, policy=policy,
                            journal_path=journal) as ex:
        outcomes = ex.run_outcomes(_faulty_points(marker))
        ex.write_quarantine_report(report_path)
        summary = ex.quarantine_summary()

    statuses = [o.status for o in outcomes]
    print(f"statuses: {[s.value for s in statuses]}")
    assert statuses[0] is PointStatus.RETRIED, statuses
    assert statuses[2] is PointStatus.TIMEOUT, statuses
    assert statuses[1] is PointStatus.OK and statuses[3] is PointStatus.OK

    # The retried point must be bit-identical to the clean run; the
    # hung point is an explicit gap in the partial figure.
    figure = fig09._split(CollectiveOp.ALL_REDUCE, SIZES,
                          results_with_gaps(outcomes))
    assert not figure.complete
    for reference, outcome in zip(clean, outcomes):
        if outcome.ok:
            assert (reference.duration_cycles
                    == outcome.result.duration_cycles), (
                "retried point diverged from the clean run")
    print("partial figure rows (None = quarantined gap):")
    for row in figure.rows():
        print(f"  {row}")
    print(summary)

    # Resume: the journal must carry the campaign past completed AND
    # quarantined points without re-simulating either.
    with SupervisedExecutor(jobs=2, policy=policy,
                            journal_path=journal) as resumed_ex:
        resumed = resumed_ex.run_outcomes(_faulty_points(marker))
        assert resumed_ex.simulations_run == 0, "resume re-simulated"
    assert all(o.from_journal for o in resumed)
    assert resumed[2].status is PointStatus.QUARANTINED
    print("resume: 0 simulations, quarantined point skipped")

    code = exit_code_for(outcomes)
    print(f"exit code: {code} (1 = partial results, as injected)")
    return code


if __name__ == "__main__":
    sys.exit(main())
