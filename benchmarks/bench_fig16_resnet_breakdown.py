"""Fig. 16 — ResNet-50 queue/network breakdown, FIFO vs LIFO scheduling.

Paper shape: the two policies behave almost identically — the 8x-faster
local dimension drains phase 1 so quickly that all of a layer's chunks
clear it before the next layer's chunks arrive, forcing effectively
in-order execution; most queueing delay sits in Queue P2 (waiting for the
inter-package fabric to finish previously issued chunks).
"""

from repro.config.parameters import SchedulingPolicy
from repro.harness import fig14

from bench_common import print_table, run_once


def test_fig16_fifo_vs_lifo(benchmark):
    runs = run_once(benchmark, lambda: fig14.run_fifo_vs_lifo(num_iterations=2))

    for name, run in runs.items():
        print_table(f"Fig 16 ({name}): queue/network breakdown",
                    run.breakdown.rows(), keys=["phase", "queue", "network"])
        print(f"{name}: total={run.report.total_cycles:,.0f} "
              f"exposed={run.report.total_exposed_cycles:,.0f}")

    lifo, fifo = runs["LIFO"], runs["FIFO"]
    assert lifo.policy is SchedulingPolicy.LIFO

    # "LIFO scheduling behaves similar to FIFO scheduling" (Sec. V-F).
    assert lifo.report.total_cycles == \
        __import__("pytest").approx(fifo.report.total_cycles, rel=0.10)

    # Queue P2 dominates queueing among the inter-package phases.
    for run in runs.values():
        b = run.breakdown
        assert b.mean_queue_delay(2) >= b.mean_queue_delay(3)
