"""Extension — pipeline parallelism bubble vs microbatch count.

Sec. III-A names pipelined parallelism among the core partitioning
strategies; this bench sweeps GPipe microbatching on an 8-stage ring and
checks the bubble fraction converges toward (S-1)/(M+S-1).
"""

from repro.config import SimulationConfig, SystemConfig, TorusShape
from repro.config import paper_network_config
from repro.config.units import KB
from repro.system import System
from repro.topology import build_torus_topology
from repro.workload import PipelineStage, PipelineTrainingLoop

from bench_common import print_table, run_once

MICROBATCHES = (2, 4, 8, 16, 32)
NUM_STAGES = 8


def run_point(num_microbatches: int):
    net = paper_network_config()
    cfg = SystemConfig(horizontal_rings=2)
    topo = build_torus_topology(TorusShape(1, 8, 1), net, cfg)
    system = System(topo, SimulationConfig(system=cfg, network=net))
    stages = [
        PipelineStage(i, i, 100_000.0 / num_microbatches,
                      200_000.0 / num_microbatches,
                      (512 * KB) / num_microbatches)
        for i in range(NUM_STAGES)
    ]
    return PipelineTrainingLoop(system, stages, num_microbatches).run(
        max_events=50_000_000)


def run_sweep():
    rows = []
    for m in MICROBATCHES:
        report = run_point(m)
        rows.append({
            "microbatches": m,
            "total_cycles": report.total_cycles,
            "bubble": report.bubble_fraction,
            "gpipe_ideal": report.ideal_bubble_fraction,
        })
    return rows


def test_ext_pipeline_bubble(benchmark):
    rows = run_once(benchmark, run_sweep)
    print_table("Extension: pipeline bubble vs microbatch count", rows)

    bubbles = [r["bubble"] for r in rows]
    assert bubbles == sorted(bubbles, reverse=True), (
        "more microbatches must shrink the bubble")
    last = rows[-1]
    assert last["bubble"] < last["gpipe_ideal"] + 0.15, (
        "measured bubble must approach the GPipe ideal")
    for row in rows:
        assert row["bubble"] >= row["gpipe_ideal"] - 0.02, (
            "the bubble cannot beat the GPipe bound")
