"""Design-space search vs exhaustive enumeration on the Fig. 9 space.

The shipped `search_fig09.json` space holds a few hundred unique
feasible platforms.  Exhaustive enumeration simulates every one; the
seeded evolutionary search must land on the same best point with a
fraction of the budget.  Both paths run through the parallel executor,
so this also exercises the generation-batching hot path.
"""

import functools
import json

from repro.parallel import ParallelExecutor, RunPoint
from repro.search import (
    SearchSpace,
    make_objective,
    make_strategy,
    platform_for_point,
    rank_frontier,
    run_search,
)

from bench_common import print_table, run_once

SPACE_FILE = "examples/configs/search_fig09.json"
SIZE_BYTES = 65536
BUDGET = 48
JOBS = 4


def load_space():
    with open(SPACE_FILE) as f:
        spec = json.load(f)
    spec["size_bytes"] = SIZE_BYTES
    return SearchSpace.from_dict(spec)


def test_search_beats_exhaustive_enumeration(benchmark):
    space = load_space()
    objective = make_objective("time", space.cost_table, space.size_bytes)
    genomes = space.enumerate_genomes()

    ex = ParallelExecutor(jobs=JOBS)
    results = ex.run_points([
        RunPoint(builder=functools.partial(platform_for_point, space.decode(g)),
                 op=space.collective, size_bytes=space.size_bytes)
        for g in genomes])
    exhaustive_best = min(r.duration_cycles for r in results)

    def search():
        strategy = make_strategy("evolutionary", space, seed=2020)
        return run_search(space, objective, strategy, budget=BUDGET,
                          executor=ParallelExecutor(jobs=JOBS))

    trajectory = run_once(benchmark, search)
    frontier = rank_frontier(trajectory)
    print_table(
        f"Search ({len(trajectory)} evals) vs exhaustive ({len(genomes)})",
        [{"rank": i + 1, "label": e.label, "cycles": e.duration_cycles,
          "x_floor": round(e.floor_ratio, 3)}
         for i, e in enumerate(frontier[:8])])

    assert BUDGET < len(genomes), "the space must dwarf the budget"
    assert frontier[0].score <= exhaustive_best, (
        "seeded search must match the exhaustive optimum")
    assert all(e.floor_ratio >= 1.0 for e in frontier), (
        "no simulated time may beat the alpha-beta bandwidth floor")
