"""Ablation — fast analytical backend vs detailed flit-level backend.

The fast backend is the default Garnet substitution; the detailed backend
validates it.  On an uncontended ring all-reduce both must agree closely
on simulated time while the detailed backend costs orders of magnitude
more wall-clock per simulated byte.
"""

import time

import pytest

from repro.collectives import CollectiveContext, RingAllReduce
from repro.config import LinkConfig, NetworkConfig
from repro.events import EventQueue
from repro.network import FastBackend, Link, RingChannel
from repro.network.detailed import DetailedBackend

from bench_common import print_table, run_once

IDEAL = LinkConfig(bandwidth_gbps=128.0, latency_cycles=50.0,
                   packet_size_bytes=512, efficiency=1.0,
                   message_quantum_bytes=None)
NET = NetworkConfig(local_link=IDEAL, package_link=IDEAL, vcs_per_vnet=4,
                    buffers_per_vc=64)
SIZE = 64 * 1024


def run_backend(backend_cls):
    events = EventQueue()
    links = [Link(i, (i + 1) % 4, IDEAL) for i in range(4)]
    ring = RingChannel([0, 1, 2, 3], links)
    backend = backend_cls(events, NET)
    ctx = CollectiveContext(backend, reduction_cycles_per_kb=0.0)
    algo = RingAllReduce(ctx, ring, SIZE)
    wall_start = time.perf_counter()
    algo.start_all()
    events.run(max_events=10_000_000)
    wall = time.perf_counter() - wall_start
    assert algo.done
    return algo.finished_at, events.events_processed, wall


def test_ablation_backend_agreement(benchmark):
    def compare():
        fast = run_backend(FastBackend)
        detailed = run_backend(DetailedBackend)
        return fast, detailed

    fast, detailed = run_once(benchmark, compare)
    rows = [
        {"backend": "fast", "sim_cycles": fast[0], "events": fast[1]},
        {"backend": "detailed", "sim_cycles": detailed[0], "events": detailed[1]},
    ]
    print_table("Ablation: backend agreement (64KB ring all-reduce)", rows)

    assert detailed[0] == pytest.approx(fast[0], rel=0.10), (
        "backends must agree on uncontended transfers")
    assert detailed[1] > 50 * fast[1], (
        "the flit-level backend should process vastly more events")
