"""Fig. 17 — ResNet-50 exposed-communication ratio vs. system size.

Paper shape: the exposed share of busy time grows monotonically as the
torus scales from 2x2x2 (8 NPUs, 4.1%) to 2x8x8 (128 NPUs, 25.2%) —
per-NPU compute is constant under data parallelism while collective
latency grows with ring sizes.

The bench sweeps up to 2x8x4 (64 NPUs) to keep runtime reasonable; pass
the full shape list to repro.harness.fig17.run for the 128-NPU point.
"""

from repro.config.parameters import TorusShape
from repro.harness import fig17

from bench_common import print_table, run_once

SHAPES = (
    TorusShape(2, 2, 2),
    TorusShape(2, 4, 2),
    TorusShape(2, 4, 4),
    TorusShape(2, 8, 4),
)


def test_fig17_exposed_vs_size(benchmark):
    result = run_once(benchmark, lambda: fig17.run(shapes=SHAPES,
                                                   num_iterations=2))
    print_table("Fig 17: exposed-comm ratio vs system size", result.rows,
                keys=["shape", "npus", "compute_cycles", "exposed_cycles",
                      "exposed_ratio"])

    ratios = [row["exposed_ratio"] for row in result.rows]
    assert all(b >= a for a, b in zip(ratios, ratios[1:])), (
        "exposed ratio must grow (weakly) with system size")
    assert ratios[-1] > ratios[0], "the sweep must show real growth"
    assert ratios[-1] > 0.05, "large systems expose substantial communication"
