"""Fig. 11 — asymmetric hierarchical 4x4x4 (64 modules, 4 NAM x 16 NAP).

Paper shape: giving the intra-package links 8x bandwidth improves
all-reduce significantly over the symmetric system, and the four-phase
(enhanced) algorithm improves further by cutting inter-package volume 4x.
The same ordering holds for the all-to-all collective's asymmetric gain.
"""

from repro.config.units import KB, MB
from repro.harness import fig11

from bench_common import print_table, run_once

SIZES = (256 * KB, 4 * MB)


def test_fig11_all_reduce(benchmark):
    result = run_once(benchmark,
                      lambda: fig11.run(SIZES, fig11.CollectiveOp.ALL_REDUCE))
    rows = result.rows()
    print_table("Fig 11: all-reduce on 4x4x4 (cycles)", rows)
    for row in rows:
        assert row["asym_baseline_cycles"] < row["symmetric_cycles"], (
            "asymmetric local bandwidth must beat symmetric")
        assert row["asym_enhanced_cycles"] < row["asym_baseline_cycles"], (
            "the 4-phase algorithm must beat the 3-phase baseline")
    # The enhanced gain should be substantial (paper: 4x less inter volume).
    assert rows[-1]["enhanced_speedup"] > 1.5


def test_fig11_all_to_all(benchmark):
    result = run_once(benchmark,
                      lambda: fig11.run(SIZES, fig11.CollectiveOp.ALL_TO_ALL))
    rows = result.rows()
    print_table("Fig 11: all-to-all on 4x4x4 (cycles)", rows)
    for row in rows:
        assert row["asym_baseline_cycles"] < row["symmetric_cycles"], (
            "asymmetric local bandwidth must beat symmetric for all-to-all")
