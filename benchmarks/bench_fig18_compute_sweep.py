"""Fig. 18 — ResNet-50 exposed communication vs. NPU compute power.

Paper shape: at 0.5x compute the network hides completely (<1% exposed);
at 4x compute the fixed-speed network dominates (63.9% of latency from
communication) — the diminishing-returns point for faster NPUs.
"""

from repro.harness import fig18

from bench_common import print_table, run_once


def test_fig18_exposed_vs_compute_power(benchmark):
    result = run_once(benchmark, lambda: fig18.run(num_iterations=2))
    print_table("Fig 18: exposed-comm ratio vs compute power", result.rows,
                keys=["compute_scale", "compute_cycles", "exposed_cycles",
                      "exposed_ratio"])

    by_scale = {row["compute_scale"]: row["exposed_ratio"]
                for row in result.rows}
    assert by_scale[0.5] < 0.01, "0.5x compute fully hides communication"
    ratios = [row["exposed_ratio"] for row in result.rows]
    assert all(b >= a for a, b in zip(ratios, ratios[1:])), (
        "exposure must grow with compute power")
    assert by_scale[4.0] > 0.4, (
        "at 4x compute, communication dominates (paper: 63.9%)")
