"""Ablation — reliable-transport overhead on a healthy network.

The transport's contract is that wrapping a backend changes *nothing*
on a healthy run: the default timeouts are generous enough that no
delivery timer fires before its message arrives, so the simulated
cycle count must match the bare backend exactly, and the only cost is
the wall-clock bookkeeping of arming/cancelling one timer per message.
This bench times the same all-reduce with the transport off and on,
checks cycle-identity and a silent stats record, and reports the
wall-clock ratio.
"""

import time
from dataclasses import replace

from repro.collectives import CollectiveOp
from repro.config import TorusShape
from repro.config.parameters import TransportConfig
from repro.config.units import MB
from repro.harness.runners import run_collective, torus_platform

from bench_common import print_table, run_once


def time_run(transport: bool):
    spec = torus_platform(TorusShape(2, 4, 4))
    if transport:
        spec.config = replace(
            spec.config,
            system=replace(spec.config.system, transport=TransportConfig()))
    start = time.perf_counter()
    result = run_collective(spec, CollectiveOp.ALL_REDUCE, 4 * MB)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_sweep():
    bare, wall_off = time_run(transport=False)
    wrapped, wall_on = time_run(transport=True)
    return [{
        "transport": "off", "sim cycles": bare.duration_cycles,
        "wall s": wall_off,
    }, {
        "transport": "on", "sim cycles": wrapped.duration_cycles,
        "wall s": wall_on,
        "messages": wrapped.transport_stats.messages,
        "retries": wrapped.transport_stats.retries,
        "overhead x": wall_on / wall_off if wall_off else float("nan"),
    }]


def test_transport_overhead(benchmark):
    rows = run_once(benchmark, run_sweep)
    print_table("Ablation: reliable-transport overhead (no faults)", rows)

    assert rows[0]["sim cycles"] == rows[1]["sim cycles"], (
        "on a healthy network the transport must not move a single cycle")
    assert rows[1]["retries"] == 0, (
        "no delivery timer may fire before its message on a healthy run")
    assert rows[1]["messages"] > 0
    # Wall-clock bound is deliberately loose (shared CI machines): the
    # wrapper adds one timer arm/cancel per message, nothing per flit.
    assert rows[1]["wall s"] < rows[0]["wall s"] * 5.0, (
        "transport overhead should be a small constant factor")
