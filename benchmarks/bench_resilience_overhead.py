"""Ablation — resilience monitoring overhead on a healthy run.

The monitor's contract (acceptance criterion of docs/RESILIENCE.md) is
that observation is free in simulated time: checkpoints and the watchdog
hang off the event queue's ``watcher`` hook, which fires after each
executed event and never schedules anything — so a no-fault run with the
full monitor attached must land on the exact same cycle as a bare run.
This bench times the same all-reduce bare, with the watchdog only, and
with watchdog + periodic checkpointing, checks cycle-identity across all
three, and reports the wall-clock ratios.
"""

import time
from dataclasses import replace

from repro.collectives import CollectiveOp
from repro.config import TorusShape
from repro.config.parameters import TransportConfig
from repro.config.units import MB
from repro.harness.runners import run_collective, torus_platform
from repro.resilience import CheckpointConfig, ResilienceConfig, WatchdogConfig

from bench_common import print_table, run_once


def time_run(mode: str, checkpoint_dir: str):
    spec = torus_platform(TorusShape(2, 4, 4))
    spec.config = replace(
        spec.config,
        system=replace(spec.config.system, transport=TransportConfig()))
    if mode == "watchdog":
        spec.resilience = ResilienceConfig(
            watchdog=WatchdogConfig(stall_cycles=10_000_000.0,
                                    check_every_events=256),
            label=spec.name)
    elif mode == "watchdog+checkpoint":
        spec.resilience = ResilienceConfig(
            checkpoint=CheckpointConfig(every_cycles=50_000.0,
                                        directory=checkpoint_dir),
            watchdog=WatchdogConfig(stall_cycles=10_000_000.0,
                                    check_every_events=256),
            label=spec.name)
    start = time.perf_counter()
    result = run_collective(spec, CollectiveOp.ALL_REDUCE, 4 * MB)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_sweep(checkpoint_dir: str):
    rows = []
    baseline = None
    for mode in ("off", "watchdog", "watchdog+checkpoint"):
        result, wall = time_run(mode, checkpoint_dir)
        monitor = result.system.resilience
        row = {
            "resilience": mode,
            "sim cycles": result.duration_cycles,
            "wall s": wall,
            "checkpoints": len(monitor.checkpoints) if monitor else 0,
        }
        if baseline is None:
            baseline = wall
        else:
            row["overhead x"] = wall / baseline if baseline else float("nan")
        rows.append(row)
    return rows


def test_resilience_overhead(benchmark, tmp_path):
    rows = run_once(benchmark, lambda: run_sweep(str(tmp_path)))
    print_table("Ablation: resilience monitoring overhead (no faults)", rows)

    cycles = {row["sim cycles"] for row in rows}
    assert len(cycles) == 1, (
        "watchdog/checkpointing only observe; enabling them must not move "
        f"a single simulated cycle (saw {sorted(cycles)})")
    assert rows[2]["checkpoints"] > 0, (
        "the cadence must actually capture checkpoints during the run")
    # Wall-clock bounds are deliberately loose (shared CI machines): the
    # watcher adds one call per event; a checkpoint serializes a small
    # dict every 50k cycles.
    assert rows[1]["wall s"] < rows[0]["wall s"] * 5.0
    assert rows[2]["wall s"] < rows[0]["wall s"] * 10.0
