"""Ablation — resilience monitoring and supervision overhead, no faults.

Two contracts, both "observation is free in simulated time":

* The monitor (docs/RESILIENCE.md): checkpoints and the watchdog hang
  off the event queue's ``watcher`` hook, which fires after each
  executed event and never schedules anything — so a no-fault run with
  the full monitor attached must land on the exact same cycle as a bare
  run.  Timed bare, watchdog-only, and watchdog + checkpointing.
* The supervisor (docs/SUPERVISION.md): deadlines, retry budgets, and
  quarantine live entirely in the parent's dispatch loop — a no-fault
  supervised batch must produce bit-identical cycles to the plain
  executor, paying only wall-clock dispatch overhead (reported as a
  ratio, bounded loosely for shared CI machines).
"""

import time
from dataclasses import replace

from repro.collectives import CollectiveOp
from repro.config import TorusShape
from repro.config.parameters import TransportConfig
from repro.config.units import MB
from repro.harness.runners import run_collective, torus_platform
from repro.parallel import (
    ParallelExecutor,
    RunPoint,
    SupervisedExecutor,
    SupervisionPolicy,
)
from repro.resilience import CheckpointConfig, ResilienceConfig, WatchdogConfig

from bench_common import print_table, run_once


def time_run(mode: str, checkpoint_dir: str):
    spec = torus_platform(TorusShape(2, 4, 4))
    spec.config = replace(
        spec.config,
        system=replace(spec.config.system, transport=TransportConfig()))
    if mode == "watchdog":
        spec.resilience = ResilienceConfig(
            watchdog=WatchdogConfig(stall_cycles=10_000_000.0,
                                    check_every_events=256),
            label=spec.name)
    elif mode == "watchdog+checkpoint":
        spec.resilience = ResilienceConfig(
            checkpoint=CheckpointConfig(every_cycles=50_000.0,
                                        directory=checkpoint_dir),
            watchdog=WatchdogConfig(stall_cycles=10_000_000.0,
                                    check_every_events=256),
            label=spec.name)
    start = time.perf_counter()
    result = run_collective(spec, CollectiveOp.ALL_REDUCE, 4 * MB)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_sweep(checkpoint_dir: str):
    rows = []
    baseline = None
    for mode in ("off", "watchdog", "watchdog+checkpoint"):
        result, wall = time_run(mode, checkpoint_dir)
        monitor = result.system.resilience
        row = {
            "resilience": mode,
            "sim cycles": result.duration_cycles,
            "wall s": wall,
            "checkpoints": len(monitor.checkpoints) if monitor else 0,
        }
        if baseline is None:
            baseline = wall
        else:
            row["overhead x"] = wall / baseline if baseline else float("nan")
        rows.append(row)
    return rows


def test_resilience_overhead(benchmark, tmp_path):
    rows = run_once(benchmark, lambda: run_sweep(str(tmp_path)))
    print_table("Ablation: resilience monitoring overhead (no faults)", rows)

    cycles = {row["sim cycles"] for row in rows}
    assert len(cycles) == 1, (
        "watchdog/checkpointing only observe; enabling them must not move "
        f"a single simulated cycle (saw {sorted(cycles)})")
    assert rows[2]["checkpoints"] > 0, (
        "the cadence must actually capture checkpoints during the run")
    # Wall-clock bounds are deliberately loose (shared CI machines): the
    # watcher adds one call per event; a checkpoint serializes a small
    # dict every 50k cycles.
    assert rows[1]["wall s"] < rows[0]["wall s"] * 5.0
    assert rows[2]["wall s"] < rows[0]["wall s"] * 10.0


# -- supervised execution overhead -------------------------------------------------


def _bench_platform():
    return torus_platform(TorusShape(2, 4, 4))


def _bench_points():
    return [RunPoint(builder=_bench_platform, op=CollectiveOp.ALL_REDUCE,
                     size_bytes=float(size))
            for size in (MB, 2 * MB, 4 * MB)]


def supervised_vs_plain():
    rows = []
    start = time.perf_counter()
    with ParallelExecutor(jobs=1) as plain_ex:
        plain = plain_ex.run_points(_bench_points())
    plain_wall = time.perf_counter() - start

    policy = SupervisionPolicy(point_timeout_s=600.0, max_retries=2)
    start = time.perf_counter()
    with SupervisedExecutor(jobs=1, policy=policy) as sup_ex:
        outcomes = sup_ex.run_outcomes(_bench_points())
    supervised_wall = time.perf_counter() - start

    rows.append({"executor": "plain", "wall s": plain_wall,
                 "sim cycles": sum(r.duration_cycles for r in plain)})
    rows.append({"executor": "supervised", "wall s": supervised_wall,
                 "sim cycles": sum(o.result.duration_cycles for o in outcomes),
                 "overhead x": (supervised_wall / plain_wall
                                if plain_wall else float("nan"))})
    return plain, outcomes, rows


def test_supervision_overhead(benchmark):
    plain, outcomes, rows = run_once(benchmark, supervised_vs_plain)
    print_table("Ablation: supervised execution overhead (no faults)", rows)

    # Cycle identity: supervision must not perturb a healthy simulation.
    assert all(o.ok and o.attempts == 1 for o in outcomes)
    for reference, outcome in zip(plain, outcomes):
        assert reference.duration_cycles == outcome.result.duration_cycles, (
            "a supervised no-fault run must land on the exact cycle of "
            "the plain executor")
        assert (reference.breakdown.as_dict()
                == outcome.result.breakdown.as_dict())
    # Dispatch overhead only; generous bound for loaded CI boxes.
    assert rows[1]["wall s"] < rows[0]["wall s"] * 5.0
