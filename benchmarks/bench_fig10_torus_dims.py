"""Fig. 10 — all-reduce across 2D/3D torus shapes at 64 packages,
symmetric links, baseline algorithm.

Paper shape: 1x8x8 beats 1x64x1 in the latency-bound regime (63 vs 14
hops); 2x8x4 is worse than 1x8x8 (more volume, same bottleneck ring);
4x4x4 beats 2x8x4 everywhere and beats 1x8x8 for small messages, with
1x8x8 winning again at >= ~4 MB where volume dominates.

Note (EXPERIMENTS.md): under a saturating queueing model the 1D ring's
lower total volume (126/64 N vs 28/8 N) eventually wins at very large
messages; the paper's orderings are asserted in the latency-bound regime.
"""

from repro.config.units import KB, MB
from repro.harness import fig10

from bench_common import print_table, run_once

SIZES = (64 * KB, 512 * KB, 4 * MB)


def test_fig10_torus_shapes(benchmark):
    result = run_once(benchmark, lambda: fig10.run(SIZES))
    rows = result.rows()
    print_table("Fig 10: all-reduce on 64-package tori (cycles)", rows)

    small = rows[0]
    assert small["1x8x8"] < small["1x64x1"], "2D must beat 1D at small sizes"
    assert small["4x4x4"] < small["2x8x4"], "3D must beat the unbalanced 3D"
    assert small["4x4x4"] < small["1x8x8"], "4x4x4 wins small messages"
    for row in rows:
        assert row["1x8x8"] < row["2x8x4"], (
            "1x8x8 must beat 2x8x4 at every size (same bottleneck ring, "
            "less volume)")

    large = rows[-1]
    assert large["1x8x8"] < large["4x4x4"], (
        "1x8x8 regains the lead at large sizes (28/8 N vs 36/8 N)")
