"""Hot-path macro-benchmark: the canonical events/sec figures.

Three representative simulations — a fast-backend all-reduce, a
fast-backend all-to-all over a switch fabric, and a detailed (flit-level)
all-reduce — timed with :class:`repro.profiling.RunProfile`.  Together
they exercise every hot path the perf work touches: the event-queue run
loop, ``FastBackend.send`` + ``Link.reserve``, the channel route caches,
and the detailed backend's per-flit ``TxPort`` arbitration.

Usage::

    python benchmarks/bench_hot_path.py --out BENCH_PR5.json
    python benchmarks/bench_hot_path.py --check BENCH_PR5.json

``--out`` records the perf trajectory (committed at the repo root);
``--check`` re-runs the benchmarks and exits nonzero when any one's
events/sec regressed more than ``--max-regression`` (default 20%) below
the committed baseline — the CI perf-smoke gate (docs/PERFORMANCE.md).

Also runs under pytest-benchmark with the rest of ``benchmarks/``; the
pytest path additionally asserts the sanitizer cycle-identity contract
on the fast-backend run.
"""

from __future__ import annotations

import argparse
import sys

from repro.collectives import CollectiveOp
from repro.config import AllToAllShape, TorusShape
from repro.config.units import KB, MB
from repro.harness.runners import alltoall_platform, run_collective, torus_platform
from repro.profiling import RunProfile, compare_bench, read_bench, write_bench

#: Livelock guard only; these runs finish well below it.
MAX_EVENTS = 50_000_000


def _detailed_factory(events, network, sanitizer):
    from repro.network.detailed.backend import DetailedBackend

    return DetailedBackend(events, network, sanitizer=sanitizer)


def _profile_collective(name: str, spec, op: CollectiveOp,
                        size_bytes: float) -> tuple[RunProfile, float]:
    """Build and run one collective under phase timing."""
    profile = RunProfile(name=name)
    with profile.phase("build"):
        system = spec.build_system()
    with profile.phase("simulate"):
        collective = system.request_collective(op, size_bytes, name=op.value)
        system.run_until_idle(max_events=MAX_EVENTS)
    profile.record_system(system)
    assert collective.done, f"{name}: collective never completed"
    return profile, collective.duration_cycles


def run_benchmarks() -> tuple[list[RunProfile], dict[str, float]]:
    """The canonical macro-benchmarks; returns profiles + sim cycles."""
    profiles: list[RunProfile] = []
    cycles: dict[str, float] = {}

    cases = [
        ("fast_allreduce_2x4x4_4mb",
         torus_platform(TorusShape(2, 4, 4)),
         CollectiveOp.ALL_REDUCE, 4 * MB),
        ("fast_alltoall_4x8_1mb",
         alltoall_platform(AllToAllShape(local=4, packages=8)),
         CollectiveOp.ALL_TO_ALL, 1 * MB),
    ]
    detailed = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
    detailed.backend_factory = _detailed_factory
    cases.append(("detailed_allreduce_2x2x2_64kb", detailed,
                  CollectiveOp.ALL_REDUCE, 64 * KB))

    for name, spec, op, size in cases:
        profile, sim_cycles = _profile_collective(name, spec, op, size)
        profiles.append(profile)
        cycles[name] = sim_cycles
    return profiles, cycles


def assert_sanitizer_cycle_identity() -> None:
    """The hot-path rewrites must be invisible to simulated time: the
    same run under the runtime sanitizer lands on identical cycles."""
    plain = run_collective(torus_platform(TorusShape(2, 4, 4)),
                           CollectiveOp.ALL_REDUCE, 1 * MB)
    checked = run_collective(torus_platform(TorusShape(2, 4, 4)),
                             CollectiveOp.ALL_REDUCE, 1 * MB, sanitize=True)
    assert plain.duration_cycles == checked.duration_cycles, (
        f"sanitized run diverged: {plain.duration_cycles} vs "
        f"{checked.duration_cycles}")


# -- pytest-benchmark entry ---------------------------------------------------------


def test_hot_path_bench(benchmark):
    from bench_common import print_table, run_once

    profiles, _cycles = run_once(benchmark, run_benchmarks)
    rows = [{
        "bench": p.name,
        "wall s": p.total_seconds,
        "events": p.events,
        "events/sec": p.events_per_sec,
    } for p in profiles]
    print_table("Hot path: events/sec", rows)
    assert_sanitizer_cycle_identity()
    assert all(p.events_per_sec > 0 for p in profiles)


# -- script entry -------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the bench document to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare a fresh run against BASELINE; exit 1 "
                             "on any events/sec regression beyond "
                             "--max-regression")
    parser.add_argument("--max-regression", type=float, default=0.20)
    parser.add_argument("--label", default="hot-path")
    args = parser.parse_args(argv)

    profiles, cycles = run_benchmarks()
    for profile in profiles:
        print(profile.format())
        print(f"  sim cycles   {cycles[profile.name]:>14,.0f}")

    rc = 0
    doc = None
    if args.check:
        baseline = read_bench(args.check)
        doc = {"benchmarks": [p.as_dict() for p in profiles]}
        regressions = compare_bench(baseline, doc,
                                    max_regression=args.max_regression)
        for message in regressions:
            print(f"REGRESSION: {message}", file=sys.stderr)
        if regressions:
            rc = 1
        else:
            print(f"perf gate OK: within {args.max_regression:.0%} of "
                  f"{args.check}")
    if args.out:
        path = write_bench(args.out, [p.as_dict() for p in profiles],
                           label=args.label)
        print(f"bench written to {path}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
