"""Hot-path macro-benchmark: the canonical events/sec figures.

Five benchmarks — three representative simulations (a fast-backend
all-reduce, a fast-backend all-to-all over a switch fabric, a detailed
flit-level all-reduce), one larger fast-backend all-reduce (256 NPUs,
deep enough to push the event queue into calendar mode), and a pure
:class:`~repro.events.engine.EventQueue` schedule/cancel microbench.
Together they exercise every hot path the perf work touches: the
event-queue run loop and calendar scheduler, ``FastBackend.send`` +
``Link.reserve`` + delivery coalescing, the channel route caches, and
the detailed backend's ``TxPort`` arbitration with flit bursts.

Each benchmark runs once as warm-up and then ``REPEATS`` times; the
reported profile is the run with the *median* simulate-phase wall time,
so one scheduler hiccup cannot fail the CI gate or pollute a committed
baseline.

Events/sec counts *logical* events (``EventQueue.events_simulated``):
real dispatches plus the singleton events that batched handlers folded
away.  See docs/PERFORMANCE.md.

Usage::

    python benchmarks/bench_hot_path.py --out BENCH_PR10.json
    python benchmarks/bench_hot_path.py --check            # newest BENCH_PR<k>.json
    python benchmarks/bench_hot_path.py --check BENCH_PR5.json

``--out`` records the perf trajectory (committed at the repo root);
``--check`` re-runs the benchmarks and exits nonzero when any one's
events/sec regressed more than ``--max-regression`` (default 20%) below
the committed baseline — the CI perf-smoke gate (docs/PERFORMANCE.md).
With no argument, ``--check`` gates against the newest committed
``BENCH_PR<k>.json`` (highest PR number).

Also runs under pytest-benchmark with the rest of ``benchmarks/``; the
pytest path additionally asserts the sanitizer cycle-identity contract
on the fast-backend run.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys

from repro.collectives import CollectiveOp
from repro.config import AllToAllShape, TorusShape
from repro.config.units import KB, MB
from repro.events.engine import EventQueue
from repro.harness.runners import alltoall_platform, run_collective, torus_platform
from repro.profiling import (
    RunProfile,
    compare_bench,
    find_newest_bench,
    read_bench,
    write_bench,
)

#: Livelock guard only; these runs finish well below it.
MAX_EVENTS = 50_000_000

#: Timed repetitions per benchmark (after one untimed warm-up); the
#: median simulate-phase run is reported.
REPEATS = 3

#: Repo root: committed BENCH_PR<k>.json baselines live here.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _detailed_factory(events, network, sanitizer):
    from repro.network.detailed.backend import DetailedBackend

    return DetailedBackend(events, network, sanitizer=sanitizer)


def _profile_collective(name: str, make_spec, op: CollectiveOp,
                        size_bytes: float) -> tuple[RunProfile, float]:
    """Build and run one collective under phase timing."""
    profile = RunProfile(name=name)
    with profile.phase("build"):
        system = make_spec().build_system()
    with profile.phase("simulate"):
        collective = system.request_collective(op, size_bytes, name=op.value)
        system.run_until_idle(max_events=MAX_EVENTS)
    profile.record_system(system)
    assert collective.done, f"{name}: collective never completed"
    return profile, collective.duration_cycles


# -- EventQueue microbench ----------------------------------------------------------

#: Outstanding-event population of the microbench; above the calendar
#: upgrade threshold so the run exercises bucketed scheduling, lazy
#: cancellation and compaction rather than the plain heap.
_CHURN_POPULATION = 4096
_CHURN_TOTAL = 200_000


def _profile_eventqueue(name: str = "eventqueue_churn_200k") -> tuple[RunProfile, float]:
    """Pure engine throughput: schedule/cancel/run with a held population.

    Every fired event schedules one replacement at a deterministic
    pseudo-random delay (integer hash, no RNG state); every 5th
    replacement is immediately cancelled and re-issued, so the run also
    measures lazy-cancellation drain and compaction — the operations the
    calendar scheduler must not regress.
    """
    profile = RunProfile(name=name)
    with profile.phase("build"):
        queue = EventQueue()
    with profile.phase("simulate"):
        state = {"scheduled": 0}

        def _delay(i: int) -> float:
            return float((i * 2654435761 >> 7) % 1000 + 1)

        def reschedule() -> None:
            i = state["scheduled"]
            if i >= _CHURN_TOTAL:
                return
            state["scheduled"] = i + 1
            handle = queue.schedule(_delay(i), reschedule)
            if i % 5 == 0:
                # Churn: cancel-and-replace, leaving a lazily-cancelled
                # entry behind for the drain/compaction machinery.
                handle.cancel()
                reschedule()

        for i in range(_CHURN_POPULATION):
            state["scheduled"] += 1
            queue.schedule(_delay(i), reschedule)
        queue.run()
    profile.events = queue.events_simulated
    profile.cycles = queue.now
    return profile, queue.now


def _median_run(runner) -> tuple[RunProfile, float]:
    """One warm-up + ``REPEATS`` timed runs; report the median-time run."""
    runner()  # warm-up: imports, allocator, branch predictors
    runs = [runner() for _ in range(REPEATS)]
    times = [profile.seconds_of("simulate") or profile.total_seconds
             for profile, _ in runs]
    median = statistics.median(times)
    for (profile, cycles), seconds in zip(runs, times):
        if seconds == median:
            return profile, cycles
    return runs[0]  # pragma: no cover - median always present for odd REPEATS


def run_benchmarks() -> tuple[list[RunProfile], dict[str, float]]:
    """The canonical macro-benchmarks; returns profiles + sim cycles."""
    cases = [
        ("fast_allreduce_2x4x4_4mb",
         lambda: torus_platform(TorusShape(2, 4, 4)),
         CollectiveOp.ALL_REDUCE, 4 * MB),
        ("fast_allreduce_4x8x8_1mb",
         lambda: torus_platform(TorusShape(4, 8, 8)),
         CollectiveOp.ALL_REDUCE, 1 * MB),
        ("fast_alltoall_4x8_1mb",
         lambda: alltoall_platform(AllToAllShape(local=4, packages=8)),
         CollectiveOp.ALL_TO_ALL, 1 * MB),
    ]

    def _detailed_spec():
        spec = torus_platform(TorusShape(2, 2, 2), preferred_set_splits=4)
        spec.backend_factory = _detailed_factory
        return spec

    cases.append(("detailed_allreduce_2x2x2_64kb", _detailed_spec,
                  CollectiveOp.ALL_REDUCE, 64 * KB))

    profiles: list[RunProfile] = []
    cycles: dict[str, float] = {}
    for name, make_spec, op, size in cases:
        profile, sim_cycles = _median_run(
            lambda name=name, make_spec=make_spec, op=op, size=size:
            _profile_collective(name, make_spec, op, size))
        profiles.append(profile)
        cycles[name] = sim_cycles

    profile, sim_cycles = _median_run(_profile_eventqueue)
    profiles.append(profile)
    cycles[profile.name] = sim_cycles
    return profiles, cycles


def assert_sanitizer_cycle_identity() -> None:
    """The hot-path rewrites must be invisible to simulated time: the
    same run under the runtime sanitizer lands on identical cycles."""
    plain = run_collective(torus_platform(TorusShape(2, 4, 4)),
                           CollectiveOp.ALL_REDUCE, 1 * MB)
    checked = run_collective(torus_platform(TorusShape(2, 4, 4)),
                             CollectiveOp.ALL_REDUCE, 1 * MB, sanitize=True)
    assert plain.duration_cycles == checked.duration_cycles, (
        f"sanitized run diverged: {plain.duration_cycles} vs "
        f"{checked.duration_cycles}")


# -- pytest-benchmark entry ---------------------------------------------------------


def test_hot_path_bench(benchmark):
    from bench_common import print_table, run_once

    profiles, _cycles = run_once(benchmark, run_benchmarks)
    rows = [{
        "bench": p.name,
        "wall s": p.total_seconds,
        "events": p.events,
        "events/sec": p.events_per_sec,
    } for p in profiles]
    print_table("Hot path: events/sec", rows)
    assert_sanitizer_cycle_identity()
    assert all(p.events_per_sec > 0 for p in profiles)


# -- script entry -------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the bench document to PATH")
    parser.add_argument("--check", nargs="?", default=None, const="auto",
                        metavar="BASELINE",
                        help="compare a fresh run against BASELINE (default: "
                             "the newest committed BENCH_PR<k>.json); exit 1 "
                             "on any events/sec regression beyond "
                             "--max-regression")
    parser.add_argument("--max-regression", type=float, default=0.20)
    parser.add_argument("--label", default="hot-path")
    args = parser.parse_args(argv)

    profiles, cycles = run_benchmarks()
    for profile in profiles:
        print(profile.format())
        print(f"  sim cycles   {cycles[profile.name]:>14,.0f}")

    rc = 0
    if args.check:
        baseline_path = (find_newest_bench(REPO_ROOT) if args.check == "auto"
                         else args.check)
        baseline = read_bench(baseline_path)
        doc = {"benchmarks": [p.as_dict() for p in profiles]}
        regressions = compare_bench(baseline, doc,
                                    max_regression=args.max_regression)
        for message in regressions:
            print(f"REGRESSION: {message}", file=sys.stderr)
        if regressions:
            rc = 1
        else:
            print(f"perf gate OK: within {args.max_regression:.0%} of "
                  f"{baseline_path}")
    if args.out:
        path = write_bench(args.out, [p.as_dict() for p in profiles],
                           label=args.label)
        print(f"bench written to {path}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
