"""Ablation — runtime sanitizer overhead on a representative collective.

The sanitizer's contract is zero overhead when disabled (no checker
objects exist; instrumentation is a single ``is not None`` test) and a
small, bounded cost when enabled.  This bench times the same all-reduce
with the sanitizer off and on, checks the results agree exactly, and
reports the wall-clock ratio.
"""

import time

from repro.collectives import CollectiveOp
from repro.config import TorusShape
from repro.config.units import MB
from repro.harness.runners import run_collective, torus_platform

from bench_common import print_table, run_once


def time_run(sanitize: bool):
    start = time.perf_counter()
    result = run_collective(torus_platform(TorusShape(2, 4, 4)),
                            CollectiveOp.ALL_REDUCE, 4 * MB,
                            sanitize=sanitize)
    elapsed = time.perf_counter() - start
    return result.duration_cycles, elapsed


def run_sweep():
    cycles_off, wall_off = time_run(sanitize=False)
    cycles_on, wall_on = time_run(sanitize=True)
    return [{
        "sanitize": "off", "sim cycles": cycles_off, "wall s": wall_off,
    }, {
        "sanitize": "on", "sim cycles": cycles_on, "wall s": wall_on,
        "overhead x": wall_on / wall_off if wall_off else float("nan"),
    }]


def test_sanitizer_overhead(benchmark):
    rows = run_once(benchmark, run_sweep)
    print_table("Ablation: runtime sanitizer overhead", rows)

    assert rows[0]["sim cycles"] == rows[1]["sim cycles"], (
        "the sanitizer must observe, never perturb, simulated time")
    # Wall-clock bound is deliberately loose (shared CI machines): the
    # checkers are O(1) per event/flit, so anything near parity passes.
    assert rows[1]["wall s"] < rows[0]["wall s"] * 5.0, (
        "sanitizer overhead should be a small constant factor")
