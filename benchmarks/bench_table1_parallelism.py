"""Table I — communication pattern per parallelization strategy.

Runs the same synthetic model under data, model and hybrid parallelism
and verifies which training phases generate traffic: data parallel
exchanges weight gradients only; model parallel exchanges activations and
input gradients only; hybrid exchanges in all three phases.
"""

from repro.collectives import CollectiveOp
from repro.config import TorusShape
from repro.dims import Dimension
from repro.harness import run_training, torus_platform
from repro.workload import (
    CommSpec,
    DATA_PARALLEL,
    DNNModel,
    LayerSpec,
    MODEL_PARALLEL,
    TrainingPhase,
    hybrid,
)

from bench_common import print_table, run_once

HYBRID = hybrid(data_dims=(Dimension.LOCAL,),
                model_dims=(Dimension.VERTICAL, Dimension.HORIZONTAL))


def make_model(strategy):
    layers = tuple(
        LayerSpec(
            name=f"layer{i}",
            forward_cycles=10_000.0,
            input_grad_cycles=10_000.0,
            weight_grad_cycles=10_000.0,
            forward_comm=CommSpec(CollectiveOp.ALL_GATHER, 1 << 20),
            input_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, 1 << 20),
            weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, 1 << 20),
        )
        for i in range(4)
    )
    return DNNModel("table1", layers, strategy)


def run_all():
    results = {}
    for name, strategy in (("data", DATA_PARALLEL),
                           ("model", MODEL_PARALLEL),
                           ("hybrid", HYBRID)):
        platform = torus_platform(TorusShape(2, 2, 2))
        report, _ = run_training(make_model(strategy), platform,
                                 num_iterations=1)
        totals = {phase: sum(l.comm_bytes[phase] for l in report.layers)
                  for phase in TrainingPhase}
        results[name] = totals
    return results


def test_table1_parallelism_comm_matrix(benchmark):
    results = run_once(benchmark, run_all)
    rows = [{
        "parallelism": name,
        "activations(fwd)": totals[TrainingPhase.FORWARD],
        "weight_grads": totals[TrainingPhase.WEIGHT_GRAD],
        "input_grads": totals[TrainingPhase.INPUT_GRAD],
    } for name, totals in results.items()]
    print_table("Table I: bytes exchanged per training phase", rows)

    data, model, hyb = results["data"], results["model"], results["hybrid"]
    # Row 1: data parallelism -> weight gradients only.
    assert data[TrainingPhase.FORWARD] == 0
    assert data[TrainingPhase.WEIGHT_GRAD] > 0
    assert data[TrainingPhase.INPUT_GRAD] == 0
    # Row 2: model parallelism -> activations + input gradients.
    assert model[TrainingPhase.FORWARD] > 0
    assert model[TrainingPhase.WEIGHT_GRAD] == 0
    assert model[TrainingPhase.INPUT_GRAD] > 0
    # Row 3: hybrid -> partially everything.
    assert all(hyb[phase] > 0 for phase in TrainingPhase)
