"""Ablation — chunk count (preferred-set-splits, Table III #16).

Chunking is the pipelining lever of Table II: more chunks let the
scheduler keep every dedicated ring busy and overlap phases.  Expect a
large gain from 1 -> 4 chunks (parallel rings engaged) with diminishing
returns after the channel count is saturated.
"""

from repro.collectives import CollectiveOp
from repro.config import CollectiveAlgorithm, TorusShape
from repro.config.units import MB
from repro.harness import run_collective, torus_platform

from bench_common import print_table, run_once

SPLITS = (1, 2, 4, 8, 16, 32)


def run_sweep():
    rows = []
    for splits in SPLITS:
        platform = torus_platform(
            TorusShape(4, 4, 4),
            algorithm=CollectiveAlgorithm.ENHANCED,
            preferred_set_splits=splits,
        )
        result = run_collective(platform, CollectiveOp.ALL_REDUCE, 8 * MB)
        rows.append({"chunks": splits, "cycles": result.duration_cycles})
    return rows


def test_ablation_chunk_count(benchmark):
    rows = run_once(benchmark, run_sweep)
    print_table("Ablation: preferred-set-splits on 4x4x4 8MB all-reduce", rows)

    by_chunks = {r["chunks"]: r["cycles"] for r in rows}
    # Pipelining across the 4 dedicated inter-package rings needs >= 4 chunks.
    assert by_chunks[4] < by_chunks[1] / 1.8
    # Returns diminish: 16 -> 32 changes little.
    assert abs(by_chunks[32] - by_chunks[16]) < 0.25 * by_chunks[16]
