"""Fig. 9 — 1D topology: alltoall vs Torus for all-to-all and all-reduce.

Paper shape: (a) the alltoall topology always wins the all-to-all
collective, with the gap narrowing toward the bandwidth ratio as messages
grow; (b) for all-reduce the alltoall topology wins small messages
(fewer steps) and the torus overtakes at large messages (all 8 links +
chunk pipelining vs 7 links).
"""

from repro.config.units import KB, MB
from repro.harness import fig09

from bench_common import print_table, run_once

SIZES = (64 * KB, 512 * KB, 4 * MB, 16 * MB)


def test_fig09_all_to_all(benchmark):
    result = run_once(benchmark, lambda: fig09.run(SIZES, fig09.CollectiveOp.ALL_TO_ALL))
    rows = result.rows()
    print_table("Fig 9a: all-to-all collective (cycles)", rows)
    for row in rows:
        assert row["alltoall_cycles"] < row["torus_cycles"], (
            "alltoall topology must always win the all-to-all collective")


def test_fig09_all_reduce(benchmark):
    result = run_once(benchmark, lambda: fig09.run(SIZES, fig09.CollectiveOp.ALL_REDUCE))
    rows = result.rows()
    print_table("Fig 9b: all-reduce collective (cycles)", rows)
    assert rows[0]["alltoall_cycles"] < rows[0]["torus_cycles"], (
        "alltoall should win at the smallest message size")
    assert rows[-1]["torus_cycles"] < rows[-1]["alltoall_cycles"], (
        "torus should win at the largest message size")
