"""Fig. 9 sweep speedup gate: ``--jobs N`` vs serial, bit-identical.

Runs the full Fig. 9 design-space sweep (both collectives, all four
payload sizes, both topologies) serially and through an N-process
executor, asserts every point's ``duration_cycles`` and delay breakdown
are identical, and reports the wall-clock speedup.

CI (perf-smoke, a 4-core runner) enforces ``--min-speedup 2.5``; on a
single-core box run it with the default ``--min-speedup 0`` to check
determinism only.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness import fig09
from repro.parallel import ParallelExecutor, set_default_executor


def _run_with(jobs: int):
    executor = ParallelExecutor(jobs=jobs)
    set_default_executor(executor)
    try:
        start = time.perf_counter()
        results = fig09.run_both()
        # Timed region includes pool startup: the gate measures what a
        # user actually gets from --jobs, fork overhead included.
        return results, time.perf_counter() - start
    finally:
        set_default_executor(None)
        executor.close()


def _points(results):
    for figure in results.values():
        yield from figure.alltoall
        yield from figure.torus


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail below this wall-clock speedup (0: only "
                             "check determinism)")
    args = parser.parse_args(argv)

    serial, serial_s = _run_with(1)
    parallel, parallel_s = _run_with(args.jobs)

    mismatches = 0
    for a, b in zip(_points(serial), _points(parallel)):
        if (a.duration_cycles != b.duration_cycles
                or a.breakdown.as_dict() != b.breakdown.as_dict()):
            print(f"MISMATCH: {a.label} @ {a.size_bytes:,.0f} B: "
                  f"{a.duration_cycles} vs {b.duration_cycles}",
                  file=sys.stderr)
            mismatches += 1
    if mismatches:
        print(f"{mismatches} point(s) diverged between jobs=1 and "
              f"jobs={args.jobs}", file=sys.stderr)
        return 1

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"fig09 sweep: jobs=1 {serial_s:.2f}s, jobs={args.jobs} "
          f"{parallel_s:.2f}s -> {speedup:.2f}x speedup, all points "
          f"bit-identical")
    if speedup < args.min_speedup:
        print(f"speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
