"""Fig. 12 — scaling the 4-phase all-reduce from 8 to 64 modules, with the
Queue P0-P4 / Network P1-P4 breakdown.

Paper shape: total time grows with module count but plateaus between 16
(2x4x2) and 32 (2x4x4) modules — the bottleneck ring size stays 4, the
bottleneck merely shifts from the horizontal to the vertical dimension
(Queue P2 becomes the dominant queueing term) — then jumps at 2x4x8.
"""

from repro.config.units import MB
from repro.harness import fig12

from bench_common import print_table, run_once


def test_fig12_scaling_and_breakdown(benchmark):
    result = run_once(benchmark, lambda: fig12.run(size_bytes=2 * MB))

    totals = result.total_rows()
    print_table("Fig 12a: total communication time", totals,
                keys=["shape", "modules", "cycles"])
    for name, rows in result.breakdown_rows().items():
        print_table(f"Fig 12b breakdown: {name}", rows,
                    keys=["phase", "queue", "network"])

    times = [r["cycles"] for r in totals]
    assert times == sorted(times), "communication time must grow with scale"

    # Relative growth 16 -> 32 modules is smaller than 8 -> 16 (plateau).
    growth_8_16 = times[1] / times[0]
    growth_16_32 = times[2] / times[1]
    assert growth_16_32 < growth_8_16

    # Queue P2 (the first inter-package phase) dominates queueing among the
    # inter-package phases at 2x4x4.
    b_2x4x4 = result.results[2].breakdown
    assert b_2x4x4.mean_queue_delay(2) >= b_2x4x4.mean_queue_delay(3)
