"""Service smoke gate: `astra-repro serve` hardened edges, end to end.

Drives a real daemon subprocess through the full contract documented in
docs/SERVICE.md:

* a malformed body and an invalid payload answer structured 400s,
* a good payload is accepted (202) and completes,
* an identical in-flight payload deduplicates onto the running job,
* a full queue answers 429 with a Retry-After header,
* SIGKILL with one job completed, one in flight and one queued, then a
  restart on the same state directory: the completed job replays
  bit-identically with zero re-simulation and the rest finish,
* a second restart replays *everything* from the journal (0 simulations)
  and a SIGTERM drains to exit 0.

CI runs this as the `service-smoke` job and asserts exit 0.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

#: ~1 s on the fast backend: the "small" payload.
SMALL = {"op": "allreduce", "size_mb": 0.0625}
#: ~7 s: long enough to be reliably in flight when we SIGKILL.
SLOW = {"op": "allreduce", "size_mb": 16, "shape": "4x4x8",
        "preferred_set_splits": 64}

DEADLINE_S = 120.0
_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")
_REPLAY_RE = re.compile(r"journal replay: (\d+) completed job\(s\) "
                        r"restored, (\d+) re-enqueued")


class Daemon:
    """An `astra-repro serve` subprocess plus a tiny urllib client."""

    def __init__(self, state_dir: str, queue_limit: int = 16):
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve",
             "--port", "0", "--state-dir", state_dir,
             "--queue-limit", str(queue_limit)],
            stdout=subprocess.PIPE, text=True)
        self.lines: list[str] = []
        self._reader = threading.Thread(target=self._read, daemon=True)
        self._reader.start()
        self.base = f"http://127.0.0.1:{self._await_port()}"

    def _read(self):
        for line in self.proc.stdout:
            print(f"    [daemon] {line.rstrip()}")
            self.lines.append(line)

    def _await_line(self, pattern: re.Pattern) -> re.Match:
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            for line in list(self.lines):
                match = pattern.search(line)
                if match:
                    return match
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"daemon died (rc={self.proc.returncode}) before "
                    f"printing {pattern.pattern!r}")
            time.sleep(0.05)
        raise AssertionError(f"timed out waiting for {pattern.pattern!r}")

    def _await_port(self) -> int:
        return int(self._await_line(_LISTEN_RE).group(2))

    def replay_counts(self) -> tuple[int, int]:
        match = self._await_line(_REPLAY_RE)
        return int(match.group(1)), int(match.group(2))

    def get(self, path):
        try:
            with urllib.request.urlopen(f"{self.base}{path}", timeout=30) as r:
                return r.status, json.loads(r.read()), r.headers
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read()), e.headers

    def post(self, path, body, raw=False):
        data = body if raw else json.dumps(body).encode()
        req = urllib.request.Request(f"{self.base}{path}", data=data)
        try:
            with urllib.request.urlopen(req, timeout=30) as r:
                return r.status, json.loads(r.read()), r.headers
        except urllib.error.HTTPError as e:
            return e.code, json.loads(e.read()), e.headers

    def await_state(self, job_id: str, *states: str) -> dict:
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            status, job, _ = self.get(f"/v1/jobs/{job_id}")
            assert status == 200, f"{job_id}: {status} {job}"
            if job["state"] in states:
                return job
            time.sleep(0.1)
        raise AssertionError(f"{job_id} never reached {states}")

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def sigterm(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=DEADLINE_S)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--work-dir", default="service-smoke")
    args = parser.parse_args(argv)
    state = os.path.join(args.work_dir, "state")
    os.makedirs(state, exist_ok=True)

    print("== life 1: validation, dedup, backpressure ==")
    daemon = Daemon(state, queue_limit=1)

    status, body, _ = daemon.get("/healthz")
    assert (status, body) == (200, {"status": "ok"}), body
    status, body, _ = daemon.get("/readyz")
    assert status == 200 and body["status"] == "ready", body

    status, body, _ = daemon.post("/v1/jobs", b"{not json", raw=True)
    assert status == 400 and body["error"] == "invalid-json", body
    print("  malformed body -> 400 invalid-json")

    status, body, _ = daemon.post("/v1/jobs", {"op": "bogus", "size_mb": -1})
    assert status == 400 and body["error"] == "invalid-payload", body
    fields = {e["field"] for e in body["errors"]}
    assert {"op", "size_mb"} <= fields, body
    print(f"  invalid payload -> structured 400 on {sorted(fields)}")

    status, done_job, _ = daemon.post("/v1/jobs", SMALL)
    assert status == 202, (status, done_job)
    finished = daemon.await_state(done_job["job_id"], "done")
    duration = finished["result"]["duration_cycles"]
    assert duration > 0
    print(f"  good payload -> 202 -> done ({duration:,.0f} cycles)")

    status, slow_job, _ = daemon.post("/v1/jobs", SLOW)
    assert status == 202, (status, slow_job)
    daemon.await_state(slow_job["job_id"], "running")

    status, dup, _ = daemon.post("/v1/jobs", SLOW)
    assert status == 202 and dup["deduplicated"], dup
    assert dup["job_id"] == slow_job["job_id"], dup
    print("  identical in-flight payload -> deduplicated")

    status, queued_job, _ = daemon.post("/v1/jobs", {**SMALL, "size_mb": 0.125})
    assert status == 202 and not queued_job["deduplicated"], queued_job

    status, body, headers = daemon.post("/v1/jobs", {**SMALL, "size_mb": 0.25})
    assert status == 429 and body["error"] == "queue-full", (status, body)
    assert headers["Retry-After"] == "1", dict(headers)
    print("  full queue -> 429 with Retry-After")

    status, job, _ = daemon.get(f"/v1/jobs/{slow_job['job_id']}")
    assert job["state"] == "running", (
        f"slow job finished before SIGKILL ({job['state']}); "
        "grow SLOW so the crash window stays open")
    daemon.sigkill()
    print("  SIGKILL with 1 done, 1 running, 1 queued")

    print("== life 2: restart on the same state dir ==")
    daemon = Daemon(state)
    replayed, resumed = daemon.replay_counts()
    assert (replayed, resumed) == (1, 2), (replayed, resumed)
    replayed_job = daemon.await_state(done_job["job_id"], "done")
    assert replayed_job["result"]["duration_cycles"] == duration, (
        "replayed result diverged from the pre-crash run")
    print("  completed job replayed bit-identically, 0 re-simulations")
    durations = {done_job["job_id"]: duration}
    for job_id in (slow_job["job_id"], queued_job["job_id"]):
        durations[job_id] = daemon.await_state(
            job_id, "done")["result"]["duration_cycles"]
    print("  interrupted + queued jobs finished after resume")
    assert daemon.sigterm() == 0
    print("  SIGTERM drained to exit 0")

    print("== life 3: everything replays, nothing simulates ==")
    daemon = Daemon(state)
    replayed, resumed = daemon.replay_counts()
    assert (replayed, resumed) == (3, 0), (replayed, resumed)
    for job_id, expected in durations.items():
        job = daemon.await_state(job_id, "done")
        assert job["result"]["duration_cycles"] == expected, job_id
    _, stats, _ = daemon.get("/readyz")
    assert stats["simulations_run"] == 0, stats
    print("  3 jobs restored from journal, simulations_run == 0")
    assert daemon.sigterm() == 0

    print("service smoke: all contracts held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
