"""Fig. 13 — Transformer layer-wise raw communication time.

Paper shape: the six encoder layers show near-uniform communication time
(structurally identical, with strict hybrid-parallel dependencies); the
embedding layer has none.
"""

from repro.analysis import layer_rows
from repro.harness import fig13

from bench_common import print_table, run_once


def test_fig13_transformer_layerwise(benchmark):
    result = run_once(benchmark, lambda: fig13.run(num_iterations=2))
    report = result.report
    rows = [{
        "layer": r.name,
        "fwd_comm": r.forward_comm_cycles,
        "ig_comm": r.input_grad_comm_cycles,
        "wg_comm": r.weight_grad_comm_cycles,
        "total_comm": r.total_comm_cycles,
    } for r in layer_rows(report)]
    print_table("Fig 13: Transformer layer-wise comm time (2 iterations)", rows)

    encoder_rows = [r for r in rows if r["layer"].startswith("encoder")]
    times = [r["total_comm"] for r in encoder_rows]
    spread = (max(times) - min(times)) / max(times)
    assert spread < 0.25, "encoder layers must have near-uniform comm time"

    embedding = next(r for r in rows if r["layer"] == "embedding")
    assert embedding["total_comm"] == 0.0, "embedding communicates nothing"

    # Hybrid parallelism communicates in all three phases (Table I).
    assert any(r["fwd_comm"] > 0 for r in encoder_rows)
    assert any(r["ig_comm"] > 0 for r in encoder_rows)
    assert any(r["wg_comm"] > 0 for r in encoder_rows)
