"""Fig. 15 — ResNet-50 layer-wise compute time and exposed communication.

Paper shape: most layers' weight-gradient all-reduces hide behind
back-propagation; exposure concentrates in the first layers, whose
gradients are computed last with no compute left to cover them
(Sec. III-E), plus layers whose collectives queue behind the rest.
"""

from repro.analysis import layer_rows
from repro.harness import fig14

from bench_common import print_table, run_once


def test_fig15_resnet_exposed_comm(benchmark):
    result = run_once(benchmark, lambda: fig14.run(num_iterations=2))
    report = result.report
    rows = [{
        "layer": r.name,
        "compute": r.compute_cycles,
        "raw_comm": r.total_comm_cycles,
        "exposed": r.exposed_cycles,
    } for r in layer_rows(report)]
    print_table("Fig 15: ResNet-50 compute vs exposed comm (2 iters)",
                rows[:12] + rows[-6:])

    total_exposed = report.total_exposed_cycles
    print(f"\ntotal: compute={report.total_compute_cycles:,.0f} "
          f"exposed={total_exposed:,.0f} "
          f"ratio={report.exposed_comm_ratio:.1%}")

    assert report.total_compute_cycles > 0
    # Exposure exists but communication is mostly overlapped at 1x compute.
    assert 0.0 <= report.exposed_comm_ratio < 0.5
    # Exposure concentrates in the early layers (first third of the model).
    early = sum(r["exposed"] for r in rows[:18])
    late = sum(r["exposed"] for r in rows[36:])
    assert early >= late
