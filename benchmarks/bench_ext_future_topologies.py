"""Extension — 4D torus and scale-out fabric (the paper's future work).

Compares the enhanced all-reduce across equal-NPU systems: a 3D torus,
a 4D torus with shorter rings, and a scale-out system whose outermost
dimension rides Ethernet-class links.
"""

from repro.collectives import CollectiveOp
from repro.config import (
    CollectiveAlgorithm,
    SimulationConfig,
    SystemConfig,
    TorusShape,
    paper_network_config,
)
from repro.config.units import MB
from repro.network.physical import build_4d_torus, build_scaleout_torus
from repro.system import System
from repro.topology import LogicalTopology, build_torus_topology

from bench_common import print_table, run_once

SIZE = 4 * MB


def time_all_reduce(topology, network):
    config = SimulationConfig(
        system=SystemConfig(algorithm=CollectiveAlgorithm.ENHANCED),
        network=network,
    )
    system = System(topology, config)
    collective = system.request_collective(CollectiveOp.ALL_REDUCE, SIZE)
    system.run_until_idle(max_events=300_000_000)
    return collective.duration_cycles


def run_comparison():
    network = paper_network_config()
    return [
        {"system": "3D torus 2x4x4",
         "cycles": time_all_reduce(
             build_torus_topology(TorusShape(2, 4, 4), network), network)},
        {"system": "4D torus 2x2x2x4",
         "cycles": time_all_reduce(
             LogicalTopology(build_4d_torus((2, 2, 2, 4), network)), network)},
        {"system": "scale-out 4x(2x2x2)",
         "cycles": time_all_reduce(
             LogicalTopology(build_scaleout_torus((2, 2, 2), 4, network)),
             network)},
    ]


def test_ext_future_topologies(benchmark):
    rows = run_once(benchmark, run_comparison)
    print_table("Extension: 32-NPU systems, 4MB enhanced all-reduce", rows)

    by_name = {r["system"]: r["cycles"] for r in rows}
    assert by_name["scale-out 4x(2x2x2)"] > by_name["4D torus 2x2x2x4"], (
        "Ethernet-class outer links must cost more than scale-up links")
