"""Ablation — dispatcher threshold T and batch P (Fig. 7).

The dispatcher issues P chunks from the ready queue whenever fewer than T
chunks remain in their first phase.  A starved configuration (T=1, P=1)
serializes chunk injection; the paper's setting (T=8, P=16) keeps the
pipeline full.  Expect the aggressive setting to be faster, with the
ready-queue delay (Queue P0) showing where the conservative setting
holds chunks back.
"""

from repro.collectives import CollectiveOp
from repro.config import CollectiveAlgorithm, TorusShape
from repro.config.units import MB
from repro.config.parameters import SystemConfig, SimulationConfig
from repro.system import System
from repro.topology import build_torus_topology
from repro.config.presets import paper_network_config

from bench_common import print_table, run_once

SETTINGS = ((1, 1), (2, 4), (8, 16), (16, 32))


def time_with_dispatcher(threshold: int, batch: int):
    network = paper_network_config()
    system_cfg = SystemConfig(
        algorithm=CollectiveAlgorithm.ENHANCED,
        preferred_set_splits=32,
        dispatch_threshold=threshold,
        dispatch_batch=batch,
    )
    topo = build_torus_topology(TorusShape(4, 4, 4), network, system_cfg)
    system = System(topo, SimulationConfig(system=system_cfg, network=network))
    collective = system.request_collective(CollectiveOp.ALL_REDUCE, 8 * MB)
    system.run_until_idle(max_events=300_000_000)
    return collective.duration_cycles, system.breakdown.mean_ready_queue_delay


def run_sweep():
    rows = []
    for threshold, batch in SETTINGS:
        cycles, p0 = time_with_dispatcher(threshold, batch)
        rows.append({"T": threshold, "P": batch, "cycles": cycles,
                     "queue_P0": p0})
    return rows


def test_ablation_dispatcher_settings(benchmark):
    rows = run_once(benchmark, run_sweep)
    print_table("Ablation: dispatcher threshold/batch on 8MB all-reduce", rows)

    starved = rows[0]["cycles"]
    paper = rows[2]["cycles"]
    assert paper <= starved, "the paper's T=8/P=16 must not lose to T=1/P=1"
    assert rows[0]["queue_P0"] > rows[2]["queue_P0"], (
        "a starved dispatcher shows its held-back chunks as Queue P0 delay")
