"""Ablation — baseline vs enhanced all-reduce across local:package
bandwidth ratios.

The enhanced (4-phase) algorithm trades two extra local phases for 1/M
the inter-package volume, so its advantage should grow with the
local-bandwidth advantage and shrink toward parity on symmetric links.
"""

from repro.collectives import CollectiveOp
from repro.config import (
    CollectiveAlgorithm,
    NetworkConfig,
    SimulationConfig,
    SystemConfig,
    TorusShape,
)
from repro.config.presets import PAPER_PACKAGE_LINK
from repro.config.units import MB
from repro.system import System
from repro.topology import build_torus_topology

from bench_common import print_table, run_once

RATIOS = (1.0, 2.0, 8.0)


def time_all_reduce(local_ratio: float, algorithm: CollectiveAlgorithm) -> float:
    network = NetworkConfig(
        local_link=PAPER_PACKAGE_LINK.scaled(local_ratio),
        package_link=PAPER_PACKAGE_LINK,
    )
    system_cfg = SystemConfig(algorithm=algorithm)
    topo = build_torus_topology(TorusShape(4, 4, 4), network, system_cfg)
    system = System(topo, SimulationConfig(system=system_cfg, network=network))
    collective = system.request_collective(CollectiveOp.ALL_REDUCE, 8 * MB)
    system.run_until_idle(max_events=200_000_000)
    return collective.duration_cycles


def run_sweep():
    rows = []
    for ratio in RATIOS:
        base = time_all_reduce(ratio, CollectiveAlgorithm.BASELINE)
        enh = time_all_reduce(ratio, CollectiveAlgorithm.ENHANCED)
        rows.append({"local:package BW": ratio, "baseline": base,
                     "enhanced": enh, "speedup": base / enh})
    return rows


def test_ablation_algorithm_vs_asymmetry(benchmark):
    rows = run_once(benchmark, run_sweep)
    print_table("Ablation: enhanced speedup vs bandwidth asymmetry", rows)

    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups), (
        "the enhanced algorithm's advantage must grow with local bandwidth")
    assert speedups[-1] > 1.5, "at 8x asymmetry the gain is substantial"
