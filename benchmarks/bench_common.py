"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables or figures: it runs
the corresponding harness once (``benchmark.pedantic`` with a single
round — these are simulations, not microbenchmarks), prints the rows the
paper plots, and asserts the qualitative shape the paper reports.

Run them all with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Iterable


def print_table(title: str, rows: Iterable[dict], keys: list[str] | None = None) -> None:
    rows = list(rows)
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    if keys is None:
        keys = list(rows[0])
    print(f"\n== {title} ==")
    header = " | ".join(f"{k:>18}" for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for k in keys:
            v = row.get(k, "")
            if isinstance(v, float):
                cells.append(f"{v:>18,.1f}")
            else:
                cells.append(f"{str(v):>18}")
        print(" | ".join(cells))


def run_once(benchmark, fn):
    """Run a simulation exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
