"""Transformer encoder [8] as a hybrid-parallel workload (Fig. 13 setup).

Six structurally identical encoder layers (multi-head attention + FFN)
between an embedding layer and an output projection.  The parallelism is
hybrid (Sec. V-E): data-parallel across the local and horizontal torus
dimensions, model-parallel across vertical — attention heads and FFN
columns are sharded over the model-parallel group, so

* forward: each layer all-gathers its output activations across the
  model-parallel dimension (blocking the next layer),
* back-propagation: input gradients are all-reduced across the
  model-parallel dimension (blocking), and
* weight gradients are all-reduced across the data-parallel dimensions
  (overlappable), sized at the shard's parameter bytes.

The embedding layer is replicated in this split and communicates nothing
("some layers may not have communications", Fig. 13 caption).
"""

from __future__ import annotations

from repro.collectives.types import CollectiveOp
from repro.compute.gemm import GemmShape
from repro.compute.systolic import SystolicArrayModel
from repro.config.parameters import ComputeConfig
from repro.errors import WorkloadError
from repro.workload.layer import CommSpec, LayerSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import TRANSFORMER_HYBRID, ParallelismStrategy

D_MODEL = 1024
D_FF = 4096
SEQ_LEN = 512
NUM_ENCODER_LAYERS = 6
VOCAB = 32_000


def _encoder_gemms(tokens: int, model_shard: int) -> list[GemmShape]:
    """Per-NPU forward GEMMs of one encoder layer with heads/columns
    sharded ``model_shard`` ways: Q/K/V and output projections, the two
    attention GEMMs, and the two FFN projections."""
    d_head_total = D_MODEL // model_shard
    ff_shard = D_FF // model_shard
    return [
        GemmShape(tokens, D_MODEL, d_head_total),  # Q projection (sharded)
        GemmShape(tokens, D_MODEL, d_head_total),  # K projection
        GemmShape(tokens, D_MODEL, d_head_total),  # V projection
        GemmShape(tokens, d_head_total, tokens),   # attention scores
        GemmShape(tokens, tokens, d_head_total),   # attention context
        GemmShape(tokens, d_head_total, D_MODEL),  # output projection
        GemmShape(tokens, D_MODEL, ff_shard),      # FFN up
        GemmShape(tokens, ff_shard, D_MODEL),      # FFN down
    ]


def _encoder_weight_count(model_shard: int) -> int:
    """Per-shard weighted parameters of one encoder layer."""
    attn = 4 * D_MODEL * (D_MODEL // model_shard)
    ffn = 2 * D_MODEL * (D_FF // model_shard)
    return attn + ffn


def transformer(
    compute: ComputeConfig | SystolicArrayModel | None = None,
    minibatch: int = 32,
    model_parallel_degree: int = 2,
    strategy: ParallelismStrategy = TRANSFORMER_HYBRID,
    bytes_per_element: int = 4,
    local_update_cycles_per_kb: float = 1.0,
) -> DNNModel:
    """Build the hybrid-parallel Transformer workload.

    ``model_parallel_degree`` is the size of the model-parallel dimension
    (2 for the paper's 2x2x2 torus, which is model-parallel across the
    vertical dimension of size 2).
    """
    if D_MODEL % model_parallel_degree or D_FF % model_parallel_degree:
        raise WorkloadError(
            f"model_parallel_degree {model_parallel_degree} must divide "
            f"d_model={D_MODEL} and d_ff={D_FF}"
        )
    if compute is None:
        compute = ComputeConfig()
    if isinstance(compute, ComputeConfig):
        compute = SystolicArrayModel(compute)

    tokens = minibatch * SEQ_LEN
    activation_bytes = float(tokens * D_MODEL * bytes_per_element)

    layers = [LayerSpec(
        name="embedding",
        forward_cycles=compute.layer_cycles(GemmShape(tokens, 1, D_MODEL)),
        input_grad_cycles=0.0,
        weight_grad_cycles=compute.layer_cycles(GemmShape(tokens, 1, D_MODEL)),
        local_update_cycles_per_kb=local_update_cycles_per_kb,
    )]

    for i in range(1, NUM_ENCODER_LAYERS + 1):
        fwd_gemms = _encoder_gemms(tokens, model_parallel_degree)
        ig_gemms, wg_gemms = [], []
        for g in fwd_gemms:
            ig, wg = g.backward_shapes()
            ig_gemms.append(ig)
            wg_gemms.append(wg)
        shard_weight_bytes = float(
            _encoder_weight_count(model_parallel_degree) * bytes_per_element
        )
        layers.append(LayerSpec(
            name=f"encoder{i}",
            forward_cycles=compute.layer_cycles(fwd_gemms),
            input_grad_cycles=compute.layer_cycles(ig_gemms),
            weight_grad_cycles=compute.layer_cycles(wg_gemms),
            forward_comm=CommSpec(CollectiveOp.ALL_GATHER, activation_bytes),
            input_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, activation_bytes),
            weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, shard_weight_bytes),
            local_update_cycles_per_kb=local_update_cycles_per_kb,
        ))

    proj_shard = VOCAB // model_parallel_degree
    proj = GemmShape(tokens, D_MODEL, proj_shard)
    proj_ig, proj_wg = proj.backward_shapes()
    layers.append(LayerSpec(
        name="output_proj",
        forward_cycles=compute.layer_cycles(proj),
        input_grad_cycles=compute.layer_cycles(proj_ig),
        weight_grad_cycles=compute.layer_cycles(proj_wg),
        input_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, activation_bytes),
        weight_grad_comm=CommSpec(
            CollectiveOp.ALL_REDUCE,
            float(D_MODEL * proj_shard * bytes_per_element),
        ),
        local_update_cycles_per_kb=local_update_cycles_per_kb,
    ))

    return DNNModel(
        name="transformer",
        layers=tuple(layers),
        strategy=strategy,
        minibatch=minibatch,
    )
