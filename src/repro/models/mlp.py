"""A configurable MLP workload: the smallest useful test/demo model."""

from __future__ import annotations

from typing import Sequence

from repro.collectives.types import CollectiveOp
from repro.compute.gemm import LinearSpec
from repro.compute.systolic import SystolicArrayModel
from repro.config.parameters import ComputeConfig
from repro.errors import WorkloadError
from repro.workload.layer import CommSpec, LayerSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import DATA_PARALLEL, ParallelismStrategy


def mlp(
    widths: Sequence[int] = (4096, 4096, 4096, 1024),
    input_features: int = 1024,
    compute: ComputeConfig | SystolicArrayModel | None = None,
    minibatch: int = 32,
    strategy: ParallelismStrategy = DATA_PARALLEL,
    bytes_per_element: int = 4,
    local_update_cycles_per_kb: float = 1.0,
) -> DNNModel:
    """Build a data-parallel multi-layer perceptron workload."""
    if not widths:
        raise WorkloadError("mlp needs at least one layer width")
    if compute is None:
        compute = ComputeConfig()
    if isinstance(compute, ComputeConfig):
        compute = SystolicArrayModel(compute)

    layers = []
    in_features = input_features
    for i, width in enumerate(widths, start=1):
        spec = LinearSpec(in_features, width)
        gemm = spec.gemm(minibatch)
        ig, wg = gemm.backward_shapes()
        layers.append(LayerSpec(
            name=f"fc{i}",
            forward_cycles=compute.layer_cycles(gemm),
            input_grad_cycles=compute.layer_cycles(ig),
            weight_grad_cycles=compute.layer_cycles(wg),
            weight_grad_comm=CommSpec(
                CollectiveOp.ALL_REDUCE, float(spec.weight_count * bytes_per_element)
            ),
            local_update_cycles_per_kb=local_update_cycles_per_kb,
        ))
        in_features = width
    return DNNModel(
        name="mlp", layers=tuple(layers), strategy=strategy, minibatch=minibatch
    )
