"""A Mixture-of-Experts Transformer workload.

Expert parallelism is the modern heavy user of the all-to-all collective
the paper motivates with distributed key/value tables: every MoE layer
scatters tokens to the NPUs holding their routed experts and gathers the
results back — two all-to-alls per layer per direction.

The workload alternates dense attention blocks (hybrid-parallel like the
Transformer) with MoE FFN blocks whose token exchange runs as all-to-all
over the expert-parallel (model) dimensions.
"""

from __future__ import annotations

from repro.collectives.types import CollectiveOp
from repro.compute.gemm import GemmShape
from repro.compute.systolic import SystolicArrayModel
from repro.config.parameters import ComputeConfig
from repro.errors import WorkloadError
from repro.workload.layer import CommSpec, LayerSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import TRANSFORMER_HYBRID, ParallelismStrategy

D_MODEL = 1024
D_FF = 4096
SEQ_LEN = 512
NUM_BLOCKS = 4


def moe_transformer(
    compute: ComputeConfig | SystolicArrayModel | None = None,
    minibatch: int = 32,
    num_experts: int = 8,
    expert_parallel_degree: int = 2,
    capacity_factor: float = 1.25,
    strategy: ParallelismStrategy = TRANSFORMER_HYBRID,
    bytes_per_element: int = 4,
    local_update_cycles_per_kb: float = 1.0,
) -> DNNModel:
    """Build the MoE workload.

    ``expert_parallel_degree`` is the size of the dimension the experts
    are sharded over; each NPU hosts ``num_experts / degree`` experts and
    exchanges routed tokens with its peers via all-to-all.
    ``capacity_factor`` over-provisions the exchange the way real MoE
    routers do.
    """
    if num_experts % expert_parallel_degree:
        raise WorkloadError(
            f"expert_parallel_degree {expert_parallel_degree} must divide "
            f"num_experts {num_experts}"
        )
    if capacity_factor < 1.0:
        raise WorkloadError("capacity_factor must be >= 1")
    if compute is None:
        compute = ComputeConfig()
    if isinstance(compute, ComputeConfig):
        compute = SystolicArrayModel(compute)

    tokens = minibatch * SEQ_LEN
    activation_bytes = float(tokens * D_MODEL * bytes_per_element)
    # Each token visits one expert; with expert parallelism a fraction
    # (degree-1)/degree of tokens leave the NPU, padded by the capacity
    # factor.  Forward does dispatch + combine (two all-to-alls); they are
    # modelled as one exchange of twice the dispatched volume.
    leaving = (expert_parallel_degree - 1) / expert_parallel_degree
    exchange_bytes = 2.0 * capacity_factor * leaving * activation_bytes

    attn_gemms = [
        GemmShape(tokens, D_MODEL, D_MODEL),  # fused QKV-ish projection
        GemmShape(tokens, D_MODEL, tokens),   # scores
        GemmShape(tokens, tokens, D_MODEL),   # context
        GemmShape(tokens, D_MODEL, D_MODEL),  # output projection
    ]
    local_experts = num_experts // expert_parallel_degree
    # Tokens per expert after routing, processed by that expert's FFN.
    tokens_per_expert = int(tokens * capacity_factor / num_experts) or 1
    expert_gemms = []
    for _ in range(local_experts):
        expert_gemms.append(GemmShape(tokens_per_expert, D_MODEL, D_FF))
        expert_gemms.append(GemmShape(tokens_per_expert, D_FF, D_MODEL))

    attn_weight_bytes = float(4 * D_MODEL * D_MODEL * bytes_per_element)
    expert_weight_bytes = float(
        local_experts * 2 * D_MODEL * D_FF * bytes_per_element
    )

    layers = []
    for block in range(1, NUM_BLOCKS + 1):
        attn_ig = [g.backward_shapes()[0] for g in attn_gemms]
        attn_wg = [g.backward_shapes()[1] for g in attn_gemms]
        layers.append(LayerSpec(
            name=f"attention{block}",
            forward_cycles=compute.layer_cycles(attn_gemms),
            input_grad_cycles=compute.layer_cycles(attn_ig),
            weight_grad_cycles=compute.layer_cycles(attn_wg),
            forward_comm=CommSpec(CollectiveOp.ALL_GATHER, activation_bytes),
            input_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, activation_bytes),
            weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, attn_weight_bytes),
            local_update_cycles_per_kb=local_update_cycles_per_kb,
        ))
        expert_ig = [g.backward_shapes()[0] for g in expert_gemms]
        expert_wg = [g.backward_shapes()[1] for g in expert_gemms]
        layers.append(LayerSpec(
            name=f"moe_ffn{block}",
            forward_cycles=compute.layer_cycles(expert_gemms),
            input_grad_cycles=compute.layer_cycles(expert_ig),
            weight_grad_cycles=compute.layer_cycles(expert_wg),
            # Token dispatch+combine: all-to-all in both directions.
            forward_comm=CommSpec(CollectiveOp.ALL_TO_ALL, exchange_bytes),
            input_grad_comm=CommSpec(CollectiveOp.ALL_TO_ALL, exchange_bytes),
            weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE,
                                      expert_weight_bytes),
            local_update_cycles_per_kb=local_update_cycles_per_kb,
        ))
    return DNNModel(
        name="moe-transformer",
        layers=tuple(layers),
        strategy=strategy,
        minibatch=minibatch,
    )
