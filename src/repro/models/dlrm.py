"""A DLRM-style recommendation workload [17].

The paper motivates the all-to-all collective with DNNs that keep a
"distributed key/value table across the nodes" — exactly DLRM's sharded
embedding tables.  This workload models the standard hybrid split:

* bottom and top MLPs are data-parallel (weight-gradient all-reduce),
* embedding tables are model-parallel; the forward pass exchanges pooled
  embedding vectors with an all-to-all (blocking), and back-propagation
  returns the gradients with another all-to-all.
"""

from __future__ import annotations

from repro.collectives.types import CollectiveOp
from repro.compute.gemm import GemmShape, LinearSpec
from repro.compute.systolic import SystolicArrayModel
from repro.config.parameters import ComputeConfig
from repro.dims import Dimension
from repro.workload.layer import CommSpec, LayerSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import ParallelismStrategy, hybrid

BOTTOM_MLP = (512, 256, 128)
TOP_MLP = (1024, 512, 256, 1)
EMBEDDING_DIM = 128
NUM_TABLES = 26
DENSE_FEATURES = 13

#: Default hybrid split: tables sharded across the inter-package
#: dimensions, MLPs replicated (data-parallel) across local.
DLRM_HYBRID = hybrid(
    data_dims=(Dimension.LOCAL,),
    model_dims=(Dimension.VERTICAL, Dimension.HORIZONTAL),
)


def _mlp_layer(
    name: str,
    spec: LinearSpec,
    batch: int,
    model: SystolicArrayModel,
    bytes_per_element: int,
    local_update: float,
) -> LayerSpec:
    gemm = spec.gemm(batch)
    ig, wg = gemm.backward_shapes()
    return LayerSpec(
        name=name,
        forward_cycles=model.layer_cycles(gemm),
        input_grad_cycles=model.layer_cycles(ig),
        weight_grad_cycles=model.layer_cycles(wg),
        weight_grad_comm=CommSpec(
            CollectiveOp.ALL_REDUCE, float(spec.weight_count * bytes_per_element)
        ),
        local_update_cycles_per_kb=local_update,
    )


def dlrm(
    compute: ComputeConfig | SystolicArrayModel | None = None,
    minibatch: int = 256,
    strategy: ParallelismStrategy = DLRM_HYBRID,
    bytes_per_element: int = 4,
    local_update_cycles_per_kb: float = 1.0,
) -> DNNModel:
    """Build the DLRM-style workload with sharded embedding tables."""
    if compute is None:
        compute = ComputeConfig()
    if isinstance(compute, ComputeConfig):
        compute = SystolicArrayModel(compute)

    layers = []
    in_features = DENSE_FEATURES
    for i, width in enumerate(BOTTOM_MLP, start=1):
        layers.append(_mlp_layer(
            f"bottom_mlp{i}", LinearSpec(in_features, width), minibatch,
            compute, bytes_per_element, local_update_cycles_per_kb,
        ))
        in_features = width

    # Embedding exchange: every sample needs the pooled vectors of all
    # NUM_TABLES tables, which live on remote shards -> all-to-all of
    # minibatch * tables * dim elements in each direction.
    exchange_bytes = float(minibatch * NUM_TABLES * EMBEDDING_DIM * bytes_per_element)
    lookup_cycles = compute.layer_cycles(
        GemmShape(minibatch * NUM_TABLES, 1, EMBEDDING_DIM)
    )
    layers.append(LayerSpec(
        name="embedding_exchange",
        forward_cycles=lookup_cycles,
        input_grad_cycles=lookup_cycles,
        weight_grad_cycles=0.0,
        forward_comm=CommSpec(CollectiveOp.ALL_TO_ALL, exchange_bytes),
        input_grad_comm=CommSpec(CollectiveOp.ALL_TO_ALL, exchange_bytes),
        local_update_cycles_per_kb=local_update_cycles_per_kb,
    ))

    in_features = BOTTOM_MLP[-1] + NUM_TABLES * EMBEDDING_DIM
    for i, width in enumerate(TOP_MLP, start=1):
        layers.append(_mlp_layer(
            f"top_mlp{i}", LinearSpec(in_features, width), minibatch,
            compute, bytes_per_element, local_update_cycles_per_kb,
        ))
        in_features = width

    return DNNModel(
        name="dlrm",
        layers=tuple(layers),
        strategy=strategy,
        minibatch=minibatch,
    )
