"""ResNet-50 [16] as a data-parallel training workload (Secs. V-E/V-F).

The full v1.5 architecture: the 7x7 stem, four bottleneck stages
(3/4/6/3 blocks with 1x1-3x3-1x1 convolutions and projection shortcuts)
and the final classifier — 54 weighted layers.  Compute delays come from
the analytical systolic-array model; the only communication is the
per-layer weight-gradient all-reduce (Table I, data parallelism), sized
at the layer's parameter bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.types import CollectiveOp
from repro.compute.gemm import ConvSpec, GemmShape, LinearSpec
from repro.compute.systolic import SystolicArrayModel
from repro.config.parameters import ComputeConfig
from repro.workload.layer import CommSpec, LayerSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import DATA_PARALLEL

#: (mid_channels, out_channels, num_blocks, first_stride) per stage.
_STAGES = (
    (64, 256, 3, 1),
    (128, 512, 4, 2),
    (256, 1024, 6, 2),
    (512, 2048, 3, 2),
)

IMAGE_SIZE = 224
NUM_CLASSES = 1000


@dataclass(frozen=True)
class _ConvLayer:
    name: str
    spec: ConvSpec


def _architecture() -> list[_ConvLayer]:
    """The ordered list of weighted convolution layers."""
    layers = [_ConvLayer("conv1", ConvSpec(3, 64, kernel=7, stride=2,
                                           in_size=IMAGE_SIZE, padding=3))]
    size = layers[0].spec.out_size // 2  # 3x3/2 max-pool after the stem
    in_ch = 64
    for stage_idx, (mid, out, blocks, first_stride) in enumerate(_STAGES, start=2):
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            prefix = f"conv{stage_idx}_{block + 1}"
            layers.append(_ConvLayer(
                f"{prefix}_a", ConvSpec(in_ch, mid, kernel=1, stride=1, in_size=size)))
            layers.append(_ConvLayer(
                f"{prefix}_b", ConvSpec(mid, mid, kernel=3, stride=stride,
                                        in_size=size, padding=1)))
            out_size = layers[-1].spec.out_size
            layers.append(_ConvLayer(
                f"{prefix}_c", ConvSpec(mid, out, kernel=1, stride=1, in_size=out_size)))
            if block == 0:
                layers.append(_ConvLayer(
                    f"{prefix}_down", ConvSpec(in_ch, out, kernel=1, stride=stride,
                                               in_size=size)))
            in_ch = out
            size = out_size
    return layers


def _layer_from_gemm(
    name: str,
    gemm: GemmShape,
    weight_bytes: float,
    model: SystolicArrayModel,
    local_update_cycles_per_kb: float,
    io_bytes: float | None = None,
) -> LayerSpec:
    """Build a LayerSpec from one forward GEMM.  ``io_bytes`` is the real
    forward tensor traffic (in + weights + out); im2col-expanded GEMM
    operands would overcount convolution input reuse by the kernel area.
    The backward passes touch the same tensors (gradients in place of
    activations), so the same figure serves all three phases."""
    ig_gemm, wg_gemm = gemm.backward_shapes()
    return LayerSpec(
        name=name,
        forward_cycles=model.layer_cycles(gemm, io_bytes=io_bytes),
        input_grad_cycles=model.layer_cycles(ig_gemm, io_bytes=io_bytes),
        weight_grad_cycles=model.layer_cycles(wg_gemm, io_bytes=io_bytes),
        weight_grad_comm=CommSpec(CollectiveOp.ALL_REDUCE, weight_bytes),
        local_update_cycles_per_kb=local_update_cycles_per_kb,
    )


def _conv_io_bytes(spec: ConvSpec, batch: int, bytes_per_element: int) -> float:
    """Real forward DRAM traffic of a convolution: input + weights + output."""
    in_elems = batch * spec.in_channels * spec.in_size * spec.in_size
    out_elems = spec.activation_count(batch)
    return float((in_elems + spec.weight_count + out_elems) * bytes_per_element)


def resnet50(
    compute: ComputeConfig | SystolicArrayModel | None = None,
    minibatch: int = 32,
    bytes_per_element: int = 4,
    local_update_cycles_per_kb: float = 1.0,
) -> DNNModel:
    """Build the ResNet-50 data-parallel workload (Fig. 14 setup:
    local minibatch 32, weight-gradient all-reduce per layer)."""
    if compute is None:
        compute = ComputeConfig()
    if isinstance(compute, ComputeConfig):
        compute = SystolicArrayModel(compute)

    layers = []
    for conv in _architecture():
        layers.append(_layer_from_gemm(
            conv.name,
            conv.spec.gemm(minibatch),
            conv.spec.weight_count * bytes_per_element,
            compute,
            local_update_cycles_per_kb,
            io_bytes=_conv_io_bytes(conv.spec, minibatch, bytes_per_element),
        ))
    fc = LinearSpec(2048, NUM_CLASSES)
    layers.append(_layer_from_gemm(
        "fc", fc.gemm(minibatch), fc.weight_count * bytes_per_element,
        compute, local_update_cycles_per_kb,
    ))
    return DNNModel(
        name="resnet50",
        layers=tuple(layers),
        strategy=DATA_PARALLEL,
        minibatch=minibatch,
    )


def total_parameters() -> int:
    """Weighted-parameter count of the conv + fc layers (sanity check:
    ~23.5 M without batch-norm/bias terms)."""
    conv_params = sum(layer.spec.weight_count for layer in _architecture())
    return conv_params + LinearSpec(2048, NUM_CLASSES).weight_count
