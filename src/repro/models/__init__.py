"""Predefined DNN training workloads used in the paper's evaluation."""

from repro.models.dlrm import DLRM_HYBRID, dlrm
from repro.models.mlp import mlp
from repro.models.moe import moe_transformer
from repro.models.resnet50 import resnet50, total_parameters
from repro.models.transformer import transformer

__all__ = [
    "DLRM_HYBRID",
    "dlrm",
    "mlp",
    "moe_transformer",
    "resnet50",
    "total_parameters",
    "transformer",
]
