"""Simulation-as-a-service: the hardened ``astra-repro serve`` daemon.

The package splits along failure domains so each edge is testable in
isolation (docs/SERVICE.md):

* :mod:`repro.service.schema` — the strict request schema; everything a
  client can get wrong becomes a structured 400 before simulation.
* :mod:`repro.service.queue` — bounded priority admission with
  non-blocking backpressure (429 + Retry-After).
* :mod:`repro.service.jobs` — the job registry and in-flight
  deduplication by RunCache content key.
* :mod:`repro.service.progress` — watchdog progress-vector snapshots
  streamed to clients without perturbing the simulation.
* :mod:`repro.service.daemon` — the HTTP front end, supervised
  execution, journal-backed crash recovery, and graceful drain.
"""

from repro.service.daemon import (
    ServiceConfig,
    ServiceDaemon,
    SimulationService,
)
from repro.service.jobs import Job, JobState, JobStore
from repro.service.progress import ProgressWriter, read_progress
from repro.service.queue import (
    BoundedJobQueue,
    QueueClosedError,
    QueueFullError,
)
from repro.service.schema import (
    PAYLOAD_VERSION,
    PayloadError,
    SimulationPayload,
    build_payload_platform,
    lint_payload,
    parse_payload,
)

__all__ = [
    "PAYLOAD_VERSION",
    "BoundedJobQueue",
    "Job",
    "JobState",
    "JobStore",
    "PayloadError",
    "ProgressWriter",
    "QueueClosedError",
    "QueueFullError",
    "ServiceConfig",
    "ServiceDaemon",
    "SimulationPayload",
    "SimulationService",
    "build_payload_platform",
    "lint_payload",
    "parse_payload",
    "read_progress",
]
