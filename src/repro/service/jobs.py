"""Job registry for the simulation service.

Tracks every accepted request from admission to terminal state and
implements in-flight request coalescing: two clients submitting payloads
with the same RunCache content key while the first is still queued or
running share one :class:`Job` (and therefore one simulation) — the
second submit returns the first job's id with ``deduplicated: true``.
A *completed* key deliberately does not coalesce: a re-submit becomes a
fresh job that the supervised executor resolves instantly from the
journal or cache (zero re-simulation), keeping per-job metadata honest.

All host timestamps here are operational metadata (API responses,
drain diagnostics); none of them ever reaches simulated state.
"""

from __future__ import annotations

import enum
import itertools
import re
import threading
import time  # det: allow-file[wall-clock] service jobs carry host submission/completion times by design
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ReproError
from repro.service.schema import SimulationPayload


class JobState(enum.Enum):
    """Lifecycle of one service job."""

    QUEUED = "queued"
    RUNNING = "running"
    #: Completed with a result (fresh, cache, or journal replay).
    DONE = "done"
    #: Terminal failure: the point was quarantined by the supervisor
    #: (crash / deadline / poison) — carries the failure class + error.
    QUARANTINED = "quarantined"


#: States a job never leaves.
TERMINAL_STATES = frozenset({JobState.DONE, JobState.QUARANTINED})

_JOB_ID_RE = re.compile(r"^job-(\d+)-")


@dataclass
class Job:
    """One accepted simulation request."""

    job_id: str
    key: str
    payload: SimulationPayload
    priority: int
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Supervised attempts executed for this job (0 for replays).
    attempts: int = 0
    #: How many later submits coalesced onto this in-flight job.
    deduped_hits: int = 0
    from_journal: bool = False
    from_cache: bool = False
    #: Result headline for DONE jobs (duration, NPUs, breakdown).
    result: Optional[dict[str, Any]] = None
    failure_class: Optional[str] = None
    error: Optional[str] = None
    bundle_path: Optional[str] = None
    #: Where the executing worker writes progress snapshots.
    progress_path: Optional[str] = None
    #: Bumped on every state change (progress streaming watches it).
    version: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_payload: bool = True) -> dict[str, Any]:
        data: dict[str, Any] = {
            "job_id": self.job_id,
            "key": self.key,
            "state": self.state.value,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "deduplicated_hits": self.deduped_hits,
            "from_journal": self.from_journal,
            "from_cache": self.from_cache,
        }
        if include_payload:
            data["payload"] = self.payload.canonical()
        if self.result is not None:
            data["result"] = self.result
        if self.failure_class is not None:
            data["failure_class"] = self.failure_class
        if self.error is not None:
            data["error"] = self.error
        if self.bundle_path is not None:
            data["bundle_path"] = self.bundle_path
        return data


class JobStore:
    """Thread-safe job registry + in-flight coalescing index."""

    def __init__(self) -> None:
        self._lock = threading.Condition()
        self._jobs: dict[str, Job] = {}
        #: content key → job id, for QUEUED/RUNNING jobs only.
        self._active_by_key: dict[str, str] = {}
        self._seq = itertools.count(1)

    # -- admission ----------------------------------------------------------------

    def submit(self, payload: SimulationPayload, key: str,
               progress_path: Optional[str] = None) -> tuple[Job, bool]:
        """Register a request; returns ``(job, deduplicated)``.

        An in-flight job with the same content key absorbs the submit
        (``deduplicated=True``) — one simulation serves both clients.
        """
        with self._lock:
            active_id = self._active_by_key.get(key)
            if active_id is not None:
                job = self._jobs[active_id]
                job.deduped_hits += 1
                return job, True
            job = Job(job_id=self._new_id(key), key=key, payload=payload,
                      priority=payload.priority, progress_path=progress_path)
            self._jobs[job.job_id] = job
            self._active_by_key[key] = job.job_id
            return job, False

    def restore(self, job_id: str, payload: SimulationPayload, key: str,
                priority: int) -> Job:
        """Re-register a journal-replayed job under its original id."""
        with self._lock:
            match = _JOB_ID_RE.match(job_id)
            if match:
                # Keep fresh ids ahead of every restored one.
                floor = int(match.group(1))
                while next(self._seq) < floor:
                    pass
            if job_id in self._jobs:
                raise ReproError(f"duplicate journal job id {job_id}")
            job = Job(job_id=job_id, key=key, payload=payload,
                      priority=priority, from_journal=True)
            self._jobs[job_id] = job
            self._active_by_key[key] = job_id
            return job

    def _new_id(self, key: str) -> str:
        return f"job-{next(self._seq):06d}-{key[:12]}"

    # -- transitions --------------------------------------------------------------

    def mark_running(self, job: Job) -> None:
        with self._lock:
            job.state = JobState.RUNNING
            job.started_at = time.time()
            job.version += 1
            self._lock.notify_all()

    def finish(self, job: Job, state: JobState, *,
               result: Optional[dict[str, Any]] = None,
               attempts: int = 0, from_cache: bool = False,
               from_journal: bool = False,
               failure_class: Optional[str] = None,
               error: Optional[str] = None,
               bundle_path: Optional[str] = None) -> None:
        if state not in TERMINAL_STATES:
            raise ReproError(f"finish() needs a terminal state, got {state}")
        with self._lock:
            job.state = state
            job.finished_at = time.time()
            job.attempts = attempts
            job.result = result
            job.from_cache = from_cache
            job.from_journal = job.from_journal or from_journal
            job.failure_class = failure_class
            job.error = error
            job.bundle_path = bundle_path
            job.version += 1
            if self._active_by_key.get(job.key) == job.job_id:
                del self._active_by_key[job.key]
            self._lock.notify_all()

    # -- queries ------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every job, in admission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.job_id)

    def counts(self) -> dict[str, int]:
        with self._lock:
            by_state = dict.fromkeys((s.value for s in JobState), 0)
            deduped = 0
            for job in self._jobs.values():
                by_state[job.state.value] += 1
                deduped += job.deduped_hits
            by_state["total"] = len(self._jobs)
            by_state["deduplicated_submits"] = deduped
            return by_state

    def wait_for_change(self, job: Job, version: int,
                        timeout: float) -> int:
        """Block until ``job.version`` moves past ``version`` (or timeout);
        returns the current version.  Progress streaming's cheap wakeup."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while job.version == version:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._lock.wait(timeout=remaining):
                    break
            return job.version

    def forget(self, job: Job) -> None:
        """Roll back an admission the queue refused (429 path)."""
        with self._lock:
            self._jobs.pop(job.job_id, None)
            if self._active_by_key.get(job.key) == job.job_id:
                del self._active_by_key[job.key]
