"""The ``astra-repro serve`` daemon: simulation as a hardened service.

A stdlib-only HTTP daemon where every edge is defensive:

* **Admission** — request bodies are parsed into the strict
  :class:`~repro.service.schema.SimulationPayload` schema (unknown keys,
  bad enums, cross-parameter lint); anything invalid is a structured
  ``400`` before a single simulation cycle runs.
* **Backpressure** — accepted payloads enter a
  :class:`~repro.service.queue.BoundedJobQueue`; a full queue answers
  ``429 Too Many Requests`` with ``Retry-After`` instead of stalling the
  accept loop.  Identical in-flight payloads coalesce onto one job via
  the RunCache content key.
* **Supervised execution** — jobs run through
  :class:`~repro.parallel.supervisor.SupervisedExecutor`: per-job
  wall-clock deadlines, seeded-backoff retries, and poison-payload
  quarantine with diagnostic bundles.  A poison job answers its client
  with a structured error; the daemon keeps serving everyone else.
* **Crash-safe resume** — submissions and outcomes share one
  :class:`~repro.parallel.supervisor.OutcomeJournal` (``"job"`` records
  from the daemon, ``"outcome"`` records from the supervisor).  SIGTERM
  closes the queue and drains it; a SIGKILLed daemon restarts against
  the same state directory, replays the journal, completes finished jobs
  instantly, and re-enqueues unfinished ones — zero re-simulation of any
  completed point (the acceptance contract in ``docs/SERVICE.md``).
* **Observability** — ``/healthz`` (liveness), ``/readyz`` (admission
  readiness + counters), and per-job progress streaming that reuses the
  watchdog progress vector (``repro.service.progress``).

All wall-clock usage here is host-side operational plumbing (drain
polls, HTTP timeouts, Retry-After); simulated time never touches it.
"""

from __future__ import annotations

import functools
import json
import logging
import os
import signal
import threading
import time  # det: allow-file[wall-clock] daemon drain polls and HTTP timeouts are host-side by design
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.errors import EXIT_OK, EXIT_PARTIAL, ConfigError
from repro.parallel.cache import RunCache, payload_to_result
from repro.parallel.executor import RunPoint
from repro.parallel.supervisor import (
    OutcomeJournal,
    SupervisedExecutor,
    SupervisionPolicy,
)
from repro.resilience.bundles import read_bundle
from repro.service.jobs import Job, JobState, JobStore
from repro.service.progress import read_progress
from repro.service.queue import (
    BoundedJobQueue,
    QueueClosedError,
    QueueFullError,
)
from repro.service.schema import (
    PayloadError,
    build_payload_platform,
    parse_payload,
)

_log = logging.getLogger("repro.service")

#: Largest request body the daemon will read (a payload is ~300 bytes;
#: anything near this limit is abuse, not a simulation request).
MAX_BODY_BYTES = 64 * 1024

#: How often the progress stream emits a line while a job runs (host s).
STREAM_INTERVAL_S = 0.25


@dataclass
class ServiceConfig:
    """Operational knobs of one daemon instance.

    All durable state lives under ``state_dir`` (journal, run cache,
    quarantine bundles, progress spool) unless the individual paths are
    overridden — restarting against the same ``state_dir`` is what makes
    crash recovery work.
    """

    host: str = "127.0.0.1"
    port: int = 8421
    state_dir: str = "serve-state"
    queue_limit: int = 16
    retry_after_s: float = 1.0
    policy: SupervisionPolicy = field(default_factory=SupervisionPolicy)
    progress_every_events: int = 4096
    journal_path: Optional[str] = None
    cache_dir: Optional[str] = None
    quarantine_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ConfigError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if not self.state_dir and not (self.journal_path and self.cache_dir
                                       and self.quarantine_dir):
            raise ConfigError("serve needs a state_dir (or explicit "
                              "journal/cache/quarantine paths)")

    def resolved_journal(self) -> str:
        return self.journal_path or os.path.join(self.state_dir,
                                                 "journal.jsonl")

    def resolved_cache_dir(self) -> str:
        return self.cache_dir or os.path.join(self.state_dir, "cache")

    def resolved_quarantine_dir(self) -> str:
        return self.quarantine_dir or os.path.join(self.state_dir,
                                                   "quarantine")

    def resolved_progress_dir(self) -> str:
        return os.path.join(self.state_dir or os.path.dirname(
            self.resolved_journal()), "progress")


def _headline(result: Any) -> dict[str, Any]:
    """The result summary a job answer carries (full data is cached)."""
    return {
        "label": result.label,
        "op": result.op.value,
        "size_bytes": result.size_bytes,
        "duration_cycles": result.duration_cycles,
        "num_npus": result.num_npus,
    }


class SimulationService:
    """Queue + supervisor + journal behind the HTTP front end.

    Usable without HTTP (the unit tests drive ``submit``/``run_job``
    directly); :class:`ServiceDaemon` adds the socket.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.journal = OutcomeJournal(config.resolved_journal(),
                                      exclusive=True)
        try:
            self.cache = RunCache(config.resolved_cache_dir())
            self.store = JobStore()
            self.queue = BoundedJobQueue(config.queue_limit,
                                         retry_after_s=config.retry_after_s)
            self.executor = SupervisedExecutor(
                jobs=1, cache=self.cache, policy=config.policy,
                journal_path=self.journal.path,
                quarantine_dir=config.resolved_quarantine_dir())
            self._progress_dir = config.resolved_progress_dir()
            os.makedirs(self._progress_dir, exist_ok=True)
            self.started_at = time.time()
            self.draining = False
            self._worker: Optional[threading.Thread] = None
            self.resumed_jobs = 0
            self.replayed_done = 0
            self._replay_journal()
        except BaseException:
            self.journal.close()  # do not hold the lock on a failed boot
            raise

    # -- journal replay (crash recovery) ------------------------------------------

    def _replay_journal(self) -> None:
        """Rebuild the job table from a previous life's journal.

        ``"job"`` records re-register every admitted job under its
        original id; keys that already have an ``"outcome"`` record
        complete instantly (zero re-simulation), the rest re-enter the
        queue with ``force=True`` (they were admitted once already and
        must not be bounced by the restart-time limit).
        """
        outcomes = OutcomeJournal.load(self.journal.path)
        for record in OutcomeJournal.load_records(self.journal.path):
            if record.get("type") != "job":
                continue
            job_id, key = record.get("job_id"), record.get("key")
            if not job_id or not key:
                continue
            try:
                payload = parse_payload(record.get("payload") or {},
                                        lint=False)
            except PayloadError as exc:
                _log.warning("journal job %s has an unparseable payload "
                             "(%s); skipping it", job_id, exc)
                continue
            try:
                job = self.store.restore(job_id, payload, key,
                                         int(record.get("priority", 0)))
            except Exception as exc:
                _log.warning("journal job %s not restored: %s", job_id, exc)
                continue
            outcome = outcomes.get(key)
            if outcome is not None:
                self._finish_from_record(job, outcome)
                self.replayed_done += 1
            else:
                job.progress_path = self._progress_path(job.job_id)
                self.queue.put(job, priority=job.priority, force=True)
                self.resumed_jobs += 1

    def _finish_from_record(self, job: Job, record: dict[str, Any]) -> None:
        status = record.get("status")
        if status in ("ok", "retried") and record.get("payload"):
            self.store.finish(
                job, JobState.DONE,
                result=_headline(payload_to_result(record["payload"])),
                attempts=int(record.get("attempts", 0)), from_journal=True)
        else:
            self.store.finish(
                job, JobState.QUARANTINED,
                attempts=int(record.get("attempts", 0)),
                failure_class=record.get("failure_class"),
                error=record.get("error"), from_journal=True)

    # -- admission -----------------------------------------------------------------

    def submit(self, data: Any) -> tuple[Job, bool]:
        """Validate + admit one request; returns ``(job, deduplicated)``.

        Raises :class:`PayloadError` (→ 400), :class:`QueueFullError`
        (→ 429), or :class:`QueueClosedError` (→ 503).
        """
        payload = parse_payload(data)
        key = payload.content_key()
        job, deduped = self.store.submit(payload, key)
        if deduped:
            return job, True
        job.progress_path = self._progress_path(job.job_id)
        try:
            self.queue.put(job, priority=job.priority)
        except (QueueFullError, QueueClosedError):
            self.store.forget(job)
            raise
        # Journaled *after* admission: a job record with no outcome means
        # "accepted but unfinished", which is exactly what restart replay
        # re-enqueues.
        self.journal.append({
            "type": "job",
            "job_id": job.job_id,
            "key": key,
            "priority": job.priority,
            "payload": payload.canonical(),
        })
        return job, False

    def _progress_path(self, job_id: str) -> str:
        return os.path.join(self._progress_dir, f"{job_id}.json")

    # -- execution -----------------------------------------------------------------

    def run_job(self, job: Job) -> None:
        """Run one job through the supervised executor (worker thread).

        Every failure mode lands in a terminal job state; nothing a
        single payload does may take the worker loop down.
        """
        self.store.mark_running(job)
        point = RunPoint(
            builder=functools.partial(build_payload_platform,
                                      job.payload.canonical()),
            op=job.payload.op,
            size_bytes=job.payload.size_bytes,
            progress_path=job.progress_path,
            progress_every_events=self.config.progress_every_events,
        )
        try:
            outcome = self.executor.run_outcomes([point])[0]
        except Exception as exc:  # supervisor bug / on_poison="fail"
            _log.exception("job %s failed outside supervision", job.job_id)
            self.store.finish(job, JobState.QUARANTINED,
                              failure_class="error",
                              error=f"{type(exc).__name__}: {exc}")
            return
        if outcome.ok:
            self.store.finish(job, JobState.DONE,
                              result=_headline(outcome.result),
                              attempts=outcome.attempts,
                              from_cache=outcome.from_cache,
                              from_journal=outcome.from_journal)
        else:
            self.store.finish(job, JobState.QUARANTINED,
                              attempts=outcome.attempts,
                              failure_class=outcome.failure_class,
                              error=outcome.error,
                              bundle_path=outcome.bundle_path,
                              from_journal=outcome.from_journal)

    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get(timeout=0.2)
            if job is None:
                if self.queue.closed and not len(self.queue):
                    return
                continue
            self.run_job(job)

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        if self._worker is not None:
            return
        self._worker = threading.Thread(target=self._worker_loop,
                                        name="serve-worker", daemon=True)
        self._worker.start()

    def drain(self) -> int:
        """Stop admissions, finish every queued job, release the journal.

        Returns the exit-code contract for the daemon's lifetime:
        ``EXIT_OK`` if every job completed, ``EXIT_PARTIAL`` if any was
        quarantined.
        """
        self.draining = True
        self.queue.close()
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        self.executor.close()
        self.journal.close()
        counts = self.store.counts()
        return EXIT_PARTIAL if counts["quarantined"] else EXIT_OK

    # -- introspection -------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        counts = self.store.counts()
        return {
            "jobs": counts,
            "queue": {"depth": len(self.queue),
                      "limit": self.queue.limit,
                      "closed": self.queue.closed},
            "cache": {"hits": self.cache.stats.hits,
                      "misses": self.cache.stats.misses,
                      "corrupt": self.cache.stats.corrupt},
            "resume": {"resumed_jobs": self.resumed_jobs,
                       "replayed_done": self.replayed_done},
            "simulations_run": self.executor.simulations_run,
            "draining": self.draining,
        }


# -- the HTTP front end -------------------------------------------------------------


class _ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: SimulationService):
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _ServiceServer

    # -- plumbing -------------------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        _log.debug("%s - %s", self.address_string(), fmt % args)

    def _send_json(self, status: int, body: dict[str, Any],
                   headers: Optional[dict[str, str]] = None) -> None:
        data = (json.dumps(body, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    @property
    def service(self) -> SimulationService:
        return self.server.service

    # -- routes ---------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler contract)
        try:
            self._route_get()
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to salvage
        except Exception as exc:  # defensive: a handler bug is a 500, not a crash
            _log.exception("GET %s failed", self.path)
            self._best_effort_error(exc)

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route_post()
        except BrokenPipeError:
            pass
        except Exception as exc:
            _log.exception("POST %s failed", self.path)
            self._best_effort_error(exc)

    def _best_effort_error(self, exc: Exception) -> None:
        try:
            self._send_json(500, {"error": "internal",
                                  "message": f"{type(exc).__name__}: {exc}"})
        except OSError:
            pass

    def _route_get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif path == "/readyz":
            service = self.service
            if service.draining or service.queue.closed:
                self._send_json(503, {"status": "draining",
                                      **service.stats()})
            else:
                self._send_json(200, {"status": "ready", **service.stats()})
        elif path == "/v1/jobs":
            jobs = [job.to_dict(include_payload=False)
                    for job in self.service.store.jobs()]
            self._send_json(200, {"jobs": jobs})
        elif path.startswith("/v1/jobs/") and path.endswith("/progress"):
            self._stream_progress(path[len("/v1/jobs/"):-len("/progress")])
        elif path.startswith("/v1/jobs/"):
            job = self.service.store.get(path[len("/v1/jobs/"):])
            if job is None:
                self._send_json(404, {"error": "unknown-job"})
            else:
                body = job.to_dict()
                if job.bundle_path:
                    # A remote client cannot open the server-local
                    # bundle_path; inline the diagnostic bundle itself.
                    body["bundle"] = read_bundle(job.bundle_path)
                self._send_json(200, body)
        else:
            self._send_json(404, {"error": "unknown-path", "path": path})

    def _route_post(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/jobs":
            self._send_json(404, {"error": "unknown-path", "path": path})
            return
        body = self._read_body()
        if body is None:
            return  # error already sent
        try:
            data = json.loads(body)
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": "invalid-json",
                                  "message": str(exc)})
            return
        try:
            job, deduped = self.service.submit(data)
        except PayloadError as exc:
            self._send_json(400, exc.to_dict())
            return
        except QueueFullError as exc:
            self._send_json(
                429, {"error": "queue-full", "limit": exc.limit,
                      "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": f"{max(1, round(exc.retry_after_s))}"})
            return
        except QueueClosedError:
            self._send_json(503, {"error": "draining"})
            return
        self._send_json(202 if not job.terminal else 200, {
            "job_id": job.job_id,
            "key": job.key,
            "state": job.state.value,
            "deduplicated": deduped,
        })

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_json(411, {"error": "length-required"})
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(413, {"error": "payload-too-large",
                                  "limit_bytes": MAX_BODY_BYTES})
            return None
        return self.rfile.read(length)

    # -- progress streaming ----------------------------------------------------------

    def _stream_progress(self, job_id: str) -> None:
        """Chunked ndjson stream of a job's progress until it finishes.

        Each line carries the job state plus the latest watchdog
        progress-vector snapshot the worker spooled; the final line has
        the terminal state.  The stream reuses the daemon's existing
        machinery — it never touches the running simulation.
        """
        job = self.service.store.get(job_id)
        if job is None:
            self._send_json(404, {"error": "unknown-job"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        version = -1
        while True:
            terminal = job.terminal
            line = {
                "job_id": job.job_id,
                "state": job.state.value,
                "progress": read_progress(job.progress_path),
            }
            if terminal and job.result is not None:
                line["result"] = job.result
            if terminal and job.error is not None:
                line["error"] = job.error
            self._write_chunk(json.dumps(line, sort_keys=True) + "\n")
            if terminal:
                break
            version = self.service.store.wait_for_change(
                job, version, timeout=STREAM_INTERVAL_S)
        self._write_chunk("")

    def _write_chunk(self, text: str) -> None:
        data = text.encode()
        self.wfile.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
        self.wfile.flush()


class ServiceDaemon:
    """The bound HTTP server around a :class:`SimulationService`."""

    def __init__(self, config: ServiceConfig):
        self.service = SimulationService(config)
        try:
            self.httpd = _ServiceServer((config.host, config.port),
                                        self.service)
        except BaseException:
            self.service.journal.close()
            raise
        self._stop = threading.Event()
        self._http_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — authoritative when port 0 was asked."""
        return self.httpd.server_address[:2]

    def start(self) -> None:
        self.service.start()
        self._http_thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-http",
            kwargs={"poll_interval": 0.1}, daemon=True)
        self._http_thread.start()

    def request_stop(self, *_args: Any) -> None:
        """Signal-handler-safe stop request (SIGTERM/SIGINT)."""
        self._stop.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._stop.wait(timeout=timeout)

    def stop(self) -> int:
        """Graceful drain: close admissions, finish queued jobs, unbind."""
        self._stop.set()
        code = self.service.drain()
        self.httpd.shutdown()
        if self._http_thread is not None:
            self._http_thread.join()
            self._http_thread = None
        self.httpd.server_close()
        return code

    def serve_until_signal(self) -> int:
        """CLI entry: serve until SIGTERM/SIGINT, then drain gracefully."""
        signal.signal(signal.SIGTERM, self.request_stop)
        signal.signal(signal.SIGINT, self.request_stop)
        self.start()
        host, port = self.address
        _log.info("astra-repro serve listening on %s:%d", host, port)
        self.wait()
        return self.stop()
