"""Progress snapshots for in-flight service jobs.

Reuses the watchdog's *progress vector* (PR 4,
:meth:`repro.system.sys_layer.System.progress_vector`): the same tuple
the stall detector samples — deliveries, chunk and set completions, the
things that only change when the simulation makes real progress — is
periodically written to a per-job file by the executing worker, and the
daemon streams it to clients watching ``GET /v1/jobs/<id>/progress``.

The writer is installed through the event queue's ``watcher`` hook, the
one observation point the engine exposes (watchers observe, they never
schedule), so a job with progress streaming on is cycle-identical to one
without.  Snapshots are written atomically (temp file + rename) so a
reader never sees a torn JSON document, and write failures are swallowed
— progress is best-effort telemetry and must never fail a simulation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional


class ProgressWriter:
    """EventQueue watcher persisting progress-vector snapshots to a file.

    Installed by :func:`repro.parallel.executor._execute_point` when a
    :class:`~repro.parallel.executor.RunPoint` carries ``progress_path``.
    ``bind`` attaches the freshly built system (the vector lives there),
    ``on_event`` samples every ``every_events`` executed events, and
    ``finish`` writes the terminal snapshot.
    """

    def __init__(self, path: str, every_events: int = 4096):
        self.path = path
        self.every_events = max(1, int(every_events))
        self._system = None
        self._next_at = self.every_events

    def bind(self, system) -> None:
        """Attach the built system and write the initial snapshot."""
        self._system = system
        self._write(done=False)

    def on_event(self, queue) -> None:
        if queue.events_processed >= self._next_at:
            self._next_at = queue.events_processed + self.every_events
            self._write(done=False)

    def finish(self, result: Any = None) -> None:
        """Write the terminal snapshot (with the result headline)."""
        self._write(done=True, result=result)

    def _write(self, done: bool, result: Any = None) -> None:
        system = self._system
        if system is None:
            return
        snapshot = {
            "time": system.events.now,
            "events_processed": system.events.events_processed,
            "progress_vector": list(system.progress_vector()),
            "done": done,
        }
        if result is not None:
            snapshot["duration_cycles"] = result.duration_cycles
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w") as f:
                json.dump(snapshot, f, sort_keys=True)
                f.write("\n")
            os.replace(tmp, self.path)
        except OSError:
            pass  # best-effort telemetry: never fail the simulation


def read_progress(path: Optional[str]) -> Optional[dict[str, Any]]:
    """The last complete snapshot at ``path``, or ``None``.

    Torn/absent files read as ``None`` — the writer's atomic rename makes
    that a transient state, and the streaming endpoint just waits for the
    next snapshot.
    """
    if not path:
        return None
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None
