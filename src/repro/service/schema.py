"""The validated request schema of the simulation service.

Every request the ``astra-repro serve`` daemon accepts is a
:class:`SimulationPayload`: a strict, typed contract over the Table III
design-point parameters.  Validation happens entirely *before* any
engine state is touched, in two passes:

1. **Structural** — the JSON document must be an object with known keys
   only (unknown keys are rejected with a typo hint, never ignored:
   a client that misspells ``algorithm`` must not silently simulate the
   default), every field type- and enum-checked with the allowed values
   listed in the error, every numeric field range-checked.
2. **Cross-parameter** — the payload is assembled into the same
   :class:`~repro.harness.runners.PlatformSpec` the CLI builds and
   routed through the existing static lint
   (:func:`repro.sanitize.static_lint.lint_platform`), so a payload that
   passes field checks but describes an inconsistent platform (shape /
   topology mismatch, bandwidth nonsense) is rejected with the same
   parameter-anchored findings ``astra-repro lint`` reports.

A rejected payload raises :class:`PayloadError` carrying the full list
of structured field errors — the daemon serializes it straight into the
400 response body.  ``astra-repro lint payload.json`` works on payload
documents too: :func:`repro.sanitize.static_lint.lint_run_spec` routes
documents with ``op`` + ``size_mb`` here.

Validated payloads are canonical: :meth:`SimulationPayload.canonical`
round-trips through :func:`parse_payload`, and
:meth:`SimulationPayload.content_key` is the RunCache content key — the
daemon's dedupe, journal and cache all share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.collectives.types import CollectiveOp
from repro.config.parameters import (
    AllToAllShape,
    CollectiveAlgorithm,
    SchedulingPolicy,
    TopologyKind,
    TorusShape,
)
from repro.config.units import MB
from repro.errors import ConfigError, ReproError
from repro.sanitize.findings import Finding, Severity

#: Payload contract version; requests declaring another version are
#: rejected up front instead of being misread.
PAYLOAD_VERSION = 1

#: The collective-op tokens clients may request (CLI-compatible names).
OP_NAMES = {
    "allreduce": CollectiveOp.ALL_REDUCE,
    "allgather": CollectiveOp.ALL_GATHER,
    "reducescatter": CollectiveOp.REDUCE_SCATTER,
    "alltoall": CollectiveOp.ALL_TO_ALL,
}

#: Every key a payload document may carry.  Anything else is an error.
PAYLOAD_KEYS = {
    "schema", "op", "size_mb", "topology", "shape", "algorithm",
    "scheduling_policy", "symmetric", "local_rings", "horizontal_rings",
    "vertical_rings", "global_switches", "preferred_set_splits",
    "compute_scale", "priority",
}

#: Payload size ceiling: the service refuses to queue a single point
#: larger than this (a 32 MB collective is the biggest paper sweep size;
#: 1 GB is already an hours-long simulation).
MAX_SIZE_MB = 1024.0

#: Priorities are a small fixed band so clients cannot starve each other
#: with unbounded values.
MAX_PRIORITY = 9


class PayloadError(ConfigError):
    """A rejected simulation payload, with structured per-field errors.

    ``errors`` is a list of ``{"field", "code", "message"}`` dicts — the
    daemon returns it verbatim in the 400 response body.
    """

    def __init__(self, errors: list[dict[str, str]]):
        self.errors = list(errors)
        parts = [f"{e['field'] or 'payload'}: {e['message']}"
                 for e in self.errors[:3]]
        if len(self.errors) > 3:
            parts.append(f"... and {len(self.errors) - 3} more")
        super().__init__("invalid simulation payload: " + "; ".join(parts))

    def to_dict(self) -> dict[str, Any]:
        return {"error": "invalid-payload", "errors": self.errors}


@dataclass(frozen=True)
class SimulationPayload:
    """One validated simulation request (a pure, cacheable design point).

    Defaults mirror the ``astra-repro collective`` CLI defaults, so the
    minimal payload is just ``{"op": ..., "size_mb": ...}``.
    """

    op: CollectiveOp
    size_mb: float
    topology: TopologyKind = TopologyKind.TORUS
    shape: tuple[int, ...] = (2, 4, 4)
    algorithm: CollectiveAlgorithm = CollectiveAlgorithm.BASELINE
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.LIFO
    symmetric: bool = False
    local_rings: int = 2
    horizontal_rings: int = 1
    vertical_rings: int = 1
    global_switches: int = 2
    preferred_set_splits: int = 16
    compute_scale: float = 1.0
    #: Scheduling priority in the service queue (higher first, 0-9).
    #: Deliberately *not* part of the content key: priority affects when
    #: a point runs, never what it computes.
    priority: int = 0

    @property
    def size_bytes(self) -> float:
        return self.size_mb * MB

    @property
    def op_name(self) -> str:
        return next(name for name, op in OP_NAMES.items() if op is self.op)

    def canonical(self) -> dict[str, Any]:
        """The canonical JSON form; round-trips through
        :func:`parse_payload` and is what the daemon journals."""
        return {
            "schema": PAYLOAD_VERSION,
            "op": self.op_name,
            "size_mb": float(self.size_mb),
            "topology": self.topology.value,
            "shape": list(self.shape),
            "algorithm": self.algorithm.value,
            "scheduling_policy": self.scheduling_policy.value,
            "symmetric": self.symmetric,
            "local_rings": self.local_rings,
            "horizontal_rings": self.horizontal_rings,
            "vertical_rings": self.vertical_rings,
            "global_switches": self.global_switches,
            "preferred_set_splits": self.preferred_set_splits,
            "compute_scale": self.compute_scale,
            "priority": self.priority,
        }

    def platform_spec(self):
        """The :class:`~repro.harness.runners.PlatformSpec` this payload
        describes — the exact spec the CLI would build for the same
        flags."""
        from repro.harness.runners import alltoall_platform, torus_platform

        if self.topology is TopologyKind.TORUS:
            return torus_platform(
                TorusShape(*self.shape),
                algorithm=self.algorithm,
                scheduling_policy=self.scheduling_policy,
                symmetric=self.symmetric,
                local_rings=self.local_rings,
                horizontal_rings=self.horizontal_rings,
                vertical_rings=self.vertical_rings,
                compute_scale=self.compute_scale,
                preferred_set_splits=self.preferred_set_splits,
            )
        return alltoall_platform(
            AllToAllShape(*self.shape),
            algorithm=self.algorithm,
            scheduling_policy=self.scheduling_policy,
            symmetric=self.symmetric,
            local_rings=self.local_rings,
            global_switches=self.global_switches,
            preferred_set_splits=self.preferred_set_splits,
        )

    def content_key(self) -> str:
        """The RunCache content key of this point.

        Payloads are pure by construction (no faults, no resilience, no
        transport), so the key always exists; two payloads share it iff
        a simulation cannot tell them apart.  The daemon coalesces
        identical in-flight requests on it, the journal records outcomes
        under it, and the cache serves repeats from it.
        """
        from repro.parallel.cache import collective_cache_key

        key = collective_cache_key(self.platform_spec(), self.op,
                                   self.size_bytes)
        if key is None:  # pragma: no cover - payloads are pure by schema
            raise ReproError("validated payload was not cacheable")
        return key


def build_payload_platform(canonical: dict[str, Any]):
    """Module-level platform builder for supervised RunPoints.

    Picklable (unlike the CLI's argparse closure), so service jobs run
    crash-isolated in worker slots.  Skips the lint pass: the canonical
    dict comes from an already-validated payload.
    """
    return parse_payload(canonical, lint=False).platform_spec()


# -- validation --------------------------------------------------------------------


def parse_payload(data: Any, lint: bool = True) -> SimulationPayload:
    """Validate ``data`` into a :class:`SimulationPayload` or raise
    :class:`PayloadError` with every field error found (not just the
    first).  ``lint=False`` skips the cross-parameter static-lint pass
    (used when re-parsing the daemon's own journaled canonical forms).
    """
    errors: list[dict[str, str]] = []

    def err(field: str, code: str, message: str) -> None:
        errors.append({"field": field, "code": code, "message": message})

    if not isinstance(data, dict):
        raise PayloadError([{
            "field": "", "code": "malformed-payload",
            "message": f"expected a JSON object, got {type(data).__name__}",
        }])

    for key in sorted(data):
        if key not in PAYLOAD_KEYS:
            hint = _closest(key)
            suffix = f" (did you mean {hint!r}?)" if hint else ""
            err(key, "unknown-parameter",
                f"unknown payload parameter{suffix}; allowed: "
                + ", ".join(sorted(PAYLOAD_KEYS)))

    version = data.get("schema", PAYLOAD_VERSION)
    if version != PAYLOAD_VERSION:
        err("schema", "unsupported-schema",
            f"payload schema {version!r} is not supported; this service "
            f"speaks schema {PAYLOAD_VERSION}")

    op = _parse_enum_token(data, "op", OP_NAMES, err, required=True)
    size_mb = _parse_number(data, "size_mb", err, required=True,
                            minimum_exclusive=0.0, maximum=MAX_SIZE_MB)
    topology = _parse_enum(data, "topology", TopologyKind, err,
                           default=TopologyKind.TORUS)
    algorithm = _parse_enum(data, "algorithm", CollectiveAlgorithm, err,
                            default=CollectiveAlgorithm.BASELINE)
    policy = _parse_enum(data, "scheduling_policy", SchedulingPolicy, err,
                         default=SchedulingPolicy.LIFO)
    symmetric = _parse_bool(data, "symmetric", err, default=False)
    ints = {
        name: _parse_int(data, name, err, default=default, minimum=1)
        for name, default in (("local_rings", 2), ("horizontal_rings", 1),
                              ("vertical_rings", 1), ("global_switches", 2),
                              ("preferred_set_splits", 16))
    }
    compute_scale = _parse_number(data, "compute_scale", err, default=1.0,
                                  minimum_exclusive=0.0)
    priority = _parse_int(data, "priority", err, default=0, minimum=0,
                          maximum=MAX_PRIORITY)
    shape = _parse_shape(data.get("shape"), topology, err)

    if errors:
        raise PayloadError(errors)

    payload = SimulationPayload(
        op=op, size_mb=float(size_mb), topology=topology, shape=shape,
        algorithm=algorithm, scheduling_policy=policy, symmetric=symmetric,
        compute_scale=float(compute_scale), priority=priority, **ints)

    if lint:
        _lint_platform(payload, err)
        if errors:
            raise PayloadError(errors)
    return payload


def lint_payload(data: Any, source: str = "") -> list[Finding]:
    """Static-lint entry: payload errors as :class:`Finding` records.

    Routed from :func:`repro.sanitize.static_lint.lint_run_spec` so
    ``astra-repro lint payload.json`` checks service payload documents
    with the same tooling as run specs.
    """
    try:
        parse_payload(data)
    except PayloadError as exc:
        return [Finding(Severity.ERROR, e["code"], e["field"], e["message"],
                        source=source)
                for e in exc.errors]
    return []


def _lint_platform(payload: SimulationPayload, err) -> None:
    """Cross-parameter pass: build the spec, route through static lint."""
    from repro.sanitize.static_lint import lint_platform

    try:
        spec = payload.platform_spec()
    except ReproError as exc:
        err("", "platform-construction", str(exc))
        return
    except (TypeError, ValueError) as exc:
        err("shape", "platform-construction", str(exc))
        return
    report = lint_platform(spec, source="payload")
    for finding in report.findings:
        if finding.severity is Severity.ERROR:
            err(finding.param, finding.code, finding.message)


def _closest(key: str) -> Optional[str]:
    candidates = [k for k in PAYLOAD_KEYS
                  if k.startswith(key[:4]) or k.endswith(key[-4:])]
    return min(candidates, key=len) if candidates else None


def _parse_enum_token(data, field, names, err, required=False, default=None):
    value = data.get(field)
    if value is None:
        if required:
            err(field, "missing-parameter",
                "required; one of " + ", ".join(sorted(names)))
        return default
    if isinstance(value, str) and value in names:
        return names[value]
    err(field, "bad-enum-value",
        f"got {value!r}; allowed values: " + ", ".join(sorted(names)))
    return default


def _parse_enum(data, field, enum_cls, err, default):
    value = data.get(field)
    if value is None:
        return default
    try:
        if isinstance(value, str):
            return enum_cls(value)
    except ValueError:
        pass
    allowed = ", ".join(member.value for member in enum_cls)
    err(field, "bad-enum-value", f"got {value!r}; allowed values: {allowed}")
    return default


def _parse_bool(data, field, err, default):
    value = data.get(field)
    if value is None:
        return default
    if isinstance(value, bool):
        return value
    err(field, "bad-type", f"must be true or false, got {value!r}")
    return default


def _parse_number(data, field, err, required=False, default=None,
                  minimum_exclusive=None, maximum=None):
    value = data.get(field)
    if value is None:
        if required:
            err(field, "missing-parameter", "required; a number")
        return default
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        err(field, "bad-type", f"must be a number, got {value!r}")
        return default
    if minimum_exclusive is not None and value <= minimum_exclusive:
        err(field, "out-of-range",
            f"must be > {minimum_exclusive:g}, got {value!r}")
        return default
    if maximum is not None and value > maximum:
        err(field, "out-of-range", f"must be <= {maximum:g}, got {value!r}")
        return default
    return value


def _parse_int(data, field, err, default, minimum=None, maximum=None):
    value = data.get(field)
    if value is None:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        err(field, "bad-type", f"must be an integer, got {value!r}")
        return default
    if minimum is not None and value < minimum:
        err(field, "out-of-range", f"must be >= {minimum}, got {value}")
        return default
    if maximum is not None and value > maximum:
        err(field, "out-of-range", f"must be <= {maximum}, got {value}")
        return default
    return value


def _parse_shape(value, topology, err) -> tuple[int, ...]:
    want = 3 if topology is TopologyKind.TORUS else 2
    fallback = (2, 4, 4) if want == 3 else (4, 16)
    if value is None:
        return fallback
    if isinstance(value, str):
        try:
            dims = tuple(int(tok) for tok in value.lower().split("x"))
        except ValueError:
            err("shape", "bad-shape",
                f"bad shape {value!r}; expected e.g. "
                f"{'2x4x4' if want == 3 else '4x16'}")
            return fallback
    elif (isinstance(value, (list, tuple)) and value
          and all(isinstance(d, int) and not isinstance(d, bool)
                  for d in value)):
        dims = tuple(value)
    else:
        err("shape", "bad-type",
            f"must be a 'MxNxK' string or a list of integers, got {value!r}")
        return fallback
    if len(dims) != want:
        err("shape", "bad-shape",
            f"{topology.value} shapes have {want} dimensions, got "
            f"{len(dims)} in {value!r}")
        return fallback
    if any(d < 1 for d in dims):
        err("shape", "out-of-range",
            f"shape dimensions must be >= 1, got {value!r}")
        return fallback
    return dims
