"""Bounded priority job queue with backpressure.

The service's admission control: a fixed-capacity priority queue whose
``put`` *never blocks* — a full queue raises :class:`QueueFullError`
immediately, which the HTTP layer translates into ``429 Too Many
Requests`` with a ``Retry-After`` header.  Backpressure surfaces to the
client that caused it instead of stalling the accept loop (and with it
every other client's health checks).

Ordering: higher ``priority`` first; FIFO within a priority band (the
admission sequence number is the tiebreak), so equal-priority jobs can
never starve each other and the drain order of a SIGTERM'd daemon is
deterministic given the admission order.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Optional

from repro.errors import ConfigError, ReproError


class QueueFullError(ReproError):
    """The bounded queue rejected an admission (HTTP 429 material)."""

    def __init__(self, limit: int, retry_after_s: float):
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(
            f"job queue is full ({limit} queued jobs); retry in "
            f"{retry_after_s:g}s")


class QueueClosedError(ReproError):
    """``put`` after ``close`` — the daemon is draining (HTTP 503)."""


class BoundedJobQueue:
    """Thread-safe bounded priority queue (see the module docstring).

    >>> q = BoundedJobQueue(limit=2)
    >>> q.put("low", priority=0); q.put("high", priority=9)
    >>> q.get(), q.get()
    ('high', 'low')
    """

    def __init__(self, limit: int, retry_after_s: float = 1.0):
        if limit < 1:
            raise ConfigError(f"queue limit must be >= 1, got {limit}")
        if retry_after_s <= 0:
            raise ConfigError(
                f"retry_after_s must be positive, got {retry_after_s}")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def put(self, job: Any, priority: int = 0, force: bool = False) -> None:
        """Admit ``job``; raises :class:`QueueFullError` at capacity.

        ``force`` bypasses the capacity check (never the closed check) —
        used only for journal-resumed jobs on daemon restart, which were
        already admitted in a previous life and must not be bounced by a
        smaller restart-time limit.
        """
        with self._cond:
            if self._closed:
                raise QueueClosedError(
                    "job queue is closed (daemon is draining)")
            if not force and len(self._heap) >= self.limit:
                raise QueueFullError(self.limit, self.retry_after_s)
            heapq.heappush(self._heap, (-priority, next(self._seq), job))
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Highest-priority job, blocking up to ``timeout``; ``None`` on
        timeout or when the queue is closed and empty."""
        with self._cond:
            while not self._heap:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Refuse further admissions and wake blocked getters; queued
        jobs stay and drain through ``get``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def snapshot(self) -> list[Any]:
        """Queued jobs in drain order (diagnostics only)."""
        with self._cond:
            return [entry[2] for entry in sorted(self._heap)]
