"""Topology dimension names shared by the physical and logical layers."""

from __future__ import annotations

import enum


class Dimension(enum.Enum):
    """Topology dimensions of the hierarchical fabrics.

    ``LOCAL`` is the intra-package dimension (fast NAM links); ``VERTICAL``
    and ``HORIZONTAL`` are inter-package ring dimensions of the torus;
    ``ALLTOALL`` is the switch-based inter-package dimension of the
    hierarchical alltoall topology.  Collective phases traverse dimensions
    in the order local -> vertical -> horizontal (Sec. III-D).

    ``FOURTH``/``FIFTH`` extend the torus to the 4D/5D shapes the paper
    names as future work; ``SCALEOUT`` is an outermost dimension over
    scale-out (Ethernet/InfiniBand-class) links, the paper's planned
    scale-out extension.  They traverse after the scale-up dimensions.
    """

    LOCAL = "local"
    VERTICAL = "vertical"
    HORIZONTAL = "horizontal"
    FOURTH = "fourth"
    FIFTH = "fifth"
    ALLTOALL = "alltoall"
    SCALEOUT = "scaleout"

    def __str__(self) -> str:
        return self.value


#: Collective traversal order: innermost (fastest links) first, so
#: reduce-scatter shrinks data before it reaches the slowest dimension.
TRAVERSAL_ORDER = (
    Dimension.LOCAL,
    Dimension.VERTICAL,
    Dimension.HORIZONTAL,
    Dimension.FOURTH,
    Dimension.FIFTH,
    Dimension.ALLTOALL,
    Dimension.SCALEOUT,
)
