"""Supervised sweep execution: crash isolation, deadlines, quarantine.

A multi-hour co-design campaign (fig harness batch, chaos campaign,
``astra-repro search``) is only as robust as its weakest design point: a
single hung simulation or a worker killed by the OOM reaper must not
abort the batch and discard every completed result.  This module wraps
:class:`~repro.parallel.executor.ParallelExecutor` with a supervision
layer that keeps the batch alive:

* **Crash isolation** — every point runs in its own single-worker
  process slot, so a worker death (``BrokenProcessPool``) is attributed
  to exactly one point.  The slot's pool is rebuilt and the point is
  retried under a seeded-backoff retry budget; the other slots never
  notice.
* **Deadlines** — a per-point wall-clock deadline reaps points that hang
  (the slot worker is SIGKILLed and the point charged a timeout
  attempt), and an optional event-count budget bounds runaway
  simulations inside the engine itself.
* **Poison-point quarantine** — a point that keeps failing is recorded
  in a structured quarantine report (key, attempts, failure class, last
  traceback, diagnostic bundle in the watchdog JSON format) and the
  batch continues; ``on_poison="fail"`` aborts instead.
* **Typed partial results** — consumers receive
  :class:`PointOutcome` (ok / retried / timeout / crashed / failed /
  quarantined) instead of bare results, so sweeps and figures render
  explicit gaps, and an append-only JSONL :class:`OutcomeJournal` lets
  an interrupted campaign resume past completed *and* quarantined
  points without re-simulating either.

Determinism contract: supervision never touches simulated state.  A
retried-then-succeeded point is bit-identical to a clean run — the
seeded backoff only schedules *host* wall-clock sleeps, and every
attempt executes the same pure ``_execute_point`` the plain executor
uses (gated by the cycle-identity asserts in
``tests/parallel/test_supervisor.py`` and
``benchmarks/bench_resilience_overhead.py``).

Exit-code contract (``docs/SUPERVISION.md``): 0 — every point ok;
1 — partial (at least one point quarantined); 2 — configuration error.
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import signal
import time  # det: allow-file[wall-clock] supervision enforces host wall-clock deadlines by design
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from random import Random
from typing import Any, Callable, Optional, Sequence

from repro.errors import (
    EXIT_OK,
    EXIT_PARTIAL,
    ConfigError,
    ReproError,
    SimulationError,
)
from repro.parallel.cache import payload_to_result, result_to_payload
from repro.parallel.executor import (
    ParallelExecutor,
    RunPoint,
    _execute_point,
    _pickle_failure,
)

#: Failure classes a supervised attempt can be charged with.
FAILURE_CLASSES = ("timeout", "crash", "event-budget", "error")

#: Journal format version; records with another version are ignored.
JOURNAL_SCHEMA = 1


class PointStatus(enum.Enum):
    """How one supervised point ended."""

    #: Completed on the first attempt (or served from cache/journal).
    OK = "ok"
    #: Completed after at least one failed attempt — result is
    #: bit-identical to a clean run (determinism contract).
    RETRIED = "retried"
    #: Exhausted its retry budget on wall-clock deadline overruns.
    TIMEOUT = "timeout"
    #: Exhausted its retry budget on worker deaths (BrokenProcessPool).
    CRASHED = "crashed"
    #: Exhausted its retry budget on in-simulation errors.
    FAILED = "failed"
    #: Skipped without running: a resumed journal had already
    #: quarantined this point.
    QUARANTINED = "quarantined"


#: Statuses that carry a usable result.
_OK_STATUSES = frozenset({PointStatus.OK, PointStatus.RETRIED})
#: Terminal-failure statuses (the point is in quarantine).
_POISON_STATUSES = frozenset({PointStatus.TIMEOUT, PointStatus.CRASHED,
                              PointStatus.FAILED, PointStatus.QUARANTINED})


class PoisonPointError(ReproError):
    """A point exhausted its retry budget under ``on_poison="fail"``."""


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervision layer (all host-side; none simulated).

    >>> SupervisionPolicy(point_timeout_s=30.0).on_poison
    'quarantine'
    """

    #: Wall-clock deadline per attempt; ``None`` disables reaping.
    point_timeout_s: Optional[float] = None
    #: Engine-level event budget per attempt (tightens ``max_events``).
    point_event_budget: Optional[int] = None
    #: Failed attempts re-run up to this many times (total attempts =
    #: ``max_retries + 1``) before the point is quarantined.
    max_retries: int = 2
    #: Seeded exponential backoff between retries (host sleep only).
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    #: Seed of the backoff jitter stream (never touches simulation).
    seed: int = 2020
    #: ``"quarantine"`` records the poison point and continues the
    #: batch; ``"fail"`` raises :class:`PoisonPointError`.
    on_poison: str = "quarantine"
    #: Supervision loop tick while waiting on in-flight points.
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ConfigError(
                f"point_timeout_s must be positive, got {self.point_timeout_s}")
        if self.point_event_budget is not None and self.point_event_budget < 1:
            raise ConfigError(
                f"point_event_budget must be >= 1, got {self.point_event_budget}")
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigError("backoff bounds must be >= 0")
        if self.backoff_factor < 1:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.on_poison not in ("quarantine", "fail"):
            raise ConfigError(
                f"on_poison must be 'quarantine' or 'fail', got {self.on_poison!r}")
        if self.poll_interval_s <= 0:
            raise ConfigError(
                f"poll_interval_s must be positive, got {self.poll_interval_s}")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (>= 1).

        Seeded from ``(seed, key, attempt)`` so a campaign's retry
        timing is reproducible; the jitter spreads concurrent retries.
        """
        rng = Random(f"{self.seed}|{key}|{attempt}")
        base = self.backoff_base_s * (self.backoff_factor ** (attempt - 1))
        return min(self.backoff_max_s, base * (0.5 + rng.random()))


@dataclass
class PointOutcome:
    """Typed result of one supervised design point."""

    index: int
    key: str
    label: str
    status: PointStatus
    #: The CollectiveResult (or map return value); ``None`` on poison.
    result: Optional[Any] = None
    #: Total attempts executed this run (0 for cache/journal replays).
    attempts: int = 0
    failure_class: Optional[str] = None
    error: Optional[str] = None
    bundle_path: Optional[str] = None
    from_cache: bool = False
    from_journal: bool = False

    @property
    def ok(self) -> bool:
        return self.status in _OK_STATUSES

    @property
    def quarantined(self) -> bool:
        return self.status in _POISON_STATUSES

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "status": self.status.value,
            "attempts": self.attempts,
            "failure_class": self.failure_class,
            "error": self.error,
            "bundle_path": self.bundle_path,
            "from_cache": self.from_cache,
            "from_journal": self.from_journal,
        }


@dataclass
class QuarantineRecord:
    """One poison point, as reported and journaled."""

    key: str
    label: str
    attempts: int
    failure_class: str
    error: str
    traceback: Optional[str] = None
    bundle_path: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "label": self.label,
            "attempts": self.attempts,
            "failure_class": self.failure_class,
            "error": self.error,
            "traceback": self.traceback,
            "bundle_path": self.bundle_path,
        }


def outcomes_from_results(points: Sequence[RunPoint],
                          results: Sequence[Any]) -> list[PointOutcome]:
    """Wrap already-computed strict results as all-OK outcomes.

    The plain (unsupervised) executor path: errors have already
    propagated, so every surviving result is OK by construction.
    """
    return [
        PointOutcome(index=i, key="", label=getattr(result, "label", ""),
                     status=PointStatus.OK, result=result, attempts=1)
        for i, (_, result) in enumerate(zip(points, results))
    ]


def results_with_gaps(outcomes: Sequence[PointOutcome]) -> list[Optional[Any]]:
    """Input-ordered results; quarantined points are explicit ``None`` gaps."""
    return [o.result for o in outcomes]


def exit_code_for(outcomes: Sequence[PointOutcome]) -> int:
    """The documented CLI exit code for a batch: 0 all-ok, 1 partial."""
    return EXIT_OK if all(o.ok for o in outcomes) else EXIT_PARTIAL


# -- the append-only outcome journal -----------------------------------------------


class OutcomeJournal:
    """Append-only JSONL record of supervised outcomes.

    One line per finished point, written as points complete, so an
    interrupted campaign resumes past completed *and* quarantined points
    (``load`` keeps the last record per key — re-runs append, never
    rewrite).  OK records carry the result payload, so resume works even
    without (or across) a run cache.

    Shared-path semantics: every append is a single ``write()`` on an
    ``O_APPEND`` descriptor, so concurrent writers on one local POSIX
    file serialize whole lines instead of interleaving bytes.  A process
    that must be the *only* writer (the ``astra-repro serve`` daemon)
    passes ``exclusive=True``: a ``<path>.lock`` file holding the owner
    pid is taken at construction, and a second exclusive opener fails
    fast with a :class:`~repro.errors.ConfigError` naming the live owner
    instead of silently sharing the journal.  A lock left behind by a
    killed process (the pid is dead) is reclaimed automatically.
    """

    def __init__(self, path: str, exclusive: bool = False):
        if not path:
            raise ConfigError("outcome journal needs a path")
        self.path = path
        self._lock_path: Optional[str] = None
        if exclusive:
            self._acquire_lock()

    # -- exclusive-writer lock -----------------------------------------------------

    @property
    def lock_path(self) -> str:
        return f"{self.path}.lock"

    def _acquire_lock(self) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        for _ in range(2):  # second pass after reclaiming a stale lock
            try:
                fd = os.open(self.lock_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                owner = self._lock_owner()
                if owner is not None:
                    raise ConfigError(
                        f"journal {self.path} is locked by running process "
                        f"{owner} ({self.lock_path}); two writers appending "
                        f"to one journal would interleave their records — "
                        f"point the second daemon at its own journal")
                # Stale lock from a killed owner: reclaim and retry once.
                try:
                    os.unlink(self.lock_path)
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as f:
                f.write(f"{os.getpid()}\n")
            self._lock_path = self.lock_path
            return
        raise ConfigError(
            f"could not acquire the journal lock {self.lock_path}; "
            f"another writer keeps recreating it")

    def _lock_owner(self) -> Optional[int]:
        """The live pid holding the lock, or ``None`` if stale/unreadable."""
        try:
            with open(self.lock_path) as f:
                pid = int(f.read().strip())
        except (OSError, ValueError):
            return None
        if pid == os.getpid():
            return None  # our own (re-entrant construction): not a conflict
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return None
        except PermissionError:
            return pid  # alive, owned by someone else
        return pid

    def close(self) -> None:
        """Release the exclusive lock (no-op for shared journals)."""
        if self._lock_path is not None:
            try:
                os.unlink(self._lock_path)
            except OSError:
                pass
            self._lock_path = None

    def __enter__(self) -> "OutcomeJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading -------------------------------------------------------------------

    @staticmethod
    def load_records(path: str) -> list[dict[str, Any]]:
        """Every parseable current-schema record, in append order.

        Records from a *different* schema version (older or newer code)
        are skipped, never misread: a journal written by a future schema
        replays as empty rather than resuming from misunderstood state.
        A torn tail line from an interrupted writer is skipped too.
        """
        records: list[dict[str, Any]] = []
        try:
            with open(path) as f:
                lines = f.readlines()
        except OSError:
            return records
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write of an interrupted campaign
            if (isinstance(record, dict)
                    and record.get("schema") == JOURNAL_SCHEMA):
                records.append(record)
        return records

    @staticmethod
    def load(path: str) -> dict[str, dict[str, Any]]:
        """Key → last *outcome* record; missing file is an empty journal.

        Records of other types (the service daemon journals ``"job"``
        submission records into the same file) do not shadow outcomes.
        """
        records: dict[str, dict[str, Any]] = {}
        for record in OutcomeJournal.load_records(path):
            if (record.get("type", "outcome") == "outcome"
                    and record.get("key")):
                records[record["key"]] = record
        return records

    def append(self, record: dict[str, Any]) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        line = json.dumps({"schema": JOURNAL_SCHEMA, **record},
                          sort_keys=True) + "\n"
        # One write() on an O_APPEND fd: concurrent writers append whole
        # lines, never interleaved fragments (local POSIX filesystems).
        fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)


def _structural_key(fn: Any, op: Any, size: Any, index: int) -> str:
    """Positional fallback key for points the cache cannot address.

    Stable across runs of the same batch composition; a reordered batch
    re-keys (and therefore re-runs) its impure points, which is the safe
    direction to fail in.
    """
    inner = getattr(fn, "func", fn)  # functools.partial
    material = "\x1f".join((
        "supervisor-key/v1",
        getattr(inner, "__module__", "?"),
        getattr(inner, "__qualname__", type(inner).__name__),
        str(getattr(op, "value", op)),
        repr(size),
        str(index),
    ))
    return "pt-" + hashlib.sha256(material.encode()).hexdigest()


def _point_label(point: RunPoint, index: int) -> str:
    inner = getattr(point.builder, "func", point.builder)
    name = getattr(inner, "__qualname__", type(inner).__name__)
    return f"{name}[{index}]"


def _classify_exception(exc: BaseException) -> str:
    if isinstance(exc, BrokenProcessPool):
        return "crash"
    if isinstance(exc, SimulationError) and "max_events" in str(exc):
        return "event-budget"
    return "error"


# -- supervised tasks and slots ----------------------------------------------------


@dataclass
class _Task:
    """One point's supervision state across attempts."""

    index: int
    fn: Callable[[Any], Any]
    arg: Any
    key: str
    label: str
    in_parent: bool = False
    attempts: int = 0
    failure_class: Optional[str] = None
    last_error: Optional[str] = None
    last_traceback: Optional[str] = None
    not_before: float = 0.0


class _Slot:
    """One single-worker pool: at most one point in flight, so a worker
    death or deadline overrun is attributed to exactly one task."""

    __slots__ = ("pool", "task", "future", "started")

    def __init__(self) -> None:
        self.pool = ProcessPoolExecutor(max_workers=1)
        self.task: Optional[_Task] = None
        self.future = None
        self.started = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def submit(self, task: _Task) -> None:
        self.task = task
        self.started = time.monotonic()
        self.future = self.pool.submit(task.fn, task.arg)

    def clear(self) -> None:
        self.task = None
        self.future = None

    def worker_pids(self) -> list[int]:
        processes = getattr(self.pool, "_processes", None) or {}
        return list(processes)

    def kill_workers(self) -> None:
        for pid in self.worker_pids():
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass

    def shutdown(self, kill: bool = False) -> None:
        if kill:
            self.kill_workers()
        self.pool.shutdown(wait=False, cancel_futures=True)


# -- the supervised executor -------------------------------------------------------


class SupervisedExecutor(ParallelExecutor):
    """A :class:`ParallelExecutor` whose batches survive crashes and hangs.

    Drop-in at the call sites that matter: :meth:`run_outcomes` is the
    typed entry (sweeps, figures, search); :meth:`run_points` returns
    input-ordered results with ``None`` gaps for quarantined points;
    :meth:`map_outcomes` supervises generic ordered maps (chaos).
    """

    def __init__(self, jobs: int = 1, cache=None,
                 policy: Optional[SupervisionPolicy] = None,
                 journal_path: Optional[str] = None,
                 quarantine_dir: Optional[str] = None):
        super().__init__(jobs=jobs, cache=cache)
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.journal_path = journal_path
        self.quarantine_dir = quarantine_dir
        #: Poison points recorded this executor's lifetime.
        self.quarantine: list[QuarantineRecord] = []
        #: Every attempt actually executed (failures included).
        self.attempts_total = 0
        self._slots: list[Optional[_Slot]] = []

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        for slot in self._slots:
            if slot is not None:
                slot.shutdown(kill=slot.busy)
        self._slots = []
        super().close()

    # -- typed collective batches -------------------------------------------------

    def run_outcomes(self, points: Sequence[RunPoint]) -> list[PointOutcome]:
        """Execute every point under supervision; outcomes in input order.

        Resolution order per point: journal replay (completed or
        quarantined in a prior run) → run-cache hit → supervised
        execution with deadlines, retries, and quarantine.
        """
        points = [self._with_event_budget(p) for p in points]
        outcomes: list[Optional[PointOutcome]] = [None] * len(points)
        prior = (OutcomeJournal.load(self.journal_path)
                 if self.journal_path else {})
        journal = OutcomeJournal(self.journal_path) if self.journal_path else None

        tasks: list[_Task] = []
        cache_keys: dict[int, str] = {}
        for i, point in enumerate(points):
            cache_key = self._key_for(point)
            key = cache_key or _structural_key(point.builder, point.op,
                                               float(point.size_bytes), i)
            label = _point_label(point, i)
            replay = self._replay_from_journal(prior.get(key), i, key, label)
            if replay is not None:
                outcomes[i] = replay
                continue
            if cache_key is not None:
                payload = self.cache.get(cache_key)
                if payload is not None:
                    result = payload_to_result(payload)
                    outcomes[i] = PointOutcome(
                        index=i, key=key, label=result.label,
                        status=PointStatus.OK, result=result, from_cache=True)
                    self._journal_outcome(journal, outcomes[i])
                    continue
                cache_keys[i] = cache_key
            tasks.append(_Task(index=i, fn=_execute_point, arg=point,
                               key=key, label=label,
                               in_parent=_pickle_failure(point) is not None))

        if tasks:
            self._run_supervised(tasks, outcomes, journal)

        for i, cache_key in cache_keys.items():
            outcome = outcomes[i]
            if outcome is not None and outcome.ok and not outcome.from_cache:
                self.cache.put(cache_key, result_to_payload(outcome.result,
                                                            cache_key))
        return [o for o in outcomes if o is not None]

    def run_points(self, points: Sequence[RunPoint]) -> list[Any]:
        """Supervised results in input order; quarantined points are
        explicit ``None`` gaps (the plain executor raises instead)."""
        return results_with_gaps(self.run_outcomes(points))

    # -- generic supervised map ---------------------------------------------------

    def map_outcomes(self, fn: Callable[[Any], Any],
                     items: Sequence[Any]) -> list[PointOutcome]:
        """Ordered :meth:`map` with supervision (no cache, no journal).

        Items whose ``fn(item)`` crashes a worker, hangs past the
        deadline, or keeps raising are quarantined; the rest of the map
        completes.  Unpicklable ``fn``/items degrade to in-parent
        execution (no crash isolation, errors still classified).
        """
        items = list(items)
        outcomes: list[Optional[PointOutcome]] = [None] * len(items)
        fn_unpicklable = _pickle_failure(fn) is not None
        tasks = [
            _Task(index=i, fn=fn, arg=item,
                  key=_structural_key(fn, "map", repr(item)[:128], i),
                  label=f"map[{i}]",
                  in_parent=fn_unpicklable or _pickle_failure(item) is not None)
            for i, item in enumerate(items)
        ]
        if tasks:
            self._run_supervised(tasks, outcomes, journal=None)
        return [o for o in outcomes if o is not None]

    # -- quarantine reporting -----------------------------------------------------

    def quarantine_report(self) -> dict[str, Any]:
        """The structured quarantine report for this executor's lifetime."""
        return {
            "kind": "quarantine-report",
            "policy": {
                "point_timeout_s": self.policy.point_timeout_s,
                "point_event_budget": self.policy.point_event_budget,
                "max_retries": self.policy.max_retries,
                "on_poison": self.policy.on_poison,
            },
            "quarantined": [record.to_dict() for record in self.quarantine],
        }

    def write_quarantine_report(self, path: str) -> str:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as f:
            json.dump(self.quarantine_report(), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def quarantine_summary(self) -> Optional[str]:
        if not self.quarantine:
            return None
        lines = [f"quarantine: {len(self.quarantine)} poison point(s)"]
        for record in self.quarantine:
            lines.append(
                f"  {record.label}: {record.failure_class} after "
                f"{record.attempts} attempt(s) — {record.error}")
        return "\n".join(lines)

    # -- internals ----------------------------------------------------------------

    def _with_event_budget(self, point: RunPoint) -> RunPoint:
        budget = self.policy.point_event_budget
        if budget is None:
            return point
        capped = budget if point.max_events is None \
            else min(point.max_events, budget)
        return replace(point, max_events=capped)

    def _replay_from_journal(self, record: Optional[dict], index: int,
                             key: str, label: str) -> Optional[PointOutcome]:
        if record is None:
            return None
        status = record.get("status")
        if status in ("ok", "retried") and record.get("payload"):
            result = payload_to_result(record["payload"])
            return PointOutcome(index=index, key=key, label=result.label,
                                status=PointStatus(status), result=result,
                                from_journal=True)
        if status in ("timeout", "crashed", "failed", "quarantined"):
            return PointOutcome(
                index=index, key=key, label=record.get("label", label),
                status=PointStatus.QUARANTINED,
                failure_class=record.get("failure_class"),
                error=record.get("error"), from_journal=True)
        return None

    def _journal_outcome(self, journal: Optional[OutcomeJournal],
                         outcome: PointOutcome) -> None:
        if journal is None:
            return
        record: dict[str, Any] = {
            "type": "outcome",
            "key": outcome.key,
            "label": outcome.label,
            "status": outcome.status.value,
            "attempts": outcome.attempts,
        }
        if outcome.ok and outcome.result is not None:
            record["payload"] = result_to_payload(outcome.result, outcome.key)
        else:
            record["failure_class"] = outcome.failure_class
            record["error"] = outcome.error
        journal.append(record)

    def _ensure_slots(self) -> list[Optional[_Slot]]:
        if len(self._slots) != self.jobs:
            for slot in self._slots:
                if slot is not None:
                    slot.shutdown()
            self._slots = [None] * self.jobs
        return self._slots

    def _run_supervised(self, tasks: list[_Task],
                        outcomes: list[Optional[PointOutcome]],
                        journal: Optional[OutcomeJournal]) -> None:
        queue: deque[_Task] = deque(tasks)
        slots = self._ensure_slots()
        try:
            while queue or any(s is not None and s.busy for s in slots):
                now = time.monotonic()
                self._fill_slots(slots, queue, outcomes, journal, now)
                progressed = self._service_slots(slots, queue, outcomes,
                                                 journal)
                if not progressed:
                    self._idle_wait(slots, queue)
        except BaseException:
            # Poison-fail or a genuine bug: reap in-flight workers so the
            # batch does not leave orphaned simulations running.
            for i, slot in enumerate(slots):
                if slot is not None and slot.busy:
                    slot.shutdown(kill=True)
                    slots[i] = None
            raise

    def _fill_slots(self, slots: list[Optional[_Slot]], queue: deque,
                    outcomes: list[Optional[PointOutcome]],
                    journal: Optional[OutcomeJournal], now: float) -> None:
        for s in range(len(slots)):
            if not queue:
                return
            slot = slots[s]
            if slot is not None and slot.busy:
                continue
            task = self._next_ready(queue, now)
            if task is None:
                return
            if task.in_parent:
                # Unpicklable point: no crash isolation, no deadline —
                # run it here, still classified and retried/quarantined.
                self._run_in_parent(task, queue, outcomes, journal)
                continue
            if slot is None:
                slot = slots[s] = _Slot()
            slot.submit(task)

    @staticmethod
    def _next_ready(queue: deque, now: float) -> Optional[_Task]:
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.not_before <= now:
                return task
            queue.append(task)
        return None

    def _service_slots(self, slots: list[Optional[_Slot]], queue: deque,
                       outcomes: list[Optional[PointOutcome]],
                       journal: Optional[OutcomeJournal]) -> bool:
        progressed = False
        timeout_s = self.policy.point_timeout_s
        for s, slot in enumerate(slots):
            if slot is None or not slot.busy:
                continue
            if slot.future.done():
                task, future = slot.task, slot.future
                slot.clear()
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    slots[s] = self._replace_slot(slot)
                    self._record_failure(task, "crash",
                                         f"worker process died: {exc}",
                                         None, queue, outcomes, journal)
                except Exception as exc:
                    self._record_failure(task, _classify_exception(exc),
                                         f"{type(exc).__name__}: {exc}",
                                         traceback.format_exc(), queue,
                                         outcomes, journal)
                else:
                    self._record_success(task, result, outcomes, journal)
                progressed = True
            elif (timeout_s is not None
                  and time.monotonic() - slot.started >= timeout_s):
                task = slot.task
                slot.kill_workers()
                try:
                    slot.future.result(timeout=10.0)
                except Exception:
                    pass  # BrokenProcessPool from the kill, by design
                slot.clear()
                slots[s] = self._replace_slot(slot)
                self._record_failure(
                    task, "timeout",
                    f"exceeded the {timeout_s:g}s point deadline "
                    f"(worker reaped)", None, queue, outcomes, journal)
                progressed = True
        return progressed

    @staticmethod
    def _replace_slot(slot: _Slot) -> None:
        """Retire a broken slot pool; a fresh one is built on next use."""
        slot.shutdown()
        return None

    def _idle_wait(self, slots: list[Optional[_Slot]], queue: deque) -> None:
        futures = [s.future for s in slots if s is not None and s.busy]
        if futures:
            wait(futures, timeout=self.policy.poll_interval_s)
            return
        # Everything pending is backing off: sleep to the earliest gate.
        if queue:
            now = time.monotonic()
            earliest = min(task.not_before for task in queue)
            time.sleep(min(self.policy.poll_interval_s,
                           max(0.0, earliest - now)))

    def _run_in_parent(self, task: _Task, queue: deque,
                       outcomes: list[Optional[PointOutcome]],
                       journal: Optional[OutcomeJournal]) -> None:
        try:
            if task.fn is _execute_point:
                result = _execute_point(task.arg, keep_system=True)
            else:
                result = task.fn(task.arg)
        except Exception as exc:
            self._record_failure(task, _classify_exception(exc),
                                 f"{type(exc).__name__}: {exc}",
                                 traceback.format_exc(), queue, outcomes,
                                 journal)
        else:
            self._record_success(task, result, outcomes, journal)

    def _record_success(self, task: _Task, result: Any,
                        outcomes: list[Optional[PointOutcome]],
                        journal: Optional[OutcomeJournal]) -> None:
        self.simulations_run += 1
        self.attempts_total += 1
        status = PointStatus.RETRIED if task.attempts else PointStatus.OK
        outcome = PointOutcome(
            index=task.index, key=task.key,
            label=getattr(result, "label", task.label), status=status,
            result=result, attempts=task.attempts + 1)
        outcomes[task.index] = outcome
        self._journal_outcome(journal, outcome)

    def _record_failure(self, task: _Task, failure_class: str, error: str,
                        tb: Optional[str], queue: deque,
                        outcomes: list[Optional[PointOutcome]],
                        journal: Optional[OutcomeJournal]) -> None:
        self.attempts_total += 1
        task.attempts += 1
        task.failure_class = failure_class
        task.last_error = error
        task.last_traceback = tb
        if task.attempts <= self.policy.max_retries:
            task.not_before = (time.monotonic()
                               + self.policy.backoff_s(task.key, task.attempts))
            queue.append(task)
            return
        self._quarantine(task, outcomes, journal)

    def _quarantine(self, task: _Task,
                    outcomes: list[Optional[PointOutcome]],
                    journal: Optional[OutcomeJournal]) -> None:
        record = QuarantineRecord(
            key=task.key, label=task.label, attempts=task.attempts,
            failure_class=task.failure_class or "error",
            error=task.last_error or "", traceback=task.last_traceback)
        if self.quarantine_dir:
            record.bundle_path = self._write_poison_bundle(record)
        self.quarantine.append(record)
        status = {
            "timeout": PointStatus.TIMEOUT,
            "crash": PointStatus.CRASHED,
        }.get(record.failure_class, PointStatus.FAILED)
        outcome = PointOutcome(
            index=task.index, key=task.key, label=task.label, status=status,
            attempts=task.attempts, failure_class=record.failure_class,
            error=record.error, bundle_path=record.bundle_path)
        outcomes[task.index] = outcome
        self._journal_outcome(journal, outcome)
        if self.policy.on_poison == "fail":
            raise PoisonPointError(
                f"poison point {task.label}: {record.failure_class} after "
                f"{task.attempts} attempt(s) — {record.error}")

    def _write_poison_bundle(self, record: QuarantineRecord) -> str:
        from repro.resilience.bundles import write_bundle

        payload = {
            "kind": "poison-point",
            "key": record.key,
            "label": record.label,
            "attempts": record.attempts,
            "failure_class": record.failure_class,
            "error": record.error,
            "traceback": record.traceback,
            "diagnostics": {
                "point_timeout_s": self.policy.point_timeout_s,
                "point_event_budget": self.policy.point_event_budget,
                "max_retries": self.policy.max_retries,
            },
        }
        return write_bundle(self.quarantine_dir,
                            f"poison-{record.key[:16]}", payload)
