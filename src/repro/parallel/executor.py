"""Process-parallel experiment execution with deterministic results.

Every design-space point (one :class:`~repro.harness.runners.PlatformSpec`
x collective x payload) is an independent simulation, so the harnesses
can fan points out across CPU cores — the simulations themselves are
single-threaded Python, which makes process pools the only way to make
exploration wall-clock-bound by cores instead of by the interpreter.

Determinism contract: a point's result depends only on the point (no
process-global counter leaks into simulated timing — asserted by the
serial-vs-parallel tests), so ``jobs=4`` produces bit-identical
``duration_cycles`` and breakdowns to ``jobs=1``, in the same stable
input order.  ``jobs=1`` never touches a pool: it runs points in-process
in order, exactly like the pre-parallel harness loop.

Points whose builder cannot be pickled (e.g. an ad-hoc closure) degrade
gracefully: they run in the parent process while everything picklable
runs in the pool.

A :class:`~repro.parallel.cache.RunCache` can front the executor: cached
points are never executed (or even dispatched), and fresh results are
stored on the way out.
"""

from __future__ import annotations

import logging
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Sequence

from repro.errors import ReproError
from repro.parallel.cache import (
    RunCache,
    collective_cache_key,
    payload_to_result,
    result_to_payload,
)


@dataclass(frozen=True)
class RunPoint:
    """One design-space point: build a platform, run one collective.

    ``builder`` is a zero-argument callable returning a fresh
    :class:`~repro.harness.runners.PlatformSpec`.  For process-parallel
    execution it must be picklable — a module-level function or a
    ``functools.partial`` over one (the per-figure harnesses provide
    exactly that); anything else silently falls back to in-process
    execution.
    """

    builder: Callable[[], Any]
    op: Any
    size_bytes: float
    max_events: Optional[int] = None
    sanitize: bool = False
    #: When set, the executing worker writes progress-vector snapshots
    #: (simulated time, events processed, the watchdog progress vector)
    #: to this file as the run advances — the serve daemon streams them
    #: to its clients (docs/SERVICE.md).  Purely observational: the
    #: snapshots never touch the simulated schedule or the cache key.
    progress_path: Optional[str] = None
    #: Snapshot cadence in executed events (only with ``progress_path``).
    progress_every_events: int = 4096


def _execute_point(point: RunPoint, keep_system: bool = False) -> Any:
    """Run one point to completion (worker-process entry).

    By default the :class:`CollectiveResult` comes back with ``system``
    stripped — the live system holds the event queue's closures and
    cannot (and should not) cross a process boundary.  In-process
    execution passes ``keep_system=True`` so callers that need the
    finished system (CLI resilience/profile reporting) still get it.
    """
    from repro.harness.runners import MAX_EVENTS, run_collective

    max_events = point.max_events if point.max_events is not None else MAX_EVENTS
    events = on_system = writer = None
    if point.progress_path:
        from repro.events.engine import EventQueue
        from repro.service.progress import ProgressWriter

        events = EventQueue()
        writer = ProgressWriter(point.progress_path,
                                every_events=point.progress_every_events)
        events.watcher = writer.on_event
        on_system = writer.bind
    result = run_collective(point.builder(), point.op, point.size_bytes,
                            max_events=max_events, sanitize=point.sanitize,
                            events=events, on_system=on_system)
    if writer is not None:
        writer.finish(result)
    return result if keep_system else replace(result, system=None)


_log = logging.getLogger("repro.parallel")

#: The exception types CPython raises for genuinely unpicklable objects
#: (closures, lambdas, local classes, live handles).  Anything *else*
#: raised during pickling is a bug in the object's own
#: ``__reduce__``/``__getstate__`` and must propagate, not be silently
#: mistaken for "impure point — run it serially".
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)


def _pickle_failure(obj: Any) -> Optional[BaseException]:
    """The serialization error that makes ``obj`` unpicklable, or None."""
    try:
        pickle.dumps(obj)
    except _PICKLE_ERRORS as exc:
        return exc
    return None


def _is_picklable(obj: Any) -> bool:
    return _pickle_failure(obj) is None


class ParallelExecutor:
    """Runs independent simulation points, optionally across processes.

    >>> ex = ParallelExecutor(jobs=1)
    >>> ex.map(abs, [-2, -1, 3])
    [2, 1, 3]
    """

    def __init__(self, jobs: int = 1, cache: Optional[RunCache] = None):
        if jobs < 1:
            raise ReproError(f"executor jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        #: Simulations actually executed (cache hits excluded).
        self.simulations_run = 0
        self._degrade_logged = False
        # The worker pool is created lazily on the first parallel batch
        # and *reused* across run_points()/map() calls: a figure harness
        # issues several sweeps back-to-back, and re-forking workers per
        # sweep would eat most of the speedup on short sweeps.
        self._pool: Optional[ProcessPoolExecutor] = None

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool respawns on use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- collective points --------------------------------------------------------

    def run_points(self, points: Sequence[RunPoint]) -> list[Any]:
        """Execute every point; results in input order, cache consulted.

        Cache hits are rebuilt from their stored payload without running
        (or dispatching) anything; misses execute — in-process for
        ``jobs=1``, across a process pool otherwise — and are stored.
        """
        points = list(points)
        results: list[Any] = [None] * len(points)
        keys: dict[int, str] = {}
        pending: list[tuple[int, RunPoint]] = []

        for i, point in enumerate(points):
            key = self._key_for(point)
            if key is not None:
                payload = self.cache.get(key)  # type: ignore[union-attr]
                if payload is not None:
                    results[i] = payload_to_result(payload)
                    continue
                keys[i] = key
            pending.append((i, point))

        if pending:
            self._execute_pending(pending, results)
            for i, key in keys.items():
                if results[i] is not None:
                    self.cache.put(key, result_to_payload(results[i], key))  # type: ignore[union-attr]
        return results

    def run_outcomes(self, points: Sequence[RunPoint]) -> list[Any]:
        """Typed outcomes for a batch (``repro.parallel.supervisor``).

        The plain executor has no supervision: any failure raises
        exactly as :meth:`run_points` always has, so every outcome that
        comes back is OK by construction.
        :class:`~repro.parallel.supervisor.SupervisedExecutor` overrides
        this with deadlines, retries, and quarantine.
        """
        from repro.parallel.supervisor import outcomes_from_results

        points = list(points)
        return outcomes_from_results(points, self.run_points(points))

    def _local_reason(self, obj: Any) -> Optional[BaseException]:
        """Why ``obj`` must run in-process (None = picklable, pool ok).

        A genuine serialization failure degrades to serial execution and
        is logged once per executor; any other pickling-time error
        propagates from :func:`_pickle_failure`.
        """
        failure = _pickle_failure(obj)
        if failure is not None and not self._degrade_logged:
            self._degrade_logged = True
            _log.warning(
                "work item is not picklable (%s: %s); running it "
                "in-process instead of in the worker pool",
                type(failure).__name__, failure)
        return failure

    def _key_for(self, point: RunPoint) -> Optional[str]:
        """Cache key for ``point``, or None (cache off / point impure).

        Builds the spec once in the parent purely for keying — spec
        construction is cheap (dataclasses only; the topology is not
        built until the run itself).
        """
        if self.cache is None or point.sanitize:
            return None
        return collective_cache_key(point.builder(), point.op, point.size_bytes)

    def _execute_pending(self, pending: list[tuple[int, RunPoint]],
                         results: list[Any]) -> None:
        if self.jobs == 1 or len(pending) == 1:
            for i, point in pending:
                results[i] = _execute_point(point, keep_system=True)
                self.simulations_run += 1
            return

        remote: list[tuple[int, RunPoint]] = []
        local: list[tuple[int, RunPoint]] = []
        for i, point in pending:
            if self._local_reason(point) is None:
                remote.append((i, point))
            else:
                local.append((i, point))
        if remote:
            pool = self._get_pool()
            futures = {pool.submit(_execute_point, point): i
                       for i, point in remote}
            for future in futures:
                results[futures[future]] = future.result()
                self.simulations_run += 1
        for i, point in local:
            results[i] = _execute_point(point, keep_system=True)
            self.simulations_run += 1

    # -- generic ordered map ------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """``[fn(x) for x in items]``, fanned across processes when possible.

        Results keep input order regardless of completion order.  Falls
        back to the in-process loop when ``jobs=1``, for a single item,
        or when ``fn``/an item cannot be pickled — the fallback is
        exactly the serial loop, so results never depend on the path
        taken (asserted by the chaos job-count tests).
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]
        if (self._local_reason(fn) is not None
                or any(self._local_reason(it) is not None for it in items)):
            return [fn(item) for item in items]
        results: list[Any] = [None] * len(items)
        pool = self._get_pool()
        futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            for future in done:
                results[futures[future]] = future.result()
        return results

    def cache_summary(self) -> Optional[str]:
        return self.cache.summary() if self.cache is not None else None


# -- process-global default executor ----------------------------------------------
#
# The CLI configures one executor from its global --jobs/--cache-dir
# flags; harness entry points (sweep_collective, the fig runners, chaos)
# pick it up implicitly so every layer that fans out work parallelizes
# without threading an executor argument through every call site.

_default_executor: Optional[ParallelExecutor] = None


def set_default_executor(executor: Optional[ParallelExecutor]) -> None:
    """Install (or clear, with ``None``) the process-wide default."""
    global _default_executor
    _default_executor = executor


def default_executor() -> ParallelExecutor:
    """The installed default, or a fresh serial/no-cache executor."""
    if _default_executor is not None:
        return _default_executor
    return ParallelExecutor(jobs=1)


def configure_default(jobs: int = 1, cache_dir: Optional[str] = None,
                      use_cache: bool = True, *,
                      supervision: Optional[Any] = None,
                      journal_path: Optional[str] = None,
                      quarantine_dir: Optional[str] = None) -> ParallelExecutor:
    """Build + install the default executor from CLI-level knobs.

    Passing a :class:`~repro.parallel.supervisor.SupervisionPolicy` (or a
    journal/quarantine path) upgrades the default to a
    :class:`~repro.parallel.supervisor.SupervisedExecutor`, so every
    harness entry point inherits crash isolation and deadlines without
    changing its call sites.
    """
    cache = RunCache(cache_dir) if (cache_dir and use_cache) else None
    if supervision is not None or journal_path or quarantine_dir:
        from repro.parallel.supervisor import (
            SupervisedExecutor,
            SupervisionPolicy,
        )

        executor: ParallelExecutor = SupervisedExecutor(
            jobs=jobs, cache=cache,
            policy=supervision if supervision is not None else SupervisionPolicy(),
            journal_path=journal_path, quarantine_dir=quarantine_dir)
    else:
        executor = ParallelExecutor(jobs=jobs, cache=cache)
    set_default_executor(executor)
    return executor
