"""Content-addressed run cache for design-space exploration.

The Sec. V studies evaluate dozens of platform x workload x size points,
and many points repeat across figures (the same torus shape at the same
payload) and across re-runs of the same figure.  Every simulation here is
deterministic, so a completed point is a pure function of its inputs —
which makes its result cacheable under a content-addressed key:

    sha256(code salt | canonical SimulationConfig | topology identity |
           collective op | payload size | backend)

The canonical config form reuses the platform-digest machinery from
:mod:`repro.resilience.checkpoint`: ``repr`` of the frozen nested config
dataclasses is deterministic and covers every field, so two points agree
on a key iff a simulation cannot tell them apart.  ``CACHE_SALT`` is the
code-version component — bump it whenever a change alters simulated
timing, and every previously cached result is invalidated at once.

Only *pure* points are cached: a platform carrying a fault schedule, a
resilience monitor, a custom backend factory, a reliable transport, or a
runtime sanitizer is executed fresh every time (faulty/chaos runs are
exactly the ones whose side effects — bundles, checkpoints, sanitizer
findings — the caller wants re-produced).

Entries are one JSON file per key with atomic writes, so a cache
directory can be shared by concurrent processes; a corrupt or truncated
entry is quarantined to the ``corrupt/`` subdirectory, counted in the
cache summary, and treated as a miss so the next store rewrites it.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import dataclass
from typing import Any, Optional

#: Per-process temp-file sequence: two threads of one process writing the
#: same key get distinct temp names (pids already distinguish processes).
_TMP_SEQ = itertools.count()

from repro.errors import ReproError
from repro.system.stats import DelayBreakdown

#: Code-version component of every cache key.  Bump on any change that
#: alters simulated timing (collective schedules, link model, backend
#: behavior): stale results must never be served across such a change.
CACHE_SALT = "astra-repro/run-cache/v1"

#: Payload schema version; entries with another schema are misses.
PAYLOAD_SCHEMA = 1


def collective_cache_key(spec: Any, op: Any, size_bytes: float,
                         backend: str = "fast") -> Optional[str]:
    """The content-addressed key for one collective point, or ``None``
    when the point is not cacheable (see the module docstring).

    ``spec`` is a :class:`repro.harness.runners.PlatformSpec`; its name
    carries the topology identity (family + shape), and the frozen config
    repr carries every other simulated parameter.
    """
    if spec.fault_schedule is not None or spec.resilience is not None:
        return None
    if spec.backend_factory is not None:
        return None
    if spec.config.system.transport is not None:
        return None
    material = "\x1f".join((
        CACHE_SALT,
        spec.name,
        repr(spec.config),
        str(getattr(op, "value", op)),
        repr(float(size_bytes)),
        backend,
    ))
    return hashlib.sha256(material.encode()).hexdigest()


def result_to_payload(result: Any, key: str) -> dict[str, Any]:
    """Serialize a :class:`~repro.harness.runners.CollectiveResult`."""
    return {
        "schema": PAYLOAD_SCHEMA,
        "key": key,
        "label": result.label,
        "op": result.op.value,
        "size_bytes": result.size_bytes,
        "duration_cycles": result.duration_cycles,
        "num_npus": result.num_npus,
        "breakdown": result.breakdown.as_dict(),
    }


def payload_to_result(payload: dict[str, Any]) -> Any:
    """Rebuild a :class:`CollectiveResult` from a cached payload.

    The rebuilt result has ``system=None`` and ``transport_stats=None``:
    cached points are pure (no transport, no resilience), so neither
    field ever carried information for them.
    """
    from repro.collectives.types import CollectiveOp
    from repro.harness.runners import CollectiveResult

    return CollectiveResult(
        label=payload["label"],
        op=CollectiveOp(payload["op"]),
        size_bytes=float(payload["size_bytes"]),
        duration_cycles=float(payload["duration_cycles"]),
        breakdown=DelayBreakdown.from_dict(payload["breakdown"]),
        num_npus=int(payload["num_npus"]),
    )


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`RunCache` lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Corrupt/truncated entries moved aside to ``corrupt/`` (each also
    #: counts as a miss — the caller re-simulates and rewrites).
    corrupt: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}


class RunCache:
    """A directory of content-addressed run results.

    Safe to share between concurrent processes (the parallel executor's
    workers, several ``astra-repro`` invocations, the serve daemon's
    clients): writes are atomic renames, directory creation tolerates
    races, and a corrupt entry both racers notice is quarantined — and
    counted — exactly once.  An optional ``namespace`` scopes entries
    under a subdirectory, so tenants sharing one cache root (e.g. a
    service instance per team) can isolate their entries and their
    corrupt-quarantine blast radius without separate roots.

    >>> import tempfile
    >>> cache = RunCache(tempfile.mkdtemp())
    >>> cache.get("0" * 64) is None
    True
    """

    def __init__(self, directory: str, namespace: Optional[str] = None):
        if not directory:
            raise ReproError("run cache needs a directory")
        if namespace is not None:
            if (not namespace or os.sep in namespace or namespace in
                    (".", "..") or namespace.startswith(".")):
                raise ReproError(
                    f"cache namespace must be a plain directory name, "
                    f"got {namespace!r}")
            directory = os.path.join(directory, namespace)
        self.directory = directory
        self.namespace = namespace
        self.stats = CacheStats()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """The cached payload for ``key``, or ``None`` on a miss.

        A schema-mismatched entry (older code version) is a plain miss.
        A corrupt, truncated, or wrong-key entry is *quarantined*: moved
        to the ``corrupt/`` subdirectory (preserving the evidence for
        inspection), counted, and reported in :meth:`summary` — then
        treated as a miss so the next :meth:`put` rewrites it.
        """
        try:
            with open(self._path(key)) as f:
                payload = json.load(f)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._quarantine_corrupt(key)
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            self._quarantine_corrupt(key)
            self.stats.misses += 1
            return None
        if payload.get("schema") != PAYLOAD_SCHEMA:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def _quarantine_corrupt(self, key: str) -> None:
        """Move a damaged entry aside to ``corrupt/`` and count it.

        Two processes can notice the same damaged entry at once; the
        ``os.replace`` is the arbiter — exactly one racer moves the file
        (and counts it), the loser sees ``FileNotFoundError`` and counts
        nothing.  Neither ever surfaces an exception to its caller: a
        quarantine race is still just a cache miss.
        """
        path = self._path(key)
        corrupt_dir = os.path.join(self.directory, "corrupt")
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
        except OSError:
            return  # unwritable cache root: stay a plain miss
        try:
            os.replace(path, os.path.join(corrupt_dir, os.path.basename(path)))
        except FileNotFoundError:
            return  # racing reader already moved it; nothing to count twice
        except OSError:
            return
        self.stats.corrupt += 1

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic; last writer wins).

        Concurrent writers of the same key are safe: each writes its own
        pid+sequence temp file, and the final ``os.replace`` is atomic —
        readers only ever see a complete entry from one writer or the
        other.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
        with open(tmp, "w") as f:
            json.dump(payload, f, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
        self.stats.stores += 1

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self.directory)
                       if name.endswith(".json"))
        except OSError:
            return 0

    def summary(self) -> str:
        s = self.stats
        line = (f"run cache {self.directory}: {s.hits} hits, "
                f"{s.misses} misses, {s.stores} stored")
        lookups = s.hits + s.misses
        if lookups:
            line += f" ({100.0 * s.hits / lookups:.0f}% hit rate)"
        if s.corrupt:
            line += f", {s.corrupt} corrupt quarantined"
        return line
