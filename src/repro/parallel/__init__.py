"""Parallel design-space execution: process pools + cache + supervision.

Three pieces (docs/PERFORMANCE.md, docs/SUPERVISION.md):

* :class:`ParallelExecutor` — runs independent design-space points
  across a process pool (``jobs > 1``) or deterministically in-process
  (``jobs = 1``), preserving input order and bit-identical per-point
  results either way.
* :class:`RunCache` — a content-addressed store keyed on the canonical
  simulation config + topology + op + size + backend + code salt, so
  repeated points across figures and re-runs are free.
* :class:`SupervisedExecutor` — crash-isolated, deadline-bounded
  batches: worker deaths retry under a seeded backoff budget, hangs are
  reaped, poison points are quarantined with diagnostic bundles, and
  typed :class:`PointOutcome` partial results journal to an append-only
  JSONL so interrupted campaigns resume.

The CLI's global ``--jobs`` / ``--cache-dir`` / ``--no-cache`` flags
configure a process-wide default executor that the harness entry points
(:func:`repro.harness.runners.sweep_collective`, the per-figure
runners, ``astra-repro chaos``) pick up implicitly.
"""

from repro.parallel.cache import (
    CACHE_SALT,
    CacheStats,
    RunCache,
    collective_cache_key,
    payload_to_result,
    result_to_payload,
)
from repro.parallel.executor import (
    ParallelExecutor,
    RunPoint,
    configure_default,
    default_executor,
    set_default_executor,
)
from repro.parallel.supervisor import (
    OutcomeJournal,
    PointOutcome,
    PointStatus,
    PoisonPointError,
    QuarantineRecord,
    SupervisedExecutor,
    SupervisionPolicy,
    exit_code_for,
    results_with_gaps,
)

__all__ = [
    "CACHE_SALT",
    "CacheStats",
    "OutcomeJournal",
    "ParallelExecutor",
    "PointOutcome",
    "PointStatus",
    "PoisonPointError",
    "QuarantineRecord",
    "RunCache",
    "RunPoint",
    "SupervisedExecutor",
    "SupervisionPolicy",
    "collective_cache_key",
    "configure_default",
    "default_executor",
    "exit_code_for",
    "payload_to_result",
    "result_to_payload",
    "results_with_gaps",
    "set_default_executor",
]
