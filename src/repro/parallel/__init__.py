"""Parallel design-space execution: process pools + content-addressed cache.

Two pieces (docs/PERFORMANCE.md):

* :class:`ParallelExecutor` — runs independent design-space points
  across a process pool (``jobs > 1``) or deterministically in-process
  (``jobs = 1``), preserving input order and bit-identical per-point
  results either way.
* :class:`RunCache` — a content-addressed store keyed on the canonical
  simulation config + topology + op + size + backend + code salt, so
  repeated points across figures and re-runs are free.

The CLI's global ``--jobs`` / ``--cache-dir`` / ``--no-cache`` flags
configure a process-wide default executor that the harness entry points
(:func:`repro.harness.runners.sweep_collective`, the per-figure
runners, ``astra-repro chaos``) pick up implicitly.
"""

from repro.parallel.cache import (
    CACHE_SALT,
    CacheStats,
    RunCache,
    collective_cache_key,
    payload_to_result,
    result_to_payload,
)
from repro.parallel.executor import (
    ParallelExecutor,
    RunPoint,
    configure_default,
    default_executor,
    set_default_executor,
)

__all__ = [
    "CACHE_SALT",
    "CacheStats",
    "ParallelExecutor",
    "RunCache",
    "RunPoint",
    "collective_cache_key",
    "configure_default",
    "default_executor",
    "payload_to_result",
    "result_to_payload",
    "set_default_executor",
]
