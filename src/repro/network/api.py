"""Backend-agnostic network interface.

ASTRA-SIM is "highly portable ... it can be ported on top of any network
simulator using a lightweight interface" (Sec. IV).  This module is that
interface: the system layer only ever calls :meth:`NetworkBackend.send`
with an explicit link path and a delivery callback, plus
:meth:`NetworkBackend.schedule` for timed events.  Two implementations
exist: :class:`repro.network.fast_backend.FastBackend` (default) and
:class:`repro.network.detailed.backend.DetailedBackend` (flit-level).
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.events.engine import EventHandle, EventQueue
from repro.network.link import Link
from repro.network.message import Message

DeliveryCallback = Callable[[Message], None]


class NetworkBackend(abc.ABC):
    """The lightweight network interface of Fig. 6.

    ``sanitizer`` (optional, see :mod:`repro.sanitize.runtime`) receives
    send/delivery conservation events; when absent the default path is
    unchanged.
    """

    def __init__(self, events: EventQueue, sanitizer=None):
        self.events = events
        self.sanitizer = sanitizer
        self.messages_delivered = 0
        self.bytes_delivered = 0.0
        #: Live fault state (see :mod:`repro.network.fault_schedule`); when
        #: set, both backends consult it at injection time and silently drop
        #: doomed messages.  ``None`` keeps the healthy path unchanged.
        self.faults = None
        self.messages_dropped = 0

    @property
    def now(self) -> float:
        return self.events.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Expose the event queue to upper layers (Sec. IV)."""
        return self.events.schedule(delay, callback)

    @abc.abstractmethod
    def send(self, message: Message, path: list[Link], on_delivered: DeliveryCallback) -> None:
        """Inject ``message`` along ``path``; call ``on_delivered`` at arrival.

        ``path`` is an ordered list of physical links whose endpoints chain
        from ``message.src`` to ``message.dst`` (possibly through switch
        endpoints).  Implementations must fill the message's timing fields.
        """

    def _record_send(self, message: Message) -> None:
        if self.sanitizer is not None:
            self.sanitizer.conservation.message_sent(message)

    def _drop_if_faulty(self, message: Message, path: list[Link]) -> bool:
        """Apply the installed fault state at injection time.

        Returns ``True`` when the message is lost (down link, paused
        endpoint, or probabilistic drop): the backend must then inject
        nothing — recovery is the reliable transport's job.  Call after
        :meth:`_record_send` so conservation balances as
        ``sent == delivered + dropped``.
        """
        if self.faults is None:
            return False
        classified = self.faults.classify(message, path)
        if classified is None:
            return False
        kind, reason = classified
        self.faults.record_drop(reason)
        self.messages_dropped += 1
        message.drop_reason = reason
        message.drop_kind = kind
        if self.sanitizer is not None:
            self.sanitizer.conservation.message_dropped(message)
        return True

    def _record_delivery(self, message: Message) -> None:
        self.messages_delivered += 1
        self.bytes_delivered += message.size_bytes
        if self.sanitizer is not None:
            self.sanitizer.conservation.message_delivered(message)


def validate_path(message: Message, path: list[Link]) -> None:
    """Check that ``path`` actually chains src -> dst (shared by backends)."""
    from repro.errors import NetworkError

    if not path:
        raise NetworkError(f"empty path for message {message.src}->{message.dst}")
    if path[0].src != message.src:
        raise NetworkError(
            f"path starts at {path[0].src}, message src is {message.src}"
        )
    if path[-1].dst != message.dst:
        raise NetworkError(
            f"path ends at {path[-1].dst}, message dst is {message.dst}"
        )
    for a, b in zip(path, path[1:]):
        if a.dst != b.src:
            raise NetworkError(f"discontinuous path: {a!r} then {b!r}")
