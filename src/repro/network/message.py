"""Message and packet records exchanged through the network layer.

Granularity follows Table II of the paper: the system layer hands the
network *messages* (one per collective step per peer); the network layer
decomposes them into *packets* bounded by the link technology, and the
detailed backend further decomposes packets into flits/phits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NetworkError

_message_ids = itertools.count()


@dataclass(slots=True)
class Message:
    """One network-layer transfer between two endpoints.

    ``src``/``dst`` are NPU ids.  ``tag`` carries collective bookkeeping
    (chunk id, phase, step) so receivers can demultiplex.  Timing fields
    are filled in by the backend as the message progresses and feed the
    queue/network delay breakdowns of Fig. 12b / Fig. 16.

    ``slots=True``: a collective run creates one of these per step per
    peer per chunk, and the backends touch the timing fields on every
    send/delivery — slotted instances are smaller and attribute access
    skips the instance dict.
    """

    src: int
    dst: int
    size_bytes: float
    tag: object = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    # Timing (simulated cycles), filled by the backend.
    created_at: float = 0.0
    injected_at: float = 0.0
    delivered_at: float = 0.0

    # Why the fault layer dropped this message at injection; None when it
    # was (or will be) delivered normally.  ``drop_kind`` is the machine-
    # readable class ("link_down" / "node_paused" / "random_drop") the
    # reliable transport keys its retry accounting on — a paused endpoint
    # is transient flow control, not a path failure.
    drop_reason: str | None = None
    drop_kind: str | None = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise NetworkError(f"message size must be >= 0: {self.size_bytes}")
        if self.src == self.dst:
            raise NetworkError(f"message src == dst == {self.src}")

    @property
    def queueing_cycles(self) -> float:
        """Time spent waiting for the first link (injection queue delay)."""
        return self.injected_at - self.created_at

    @property
    def network_cycles(self) -> float:
        """Time from first-link grant to delivery."""
        return self.delivered_at - self.injected_at

    @property
    def total_cycles(self) -> float:
        return self.delivered_at - self.created_at


def packetize(size_bytes: float, packet_size_bytes: int) -> list[float]:
    """Split a message payload into packet payloads (Table II).

    The final packet may be short.  A zero-byte message still produces a
    single (header-only) packet so that control messages cost one packet
    of latency.

    >>> packetize(1200, 512)
    [512.0, 512.0, 176.0]
    """
    if packet_size_bytes <= 0:
        raise NetworkError(f"packet size must be positive: {packet_size_bytes}")
    if size_bytes < 0:
        raise NetworkError(f"size must be >= 0: {size_bytes}")
    if size_bytes == 0:
        return [0.0]
    full, rem = divmod(size_bytes, packet_size_bytes)
    packets = [float(packet_size_bytes)] * int(full)
    if rem:
        packets.append(float(rem))
    return packets


def num_packets(size_bytes: float, packet_size_bytes: int) -> int:
    """Packet count without materializing the list."""
    if packet_size_bytes <= 0:
        raise NetworkError(f"packet size must be positive: {packet_size_bytes}")
    if size_bytes <= 0:
        return 1
    return int(-(-size_bytes // packet_size_bytes))
