"""Physical fabric builders: hierarchical torus and alltoall (Fig. 3)."""

from repro.network.physical.alltoall import AllToAllFabric
from repro.network.physical.fabric import Fabric, GroupKey
from repro.network.physical.ndtorus import (
    DEFAULT_SCALEOUT_LINK,
    DimensionSpec,
    NDTorusFabric,
    build_4d_torus,
    build_scaleout_torus,
)
from repro.network.physical.torus import TorusFabric

__all__ = [
    "AllToAllFabric",
    "DEFAULT_SCALEOUT_LINK",
    "DimensionSpec",
    "Fabric",
    "GroupKey",
    "NDTorusFabric",
    "TorusFabric",
    "build_4d_torus",
    "build_scaleout_torus",
]
