"""Generalized N-dimensional hierarchical torus (the paper's future work:
"expanding this study to other scale-up topologies such as 4D/5D torus
... will be explored as part of future work", Sec. III-C; "we also plan
to extend it to a scale-out fabric", Sec. VII).

A fabric is described by an ordered list of :class:`DimensionSpec`, from
the innermost (fastest links) outward.  Each dimension contributes rings
over the nodes that share all other coordinates — exactly the 3D torus
construction generalized to any depth — and each dimension carries its
own link class, so an outermost ``SCALEOUT`` dimension with
Ethernet-class links models the paper's scale-out extension.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.parameters import LinkConfig, NetworkConfig
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.dims import Dimension, TRAVERSAL_ORDER
from repro.errors import TopologyError
from repro.network.physical.fabric import Fabric


@dataclass(frozen=True)
class DimensionSpec:
    """One dimension of a generalized hierarchical torus.

    ``rings`` counts physical rings; bidirectional rings contribute two
    unidirectional channels each.  ``link`` is the link class used by
    this dimension's rings.
    """

    dim: Dimension
    size: int
    link: LinkConfig
    rings: int = 1
    bidirectional: bool = True
    kind: str = "package"

    def __post_init__(self) -> None:
        if self.size < 1:
            raise TopologyError(f"dimension {self.dim} size must be >= 1")
        if self.rings < 1:
            raise TopologyError(f"dimension {self.dim} needs >= 1 ring")
        if self.dim is Dimension.ALLTOALL:
            raise TopologyError(
                "the alltoall dimension is switch-based; use AllToAllFabric"
            )


class NDTorusFabric(Fabric):
    """A hierarchical torus with an arbitrary number of ring dimensions."""

    def __init__(
        self,
        specs: list[DimensionSpec],
        network: NetworkConfig,
        clock: Clock = DEFAULT_CLOCK,
    ):
        if not specs:
            raise TopologyError("need at least one dimension spec")
        dims = [s.dim for s in specs]
        if len(set(dims)) != len(dims):
            raise TopologyError(f"duplicate dimensions: {dims}")
        order = {d: i for i, d in enumerate(TRAVERSAL_ORDER)}
        if dims != sorted(dims, key=lambda d: order[d]):
            raise TopologyError(
                f"dimension specs must follow traversal order, got {dims}"
            )
        num_npus = 1
        for spec in specs:
            num_npus *= spec.size
        super().__init__(num_npus, network, clock)
        self.specs = list(specs)
        self._strides = self._compute_strides()
        self._build()

    # -- coordinates -----------------------------------------------------------

    def _compute_strides(self) -> list[int]:
        strides = []
        stride = 1
        for spec in self.specs:
            strides.append(stride)
            stride *= spec.size
        return strides

    def npu_id(self, coords: tuple[int, ...]) -> int:
        if len(coords) != len(self.specs):
            raise TopologyError(
                f"expected {len(self.specs)} coordinates, got {len(coords)}"
            )
        npu = 0
        for c, spec, stride in zip(coords, self.specs, self._strides):
            if not 0 <= c < spec.size:
                raise TopologyError(f"coordinate {c} outside {spec.dim} size")
            npu += c * stride
        return npu

    def coords(self, npu: int) -> tuple[int, ...]:
        if not 0 <= npu < self.num_npus:
            raise TopologyError(f"npu {npu} out of range")
        out = []
        for spec, stride in zip(self.specs, self._strides):
            out.append((npu // stride) % spec.size)
        return tuple(out)

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        for axis, spec in enumerate(self.specs):
            if spec.size < 2:
                continue
            for group in self._groups_for_axis(axis):
                nodes = [
                    self.npu_id(self._insert(axis, group, i))
                    for i in range(spec.size)
                ]
                rings = []
                for r in range(spec.rings):
                    if spec.bidirectional:
                        rings.append(self._build_ring(
                            nodes, spec.link, spec.kind,
                            name=f"{spec.dim}{group}#{r}cw", reverse=False))
                        rings.append(self._build_ring(
                            nodes, spec.link, spec.kind,
                            name=f"{spec.dim}{group}#{r}ccw", reverse=True))
                    else:
                        rings.append(self._build_ring(
                            nodes, spec.link, spec.kind,
                            name=f"{spec.dim}{group}#{r}",
                            reverse=bool(r % 2)))
                self._pair_ring_directions(rings)
                self._add_channels(spec.dim, group, rings)
        if not self.channels:
            raise TopologyError("degenerate torus: every dimension has size 1")

    def _groups_for_axis(self, axis: int):
        """All coordinate combinations of the other axes."""
        sizes = [s.size for i, s in enumerate(self.specs) if i != axis]
        if not sizes:
            yield ()
            return
        total = 1
        for s in sizes:
            total *= s
        for flat in range(total):
            coords = []
            rest = flat
            for s in sizes:
                coords.append(rest % s)
                rest //= s
            yield tuple(coords)

    @staticmethod
    def _insert(axis: int, group: tuple[int, ...], value: int) -> tuple[int, ...]:
        return group[:axis] + (value,) + group[axis:]

    def group_of(self, dim: Dimension, npu: int) -> tuple[int, ...]:
        for axis, spec in enumerate(self.specs):
            if spec.dim is dim:
                coords = self.coords(npu)
                return coords[:axis] + coords[axis + 1:]
        raise TopologyError(f"fabric has no {dim} dimension")


#: A representative scale-out link: 12.5 GB/s (100 GbE), 2 us latency at
#: 1 GHz, jumbo-frame packets, typical protocol efficiency.
DEFAULT_SCALEOUT_LINK = LinkConfig(
    bandwidth_gbps=12.5,
    latency_cycles=2000.0,
    packet_size_bytes=4096,
    efficiency=0.90,
)


def build_4d_torus(
    sizes: tuple[int, int, int, int],
    network: NetworkConfig,
    local_rings: int = 2,
    inter_rings: int = 1,
    clock: Clock = DEFAULT_CLOCK,
) -> NDTorusFabric:
    """A 4D torus: local + three inter-package ring dimensions."""
    local, *inter = sizes
    dims = [Dimension.VERTICAL, Dimension.HORIZONTAL, Dimension.FOURTH]
    specs = [DimensionSpec(Dimension.LOCAL, local, network.local_link,
                           rings=local_rings, bidirectional=False,
                           kind="local")]
    specs += [
        DimensionSpec(dim, size, network.package_link, rings=inter_rings)
        for dim, size in zip(dims, inter)
    ]
    return NDTorusFabric(specs, network, clock)


def build_scaleout_torus(
    scaleup_sizes: tuple[int, int, int],
    scaleout_size: int,
    network: NetworkConfig,
    scaleout_link: LinkConfig = DEFAULT_SCALEOUT_LINK,
    local_rings: int = 2,
    inter_rings: int = 1,
    scaleout_rings: int = 1,
    clock: Clock = DEFAULT_CLOCK,
) -> NDTorusFabric:
    """A scale-up torus replicated over an outermost scale-out dimension
    (the Sec. VII future-work extension: "extend it to a scale-out fabric
    (modeling the transport layer, e.g., Ethernet)")."""
    local, vertical, horizontal = scaleup_sizes
    specs = [
        DimensionSpec(Dimension.LOCAL, local, network.local_link,
                      rings=local_rings, bidirectional=False, kind="local"),
        DimensionSpec(Dimension.VERTICAL, vertical, network.package_link,
                      rings=inter_rings),
        DimensionSpec(Dimension.HORIZONTAL, horizontal, network.package_link,
                      rings=inter_rings),
        DimensionSpec(Dimension.SCALEOUT, scaleout_size, scaleout_link,
                      rings=scaleout_rings, kind="scaleout"),
    ]
    return NDTorusFabric(specs, network, clock)
