"""Hierarchical M x N alltoall fabric (Fig. 3b).

M NAMs per package joined by intra-package rings; the N packages are
fully connected through ``global_switches`` global switches, with every
NPU holding an uplink and a downlink to each switch (Sec. III-C).
Traffic between a pair of NPUs is assigned to a switch by the sender
(see :meth:`AllToAllFabric.switch_for`): the assignment is a Latin-square
style spread so that when the number of switches equals ``peers`` the
topology degenerates to the "one link per peer NAM" configuration of the
Fig. 9 study.
"""

from __future__ import annotations

from repro.config.parameters import AllToAllShape, NetworkConfig
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import TopologyError
from repro.network.channel import SwitchChannel
from repro.network.physical.fabric import Fabric
from repro.dims import Dimension


class AllToAllFabric(Fabric):
    """A physical hierarchical alltoall with global switches."""

    def __init__(
        self,
        shape: AllToAllShape,
        network: NetworkConfig,
        local_rings: int = 2,
        global_switches: int = 2,
        clock: Clock = DEFAULT_CLOCK,
    ):
        super().__init__(shape.num_npus, network, clock)
        if local_rings < 1:
            raise TopologyError("local_rings must be >= 1")
        if global_switches < 1:
            raise TopologyError("global_switches must be >= 1")
        self.shape = shape
        self.local_rings = local_rings
        self.global_switches = global_switches
        self._build()

    # -- coordinates -----------------------------------------------------------

    def npu_id(self, local: int, package: int) -> int:
        s = self.shape
        if not (0 <= local < s.local and 0 <= package < s.packages):
            raise TopologyError(f"coords ({local},{package}) outside shape {s}")
        return local + s.local * package

    def coords(self, npu: int) -> tuple[int, int]:
        s = self.shape
        if not 0 <= npu < s.num_npus:
            raise TopologyError(f"npu {npu} outside shape {s}")
        return npu % s.local, npu // s.local

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        s = self.shape
        net = self.network

        if s.local >= 2:
            for p in range(s.packages):
                nodes = [self.npu_id(l, p) for l in range(s.local)]
                rings = [
                    self._build_ring(
                        nodes, net.local_link, "local",
                        name=f"local(p={p})#{r}", reverse=bool(r % 2),
                    )
                    for r in range(self.local_rings)
                ]
                self._pair_ring_directions(rings)
                self._add_channels(Dimension.LOCAL, (p,), rings)

        # Global switches attach to every NPU.  The alltoall dimension's
        # groups are the sets of NPUs with the same local index across all
        # packages ("NPUs with the same number in Figure 3b work together");
        # every group shares the same physical switches.
        all_nodes = list(range(s.num_npus))
        switches = [
            self._build_switch(all_nodes, net.package_link, name=f"global-switch#{i}")
            for i in range(self.global_switches)
        ]
        self.switches = switches
        for l in range(s.local):
            self._add_channels(Dimension.ALLTOALL, (l,), switches)

    def group_of(self, dim: Dimension, npu: int) -> tuple[int, ...]:
        local, package = self.coords(npu)
        if dim is Dimension.LOCAL:
            return (package,)
        if dim is Dimension.ALLTOALL:
            return (local,)
        raise TopologyError(f"alltoall fabric has no {dim} dimension")

    def switch_for(self, src: int, dst: int) -> SwitchChannel:
        """Deterministic sender-side switch assignment for an (src, dst) pair.

        Uses the package-distance Latin-square spread: with K switches the
        pair at package distance d uses switch (d - 1) mod K, so distinct
        peers of one sender land on distinct switches whenever K >= peers,
        reproducing the contention-free "one link per peer" setup of
        Sec. V-A while still modelling switch sharing when K is small.
        """
        src_pkg = self.coords(src)[1]
        dst_pkg = self.coords(dst)[1]
        if src_pkg == dst_pkg:
            raise TopologyError(
                f"intra-package pair {src}->{dst} must use the local dimension"
            )
        distance = (dst_pkg - src_pkg) % self.shape.packages
        return self.switches[(distance - 1) % self.global_switches]
