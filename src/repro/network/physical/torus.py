"""Hierarchical M x N x K torus fabric (Fig. 3a).

Coordinates: an NPU has (local, horizontal, vertical) = (l, h, v) with
``npu_id = l + M*h + M*N*v``.  The local dimension is built from
unidirectional intra-package rings; the horizontal and vertical
dimensions from bidirectional inter-package rings, each contributing one
clockwise and one counter-clockwise unidirectional channel (Sec. III-C:
"Each bidirectional ring is divided into two unidirectional rings").
"""

from __future__ import annotations

from repro.config.parameters import NetworkConfig, TorusShape
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import TopologyError
from repro.network.physical.fabric import Fabric
from repro.dims import Dimension


class TorusFabric(Fabric):
    """A physical hierarchical torus with dedicated per-ring links."""

    def __init__(
        self,
        shape: TorusShape,
        network: NetworkConfig,
        local_rings: int = 2,
        horizontal_rings: int = 2,
        vertical_rings: int = 2,
        clock: Clock = DEFAULT_CLOCK,
    ):
        super().__init__(shape.num_npus, network, clock)
        if local_rings < 1 or horizontal_rings < 1 or vertical_rings < 1:
            raise TopologyError("ring counts must be >= 1")
        self.shape = shape
        self.local_rings = local_rings
        self.horizontal_rings = horizontal_rings
        self.vertical_rings = vertical_rings
        self._build()

    # -- coordinates -----------------------------------------------------------

    def npu_id(self, local: int, horizontal: int, vertical: int) -> int:
        s = self.shape
        if not (0 <= local < s.local and 0 <= horizontal < s.horizontal
                and 0 <= vertical < s.vertical):
            raise TopologyError(
                f"coords ({local},{horizontal},{vertical}) outside shape {s}"
            )
        return local + s.local * horizontal + s.local * s.horizontal * vertical

    def coords(self, npu: int) -> tuple[int, int, int]:
        s = self.shape
        if not 0 <= npu < s.num_npus:
            raise TopologyError(f"npu {npu} outside shape {s}")
        local = npu % s.local
        horizontal = (npu // s.local) % s.horizontal
        vertical = npu // (s.local * s.horizontal)
        return local, horizontal, vertical

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        s = self.shape
        net = self.network

        # Local dimension: `local_rings` unidirectional intra-package rings
        # per package, alternating direction for link-load balance.
        if s.local >= 2:
            for v in range(s.vertical):
                for h in range(s.horizontal):
                    nodes = [self.npu_id(l, h, v) for l in range(s.local)]
                    rings = [
                        self._build_ring(
                            nodes, net.local_link, "local",
                            name=f"local(h={h},v={v})#{r}", reverse=bool(r % 2),
                        )
                        for r in range(self.local_rings)
                    ]
                    self._pair_ring_directions(rings)
                    self._add_channels(Dimension.LOCAL, (h, v), rings)

        # Horizontal dimension: bidirectional rings over packages with the
        # same (local, vertical); each yields a CW and a CCW channel.
        if s.horizontal >= 2:
            for v in range(s.vertical):
                for l in range(s.local):
                    nodes = [self.npu_id(l, h, v) for h in range(s.horizontal)]
                    rings = []
                    for r in range(self.horizontal_rings):
                        rings.append(self._build_ring(
                            nodes, net.package_link, "package",
                            name=f"horizontal(l={l},v={v})#{r}cw", reverse=False))
                        rings.append(self._build_ring(
                            nodes, net.package_link, "package",
                            name=f"horizontal(l={l},v={v})#{r}ccw", reverse=True))
                    self._pair_ring_directions(rings)
                    self._add_channels(Dimension.HORIZONTAL, (l, v), rings)

        # Vertical dimension: same construction over (local, horizontal).
        if s.vertical >= 2:
            for h in range(s.horizontal):
                for l in range(s.local):
                    nodes = [self.npu_id(l, h, v) for v in range(s.vertical)]
                    rings = []
                    for r in range(self.vertical_rings):
                        rings.append(self._build_ring(
                            nodes, net.package_link, "package",
                            name=f"vertical(l={l},h={h})#{r}cw", reverse=False))
                        rings.append(self._build_ring(
                            nodes, net.package_link, "package",
                            name=f"vertical(l={l},h={h})#{r}ccw", reverse=True))
                    self._pair_ring_directions(rings)
                    self._add_channels(Dimension.VERTICAL, (h, l), rings)

        if not self.channels:
            raise TopologyError(
                f"degenerate torus {s}: every dimension has size 1"
            )

    def group_of(self, dim: Dimension, npu: int) -> tuple[int, ...]:
        """The group key of ``npu`` within ``dim``."""
        l, h, v = self.coords(npu)
        if dim is Dimension.LOCAL:
            return (h, v)
        if dim is Dimension.HORIZONTAL:
            return (l, v)
        if dim is Dimension.VERTICAL:
            return (h, l)
        raise TopologyError(f"torus has no {dim} dimension")
