"""Physical fabric base: links, channels, and endpoint bookkeeping.

A fabric owns every physical link in the system plus the channel
structures (rings, switches) built over them.  Concrete builders live in
``torus.py`` and ``alltoall.py``.
"""

from __future__ import annotations

from typing import Iterable

from repro.config.parameters import LinkConfig, NetworkConfig
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import TopologyError
from repro.network.channel import Channel, RingChannel, SwitchChannel, pair_reverse_rings
from repro.network.link import Link
from repro.dims import Dimension

#: A dimension group key: the coordinates held fixed while traversing the
#: dimension (e.g. for the vertical dimension, (local_idx, horizontal_idx)).
GroupKey = tuple[int, ...]


class Fabric:
    """Base class holding links and per-dimension channel groups."""

    def __init__(self, num_npus: int, network: NetworkConfig, clock: Clock = DEFAULT_CLOCK):
        if num_npus < 1:
            raise TopologyError(f"fabric needs >= 1 NPU, got {num_npus}")
        self.num_npus = num_npus
        self.network = network
        self.clock = clock
        self.links: list[Link] = []
        #: channels[dim][group_key] -> list of parallel channels for that group
        self.channels: dict[Dimension, dict[GroupKey, list[Channel]]] = {}
        self._next_switch_id = num_npus

    # -- construction helpers -------------------------------------------------

    def _new_link(self, src: int, dst: int, config: LinkConfig, kind: str) -> Link:
        link = Link(src, dst, config, kind=kind, clock=self.clock)
        self.links.append(link)
        return link

    def _alloc_switch_id(self) -> int:
        switch_id = self._next_switch_id
        self._next_switch_id += 1
        return switch_id

    def _build_ring(
        self, nodes: list[int], config: LinkConfig, kind: str, name: str, reverse: bool
    ) -> RingChannel:
        """Create a unidirectional ring channel with dedicated links."""
        order = list(reversed(nodes)) if reverse else list(nodes)
        links = [
            self._new_link(order[i], order[(i + 1) % len(order)], config, kind)
            for i in range(len(order))
        ]
        return RingChannel(order, links, name=name)

    def _build_switch(
        self, nodes: list[int], config: LinkConfig, name: str
    ) -> SwitchChannel:
        """Create a global switch with an uplink/downlink per node."""
        switch_id = self._alloc_switch_id()
        uplinks = {n: self._new_link(n, switch_id, config, "package") for n in nodes}
        downlinks = {n: self._new_link(switch_id, n, config, "package") for n in nodes}
        return SwitchChannel(switch_id, nodes, uplinks, downlinks, name=name)

    def _add_channels(
        self, dim: Dimension, group: GroupKey, channels: Iterable[Channel]
    ) -> None:
        self.channels.setdefault(dim, {}).setdefault(group, []).extend(channels)

    def _pair_ring_directions(self, rings: list[RingChannel]) -> None:
        """Pair consecutive counter-rotating rings as reroute companions.

        All builders emit alternating-direction rings back to back (cw/ccw
        pairs, or ``reverse=bool(r % 2)``), so rings ``2i`` and ``2i+1``
        cover the same nodes in opposite orders.  A trailing unpaired ring
        (odd ring count) keeps ``reverse_channel = None``.
        """
        for i in range(0, len(rings) - 1, 2):
            pair_reverse_rings(rings[i], rings[i + 1])

    # -- queries ---------------------------------------------------------------

    @property
    def dimensions(self) -> list[Dimension]:
        """Dimensions present, in collective traversal order (Sec. III-D)."""
        from repro.dims import TRAVERSAL_ORDER

        return [d for d in TRAVERSAL_ORDER if d in self.channels]

    def groups(self, dim: Dimension) -> dict[GroupKey, list[Channel]]:
        if dim not in self.channels:
            raise TopologyError(f"fabric has no {dim} dimension")
        return self.channels[dim]

    def channels_for(self, dim: Dimension, group: GroupKey) -> list[Channel]:
        groups = self.groups(dim)
        if group not in groups:
            raise TopologyError(f"no group {group} in {dim} dimension")
        return groups[group]

    def dim_size(self, dim: Dimension) -> int:
        """Number of NPUs in each group of ``dim`` (uniform by construction)."""
        groups = self.groups(dim)
        sizes = {len(chs[0].nodes) for chs in groups.values()}
        if len(sizes) != 1:
            raise TopologyError(
                f"non-uniform group sizes in {dim}: {sorted(sizes)}")
        return min(sizes)

    def total_links(self) -> int:
        return len(self.links)

    def reset(self) -> None:
        """Clear link reservations/stats so the fabric can be reused."""
        for link in self.links:
            link.reset()

    def utilization_report(self) -> dict[str, float]:
        """Aggregate busy-byte counters per link kind (reporting helper)."""
        report: dict[str, float] = {}
        for link in self.links:
            report[f"{link.kind}_bytes"] = report.get(f"{link.kind}_bytes", 0.0) + link.stats.bytes
            report[f"{link.kind}_busy_cycles"] = (
                report.get(f"{link.kind}_busy_cycles", 0.0) + link.stats.busy_cycles
            )
        return report
