"""Communication channels: dedicated link structures collectives run over.

A *channel* is a set of physical links that together form one unit of
parallelism the scheduler can dedicate chunks to — one unidirectional
ring, or one global switch (Sec. IV-B: "each LSQ is dedicated to one
uni-directional ring in that phase"; "the number of global switches
determine the number of LSQs for the alltoall dimension").
"""

from __future__ import annotations

from typing import Sequence

from repro.network.link import Link
from repro.errors import NetworkError, TopologyError


class RingChannel:
    """One unidirectional ring over ``nodes`` with a dedicated link per hop.

    ``nodes`` is the traversal order: node ``nodes[i]`` sends to
    ``nodes[(i + 1) % len(nodes)]``.
    """

    def __init__(self, nodes: Sequence[int], links: Sequence[Link], name: str = "ring"):
        if len(nodes) < 2:
            raise TopologyError(f"a ring needs >= 2 nodes, got {len(nodes)}")
        if len(set(nodes)) != len(nodes):
            raise TopologyError(f"ring nodes must be unique: {nodes}")
        if len(links) != len(nodes):
            raise TopologyError(
                f"a ring over {len(nodes)} nodes needs {len(nodes)} links, got {len(links)}"
            )
        for i, link in enumerate(links):
            expected_src = nodes[i]
            expected_dst = nodes[(i + 1) % len(nodes)]
            if link.src != expected_src or link.dst != expected_dst:
                raise TopologyError(
                    f"ring link {i} connects {link.src}->{link.dst}, "
                    f"expected {expected_src}->{expected_dst}"
                )
        self.nodes = list(nodes)
        self.links = list(links)
        self.name = name
        self._index = {node: i for i, node in enumerate(self.nodes)}
        #: Per-(src, dst) route cache: ring collectives request the same
        #: handful of paths once per message, and rebuilding the hop list
        #: is pure modular arithmetic over immutable state — cache it.
        #: Callers must treat returned paths as read-only (they do: paths
        #: are only iterated by the backends and the transport).
        self._path_cache: dict[tuple[int, int], list[Link]] = {}
        #: A counter-rotating ring over the same nodes, when the fabric
        #: provides one (see :func:`pair_reverse_rings`).  Ring collectives
        #: use it to reroute around a permanently dead link.
        self.reverse_channel: "RingChannel | None" = None

    @property
    def size(self) -> int:
        return len(self.nodes)

    def position(self, node: int) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise TopologyError(f"node {node} is not on ring {self.name}") from None

    def next_node(self, node: int) -> int:
        return self.nodes[(self.position(node) + 1) % self.size]

    def prev_node(self, node: int) -> int:
        return self.nodes[(self.position(node) - 1) % self.size]

    def node_at_distance(self, node: int, distance: int) -> int:
        """The node ``distance`` hops downstream of ``node``."""
        return self.nodes[(self.position(node) + distance) % self.size]

    def link_from(self, node: int) -> Link:
        """The dedicated link out of ``node`` along the ring."""
        return self.links[self.position(node)]

    def path(self, src: int, dst: int) -> list[Link]:
        """Consecutive downstream links from ``src`` to ``dst`` (cached)."""
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        i, j = self.position(src), self.position(dst)
        if i == j:
            raise NetworkError(f"path src == dst == {src}")
        hops = (j - i) % self.size
        path = [self.links[(i + k) % self.size] for k in range(hops)]
        self._path_cache[(src, dst)] = path
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingChannel({self.name}, nodes={self.nodes})"


def pair_reverse_rings(forward: RingChannel, backward: RingChannel) -> None:
    """Mark two rings as each other's counter-rotating direction.

    The rings must traverse the same node set in opposite orders; each
    becomes the other's ``reverse_channel`` (the surviving direction a
    collective can reroute over when one direction's link dies).
    """
    n = forward.size
    if set(forward.nodes) != set(backward.nodes):
        raise TopologyError(
            f"cannot pair rings over different node sets: "
            f"{forward.nodes} vs {backward.nodes}"
        )
    start = backward.position(forward.nodes[0])
    expected = [backward.nodes[(start - k) % n] for k in range(n)]
    if expected != forward.nodes:
        raise TopologyError(
            f"rings {forward.name!r} and {backward.name!r} do not "
            f"counter-rotate: {forward.nodes} vs {backward.nodes}"
        )
    forward.reverse_channel = backward
    backward.reverse_channel = forward


class SwitchChannel:
    """One global switch: an uplink and a downlink per attached NPU.

    A message from ``src`` to ``dst`` traverses ``uplink[src]`` then
    ``downlink[dst]`` (pipelined at packet granularity by the backend).
    """

    def __init__(
        self,
        switch_id: int,
        nodes: Sequence[int],
        uplinks: dict[int, Link],
        downlinks: dict[int, Link],
        name: str = "switch",
    ):
        if len(nodes) < 2:
            raise TopologyError(f"a switch needs >= 2 attached nodes, got {len(nodes)}")
        missing_up = [n for n in nodes if n not in uplinks]
        missing_down = [n for n in nodes if n not in downlinks]
        if missing_up or missing_down:
            raise TopologyError(
                f"switch {switch_id} missing uplinks {missing_up} / downlinks {missing_down}"
            )
        for node in nodes:
            up, down = uplinks[node], downlinks[node]
            if up.src != node or up.dst != switch_id:
                raise TopologyError(f"bad uplink for node {node}: {up!r}")
            if down.src != switch_id or down.dst != node:
                raise TopologyError(f"bad downlink for node {node}: {down!r}")
        self.switch_id = switch_id
        self.nodes = list(nodes)
        self.uplinks = dict(uplinks)
        self.downlinks = dict(downlinks)
        self.name = name
        #: Per-(src, dst) route cache; see :class:`RingChannel`.
        self._path_cache: dict[tuple[int, int], list[Link]] = {}

    @property
    def size(self) -> int:
        return len(self.nodes)

    def path(self, src: int, dst: int) -> list[Link]:
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        if src == dst:
            raise NetworkError(f"path src == dst == {src}")
        if src not in self.uplinks:
            raise TopologyError(f"node {src} not attached to switch {self.switch_id}")
        if dst not in self.downlinks:
            raise TopologyError(f"node {dst} not attached to switch {self.switch_id}")
        path = [self.uplinks[src], self.downlinks[dst]]
        self._path_cache[(src, dst)] = path
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SwitchChannel({self.name}, switch={self.switch_id}, nodes={self.nodes})"


Channel = RingChannel | SwitchChannel
