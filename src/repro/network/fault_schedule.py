"""Dynamic fault injection: timed link/node failures driven by the event engine.

Static degradation (:mod:`repro.network.faults`) answers "what does a
permanently slow link cost?".  This module models the *transient* regime
that dominates tail latency at scale: links that flap mid-run, nodes that
pause and resume, and lossy links that drop a fraction of messages.  A
:class:`FaultSchedule` is a JSON-loadable list of timed :class:`FaultEvent`
entries; :meth:`FaultSchedule.install` registers one callback per event on
the simulation's :class:`~repro.events.engine.EventQueue`, so both network
backends honor the schedule through the ordinary event flow — a
``link_down`` at cycle *t* races an in-flight send at *t* in deterministic
schedule order.

Fault semantics are applied at **message injection time**: a message whose
path crosses a down link (or whose endpoint is paused) when the backend
injects it is silently dropped; messages already accepted by the backend
complete normally.  Recovery is the job of the reliable transport
(:mod:`repro.system.transport`), which retransmits on timeout.
"""

from __future__ import annotations

import enum
import json
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ConfigError, NetworkError
from repro.network.faults import degrade_link

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.engine import EventQueue
    from repro.network.link import Link
    from repro.network.message import Message
    from repro.network.physical.fabric import Fabric

#: A directed physical "cable": every parallel link between the pair is
#: affected together (two local rings between NPUs 0 and 1 share the
#: failure domain of the physical connector).
Endpoints = tuple[int, int]


class FaultAction(enum.Enum):
    """The fault-event vocabulary a schedule may use."""

    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    LINK_DEGRADE = "link_degrade"
    NODE_PAUSE = "node_pause"
    NODE_RESUME = "node_resume"
    DROP = "drop"


#: Actions that require a ``link`` reference.
_LINK_ACTIONS = {FaultAction.LINK_DOWN, FaultAction.LINK_UP,
                 FaultAction.LINK_DEGRADE}
#: Actions that require a ``node`` reference.
_NODE_ACTIONS = {FaultAction.NODE_PAUSE, FaultAction.NODE_RESUME}

#: Keys one schedule event may carry (shared with the static linter).
EVENT_KEYS = {"time", "action", "link", "node", "bandwidth_factor",
              "extra_latency_cycles", "probability"}
#: Top-level keys of a fault-schedule document.
SCHEDULE_KEYS = {"seed", "events"}


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault action.

    ``link`` names a directed endpoint pair ``(src, dst)``; ``node`` an
    NPU id.  ``probability`` (action ``drop``) sets the per-message drop
    probability of the link from that time on — with ``link`` omitted it
    applies to every link without its own rate.
    """

    time: float
    action: FaultAction
    link: Optional[Endpoints] = None
    node: Optional[int] = None
    bandwidth_factor: float = 1.0
    extra_latency_cycles: float = 0.0
    probability: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError(f"fault event time must be >= 0, got {self.time}")
        if self.action in _LINK_ACTIONS and self.link is None:
            raise ConfigError(f"{self.action.value} event needs a 'link' [src, dst]")
        if self.action in _NODE_ACTIONS and self.node is None:
            raise ConfigError(f"{self.action.value} event needs a 'node' id")
        if self.link is not None:
            src, dst = self.link
            if src == dst:
                raise ConfigError(f"fault link endpoints must differ, got {self.link}")
        if not 0 < self.bandwidth_factor <= 1:
            raise ConfigError(
                f"bandwidth_factor must be in (0, 1], got {self.bandwidth_factor}"
            )
        if self.extra_latency_cycles < 0:
            raise ConfigError(
                f"extra_latency_cycles must be >= 0, got {self.extra_latency_cycles}"
            )
        if not 0 <= self.probability <= 1:
            raise ConfigError(
                f"drop probability must be in [0, 1], got {self.probability}"
            )

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        unknown = set(data) - EVENT_KEYS
        if unknown:
            raise ConfigError(f"unknown fault-event keys: {sorted(unknown)}")
        try:
            action = FaultAction(data["action"])
        except KeyError:
            raise ConfigError("fault event missing 'action'") from None
        except ValueError:
            raise ConfigError(
                f"unknown fault action {data['action']!r}; expected one of "
                f"{sorted(a.value for a in FaultAction)}"
            ) from None
        link = data.get("link")
        if link is not None:
            if (not isinstance(link, (list, tuple)) or len(link) != 2
                    or not all(isinstance(e, int) and not isinstance(e, bool)
                               for e in link)):
                raise ConfigError(
                    f"fault link must be a [src, dst] pair of ints, got {link!r}"
                )
            link = (link[0], link[1])
        node = data.get("node")
        if node is not None and (isinstance(node, bool) or not isinstance(node, int)):
            raise ConfigError(f"fault node must be an int NPU id, got {node!r}")
        time = data.get("time")
        if isinstance(time, bool) or not isinstance(time, (int, float)):
            raise ConfigError(f"fault event time must be a number, got {time!r}")
        return cls(
            time=float(time),
            action=action,
            link=link,
            node=node,
            bandwidth_factor=float(data.get("bandwidth_factor", 1.0)),
            extra_latency_cycles=float(data.get("extra_latency_cycles", 0.0)),
            probability=float(data.get("probability", 0.0)),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"time": self.time, "action": self.action.value}
        if self.link is not None:
            out["link"] = list(self.link)
        if self.node is not None:
            out["node"] = self.node
        if self.action is FaultAction.LINK_DEGRADE:
            out["bandwidth_factor"] = self.bandwidth_factor
            out["extra_latency_cycles"] = self.extra_latency_cycles
        if self.action is FaultAction.DROP:
            out["probability"] = self.probability
        return out


class FaultState:
    """Live fault state the network backends consult at injection time."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        #: Seeded RNG for probabilistic drops; consumed in injection order,
        #: so identical runs draw identical sequences (determinism).
        self.rng = random.Random(seed)
        self.down: set[Endpoints] = set()
        self.paused: set[int] = set()
        self.drop_probability: dict[Endpoints, float] = {}
        self.default_drop_probability = 0.0
        self.messages_dropped = 0
        self.drops_by_reason: dict[str, int] = {}

    def classify(self, message: "Message",
                 path: list["Link"]) -> Optional[tuple[str, str]]:
        """Why ``message`` would be lost if injected now, as a
        ``(kind, reason)`` pair; ``None`` if healthy.

        ``kind`` is one of ``"node_paused"``, ``"link_down"``,
        ``"random_drop"`` — the reliable transport treats a paused endpoint
        as transient flow control rather than a path failure, so it must be
        able to tell the classes apart without parsing the prose.
        """
        if message.src in self.paused:
            return "node_paused", f"node {message.src} paused"
        if message.dst in self.paused:
            return "node_paused", f"node {message.dst} paused"
        for link in path:
            if (link.src, link.dst) in self.down:
                return "link_down", f"link {link.src}->{link.dst} down"
        if self.drop_probability or self.default_drop_probability > 0.0:
            for link in path:
                p = self.drop_probability.get(
                    (link.src, link.dst), self.default_drop_probability)
                if p > 0.0 and self.rng.random() < p:
                    return "random_drop", f"random drop on link {link.src}->{link.dst}"
        return None

    def drop_reason(self, message: "Message", path: list["Link"]) -> Optional[str]:
        """Prose-only variant of :meth:`classify` (kept for callers that
        only report)."""
        classified = self.classify(message, path)
        return classified[1] if classified is not None else None

    def record_drop(self, reason: str) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def down_links_on(self, path: list["Link"]) -> list[Endpoints]:
        """The currently-down endpoint pairs crossed by ``path``."""
        return [(l.src, l.dst) for l in path if (l.src, l.dst) in self.down]

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable view of the live fault set.

        Feeds the watchdog's diagnostic bundle and the checkpoint verifier;
        ``rng_fingerprint`` summarizes the drop-RNG position so a resumed
        run can prove it consumed the identical random sequence.
        """
        import hashlib

        return {
            "seed": self.seed,
            "down_links": sorted(list(pair) for pair in self.down),
            "paused_nodes": sorted(self.paused),
            "drop_probability": {
                f"{src}->{dst}": p
                for (src, dst), p in sorted(self.drop_probability.items())
            },
            "default_drop_probability": self.default_drop_probability,
            "messages_dropped": self.messages_dropped,
            "drops_by_reason": dict(sorted(self.drops_by_reason.items())),
            "rng_fingerprint": hashlib.sha256(
                repr(self.rng.getstate()).encode()).hexdigest()[:16],
        }


class FaultSchedule:
    """An ordered set of timed fault events, loadable from JSON.

    The document format (see ``docs/FAULTS.md``)::

        {"seed": 7,
         "events": [
            {"time": 50000,  "action": "link_down", "link": [1, 2]},
            {"time": 250000, "action": "link_up",   "link": [1, 2]},
            {"time": 0,      "action": "drop", "link": [2, 3],
             "probability": 0.02},
            {"time": 100000, "action": "link_degrade", "link": [3, 0],
             "bandwidth_factor": 0.5, "extra_latency_cycles": 100},
            {"time": 80000,  "action": "node_pause",  "node": 5},
            {"time": 120000, "action": "node_resume", "node": 5}]}
    """

    def __init__(self, events: list[FaultEvent], seed: int = 0):
        self.events = sorted(events, key=lambda e: e.time)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSchedule":
        if not isinstance(data, dict):
            raise ConfigError(
                f"fault schedule must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - SCHEDULE_KEYS
        if unknown:
            raise ConfigError(f"unknown fault-schedule keys: {sorted(unknown)}")
        seed = data.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ConfigError(f"fault-schedule seed must be an int, got {seed!r}")
        raw_events = data.get("events", [])
        if not isinstance(raw_events, list):
            raise ConfigError("fault-schedule 'events' must be a list")
        events = [FaultEvent.from_dict(e) if isinstance(e, dict)
                  else _reject_event(e) for e in raw_events]
        return cls(events, seed=seed)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault-schedule JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "FaultSchedule":
        try:
            with open(path) as f:
                text = f.read()
        except OSError as exc:
            raise ConfigError(f"cannot read fault schedule {path}: {exc}") from exc
        return cls.from_json(text)

    def to_dict(self) -> dict[str, Any]:
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    # -- installation -----------------------------------------------------------

    def install(self, fabric: "Fabric", events: "EventQueue") -> FaultState:
        """Validate against ``fabric`` and schedule every fault event.

        Returns the :class:`FaultState` the backends should consult (set it
        as ``backend.faults``).  Must be called before the simulation
        starts (event times are absolute cycles from t=0).
        """
        links_by_pair: dict[Endpoints, list["Link"]] = {}
        for link in fabric.links:
            links_by_pair.setdefault((link.src, link.dst), []).append(link)

        for event in self.events:
            if event.link is not None and event.link not in links_by_pair:
                raise NetworkError(
                    f"fault event at t={event.time} references link "
                    f"{event.link[0]}->{event.link[1]}, which does not exist "
                    f"in the fabric"
                )
            if event.node is not None and not 0 <= event.node < fabric.num_npus:
                raise NetworkError(
                    f"fault event at t={event.time} references node "
                    f"{event.node}, outside the fabric's {fabric.num_npus} NPUs"
                )

        state = FaultState(self.seed)
        for event in self.events:
            events.schedule_at(
                event.time, self._apply_callback(event, state, links_by_pair))
        return state

    def _apply_callback(self, event: FaultEvent, state: FaultState,
                        links_by_pair: dict[Endpoints, list["Link"]]):
        def apply() -> None:
            if event.action is FaultAction.LINK_DOWN:
                state.down.add(event.link)  # type: ignore[arg-type]
            elif event.action is FaultAction.LINK_UP:
                state.down.discard(event.link)  # type: ignore[arg-type]
            elif event.action is FaultAction.LINK_DEGRADE:
                for link in links_by_pair[event.link]:  # type: ignore[index]
                    degrade_link(link,
                                 bandwidth_factor=event.bandwidth_factor,
                                 extra_latency_cycles=event.extra_latency_cycles)
            elif event.action is FaultAction.NODE_PAUSE:
                state.paused.add(event.node)  # type: ignore[arg-type]
            elif event.action is FaultAction.NODE_RESUME:
                state.paused.discard(event.node)  # type: ignore[arg-type]
            elif event.action is FaultAction.DROP:
                if event.link is None:
                    state.default_drop_probability = event.probability
                else:
                    state.drop_probability[event.link] = event.probability

        return apply


def _reject_event(entry: Any) -> FaultEvent:
    raise ConfigError(
        f"fault-schedule events must be objects, got {type(entry).__name__}"
    )
