"""Default analytical event-driven network backend.

Models every unidirectional link as a FIFO-served resource and pipelines
multi-hop transfers at packet granularity (virtual cut-through): the
downstream hop may start once the first packet's tail has arrived, not
after the whole message.  Intermediate fabric hops (switches) add the
configured router latency.

This is the Garnet substitution documented in DESIGN.md: it preserves
serialization, propagation, FIFO queuing and pipelining — the quantities
the paper's comparisons depend on — at a tiny fraction of the cost of a
flit-level simulation.
"""

from __future__ import annotations

from repro.config.parameters import NetworkConfig
from repro.events.engine import EventQueue
from repro.network.api import DeliveryCallback, NetworkBackend, validate_path
from repro.network.link import Link
from repro.network.message import Message


class FastBackend(NetworkBackend):
    """Analytical link-level backend (the default)."""

    def __init__(self, events: EventQueue, network: NetworkConfig, sanitizer=None):
        super().__init__(events, sanitizer=sanitizer)
        self.network = network

    def send(self, message: Message, path: list[Link], on_delivered: DeliveryCallback) -> None:
        validate_path(message, path)
        self._record_send(message)
        now = self.events.now
        message.created_at = now
        if self.faults is not None and self._drop_if_faulty(message, path):
            return

        # Reserve each hop in order; hop k may begin once the head of the
        # message has arrived at its input (packet-pipelined forwarding).
        # Loop-invariant lookups are hoisted: this method runs once per
        # message and dominates the fast backend's per-send cost.
        router_latency = self.network.router_latency_cycles
        size_bytes = message.size_bytes
        arrival = now
        injected = None
        # validate_path guarantees a non-empty path, but keep last_tail
        # bound regardless so a degenerate path can never surface as an
        # UnboundLocalError two statements later.
        last_tail = now
        for hop, link in enumerate(path):
            if hop > 0:
                arrival += router_latency
            start, head, tail = link.reserve(arrival, size_bytes)
            if injected is None:
                injected = start
            # The next hop can start serializing when the first packet has
            # fully arrived, but it also cannot finish before this hop's
            # tail has arrived; Link.reserve's FIFO ordering handles the
            # rest because per-hop serialization time only shrinks or stays
            # equal downstream when bandwidths match.
            arrival = head
            last_tail = tail

        message.injected_at = injected if injected is not None else now
        delivered_at = max(last_tail, arrival)
        message.delivered_at = delivered_at

        def deliver() -> None:
            self._record_delivery(message)
            on_delivered(message)

        self.events.schedule_at(delivered_at, deliver)
