"""Default analytical event-driven network backend.

Models every unidirectional link as a FIFO-served resource and pipelines
multi-hop transfers at packet granularity (virtual cut-through): the
downstream hop may start once the first packet's tail has arrived, not
after the whole message.  Intermediate fabric hops (switches) add the
configured router latency.

This is the Garnet substitution documented in DESIGN.md: it preserves
serialization, propagation, FIFO queuing and pipelining — the quantities
the paper's comparisons depend on — at a tiny fraction of the cost of a
flit-level simulation.
"""

from __future__ import annotations

from repro.config.parameters import NetworkConfig
from repro.events.engine import EventQueue
from repro.network.api import DeliveryCallback, NetworkBackend, validate_path
from repro.network.link import Link
from repro.network.message import Message


class FastBackend(NetworkBackend):
    """Analytical link-level backend (the default)."""

    def __init__(self, events: EventQueue, network: NetworkConfig, sanitizer=None):
        super().__init__(events, sanitizer=sanitizer)
        self.network = network
        #: delivered_at -> [(message, on_delivered), ...] in send order.
        #: All same-cycle deliveries drain through ONE event dispatch (see
        #: send); ring/alltoall steps deliver N messages at the same cycle,
        #: so this coalesces the dominant event population of a collective.
        self._delivery_batches: dict[float, list] = {}
        #: id(path) -> the validated path object (strong ref, so the id
        #: stays valid) plus its endpoints.  Routes come from the topology
        #: layer's per-channel route caches (PR 5), a small fixed set of
        #: list objects reused for every send — so after the first send per
        #: route, validation is one dict hit.  A path revalidates when the
        #: message endpoints differ (same list object reused for another
        #: pair would be a route-table bug validate_path must catch).
        self._validated_routes: dict[int, tuple] = {}

    def send(self, message: Message, path: list[Link], on_delivered: DeliveryCallback) -> None:
        cached = self._validated_routes.get(id(path))
        if (cached is None or cached[0] is not path
                or cached[1] != message.src or cached[2] != message.dst):
            validate_path(message, path)
            self._validated_routes[id(path)] = (path, message.src, message.dst)
        self._record_send(message)
        now = self.events.now
        message.created_at = now
        if self.faults is not None and self._drop_if_faulty(message, path):
            return

        # Reserve each hop in order; hop k may begin once the head of the
        # message has arrived at its input (packet-pipelined forwarding).
        # Loop-invariant lookups are hoisted: this method runs once per
        # message and dominates the fast backend's per-send cost.
        router_latency = self.network.router_latency_cycles
        size_bytes = message.size_bytes
        arrival = now
        injected = None
        # validate_path guarantees a non-empty path, but keep last_tail
        # bound regardless so a degenerate path can never surface as an
        # UnboundLocalError two statements later.
        last_tail = now
        for hop, link in enumerate(path):
            if hop > 0:
                arrival += router_latency
            start, head, tail = link.reserve(arrival, size_bytes)
            if injected is None:
                injected = start
            # The next hop can start serializing when the first packet has
            # fully arrived, but it also cannot finish before this hop's
            # tail has arrived; Link.reserve's FIFO ordering handles the
            # rest because per-hop serialization time only shrinks or stays
            # equal downstream when bandwidths match.
            arrival = head
            last_tail = tail

        message.injected_at = injected if injected is not None else now
        delivered_at = max(last_tail, arrival)
        message.delivered_at = delivered_at

        # Same-cycle delivery coalescing: the first message bound for a
        # given cycle schedules the one drain event; later sends append.
        # Within a batch, messages deliver in send order — the same
        # relative order the per-message events produced — and moving all
        # of a cycle's deliveries to the head of that cycle's drain pass
        # is a same-timestamp permutation, which the schedule-perturbation
        # race detector proves the simulation is invariant under
        # (docs/DETERMINISM.md).  The folded dispatches are credited to
        # events_simulated so throughput stays comparable.
        batches = self._delivery_batches
        batch = batches.get(delivered_at)
        if batch is not None:
            batch.append((message, on_delivered))
        else:
            batches[delivered_at] = [(message, on_delivered)]
            self.events.schedule_at(delivered_at, self._drain_deliveries)

    def _drain_deliveries(self) -> None:
        # Pop before iterating: an on_delivered handler that sends again
        # with zero network latency lands in a fresh batch whose drain
        # event fires later in the same cycle's pass, exactly as the
        # unbatched design ordered it.
        batch = self._delivery_batches.pop(self.events.now)
        if len(batch) > 1:
            self.events.credit_batched(len(batch) - 1)
        record = self._record_delivery
        for message, on_delivered in batch:
            record(message)
            on_delivered(message)
