"""Point-to-point routing over a fabric's link graph.

Collectives route along their dedicated channels, but point-to-point
transfers (pipeline-parallel activations, parameter fetches) need a path
between arbitrary endpoints.  :class:`FabricRouter` builds a directed
graph of every physical link — NPUs and switch endpoints alike — and
returns minimum-latency link paths, preferring higher-bandwidth links on
ties.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import NetworkError
from repro.network.link import Link
from repro.network.physical.fabric import Fabric


class FabricRouter:
    """Shortest-path router over all physical links of a fabric."""

    def __init__(self, fabric: Fabric):
        self.fabric = fabric
        self.graph = nx.DiGraph()
        for link in fabric.links:
            # Weight: per-hop latency plus a small bandwidth-derived tie
            # breaker so faster links win among equal-latency paths.
            weight = link.config.latency_cycles + 1.0 / link.config.bandwidth_gbps
            existing = self.graph.get_edge_data(link.src, link.dst)
            if existing is None or weight < existing["weight"]:
                self.graph.add_edge(link.src, link.dst, weight=weight, link=link)
        self._cache: dict[tuple[int, int], list[Link]] = {}

    def path(self, src: int, dst: int) -> list[Link]:
        """The minimum-latency link path from ``src`` to ``dst``."""
        if src == dst:
            raise NetworkError(f"path src == dst == {src}")
        cached = self._cache.get((src, dst))
        if cached is not None:
            return cached
        try:
            nodes = nx.shortest_path(self.graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise NetworkError(f"no route from {src} to {dst}") from None
        links = [
            self.graph.edges[a, b]["link"] for a, b in zip(nodes, nodes[1:])
        ]
        self._cache[(src, dst)] = links
        return links

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.path(src, dst))

    def reachable(self, src: int, dst: int) -> bool:
        try:
            self.path(src, dst)
            return True
        except NetworkError:
            return False

    def diameter_hops(self) -> int:
        """Longest shortest path between any NPU pair (hops)."""
        worst = 0
        for src in range(self.fabric.num_npus):
            for dst in range(self.fabric.num_npus):
                if src != dst:
                    worst = max(worst, self.hop_count(src, dst))
        return worst
