"""Fault injection: degraded links and straggler endpoints.

Real platforms suffer flaky cables, downtrained links and slow nodes; a
co-design simulator should answer "what does one bad link cost an
all-reduce?".  Faults here are static per run (applied before the
simulation starts), matching how such studies sweep degradation factors.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import NetworkError
from repro.network.link import Link
from repro.network.physical.fabric import Fabric


def degrade_link(link: Link, bandwidth_factor: float = 1.0,
                 extra_latency_cycles: float = 0.0) -> Link:
    """Degrade one link in place: scale its bandwidth down and/or add
    propagation latency.  Returns the link for chaining."""
    if not 0 < bandwidth_factor <= 1:
        raise NetworkError(
            f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
        )
    if extra_latency_cycles < 0:
        raise NetworkError("extra latency must be >= 0")
    link.config = replace(
        link.config,
        bandwidth_gbps=link.config.bandwidth_gbps * bandwidth_factor,
        latency_cycles=link.config.latency_cycles + extra_latency_cycles,
    )
    return link


def degrade_random_links(
    fabric: Fabric,
    count: int,
    bandwidth_factor: float = 1.0,
    seed: int = 0,
    kind: str | None = None,
    extra_latency_cycles: float = 0.0,
) -> list[Link]:
    """Degrade ``count`` deterministic-randomly chosen links of ``fabric``
    (optionally restricted to one link kind).  Returns the victims."""
    import random

    candidates = [l for l in fabric.links if kind is None or l.kind == kind]
    if count < 0 or count > len(candidates):
        raise NetworkError(
            f"cannot degrade {count} of {len(candidates)} links"
        )
    rng = random.Random(seed)
    victims = rng.sample(candidates, count)
    for link in victims:
        degrade_link(link, bandwidth_factor=bandwidth_factor,
                     extra_latency_cycles=extra_latency_cycles)
    return victims


def slowest_link_bandwidth(fabric: Fabric) -> float:
    """The minimum link bandwidth in the fabric (GB/s) — the collective
    bandwidth ceiling after degradation."""
    return min(l.config.bandwidth_gbps for l in fabric.links)
