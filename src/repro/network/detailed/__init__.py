"""Detailed flit-level network backend (Garnet-like VC/credit model)."""

from repro.network.detailed.backend import DetailedBackend
from repro.network.detailed.flit import Flit, Packet, build_packets
from repro.network.detailed.router import HopContext, TxPort

__all__ = ["DetailedBackend", "Flit", "HopContext", "Packet", "TxPort", "build_packets"]
