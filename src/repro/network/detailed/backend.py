"""The detailed flit-level network backend (the Garnet stand-in).

Implements the same :class:`NetworkBackend` interface as the fast
backend, but moves every message flit by flit through per-link
:class:`TxPort` instances with VC arbitration and credit flow control.
Orders of magnitude slower than the fast backend — use it to validate
timing on small configurations (see the backend-agreement tests and the
``bench_ablation_backends`` benchmark).
"""

from __future__ import annotations

import itertools

from repro.config.parameters import NetworkConfig
from repro.errors import NetworkError
from repro.events.engine import EventQueue
from repro.network.api import DeliveryCallback, NetworkBackend, validate_path
from repro.network.detailed.flit import build_packets
from repro.network.detailed.router import HopContext, TxPort
from repro.network.link import Link
from repro.network.message import Message


class DetailedBackend(NetworkBackend):
    """Flit/credit/VC-level backend over the same physical links."""

    def __init__(self, events: EventQueue, network: NetworkConfig, sanitizer=None):
        # _ports must exist before super().__init__: the base class assigns
        # ``self.faults = None``, which runs the property setter below.
        self._ports: dict[int, TxPort] = {}
        self._faults = None
        super().__init__(events, sanitizer=sanitizer)
        self.network = network
        # Per-backend VC assignment counter: using the global packet id
        # would rotate VC choices with every packet built anywhere in the
        # process, breaking run-to-run determinism.
        self._vc_seq = itertools.count()

    @property
    def faults(self):
        return self._faults

    @faults.setter
    def faults(self, value) -> None:
        # Burst plans precompute transmission times; a fault-driven link
        # retiming (degrade_link swaps link.config mid-run) would leave a
        # stale plan in flight.  With live faults every port falls back to
        # the per-flit path, which reads the config per transmission.
        self._faults = value
        for port in self._ports.values():
            port.burst_enabled = value is None

    def _port_for(self, link: Link) -> TxPort:
        port = self._ports.get(link.link_id)
        if port is None:
            port = TxPort(link, self.network, self.events, self._port_for)
            if self._faults is not None:
                port.burst_enabled = False
            if self.sanitizer is not None:
                port.observer = self.sanitizer.conservation
                self.sanitizer.conservation.register_port(port)
            self._ports[link.link_id] = port
        return port

    def send(self, message: Message, path: list[Link], on_delivered: DeliveryCallback) -> None:
        validate_path(message, path)
        self._record_send(message)
        message.created_at = self.now
        # Drop before any flit is built so the flit ledgers stay balanced.
        if self._drop_if_faulty(message, path):
            return

        packet_bytes = min(link.config.packet_size_bytes for link in path)
        flit_bytes = self.network.flit_width_bytes
        packets = build_packets(message, packet_bytes, flit_bytes)
        total_flits = sum(len(p.flits) for p in packets)
        if total_flits == 0:
            raise NetworkError("message produced no flits")
        if self.sanitizer is not None:
            self.sanitizer.conservation.flits_created(message, total_flits)

        state = {"remaining": total_flits, "first_tx": None}
        entry_port = self._port_for(path[0])

        def flits_delivered(flits: list) -> None:
            if self.sanitizer is not None:
                self.sanitizer.conservation.flits_delivered(message, len(flits))
            state["remaining"] -= len(flits)
            if state["remaining"] == 0:
                # Approximate injection time as creation (flit-level queues
                # make per-message injection a fuzzy notion); queueing shows
                # up in network_cycles instead.
                message.injected_at = message.created_at
                message.delivered_at = self.now
                self._record_delivery(message)
                on_delivered(message)

        def flit_delivered(flit) -> None:
            flits_delivered((flit,))

        vcs_per_vnet = self.network.vcs_per_vnet
        groups = []
        for packet in packets:
            # One immutable HopContext per packet: every flit of the packet
            # shares hop 0, the VC, and the delivery sinks.
            ctx = HopContext(
                path=path,
                hop=0,
                vc=next(self._vc_seq) % vcs_per_vnet,
                upstream=None,
                on_delivered_flit=flit_delivered,
                on_delivered_flits=flits_delivered,
            )
            groups.append((ctx, packet.flits))
        entry_port.enqueue_packets(groups)

    @property
    def total_flits_sent(self) -> int:
        return sum(port.flits_sent for port in self._ports.values())
