"""Transmission ports with virtual channels and credit flow control.

The detailed backend models every physical link as a :class:`TxPort`: a
set of per-VC flit queues arbitrated round-robin, transmitting one flit
at a time, gated by credits from the downstream buffer (``buffers_per_vc``
slots per VC, Table III #28).  A flit occupies its downstream buffer slot
from transmission start until it departs on the next hop (or is consumed
by the destination NPU, which sinks flits immediately).

This is wormhole switching with flit-level VC interleaving — the same
flow-control family as Garnet, minus per-router microarchitectural
pipeline stages (the per-hop router latency is charged as a constant,
Table III #25).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.config.parameters import NetworkConfig
from repro.errors import NetworkError
from repro.events.engine import EventQueue
from repro.network.detailed.flit import Flit
from repro.network.link import Link


@dataclass
class HopContext:
    """Everything a flit needs to know to traverse its remaining path."""

    path: list[Link]
    hop: int
    vc: int
    upstream: Optional["TxPort"]
    on_delivered_flit: Callable[[Flit], None]

    @property
    def is_last_hop(self) -> bool:
        return self.hop == len(self.path) - 1


class TxPort:
    """The transmit side of one physical link in the detailed backend."""

    def __init__(
        self,
        link: Link,
        network: NetworkConfig,
        events: EventQueue,
        next_port_for: Callable[[Link], "TxPort"],
    ):
        self.link = link
        self.network = network
        self.events = events
        self._next_port_for = next_port_for
        self.queues: list[deque] = [deque() for _ in range(network.vcs_per_vnet)]
        self.credits: list[int] = [network.buffers_per_vc] * network.vcs_per_vnet
        self._rr = 0
        self._sending = False
        self.flits_sent = 0
        #: Optional conservation observer (repro.sanitize.runtime); ``None``
        #: on the default path so instrumentation costs one attribute test.
        self.observer = None
        # Per-flit bandwidth memo keyed on config identity (fault-driven
        # degrades replace link.config, invalidating it) — this port
        # transmits every flit of every message crossing its link, so the
        # GB/s -> bytes/cycle derivation must not run per flit.
        self._bpc_config = None
        self._bytes_per_cycle = 0.0

    # -- queue interface --------------------------------------------------------

    def enqueue(self, flit: Flit, ctx: HopContext) -> None:
        if not 0 <= ctx.vc < len(self.queues):
            raise NetworkError(f"VC {ctx.vc} out of range on {self.link!r}")
        self.queues[ctx.vc].append((flit, ctx))
        if self.observer is not None:
            self.observer.on_flit_enqueued(self, flit, ctx)
        self._try_send()

    def release_credit(self, vc: int) -> None:
        """Downstream buffer slot freed (flit departed the next hop)."""
        if self.observer is not None:
            self.observer.on_credit_released(self, vc)
        self.credits[vc] += 1
        if self.credits[vc] > self.network.buffers_per_vc:
            raise NetworkError(f"credit overflow on {self.link!r} vc={vc}")
        self._try_send()

    # -- arbitration / transmission ------------------------------------------------

    def _pick_vc(self) -> Optional[int]:
        """Round-robin over VCs that have a flit and (if needed) a credit."""
        n = len(self.queues)
        for offset in range(n):
            vc = (self._rr + offset) % n
            if not self.queues[vc]:
                continue
            _, ctx = self.queues[vc][0]
            if ctx.is_last_hop or self.credits[vc] > 0:
                self._rr = (vc + 1) % n
                return vc
        return None

    def _try_send(self) -> None:
        if self._sending:
            return
        vc = self._pick_vc()
        if vc is None:
            return
        self._sending = True
        flit, ctx = self.queues[vc].popleft()

        if not ctx.is_last_hop:
            self.credits[vc] -= 1
        if self.observer is not None:
            self.observer.on_flit_transmit(self, flit, ctx,
                                           credit_taken=not ctx.is_last_hop)
        if ctx.upstream is not None:
            # Leaving the buffer this flit occupied at the upstream hop.
            ctx.upstream.release_credit(vc)

        # Serialization: efficiency models the header phits per flit.
        link = self.link
        config = link.config
        if config is not self._bpc_config:
            self._bytes_per_cycle = config.effective_bytes_per_cycle(link.clock)
            self._bpc_config = config
        ser = max(flit.size_bytes, 1.0) / self._bytes_per_cycle
        self.flits_sent += 1
        stats = link.stats
        stats.bytes += flit.size_bytes
        # det: allow[float-accumulation] one link = one time-ordered flit stream
        stats.busy_cycles += ser

        self.events.schedule(ser, self._tx_done)
        self.events.schedule(
            ser + config.latency_cycles,
            lambda: self._arrive(flit, ctx),
        )

    def _tx_done(self) -> None:
        self._sending = False
        self._try_send()

    def _arrive(self, flit: Flit, ctx: HopContext) -> None:
        if ctx.is_last_hop:
            # The destination NPU sinks flits immediately; no credit was
            # consumed for the final hop.
            ctx.on_delivered_flit(flit)
            return
        next_link = ctx.path[ctx.hop + 1]
        next_port = self._next_port_for(next_link)
        next_ctx = HopContext(
            path=ctx.path,
            hop=ctx.hop + 1,
            vc=ctx.vc,
            upstream=self,
            on_delivered_flit=ctx.on_delivered_flit,
        )
        self.events.schedule(
            self.network.router_latency_cycles,
            lambda: next_port.enqueue(flit, next_ctx),
        )
