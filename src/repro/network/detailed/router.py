"""Transmission ports with virtual channels and credit flow control.

The detailed backend models every physical link as a :class:`TxPort`: a
set of per-VC flit queues arbitrated round-robin, transmitting one flit
at a time, gated by credits from the downstream buffer (``buffers_per_vc``
slots per VC, Table III #28).  A flit occupies its downstream buffer slot
from transmission start until it departs on the next hop (or is consumed
by the destination NPU, which sinks flits immediately).

This is wormhole switching with flit-level VC interleaving — the same
flow-control family as Garnet, minus per-router microarchitectural
pipeline stages (the per-hop router latency is charged as a constant,
Table III #25).

Vectorized flit batching (PR 10)
--------------------------------

When every queued flit is on a single-hop path (hop 0 == last hop: no
credits taken, no upstream to release, the destination sinks flits
immediately), the port's entire drain is a pure function of the queue
snapshot: strict round-robin over occupied VCs, each flit serializing
for ``max(size, 1) / bytes_per_cycle`` cycles back to back.  Instead of
two events per flit (tx-done + arrival), :meth:`TxPort._start_burst`
computes the whole transmission schedule up front — numpy ``cumsum``
over the serialization times, which performs the *same sequential float
additions* the per-flit event chain would — and schedules one burst-end
event plus one delivery event per message.  Every float in the plan is
produced by the identical arithmetic expression, in the identical
order, as the serial path, so simulated timestamps are bit-identical.

Any interposed ``enqueue`` splits the burst (:meth:`TxPort._split_burst`):
the already-transmitted prefix is committed (stats applied in pick
order), the remainder is requeued, and arbitration resumes — including
the new flit — when the in-flight flit completes, exactly when the
serial path would have re-arbitrated.  Multi-hop traffic, and any run
with live fault injection (which can retime links mid-flight), uses the
unchanged per-flit path.

Folded dispatches feed :attr:`EventQueue.events_simulated` via
``credit_batched``: each commit credits two logical events per flit (the
tx-done and arrival the serial path would have dispatched) and each
piece of burst machinery that actually fires (burst end, delivery batch)
debits one, so the logical event count equals the serial path's exactly.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

from repro.config.parameters import NetworkConfig
from repro.errors import NetworkError
from repro.events.engine import EventQueue
from repro.network.detailed.flit import Flit
from repro.network.link import Link

#: Bursts below this many flits use the scalar plan path: numpy array
#: construction costs more than it saves on tiny plans.  Both paths
#: perform the identical sequence of float operations.
_VECTOR_MIN_FLITS = 32


class _Burst:
    """An in-flight batched transmission plan for one :class:`TxPort`.

    ``entries[i]`` transmits over ``[starts[i], ends[i])`` and arrives at
    ``arrivals[i]``; entries before ``committed`` have had their stats /
    observer / round-robin effects applied.  All time lists hold exactly
    the floats the serial per-flit path would have produced.
    """

    __slots__ = ("entries", "vcs", "sers", "starts", "ends", "arrivals",
                 "committed", "end_handle", "completions")

    def __init__(self, entries, vcs, sers, starts, ends, arrivals):
        self.entries = entries
        self.vcs = vcs
        self.sers = sers
        self.starts = starts
        self.ends = ends
        self.arrivals = arrivals
        self.committed = 0
        self.end_handle = None
        #: id(message) -> (message, [plan indices], delivery EventHandle).
        self.completions = {}


@dataclass
class HopContext:
    """Everything a flit needs to know to traverse its remaining path."""

    path: list[Link]
    hop: int
    vc: int
    upstream: Optional["TxPort"]
    on_delivered_flit: Callable[[Flit], None]
    #: Optional bulk delivery sink: called with a list of flits of *one*
    #: message instead of ``on_delivered_flit`` per flit.  Burst delivery
    #: batches use it to collapse per-flit callback overhead; the serial
    #: per-flit path never consults it.
    on_delivered_flits: Optional[Callable[[list], None]] = None

    @property
    def is_last_hop(self) -> bool:
        return self.hop == len(self.path) - 1


class TxPort:
    """The transmit side of one physical link in the detailed backend."""

    def __init__(
        self,
        link: Link,
        network: NetworkConfig,
        events: EventQueue,
        next_port_for: Callable[[Link], "TxPort"],
    ):
        self.link = link
        self.network = network
        self.events = events
        self._next_port_for = next_port_for
        self.queues: list[deque] = [deque() for _ in range(network.vcs_per_vnet)]
        self.credits: list[int] = [network.buffers_per_vc] * network.vcs_per_vnet
        self._rr = 0
        self._sending = False
        self.flits_sent = 0
        #: Optional conservation observer (repro.sanitize.runtime); ``None``
        #: on the default path so instrumentation costs one attribute test.
        self.observer = None
        # Per-flit bandwidth memo keyed on config identity (fault-driven
        # degrades replace link.config, invalidating it) — this port
        # transmits every flit of every message crossing its link, so the
        # GB/s -> bytes/cycle derivation must not run per flit.
        self._bpc_config = None
        self._bytes_per_cycle = 0.0
        #: Batched transmission (module docstring).  The backend clears
        #: the flag while fault injection is live: a mid-burst link
        #: retiming would invalidate the precomputed plan.
        self.burst_enabled = True
        self._burst: Optional[_Burst] = None
        #: Queued flits that disqualify bursting (multi-hop, or final hop
        #: of a multi-hop path, which still must release upstream credits
        #: at exact transmission times).  Zero means every queued flit is
        #: a pure single-hop sink and the whole drain can be batched.
        self._nonburst_queued = 0

    # -- queue interface --------------------------------------------------------

    def enqueue(self, flit: Flit, ctx: HopContext) -> None:
        if not 0 <= ctx.vc < len(self.queues):
            raise NetworkError(f"VC {ctx.vc} out of range on {self.link!r}")
        if self._burst is not None:
            # New arbitration input: commit what the serial path would
            # already have transmitted, requeue the rest, re-plan when the
            # in-flight flit completes.
            self._split_burst()
        self.queues[ctx.vc].append((flit, ctx))
        if ctx.upstream is not None or not ctx.is_last_hop:
            self._nonburst_queued += 1
        if self.observer is not None:
            self.observer.on_flit_enqueued(self, flit, ctx)
        self._try_send()

    def enqueue_packets(self, groups: list) -> None:
        """Enqueue whole packets at once: ``groups`` is ``[(ctx, flits)]``.

        Serially identical to calling :meth:`enqueue` per flit, but the
        per-packet eligibility checks and burst splitting run per message
        instead of per flit.  ``DetailedBackend.send`` is the caller.

        Equivalence argument: within one packet all flits share a VC, and
        appending to a VC's queue tail never changes ``_pick_vc``'s
        inputs (head entry and credit count), so arbitration only needs a
        chance to run once per packet — exactly what the serial per-flit
        path's first effective ``_try_send`` per packet amounts to.  If
        the first packet starts a burst, later packets append behind it
        and the single trailing split re-arbitrates at the in-flight
        flit's completion, which is when the serial path would next pick.
        """
        if self._burst is not None:
            self._split_burst()
        queues = self.queues
        n = len(queues)
        observer = self.observer
        first_ctx = groups[0][0]
        if (self.burst_enabled and not self._sending
                and self._nonburst_queued == 0
                and first_ctx.upstream is None and first_ctx.is_last_hop
                and not any(queues)):
            # Whole-message fast path: the port is idle and empty, so the
            # serial schedule is fully determined — first pick is packet
            # 1's VC (the only occupied queue when serial arbitration
            # would first run), then round-robin over everything.  One
            # pinned burst replaces the plan/split/replan cycle.
            for ctx, flits in groups:
                vc = ctx.vc
                if not 0 <= vc < n:
                    raise NetworkError(
                        f"VC {vc} out of range on {self.link!r}")
                queue = queues[vc]
                if observer is None:
                    queue.extend((flit, ctx) for flit in flits)
                else:
                    for flit in flits:
                        queue.append((flit, ctx))
                        observer.on_flit_enqueued(self, flit, ctx)
            self._start_burst(pin_first=first_ctx.vc)
            return
        for ctx, flits in groups:
            vc = ctx.vc
            if not 0 <= vc < n:
                raise NetworkError(f"VC {vc} out of range on {self.link!r}")
            if ctx.upstream is not None or not ctx.is_last_hop:
                self._nonburst_queued += len(flits)
            queue = queues[vc]
            if observer is None:
                queue.extend((flit, ctx) for flit in flits)
            else:
                for flit in flits:
                    queue.append((flit, ctx))
                    observer.on_flit_enqueued(self, flit, ctx)
            if not self._sending:
                self._try_send()
        if self._burst is not None and any(queues):
            # Packets landed after the burst was planned; re-arbitrate
            # with them included when the in-flight flit completes.
            self._split_burst()

    def queued_flits(self) -> int:
        """Flits waiting in this port's VC queues (burst plans hold none:
        a burst pops its snapshot out of the queues and requeues leftovers
        on split, so at quiescence this is exactly the stuck-flit count)."""
        return sum(len(q) for q in self.queues)

    def release_credit(self, vc: int) -> None:
        """Downstream buffer slot freed (flit departed the next hop)."""
        if self.observer is not None:
            self.observer.on_credit_released(self, vc)
        self.credits[vc] += 1
        if self.credits[vc] > self.network.buffers_per_vc:
            raise NetworkError(f"credit overflow on {self.link!r} vc={vc}")
        self._try_send()

    # -- arbitration / transmission ------------------------------------------------

    def _pick_vc(self) -> Optional[int]:
        """Round-robin over VCs that have a flit and (if needed) a credit."""
        n = len(self.queues)
        for offset in range(n):
            vc = (self._rr + offset) % n
            if not self.queues[vc]:
                continue
            _, ctx = self.queues[vc][0]
            if ctx.is_last_hop or self.credits[vc] > 0:
                self._rr = (vc + 1) % n
                return vc
        return None

    def _try_send(self) -> None:
        if self._sending:
            return
        if self.burst_enabled and self._nonburst_queued == 0:
            self._start_burst()
            return
        vc = self._pick_vc()
        if vc is None:
            return
        self._sending = True
        flit, ctx = self.queues[vc].popleft()
        if ctx.upstream is not None or not ctx.is_last_hop:
            self._nonburst_queued -= 1

        if not ctx.is_last_hop:
            self.credits[vc] -= 1
        if self.observer is not None:
            self.observer.on_flit_transmit(self, flit, ctx,
                                           credit_taken=not ctx.is_last_hop)
        if ctx.upstream is not None:
            # Leaving the buffer this flit occupied at the upstream hop.
            ctx.upstream.release_credit(vc)

        # Serialization: efficiency models the header phits per flit.
        link = self.link
        config = link.config
        if config is not self._bpc_config:
            self._bytes_per_cycle = config.effective_bytes_per_cycle(link.clock)
            self._bpc_config = config
        ser = max(flit.size_bytes, 1.0) / self._bytes_per_cycle
        self.flits_sent += 1
        stats = link.stats
        stats.bytes += flit.size_bytes
        # det: allow[float-accumulation] one link = one time-ordered flit stream
        stats.busy_cycles += ser

        self.events.schedule(ser, self._tx_done)
        self.events.schedule(
            ser + config.latency_cycles,
            lambda: self._arrive(flit, ctx),
        )

    def _tx_done(self) -> None:
        self._sending = False
        self._try_send()

    def _arrive(self, flit: Flit, ctx: HopContext) -> None:
        if ctx.is_last_hop:
            # The destination NPU sinks flits immediately; no credit was
            # consumed for the final hop.
            ctx.on_delivered_flit(flit)
            return
        next_link = ctx.path[ctx.hop + 1]
        next_port = self._next_port_for(next_link)
        next_ctx = HopContext(
            path=ctx.path,
            hop=ctx.hop + 1,
            vc=ctx.vc,
            upstream=self,
            on_delivered_flit=ctx.on_delivered_flit,
            on_delivered_flits=ctx.on_delivered_flits,
        )
        self.events.schedule(
            self.network.router_latency_cycles,
            lambda: next_port.enqueue(flit, next_ctx),
        )

    # -- batched transmission (single-hop bursts) ---------------------------------

    def _start_burst(self, pin_first: Optional[int] = None) -> None:
        """Plan and schedule the whole queued drain as one burst.

        Only called when every queued flit is single-hop (see
        ``_nonburst_queued``).  The pick order is exactly what repeated
        ``_pick_vc`` calls would produce: strict round-robin over the
        occupied VCs starting from ``_rr`` (no credit gating applies to
        last-hop flits).  Per-VC FIFO order is preserved.

        ``pin_first`` (enqueue_packets' whole-message fast path) forces
        the first pick to that VC's head — the pick serial arbitration
        already made when the message's first packet arrived at the idle
        port — with round-robin continuing from the next VC.
        """
        queues = self.queues
        n = len(queues)
        if pin_first is None:
            first = None
            rr = self._rr
        else:
            first = queues[pin_first].popleft()
            rr = (pin_first + 1) % n
        snap = []
        for offset in range(n):
            vc = (rr + offset) % n
            q = queues[vc]
            if q:
                snap.append((vc, list(q)))
                q.clear()
        if first is not None:
            entries = [first]
            vcs = [pin_first]
        elif not snap:
            return
        else:
            entries = []
            vcs = []
        if len(snap) == 1:
            vc, lst = snap[0]
            entries.extend(lst)
            vcs.extend([vc] * len(lst))
        elif snap:
            rounds = max(len(lst) for _, lst in snap)
            for r in range(rounds):
                for vc, lst in snap:
                    if r < len(lst):
                        entries.append(lst[r])
                        vcs.append(vc)

        link = self.link
        config = link.config
        if config is not self._bpc_config:
            self._bytes_per_cycle = config.effective_bytes_per_cycle(link.clock)
            self._bpc_config = config
        bpc = self._bytes_per_cycle
        latency = config.latency_cycles
        t0 = self.events.now
        m = len(entries)
        # Both plan paths replicate the serial per-flit arithmetic bit for
        # bit: ends chain as ``end = start + ser`` (numpy cumsum performs
        # the same sequential additions) and each arrival is
        # ``start + (ser + latency)``, the exact expression the per-flit
        # schedule() call evaluates.
        if _np is not None and m >= _VECTOR_MIN_FLITS:
            sizes = _np.fromiter(
                (entry[0].size_bytes for entry in entries),
                dtype=_np.float64, count=m,
            )
            sers_arr = _np.maximum(sizes, 1.0) / bpc
            bounds = _np.empty(m + 1, dtype=_np.float64)
            bounds[0] = t0
            bounds[1:] = sers_arr
            bounds = _np.cumsum(bounds)
            sers = sers_arr.tolist()
            starts = bounds[:-1].tolist()
            ends = bounds[1:].tolist()
            arrivals = (bounds[:-1] + (sers_arr + latency)).tolist()
        else:
            sers = []
            starts = []
            ends = []
            arrivals = []
            s = t0
            for flit, _ctx in entries:
                ser = max(flit.size_bytes, 1.0) / bpc
                sers.append(ser)
                starts.append(s)
                arrivals.append(s + (ser + latency))
                s = s + ser
                ends.append(s)

        self._sending = True
        burst = _Burst(entries, vcs, sers, starts, ends, arrivals)
        self._burst = burst

        schedule_at = self.events.schedule_at
        completions = burst.completions
        for i, (flit, _ctx) in enumerate(entries):
            message = flit.packet.message
            rec = completions.get(id(message))
            if rec is None:
                completions[id(message)] = [message, [i], None]
            else:
                rec[1].append(i)
        for rec in completions.values():
            idxs = rec[1]
            batch = [entries[i] for i in idxs]
            rec[2] = schedule_at(
                arrivals[idxs[-1]],
                lambda b=batch: self._deliver_batch(b),
            )
        burst.end_handle = schedule_at(ends[-1], self._burst_end)

    def _commit_upto(self, burst: _Burst, cut: int) -> None:
        """Apply transmit effects for plan entries ``[committed, cut)``.

        Mirrors the serial path's per-flit effects in pick order: observer
        notification, link stats accumulation (same floats, same order),
        flit counter, and the round-robin pointer advancing past the last
        transmitted VC.  Credits two logical events per flit — the
        tx-done and arrival dispatches the serial path would have run.
        """
        start_i = burst.committed
        if cut <= start_i:
            return
        burst.committed = cut
        entries = burst.entries
        sers = burst.sers
        observer = self.observer
        stats = self.link.stats
        self.flits_sent += cut - start_i
        self.events.credit_batched(2 * (cut - start_i))
        for i in range(start_i, cut):
            flit, ctx = entries[i]
            if observer is not None:
                observer.on_flit_transmit(self, flit, ctx, credit_taken=False)
            stats.bytes += flit.size_bytes
            # det: allow[float-accumulation] one link = one time-ordered flit stream
            stats.busy_cycles += sers[i]
        self._rr = (burst.vcs[cut - 1] + 1) % len(self.queues)

    def _split_burst(self) -> None:
        """Interposition: stop the burst at ``now`` and requeue the rest.

        The serial path would have transmitted every flit whose start time
        is <= now (a flit starting exactly at ``now`` wins: its tx-done
        event was scheduled before the interposing one, so it re-arbitrates
        first).  Those are committed; later entries go back to their VC
        queues in FIFO order, and a resume event at the in-flight flit's
        completion re-plans with the new arrival included — exactly when
        serial arbitration would next run.
        """
        burst = self._burst
        self._burst = None
        now = self.events.now
        starts = burst.starts
        entries = burst.entries
        total = len(entries)
        cut = bisect_right(starts, now)
        self._commit_upto(burst, cut)
        if cut >= total:
            # Everything already transmitted; the pending end event doubles
            # as the resume point.
            return
        burst.end_handle.cancel()
        self.events.schedule_at(burst.ends[cut - 1], self._burst_end)

        arrivals = burst.arrivals
        schedule_at = self.events.schedule_at
        for message, idxs, handle in burst.completions.values():
            if idxs[-1] < cut:
                continue  # fully committed; delivery times stand as planned
            handle.cancel()
            committed = [i for i in idxs if i < cut]
            if committed:
                # Deliver the transmitted prefix at its own last arrival.
                # With zero propagation latency that can already be in the
                # past (serial delivered those flits before the interposing
                # event); clamping to now only retimes counter decrements —
                # the message's final, visible delivery always rides the
                # last chunk, whose arrival is in the future.
                batch = [entries[i] for i in committed]
                at = arrivals[committed[-1]]
                schedule_at(at if at > now else now,
                            lambda b=batch: self._deliver_batch(b))

        queues = self.queues
        for i in range(cut, total):
            queues[burst.vcs[i]].append(entries[i])

    def _burst_end(self) -> None:
        # This dispatch stands in for one serial tx-done already credited
        # by _commit_upto; debit it so logical event counts match exactly.
        self.events.credit_batched(-1)
        burst = self._burst
        if burst is not None:
            self._burst = None
            self._commit_upto(burst, len(burst.entries))
        self._sending = False
        self._try_send()

    def _deliver_batch(self, batch: list) -> None:
        # Stands in for one serial arrival dispatch (see _burst_end).
        self.events.credit_batched(-1)
        # One batch = one message (completions are grouped per message),
        # so every ctx shares the same delivery sink.
        bulk = batch[0][1].on_delivered_flits
        if bulk is not None:
            bulk([flit for flit, _ctx in batch])
        else:
            for flit, ctx in batch:
                ctx.on_delivered_flit(flit)
