"""Flits and packets for the detailed (Garnet-like) backend.

Granularity follows Table II: messages decompose into packets bounded by
the link's packet size; packets decompose into flits of the configured
flit width; phits are not modelled separately (one flit serializes over a
link in ``flit_bytes / link_bytes_per_cycle`` cycles, which is exactly
the phit count times the phit time).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.network.message import Message, packetize

_packet_ids = itertools.count()


@dataclass(slots=True)
class Flit:
    """One flow-control unit of a packet.

    ``slots=True``: the detailed backend materializes every flit of every
    message and moves each through per-hop queues — these are the most
    numerous objects in a detailed run by orders of magnitude.
    """

    packet: "Packet"
    index: int
    size_bytes: float
    is_head: bool
    is_tail: bool


@dataclass(slots=True)
class Packet:
    """One network packet: a head flit, body flits, and a tail flit."""

    message: Message
    index: int
    size_bytes: float
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    flits: list[Flit] = field(default_factory=list)

    def build_flits(self, flit_bytes: int) -> None:
        if flit_bytes <= 0:
            raise NetworkError(f"flit width must be positive: {flit_bytes}")
        sizes: list[float] = []
        remaining = self.size_bytes
        while remaining > flit_bytes:
            sizes.append(float(flit_bytes))
            remaining -= flit_bytes
        sizes.append(float(max(remaining, 0.0)))
        self.flits = [
            Flit(
                packet=self,
                index=i,
                size_bytes=size,
                is_head=(i == 0),
                is_tail=(i == len(sizes) - 1),
            )
            for i, size in enumerate(sizes)
        ]


def build_packets(message: Message, packet_bytes: int, flit_bytes: int) -> list[Packet]:
    """Decompose a message into packets with materialized flits."""
    packets = []
    for i, size in enumerate(packetize(message.size_bytes, packet_bytes)):
        packet = Packet(message=message, index=i, size_bytes=size)
        packet.build_flits(flit_bytes)
        packets.append(packet)
    return packets
