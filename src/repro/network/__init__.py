"""Network layer: links, channels, physical fabrics, and two backends."""

from repro.network.api import DeliveryCallback, NetworkBackend, validate_path
from repro.network.channel import (
    Channel,
    RingChannel,
    SwitchChannel,
    pair_reverse_rings,
)
from repro.network.fast_backend import FastBackend
from repro.network.fault_schedule import (
    FaultAction,
    FaultEvent,
    FaultSchedule,
    FaultState,
)
from repro.network.link import Link, LinkStats
from repro.network.message import Message, num_packets, packetize

__all__ = [
    "Channel",
    "DeliveryCallback",
    "FastBackend",
    "FaultAction",
    "FaultEvent",
    "FaultSchedule",
    "FaultState",
    "Link",
    "LinkStats",
    "Message",
    "NetworkBackend",
    "RingChannel",
    "SwitchChannel",
    "num_packets",
    "packetize",
    "pair_reverse_rings",
    "validate_path",
]
