"""Unidirectional link model used by the fast backend.

Every physical link is a FIFO-served resource: messages are granted the
link in arrival order, occupy it for their serialization time, and incur
the link's propagation latency on top.  This captures the two quantities
the paper's results hinge on — per-link serialization (size / BW·eff)
and queuing delay under contention — without simulating individual flits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.config.parameters import LinkConfig
from repro.config.units import Clock, DEFAULT_CLOCK
from repro.errors import NetworkError

_link_ids = itertools.count()


@dataclass
class LinkStats:
    """Accumulated per-link counters (utilization reporting)."""

    messages: int = 0
    bytes: float = 0.0
    busy_cycles: float = 0.0
    queue_cycles: float = 0.0


class Link:
    """A unidirectional link from ``src`` to ``dst`` endpoints.

    Endpoints are opaque integers: NPU ids, or switch ids allocated by the
    fabric builder.  ``kind`` is "local" (intra-package) or "package"
    (inter-package) and is only used for reporting.
    """

    __slots__ = ("link_id", "src", "dst", "config", "kind", "clock",
                 "next_free", "stats", "_ser_config", "_bytes_per_cycle",
                 "_memo_size", "_memo_ser", "_memo_head_ser")

    def __init__(
        self,
        src: int,
        dst: int,
        config: LinkConfig,
        kind: str = "package",
        clock: Clock = DEFAULT_CLOCK,
    ):
        if src == dst:
            raise NetworkError(f"link endpoints must differ, got {src}->{dst}")
        self.link_id = next(_link_ids)
        self.src = src
        self.dst = dst
        self.config = config
        self.kind = kind
        self.clock = clock
        #: Earliest time the link can accept the next message.
        self.next_free = 0.0
        self.stats = LinkStats()
        # Bandwidth memo, keyed on config object identity: fault injection
        # replaces ``config`` wholesale (repro.network.faults.degrade_link),
        # which invalidates the memo on the next call.
        self._ser_config: LinkConfig | None = None
        self._bytes_per_cycle = 0.0
        # One-slot (config, size) -> serialization memo: a collective
        # pushes one message size through a link thousands of times, so
        # reserve() usually skips both serialization_cycles calls.
        self._memo_size = -1.0
        self._memo_ser = 0.0
        self._memo_head_ser = 0.0

    def serialization_cycles(self, size_bytes: float) -> float:
        """Cycles to push ``size_bytes`` through this link (memoized BW).

        Same result as ``config.serialization_cycles(size_bytes, clock)``
        — this is the per-reserve hot path, so the effective bytes/cycle
        figure is cached instead of being rederived per message.
        """
        if size_bytes < 0:
            raise NetworkError(f"message size must be >= 0: {size_bytes}")
        config = self.config
        if config is not self._ser_config:
            self._bytes_per_cycle = config.effective_bytes_per_cycle(self.clock)
            self._ser_config = config
        wire = size_bytes / self._bytes_per_cycle
        quantum = config.message_quantum_bytes
        if quantum is None or size_bytes == 0:
            return wire
        return wire + -(-size_bytes // quantum) * config.quantum_overhead_cycles

    def reserve(self, at: float, size_bytes: float) -> tuple[float, float, float]:
        """Reserve the link for one message arriving at time ``at``.

        Returns ``(start, head_arrival, tail_arrival)`` where ``start`` is
        when serialization begins (after FIFO wait), ``head_arrival`` is
        when the first packet reaches the far end (enables pipelined
        multi-hop forwarding), and ``tail_arrival`` is full delivery.
        """
        if size_bytes < 0:
            raise NetworkError(f"size must be >= 0: {size_bytes}")
        config = self.config
        if config is self._ser_config and size_bytes == self._memo_size:
            ser = self._memo_ser
            head_ser = self._memo_head_ser
        else:
            ser = self.serialization_cycles(size_bytes)
            first_packet = min(size_bytes, float(config.packet_size_bytes))
            head_ser = self.serialization_cycles(first_packet)
            self._memo_size = size_bytes
            self._memo_ser = ser
            self._memo_head_ser = head_ser
        latency = config.latency_cycles
        start = max(at, self.next_free)
        head_arrival = start + head_ser + latency
        tail_arrival = start + ser + latency
        self.next_free = start + ser

        stats = self.stats
        stats.messages += 1
        stats.bytes += size_bytes
        # det: allow[float-accumulation] one port = one time-ordered stream
        stats.busy_cycles += ser
        stats.queue_cycles += start - at  # det: allow[float-accumulation] as above
        return start, head_arrival, tail_arrival

    def reset(self) -> None:
        self.next_free = 0.0
        self.stats = LinkStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link#{self.link_id}({self.src}->{self.dst}, {self.kind})"
