"""Reliable transport: delivery timeouts, retransmission, backoff.

The raw network backends model a lossless fabric: every accepted message
is eventually delivered, so the system layer never needed an end-to-end
acknowledgment story.  Under a fault schedule
(:mod:`repro.network.fault_schedule`) that assumption breaks — a message
injected while its path crosses a down link is silently dropped, and
without recovery the collective deadlocks.

:class:`ReliableTransport` wraps any :class:`~repro.network.api.NetworkBackend`
(duck-typed, so it composes with both the fast and detailed backends and
with the sanitizer's instrumented variants).  Every :meth:`send` arms a
per-message delivery timer sized to the payload
(``timeout_cycles + timeout_per_byte * size_bytes``).  If the timer fires
first, the message is retransmitted as a fresh clone after an exponential
backoff with seeded jitter, up to ``max_retries`` retransmissions; a
message that exhausts its budget fails — to the caller's ``on_failed``
callback when provided (ring collectives use this to reroute or fail
fast), otherwise by raising :class:`~repro.errors.TransportError`.

Everything is deterministic: the backoff jitter comes from one seeded RNG
consumed in timeout order, and the simulation itself is deterministic, so
identical runs produce identical retry timelines and identical
:class:`TransportStats`.  On a healthy network the (generous) default
timeouts never fire before delivery, so wrapping the backend does not
change a single simulated cycle — asserted by
``benchmarks/bench_transport_overhead.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.config.parameters import TransportConfig
from repro.errors import TransportError
from repro.events.engine import EventHandle
from repro.network.api import DeliveryCallback, NetworkBackend
from repro.network.link import Link
from repro.network.message import Message

FailureCallback = Callable[["TransportFailure"], None]


@dataclass
class TransportStats:
    """Counters surfaced through the stats layer and the CLI."""

    #: Distinct messages accepted from upper layers.
    messages: int = 0
    #: Total injection attempts (first sends + retransmissions).
    sends: int = 0
    #: Delivery timers that fired before the message arrived.
    timeouts: int = 0
    #: Retransmissions issued (== timeouts that had budget left).
    retries: int = 0
    #: Retransmissions after a paused-endpoint drop; waited out with
    #: backoff but *not* charged against the ``max_retries`` budget.
    paused_waits: int = 0
    #: Messages delivered after at least one retransmission.
    recovered: int = 0
    #: Messages that exhausted their retry budget.
    failed: int = 0
    #: Fault-layer drops observed by the wrapped backend (mirror of
    #: ``backend.messages_dropped``, copied in by the owner for reporting).
    drops: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "messages": self.messages, "sends": self.sends,
            "timeouts": self.timeouts, "retries": self.retries,
            "paused_waits": self.paused_waits,
            "recovered": self.recovered, "failed": self.failed,
            "drops": self.drops,
        }

    def summary(self) -> str:
        paused = (f", {self.paused_waits} paused waits"
                  if self.paused_waits else "")
        return (
            f"transport: {self.messages} messages, {self.sends} sends, "
            f"{self.drops} dropped, {self.timeouts} timeouts, "
            f"{self.retries} retries{paused}, {self.recovered} recovered, "
            f"{self.failed} failed"
        )


@dataclass
class TransportFailure:
    """Diagnostic handed to ``on_failed`` when a message gives up."""

    message: Message
    path: list[Link]
    attempts: int
    time: float
    #: Why the final attempt was lost ("timeout" when it simply never
    #: arrived; otherwise the fault layer's drop reason).
    reason: str
    #: Endpoint pairs on the path that were down when the budget ran out.
    dead_links: list[tuple[int, int]] = field(default_factory=list)

    def describe(self) -> str:
        dead = (
            ", dead links: " + ", ".join(f"{s}->{d}" for s, d in self.dead_links)
            if self.dead_links else ""
        )
        return (
            f"transport gave up on message {self.message.src}->"
            f"{self.message.dst} (tag={self.message.tag!r}) after "
            f"{self.attempts} attempts at t={self.time:,.0f}; "
            f"last loss: {self.reason}{dead}"
        )


class _Entry:
    """In-flight state for one logical message."""

    __slots__ = ("message", "path", "on_delivered", "on_failed",
                 "attempts", "paused_waits", "done", "timer", "last_sent")

    def __init__(self, message: Message, path: list[Link],
                 on_delivered: DeliveryCallback,
                 on_failed: Optional[FailureCallback]):
        self.message = message
        self.path = path
        self.on_delivered = on_delivered
        self.on_failed = on_failed
        self.attempts = 0
        self.paused_waits = 0
        self.done = False
        self.timer: Optional[EventHandle] = None
        self.last_sent: Message = message


class ReliableTransport:
    """Timeout/retry/backoff wrapper around a network backend.

    Exposes the same surface as :class:`~repro.network.api.NetworkBackend`
    (``send``, ``schedule``, ``now``, counters...) by delegation, so the
    system layer and collectives use it interchangeably; ``send``
    additionally accepts an ``on_failed`` callback (advertised via
    :attr:`supports_failure_callback`).
    """

    #: Upper layers check this before passing ``on_failed`` to ``send``.
    supports_failure_callback = True

    def __init__(self, inner: NetworkBackend, config: Optional[TransportConfig] = None):
        self.inner = inner
        self.config = config if config is not None else TransportConfig()
        self.stats = TransportStats()
        #: Jitter RNG; consumed in timeout order (deterministic).
        self._rng = random.Random(self.config.seed)

    # -- backend surface (delegation) -------------------------------------------

    def __getattr__(self, name: str):
        # Everything not defined here (events, now, sanitizer, network,
        # messages_delivered, total_flits_sent, ...) is the inner backend's.
        return getattr(self.inner, name)

    @property
    def faults(self):
        return self.inner.faults

    @faults.setter
    def faults(self, state) -> None:
        # Installing fault state on the wrapper must reach the backend
        # that actually consults it at injection time.
        self.inner.faults = state

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        return self.inner.schedule(delay, callback)

    # -- sending ----------------------------------------------------------------

    def send(self, message: Message, path: list[Link],
             on_delivered: DeliveryCallback,
             on_failed: Optional[FailureCallback] = None) -> None:
        """Inject ``message``; retransmit on timeout until delivered or
        the retry budget (``config.max_retries``) is exhausted."""
        self.stats.messages += 1
        entry = _Entry(message, path, on_delivered, on_failed)
        self._attempt(entry)

    def _attempt(self, entry: _Entry) -> None:
        entry.attempts += 1
        self.stats.sends += 1
        attempt = entry.attempts
        if attempt == 1:
            msg = entry.message
        else:
            # A retransmission is a fresh wire message (new msg_id, same
            # tag so the receiver demultiplexes identically); the original
            # Message object stays the caller's handle.
            msg = Message(src=entry.message.src, dst=entry.message.dst,
                          size_bytes=entry.message.size_bytes,
                          tag=entry.message.tag)
        entry.last_sent = msg
        timeout = (self.config.timeout_cycles
                   + self.config.timeout_per_byte * msg.size_bytes)
        entry.timer = self.inner.schedule(
            timeout, lambda: self._on_timeout(entry, attempt))
        self.inner.send(msg, entry.path,
                        lambda delivered: self._on_delivery(entry, delivered))

    def _on_delivery(self, entry: _Entry, delivered: Message) -> None:
        if entry.done:
            return  # a late duplicate from a superseded attempt
        entry.done = True
        if entry.timer is not None:
            entry.timer.cancel()
        if entry.attempts > 1:
            self.stats.recovered += 1
        entry.on_delivered(delivered)

    def _on_timeout(self, entry: _Entry, attempt: int) -> None:
        if entry.done or attempt != entry.attempts:
            return  # delivered, or this timer belongs to a superseded attempt
        self.stats.timeouts += 1
        # An attempt the fault layer dropped because an endpoint is paused
        # is flow control, not path failure: wait it out with backoff
        # without burning the retry budget (the pause may outlast many
        # timeout windows), bounded only by the max_paused_waits valve.
        paused = entry.last_sent.drop_kind == "node_paused"
        if paused:
            entry.paused_waits += 1
            self.stats.paused_waits += 1
            if entry.paused_waits > self.config.max_paused_waits:
                self._fail(entry)
                return
        else:
            if entry.attempts - entry.paused_waits > self.config.max_retries:
                self._fail(entry)
                return
            self.stats.retries += 1
        backoff = min(
            self.config.backoff_base_cycles
            * self.config.backoff_factor ** (entry.attempts - 1),
            self.config.backoff_max_cycles,
        )
        backoff *= 1.0 + self.config.jitter * self._rng.random()
        self.inner.schedule(backoff, lambda: self._resend(entry, attempt))

    def _resend(self, entry: _Entry, attempt: int) -> None:
        if entry.done or attempt != entry.attempts:
            return
        self._attempt(entry)

    def _fail(self, entry: _Entry) -> None:
        entry.done = True
        reason = entry.last_sent.drop_reason or "timeout"
        dead = (self.inner.faults.down_links_on(entry.path)
                if self.inner.faults is not None else [])
        failure = TransportFailure(
            message=entry.message, path=entry.path, attempts=entry.attempts,
            time=self.inner.now, reason=reason, dead_links=dead,
        )
        self.stats.failed += 1
        if entry.on_failed is not None:
            entry.on_failed(failure)
        else:
            raise TransportError(failure.describe())

    # -- reporting --------------------------------------------------------------

    def snapshot_stats(self) -> TransportStats:
        """The stats record with the backend's drop counter folded in."""
        self.stats.drops = self.inner.messages_dropped
        return self.stats

    def rng_fingerprint(self) -> str:
        """Digest of the jitter RNG position (checkpoint verification): a
        resumed run that consumed a different backoff sequence cannot be
        cycle-identical, and this catches it at the checkpoint boundary."""
        import hashlib

        return hashlib.sha256(repr(self._rng.getstate()).encode()).hexdigest()[:16]
