"""Collective sets: the top granularity of Table II.

One *set* is one collective operation requested by the workload layer
(e.g. layer 17's weight-gradient all-reduce).  The set splits into
``preferred_set_splits`` chunks that the scheduler pipelines through the
multi-phase plan independently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.collectives.types import CollectiveOp, PhaseSpec
from repro.errors import CollectiveError
from repro.system.stats import DelayBreakdown
from repro.dims import Dimension

_set_ids = itertools.count()

CompletionCallback = Callable[["CollectiveSet"], None]


def split_into_chunks(total_bytes: float, preferred_splits: int) -> list[float]:
    """Split a set into chunk sizes (Table II: chunk count is the
    pipelining parameter).  Equal-size chunks; tiny sets collapse to a
    single chunk so chunk sizes stay meaningful (>= 1 KB guideline).

    >>> split_into_chunks(16384, 4)
    [4096.0, 4096.0, 4096.0, 4096.0]
    """
    if total_bytes <= 0:
        raise CollectiveError(f"set size must be positive: {total_bytes}")
    if preferred_splits < 1:
        raise CollectiveError(f"preferred_splits must be >= 1: {preferred_splits}")
    splits = min(preferred_splits, max(1, int(total_bytes // 1024)))
    return [total_bytes / splits] * splits


@dataclass
class CollectiveSet:
    """One requested collective plus its runtime bookkeeping."""

    op: CollectiveOp
    total_bytes: float
    plan: list[PhaseSpec]
    chunk_sizes: list[float]
    scope: Optional[tuple[Dimension, ...]] = None
    layer_id: Optional[int] = None
    name: str = ""
    reduction_cycles_per_kb: float = 1.0
    set_id: int = field(default_factory=lambda: next(_set_ids))

    created_at: float = 0.0
    first_issue_at: Optional[float] = None
    finished_at: Optional[float] = None
    chunks_done: int = 0
    breakdown: DelayBreakdown = field(default_factory=DelayBreakdown)
    _callbacks: list[CompletionCallback] = field(default_factory=list)

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_sizes)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def duration_cycles(self) -> float:
        """Raw communication time: request to completion (Figs. 13/14)."""
        if self.finished_at is None:
            raise CollectiveError(f"set {self.set_id} ({self.name}) not finished")
        return self.finished_at - self.created_at

    def on_complete(self, callback: CompletionCallback) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _chunk_finished(self, now: float) -> None:
        self.chunks_done += 1
        if self.chunks_done > self.num_chunks:
            raise CollectiveError(f"set {self.set_id} over-completed")
        if self.chunks_done == self.num_chunks:
            self.finished_at = now
            callbacks, self._callbacks = self._callbacks, []
            for callback in callbacks:
                callback(self)
