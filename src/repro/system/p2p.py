"""Point-to-point transfers through the system layer.

Pipeline parallelism exchanges activations between specific stage pairs
rather than through collectives; :class:`P2PTransfer` carries one such
payload, chunked like collective sets so consecutive transfers pipeline
on the links, routed by :class:`repro.network.routing.FabricRouter`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import NetworkError
from repro.network.api import NetworkBackend
from repro.network.message import Message
from repro.network.routing import FabricRouter
from repro.system.collective_set import split_into_chunks

_transfer_ids = itertools.count()

TransferCallback = Callable[["P2PTransfer"], None]


@dataclass
class P2PTransfer:
    """One source-to-destination payload in flight."""

    src: int
    dst: int
    size_bytes: float
    name: str = ""
    transfer_id: int = field(default_factory=lambda: next(_transfer_ids))
    created_at: float = 0.0
    finished_at: Optional[float] = None
    chunks_done: int = 0
    num_chunks: int = 0
    _callbacks: list[TransferCallback] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    @property
    def duration_cycles(self) -> float:
        if self.finished_at is None:
            raise NetworkError(f"transfer {self.transfer_id} not finished")
        return self.finished_at - self.created_at

    def on_complete(self, callback: TransferCallback) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _chunk_finished(self, now: float) -> None:
        self.chunks_done += 1
        if self.chunks_done == self.num_chunks:
            self.finished_at = now
            callbacks, self._callbacks = self._callbacks, []
            for callback in callbacks:
                callback(self)


class P2PEngine:
    """Issues chunked point-to-point transfers over routed paths."""

    def __init__(self, backend: NetworkBackend, router: FabricRouter,
                 preferred_splits: int = 4):
        self.backend = backend
        self.router = router
        self.preferred_splits = preferred_splits
        self.transfers: list[P2PTransfer] = []

    def send(self, src: int, dst: int, size_bytes: float,
             name: str = "") -> P2PTransfer:
        if src == dst:
            raise NetworkError(f"p2p src == dst == {src}")
        path = self.router.path(src, dst)
        chunks = split_into_chunks(size_bytes, self.preferred_splits)
        transfer = P2PTransfer(src=src, dst=dst, size_bytes=float(size_bytes),
                               name=name, num_chunks=len(chunks))
        transfer.created_at = self.backend.now
        self.transfers.append(transfer)
        for i, chunk in enumerate(chunks):
            message = Message(src, dst, chunk, tag=(transfer.transfer_id, i))
            self.backend.send(
                message, path,
                lambda _msg, t=transfer: t._chunk_finished(self.backend.now),
            )
        return transfer
