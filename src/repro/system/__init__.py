"""System layer: scheduler, collective sets, the Sys facade, and stats."""

from repro.system.collective_set import CollectiveSet, split_into_chunks
from repro.system.scheduler import ReadyChunk, Scheduler
from repro.system.stats import DelayBreakdown
from repro.system.sys_layer import System
from repro.system.transport import (
    ReliableTransport,
    TransportFailure,
    TransportStats,
)

__all__ = [
    "CollectiveSet",
    "DelayBreakdown",
    "ReadyChunk",
    "ReliableTransport",
    "Scheduler",
    "System",
    "TransportFailure",
    "TransportStats",
    "split_into_chunks",
]
