"""The system layer facade (Fig. 6): collective APIs over the network.

:class:`System` owns the event queue, the network backend, the scheduler
and the statistics, and exposes the collective API the workload layer
programs against: :meth:`request_collective` returns a
:class:`CollectiveSet` whose completion can be awaited via callback.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional, Sequence

from repro.collectives.context import CollectiveContext
from repro.collectives.types import CollectiveOp, build_phase_plan
from repro.config.parameters import SimulationConfig
from repro.errors import SimulationError
from repro.events.engine import EventQueue
from repro.network.api import NetworkBackend
from repro.network.fast_backend import FastBackend
from repro.system.collective_set import CollectiveSet, split_into_chunks
from repro.system.p2p import P2PEngine, P2PTransfer
from repro.system.scheduler import Scheduler
from repro.system.stats import DelayBreakdown
from repro.dims import Dimension
from repro.topology.logical import LogicalTopology


class System:
    """One simulated training platform: topology + system layer + network."""

    def __init__(
        self,
        topology: LogicalTopology,
        config: SimulationConfig,
        backend: Optional[NetworkBackend] = None,
        events: Optional[EventQueue] = None,
        trace: bool = False,
        sanitizer=None,
        fault_schedule=None,
        resilience=None,
        backend_factory=None,
    ):
        self.topology = topology
        self.config = config
        #: Optional repro.sanitize.runtime.RuntimeSanitizer.  When present
        #: (and no explicit queue/backend was passed) the system builds a
        #: sanitized event queue and an instrumented backend, and verifies
        #: quiescence invariants in :meth:`run_until_idle`.
        self.sanitizer = sanitizer
        if events is not None:
            self.events = events
        elif sanitizer is not None:
            self.events = sanitizer.make_event_queue()
        else:
            self.events = EventQueue()
        if backend is None:
            network = config.network if config.network is not None else topology.fabric.network
            if backend_factory is not None:
                # Harness hook for the non-default backend (the detailed
                # flit-level one), called with the queue the system built.
                backend = backend_factory(self.events, network, sanitizer)
            else:
                backend = FastBackend(self.events, network, sanitizer=sanitizer)
        #: Reliable transport wrapper, when config.system.transport enables
        #: it (required for surviving fault schedules — docs/FAULTS.md).
        self.transport = None
        if config.system.transport is not None:
            if getattr(backend, "supports_failure_callback", False):
                self.transport = backend  # caller passed a wrapped backend
            else:
                from repro.system.transport import ReliableTransport

                backend = ReliableTransport(backend, config.system.transport)
                self.transport = backend
        self.backend = backend
        #: Live fault state (repro.network.fault_schedule.FaultState) when a
        #: schedule was installed; both backends consult it at injection.
        self.fault_state = None
        if fault_schedule is not None:
            self.fault_state = fault_schedule.install(topology.fabric, self.events)
            self.backend.faults = self.fault_state
        self.breakdown = DelayBreakdown()
        self.scheduler = Scheduler(
            topology.fabric, config.system, self.breakdown, now=lambda: self.events.now
        )
        #: trace=True retains finished chunk executions so the timeline
        #: tooling (repro.analysis.trace) can reconstruct phase spans.
        self.scheduler.keep_completed = trace
        self.sets: list[CollectiveSet] = []
        # Per-system set numbering: set ids appear in labels, traces and
        # error messages, so they must depend on this run alone — not on
        # how many systems the process (or a pool worker) built before.
        self._set_ids = itertools.count()
        self._p2p: Optional[P2PEngine] = None
        #: repro.resilience.monitor.ResilienceMonitor when a resilience
        #: config (checkpointing / watchdog / resume) was supplied.  The
        #: monitor observes through the queue's watcher hook and never
        #: schedules events, so attaching it cannot change the simulated
        #: trajectory.
        self.resilience = None
        if resilience is not None and resilience.enabled:
            from repro.resilience.monitor import ResilienceMonitor

            self.resilience = ResilienceMonitor(self, resilience)
            self.events.watcher = self.resilience.on_event

    # -- time ----------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.events.now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """The event queue, exposed upward to the workload layer (Sec. IV)."""
        self.events.schedule(delay, callback)

    # -- collective API ---------------------------------------------------------------

    def request_collective(
        self,
        op: CollectiveOp,
        size_bytes: float,
        scope: Optional[Sequence[Dimension]] = None,
        layer_id: Optional[int] = None,
        name: str = "",
        reduction_cycles_per_kb: Optional[float] = None,
    ) -> CollectiveSet:
        """Issue one collective set; it is chunked, queued and dispatched
        by the scheduler, pipelining with everything already in flight."""
        sys_cfg = self.config.system
        if reduction_cycles_per_kb is None:
            reduction_cycles_per_kb = sys_cfg.reduction_cycles_per_kb

        if op is CollectiveOp.NONE:
            plan = []
        else:
            dims = self.topology.dim_sizes(scope)
            plan = build_phase_plan(op, dims, sys_cfg.algorithm)

        chunk_sizes = split_into_chunks(size_bytes, sys_cfg.preferred_set_splits)
        collective = CollectiveSet(
            op=op,
            total_bytes=float(size_bytes),
            plan=plan,
            chunk_sizes=chunk_sizes,
            scope=tuple(scope) if scope is not None else None,
            layer_id=layer_id,
            name=name,
            reduction_cycles_per_kb=reduction_cycles_per_kb,
            set_id=next(self._set_ids),
        )
        ctx = CollectiveContext(
            self.backend,
            endpoint_delay_cycles=sys_cfg.endpoint_delay_cycles,
            reduction_cycles_per_kb=reduction_cycles_per_kb,
            packet_routing=sys_cfg.packet_routing,
            injection_policy=sys_cfg.injection_policy,
            stats_sink=lambda phase, msg, c=collective: self._record(c, phase, msg),
        )
        self.sets.append(collective)
        self.scheduler.enqueue_set(collective, ctx)
        return collective

    def request_p2p(self, src: int, dst: int, size_bytes: float,
                    name: str = "") -> P2PTransfer:
        """Issue a chunked point-to-point transfer (pipeline-parallel
        activations etc.), routed over the fabric's minimum-latency path."""
        if self._p2p is None:
            from repro.network.routing import FabricRouter

            self._p2p = P2PEngine(
                self.backend,
                FabricRouter(self.topology.fabric),
                preferred_splits=min(4, self.config.system.preferred_set_splits),
            )
        return self._p2p.send(src, dst, size_bytes, name=name)

    def _record(self, collective: CollectiveSet, phase: int, message) -> None:
        collective.breakdown.record_message(phase, message)
        self.breakdown.record_message(phase, message)

    # -- running -------------------------------------------------------------------------

    def run_until_idle(self, max_events: Optional[int] = None) -> float:
        """Drain the event queue; returns the final simulated time.

        Raises on a drain deadlock (queue empty with collectives still
        outstanding), including a wait-for summary of what never finished;
        with a sanitizer attached, also verifies the runtime conservation
        and barrier invariants at quiescence.
        """
        self.events.run(max_events=max_events)
        if not self.scheduler.idle:
            raise SimulationError(
                f"event queue drained with {self.scheduler.in_flight_count} chunks "
                f"in flight and {self.scheduler.ready_count} ready (deadlock?)\n"
                + self.wait_for_summary()
            )
        if self.resilience is not None:
            self.resilience.finalize()
        if self.sanitizer is not None:
            self.sanitizer.verify_quiescent(self)
        return self.events.now

    def run_until(self, time: float, max_events: Optional[int] = None) -> float:
        self.events.run(until=time, max_events=max_events)
        return self.events.now

    def transport_stats(self):
        """The :class:`repro.system.transport.TransportStats` of this run,
        with the backend's drop counter folded in; ``None`` without a
        reliable transport."""
        if self.transport is None:
            return None
        return self.transport.snapshot_stats()

    def progress_vector(self) -> tuple:
        """A tuple that changes iff the simulation made *real* progress.

        Sampled by the stall watchdog (:mod:`repro.resilience.watchdog`):
        deliveries, issued sets, chunk and set completions all count;
        retransmissions, drops and backoff timers deliberately do not — a
        retry storm against a dead path must read as "no progress".
        """
        return (
            self.backend.messages_delivered,
            self.backend.bytes_delivered,
            len(self.sets),
            sum(c.chunks_done for c in self.sets),
            sum(1 for c in self.sets if c.done),
        )

    def diagnostics(self) -> dict:
        """JSON-serializable snapshot of where the simulation stands.

        The payload of watchdog diagnostic bundles; everything a post-
        mortem needs without the process that hung.
        """
        per_chunk = [
            {
                "label": execution.label,
                "min_phase": execution.current_min_phase + 1,
                "phases": len(execution.plan),
                "nodes_per_phase": list(execution._nodes_in_phase[:-1]),
            }
            for execution in self.scheduler.in_flight.values()
        ]
        transport = self.transport_stats()
        return {
            "time": self.events.now,
            "events_processed": self.events.events_processed,
            "pending_events": self.events.pending,
            "heap_size": self.events.heap_size,
            "progress_vector": list(self.progress_vector()),
            "chunks_ready": self.scheduler.ready_count,
            "chunks_in_flight": per_chunk,
            "sets": [
                {"set_id": s.set_id, "name": s.name, "op": s.op.value,
                 "chunks_done": s.chunks_done, "num_chunks": s.num_chunks}
                for s in self.sets if not s.done
            ],
            "faults": (self.fault_state.snapshot()
                       if self.fault_state is not None else None),
            "transport": transport.as_dict() if transport is not None else None,
        }

    def wait_for_summary(self) -> str:
        """What the simulation is still waiting on — the deadlock report.

        Lists every unfinished collective set with its chunk progress, and
        every in-flight chunk execution with the phase its slowest nodes
        are stuck in (the wait-for relation a drain deadlock needs).
        """
        lines = [
            f"wait-for summary at t={self.events.now:,.0f}: "
            f"{self.scheduler.ready_count} chunks ready, "
            f"{self.scheduler.in_flight_count} in flight"
        ]
        for collective in self.sets:
            if collective.done:
                continue
            lines.append(
                f"  set {collective.set_id} ({collective.name or collective.op.value}): "
                f"{collective.chunks_done}/{collective.num_chunks} chunks done"
            )
        for execution in self.scheduler.in_flight.values():
            phases = len(execution.plan)
            lines.append(
                f"  chunk {execution.label}: waiting in phase "
                f"{execution.current_min_phase + 1}/{phases}, "
                f"nodes per phase {execution._nodes_in_phase[:-1]}"
            )
        return "\n".join(lines)
