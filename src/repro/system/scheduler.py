"""The system-layer scheduler (Sec. IV-B, Fig. 7).

Keeps the *ready queue* of chunks not yet issued and dispatches them into
the multi-phase execution pipeline.  The dispatcher "keeps track of the
current active chunks at their first phase; if they fall below a certain
threshold T, the dispatcher issues P new chunks from the ready queue".
The logical scheduling queues (LSQs) — one per dedicated channel per
phase — are realized by assigning each chunk a channel index at issue
time; their population is tracked for reporting.

The ready queue honours the Table III #7 scheduling policy: FIFO issues
chunks in request order, LIFO prefers the most recently requested
collective (prioritizing the first layers' gradients, Sec. III-E, since
back-propagation requests them last).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.collectives.context import CollectiveContext
from repro.collectives.hierarchical import ChunkExecution
from repro.config.parameters import SchedulingPolicy, SystemConfig
from repro.errors import SchedulerError
from repro.network.physical.fabric import Fabric
from repro.system.collective_set import CollectiveSet
from repro.system.stats import DelayBreakdown

@dataclass
class ReadyChunk:
    """A chunk sitting in the ready queue.

    ``chunk_id`` is assigned by the owning :class:`Scheduler` — a
    per-system counter, not a process global, so chunk numbering (the
    PRIORITY-policy FIFO tie-break, ``in_flight`` keys, diagnostics)
    depends on this run alone and not on how many systems the process or
    a pool worker built before (cross-process determinism; see the same
    note on ``System._set_ids``).
    """

    collective: CollectiveSet
    index_in_set: int
    size_bytes: float
    enqueued_at: float
    chunk_id: int


class Scheduler:
    """Ready queue + dispatcher + LSQ bookkeeping for one system."""

    def __init__(
        self,
        fabric: Fabric,
        system: SystemConfig,
        global_breakdown: DelayBreakdown,
        now: Callable[[], float],
    ):
        self.fabric = fabric
        self.system = system
        self.global_breakdown = global_breakdown
        self._now = now
        self._ready: deque[ReadyChunk] = deque()
        self._chunk_ids = itertools.count()
        self._first_phase_chunks = 0
        self._issued = 0
        self._completed = 0
        #: chunk_id -> live execution, for inspection and draining checks.
        self.in_flight: dict[int, ChunkExecution] = {}
        #: When tracing is enabled, finished executions are retained here
        #: as (ready_chunk, execution) pairs for timeline reconstruction.
        self.keep_completed = False
        self.completed_executions: list[tuple[ReadyChunk, ChunkExecution]] = []

    # -- queue state ----------------------------------------------------------

    @property
    def ready_count(self) -> int:
        return len(self._ready)

    @property
    def first_phase_count(self) -> int:
        return self._first_phase_chunks

    @property
    def in_flight_count(self) -> int:
        return len(self.in_flight)

    @property
    def idle(self) -> bool:
        return not self._ready and not self.in_flight

    # -- enqueue / dispatch -----------------------------------------------------

    def enqueue_set(self, collective: CollectiveSet, ctx: CollectiveContext) -> None:
        """Split a collective set into ready chunks and try dispatching."""
        now = self._now()
        collective.created_at = now
        for i, size in enumerate(collective.chunk_sizes):
            self._ready.append(
                ReadyChunk(collective, i, size, enqueued_at=now,
                           chunk_id=next(self._chunk_ids)))
        # Stash the per-set context on the set for dispatch time.
        collective._ctx = ctx  # type: ignore[attr-defined]
        self._maybe_dispatch()

    def _pop_ready(self) -> ReadyChunk:
        if self.system.scheduling_policy is SchedulingPolicy.LIFO:
            return self._ready.pop()
        if self.system.scheduling_policy is SchedulingPolicy.PRIORITY:
            return self._pop_priority()
        return self._ready.popleft()

    def _pop_priority(self) -> ReadyChunk:
        """Sec. III-E first-layer prioritization: the lowest layer id wins
        (collectives without a layer go last); FIFO among equals."""
        def rank(ready: ReadyChunk):
            layer = ready.collective.layer_id
            return (layer is None, layer if layer is not None else 0,
                    ready.chunk_id)

        best_index = min(range(len(self._ready)),
                         key=lambda i: rank(self._ready[i]))
        best = self._ready[best_index]
        del self._ready[best_index]
        return best

    def _maybe_dispatch(self) -> None:
        """Fig. 7 dispatcher: if first-phase population fell below T, issue
        up to P chunks from the ready queue."""
        if self._first_phase_chunks >= self.system.dispatch_threshold:
            return
        for _ in range(self.system.dispatch_batch):
            if not self._ready:
                return
            self._issue(self._pop_ready())

    def _issue(self, ready: ReadyChunk) -> None:
        now = self._now()
        delay = now - ready.enqueued_at
        self.global_breakdown.record_ready_queue(delay)
        ready.collective.breakdown.record_ready_queue(delay)
        if ready.collective.first_issue_at is None:
            ready.collective.first_issue_at = now

        ctx: CollectiveContext = ready.collective._ctx  # type: ignore[attr-defined]
        execution = ChunkExecution(
            ctx,
            self.fabric,
            ready.collective.plan,
            ready.size_bytes,
            chunk_index=ready.index_in_set,
            on_done=lambda ce, r=ready: self._on_chunk_done(r, ce),
            on_phase_done=lambda ci, p, r=ready: self._on_phase_drained(r, p),
            label=f"set{ready.collective.set_id}/c{ready.index_in_set}",
        )
        self.in_flight[ready.chunk_id] = execution
        self._issued += 1
        if execution.plan:
            self._first_phase_chunks += 1
        execution.start()

    def _on_phase_drained(self, ready: ReadyChunk, phase_idx: int) -> None:
        """All nodes of this chunk left ``phase_idx``."""
        if phase_idx == 0:
            self._first_phase_chunks -= 1
            if self._first_phase_chunks < 0:
                raise SchedulerError("first-phase chunk count went negative")
            self._maybe_dispatch()

    def _on_chunk_done(self, ready: ReadyChunk, execution: ChunkExecution) -> None:
        del self.in_flight[ready.chunk_id]
        self._completed += 1
        if self.keep_completed:
            self.completed_executions.append((ready, execution))
        if not execution.plan:
            # Degenerate chunk (no communication dimensions): it never held
            # a first-phase slot, but its completion may still free budget.
            self._maybe_dispatch()
        ready.collective._chunk_finished(self._now())

    # -- LSQ reporting ------------------------------------------------------------

    def lsq_counts(self, plan) -> list[int]:
        """Number of LSQs per phase for a plan: one per dedicated channel
        of the phase's dimension (Sec. IV-B)."""
        counts = []
        for spec in plan:
            groups = self.fabric.groups(spec.dim)
            channels = next(iter(groups.values()))
            counts.append(len(channels))
        return counts
