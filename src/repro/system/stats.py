"""System-layer statistics: the queue/network delay breakdowns of the paper.

Fig. 12b and Fig. 16 report, per run or per layer:

* **Queue P0** — time chunks wait in the ready queue before dispatch.
* **Queue P1..Pk** — per-phase message injection-queue delay (waiting for
  the phase's dedicated links to finish previously issued chunks).
* **Network P1..Pk** — per-phase in-network message delay (serialization,
  propagation, intermediate hops).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.collectives.context import PhaseStats
from repro.network.message import Message

#: Upper bound on phases any plan produces (enhanced all-reduce = 4).
MAX_PHASES = 8


@dataclass
class DelayBreakdown:
    """Aggregated queue/network delays for one scope (a run or one set)."""

    phase_stats: dict[int, PhaseStats] = field(default_factory=dict)
    ready_queue_delays: list[float] = field(default_factory=list)

    def record_message(self, phase_index: int, message: Message) -> None:
        stats = self.phase_stats.get(phase_index)
        if stats is None:
            stats = self.phase_stats[phase_index] = PhaseStats()
        stats.record(message)

    def record_ready_queue(self, delay_cycles: float) -> None:
        self.ready_queue_delays.append(delay_cycles)

    @property
    def mean_ready_queue_delay(self) -> float:
        """Queue P0 in the paper's terminology.

        ``fsum``: exact sum, so the mean does not depend on the order
        chunks were dispatched in (schedule-tie permutations reorder it).
        """
        if not self.ready_queue_delays:
            return 0.0
        return math.fsum(self.ready_queue_delays) / len(self.ready_queue_delays)

    def mean_queue_delay(self, phase_index: int) -> float:
        """Queue P<phase_index> (mean per-message link-wait cycles)."""
        stats = self.phase_stats.get(phase_index)
        return stats.mean_queue_cycles if stats else 0.0

    def mean_network_delay(self, phase_index: int) -> float:
        """Network P<phase_index> (mean per-message in-network cycles)."""
        stats = self.phase_stats.get(phase_index)
        return stats.mean_network_cycles if stats else 0.0

    @property
    def num_phases(self) -> int:
        return max(self.phase_stats, default=0)

    def rows(self) -> list[dict[str, float]]:
        """Fig. 12b style rows: one dict per phase with queue/network means."""
        out = [{"phase": 0, "queue": self.mean_ready_queue_delay, "network": 0.0}]
        for p in range(1, self.num_phases + 1):
            out.append({
                "phase": p,
                "queue": self.mean_queue_delay(p),
                "network": self.mean_network_delay(p),
            })
        return out

    def as_dict(self) -> dict:
        """JSON-serializable form; round-trips through :meth:`from_dict`.

        Used by the run cache (:mod:`repro.parallel.cache`) so a cached
        collective result carries its full Fig. 12b breakdown.
        """
        return {
            "phase_stats": {str(p): s.as_dict() for p, s in self.phase_stats.items()},
            "ready_queue_delays": list(self.ready_queue_delays),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DelayBreakdown":
        out = cls()
        for p, stats in data.get("phase_stats", {}).items():
            out.phase_stats[int(p)] = PhaseStats.from_dict(stats)
        out.ready_queue_delays = [float(d) for d in data.get("ready_queue_delays", [])]
        return out

    def merge_from(self, other: "DelayBreakdown") -> None:
        """Fold another breakdown into this one (per-layer -> per-run)."""
        for p, stats in other.phase_stats.items():
            self.phase_stats.setdefault(p, PhaseStats()).merge_from(stats)
        self.ready_queue_delays.extend(other.ready_queue_delays)
