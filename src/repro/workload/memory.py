"""Per-NPU memory footprint estimation.

The co-design space includes memory capacity: Table II ties chunk sizing
to "Storage Element Size (Area/Power)", and parallelization strategy
determines what each NPU must hold.  This module estimates the resident
bytes per NPU for a workload + strategy + system size and validates it
against an HBM capacity budget:

* parameters and gradients — replicated under data parallelism, sharded
  1/degree under model parallelism (hybrid: sharded over the
  model-parallel degree);
* optimizer state — ``optimizer_words`` words per parameter (2 for Adam
  moments), sharded like the parameters;
* activations — scale with the local minibatch and are estimated from
  each layer's communication sizes or supplied explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.units import GB
from repro.errors import WorkloadError
from repro.workload.model import DNNModel
from repro.workload.parallelism import ParallelismKind


@dataclass(frozen=True)
class MemoryFootprint:
    """Resident bytes per NPU, by category."""

    parameter_bytes: float
    gradient_bytes: float
    optimizer_bytes: float
    activation_bytes: float

    @property
    def total_bytes(self) -> float:
        return (self.parameter_bytes + self.gradient_bytes
                + self.optimizer_bytes + self.activation_bytes)

    def fits(self, capacity_bytes: float) -> bool:
        if capacity_bytes <= 0:
            raise WorkloadError("capacity must be positive")
        return self.total_bytes <= capacity_bytes

    def utilization(self, capacity_bytes: float) -> float:
        if capacity_bytes <= 0:
            raise WorkloadError("capacity must be positive")
        return self.total_bytes / capacity_bytes


#: HBM capacity of a TPU-class NPU (per module).
DEFAULT_HBM_BYTES = 32 * GB


def estimate_footprint(
    model: DNNModel,
    model_parallel_degree: int = 1,
    optimizer_words: int = 2,
    activation_bytes: float | None = None,
    bytes_per_element: int = 4,
) -> MemoryFootprint:
    """Estimate one NPU's resident memory for ``model``.

    Parameter bytes are taken from the layers' weight-gradient
    communication sizes (= parameter bytes under our model builders);
    with pure model parallelism they are already per-shard, so
    ``model_parallel_degree`` only divides them for DATA-parallel
    descriptions being re-sharded.  ``activation_bytes`` overrides the
    activation estimate (sum of forward communication sizes, or 10% of
    parameters when the model has no activation exchanges).
    """
    if model_parallel_degree < 1:
        raise WorkloadError("model_parallel_degree must be >= 1")
    if optimizer_words < 0:
        raise WorkloadError("optimizer_words must be >= 0")

    param_bytes = sum(l.weight_grad_comm.size_bytes for l in model.layers)
    if param_bytes == 0:
        # Model-parallel descriptions may carry no weight-gradient comm;
        # fall back to compute-free structural estimate via activations.
        param_bytes = sum(l.total_comm_bytes for l in model.layers)
    if model.strategy.kind is ParallelismKind.DATA:
        shard_bytes = param_bytes / model_parallel_degree
    else:
        # Builders already size hybrid/model-parallel layers per shard.
        shard_bytes = param_bytes

    if activation_bytes is None:
        fwd = sum(l.forward_comm.size_bytes for l in model.layers)
        activation_bytes = fwd if fwd > 0 else 0.1 * shard_bytes

    optimizer_bytes = shard_bytes / bytes_per_element * optimizer_words * 4
    return MemoryFootprint(
        parameter_bytes=shard_bytes,
        gradient_bytes=shard_bytes,
        optimizer_bytes=optimizer_bytes,
        activation_bytes=float(activation_bytes),
    )


def validate_fits(
    model: DNNModel,
    capacity_bytes: float = DEFAULT_HBM_BYTES,
    **kwargs,
) -> MemoryFootprint:
    """Estimate and raise :class:`WorkloadError` if the NPU cannot hold
    the workload."""
    footprint = estimate_footprint(model, **kwargs)
    if not footprint.fits(capacity_bytes):
        raise WorkloadError(
            f"workload {model.name} needs {footprint.total_bytes / GB:.1f} GB "
            f"per NPU but only {capacity_bytes / GB:.1f} GB is available"
        )
    return footprint
