"""The DNN model container handed to the training loop."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workload.layer import LayerSpec
from repro.workload.parallelism import ParallelismStrategy


@dataclass(frozen=True)
class DNNModel:
    """A named sequence of layers plus the parallelization strategy.

    This is the in-memory form of the Fig. 8 workload input file; use
    :mod:`repro.workload.parser` to read/write the text format.
    """

    name: str
    layers: tuple[LayerSpec, ...]
    strategy: ParallelismStrategy
    minibatch: int = 32

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("model name must be non-empty")
        if not self.layers:
            raise WorkloadError(f"model {self.name} has no layers")
        if self.minibatch < 1:
            raise WorkloadError(f"minibatch must be >= 1, got {self.minibatch}")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise WorkloadError(f"duplicate layer names in {self.name}: {dupes}")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_compute_cycles(self) -> float:
        """Single-NPU compute for one iteration (fwd + both gradients)."""
        return sum(layer.total_compute_cycles for layer in self.layers)

    @property
    def total_comm_bytes(self) -> float:
        return sum(layer.total_comm_bytes for layer in self.layers)

    def layer(self, name: str) -> LayerSpec:
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise WorkloadError(f"model {self.name} has no layer named {name!r}")
