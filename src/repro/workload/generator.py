"""Synthetic workload generator.

Produces randomized-but-reproducible DNN workloads for stress tests and
parameter sweeps: the "workload generator" leg of the benchmark harness.
Layer compute times and communication sizes are drawn log-uniformly from
configurable ranges with a fixed seed, so a generated workload is fully
deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.collectives.types import CollectiveOp
from repro.errors import WorkloadError
from repro.workload.layer import CommSpec, LayerSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import DATA_PARALLEL, ParallelismStrategy


@dataclass(frozen=True)
class GeneratorSpec:
    """Ranges the generator draws from (log-uniform)."""

    num_layers: int = 20
    compute_cycles_range: tuple[float, float] = (10_000.0, 1_000_000.0)
    comm_bytes_range: tuple[float, float] = (64 * 1024.0, 16 * 1024 * 1024.0)
    #: Probability that a layer communicates at all in a phase where the
    #: strategy allows it.
    comm_probability: float = 1.0
    local_update_cycles_per_kb: float = 1.0

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise WorkloadError("num_layers must be >= 1")
        for name, (lo, hi) in (("compute", self.compute_cycles_range),
                               ("comm", self.comm_bytes_range)):
            if lo <= 0 or hi < lo:
                raise WorkloadError(f"bad {name} range ({lo}, {hi})")
        if not 0 <= self.comm_probability <= 1:
            raise WorkloadError("comm_probability must be in [0, 1]")


def _log_uniform(rng: random.Random, lo: float, hi: float) -> float:
    import math

    return math.exp(rng.uniform(math.log(lo), math.log(hi)))


def synthetic_model(
    spec: GeneratorSpec | None = None,
    strategy: ParallelismStrategy = DATA_PARALLEL,
    seed: int = 0,
    name: str = "synthetic",
) -> DNNModel:
    """Generate a deterministic random workload.

    Data-parallel layers get weight-gradient all-reduces; model/hybrid
    strategies additionally get activation all-gathers and input-gradient
    all-reduces, matching Table I.
    """
    spec = spec if spec is not None else GeneratorSpec()
    rng = random.Random(seed)
    layers = []
    for i in range(spec.num_layers):
        fwd, ig, wg = (
            _log_uniform(rng, *spec.compute_cycles_range) for _ in range(3)
        )

        def draw_comm(op: CollectiveOp) -> CommSpec:
            if rng.random() >= spec.comm_probability:
                return CommSpec()
            return CommSpec(op, _log_uniform(rng, *spec.comm_bytes_range))

        layers.append(LayerSpec(
            name=f"synthetic{i}",
            forward_cycles=fwd,
            input_grad_cycles=ig,
            weight_grad_cycles=wg,
            forward_comm=draw_comm(CollectiveOp.ALL_GATHER),
            input_grad_comm=draw_comm(CollectiveOp.ALL_REDUCE),
            weight_grad_comm=draw_comm(CollectiveOp.ALL_REDUCE),
            local_update_cycles_per_kb=spec.local_update_cycles_per_kb,
        ))
    return DNNModel(name=name, layers=tuple(layers), strategy=strategy)
