"""Layer descriptors: the per-layer rows of the Fig. 8 workload file.

Each layer carries three compute delays (forward pass, input-gradient,
weight-gradient), three communication descriptors (one per training
phase, each a collective type plus size), and the local update time —
the average cycles to process/reduce 1 KB of communicated data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.types import CollectiveOp
from repro.errors import WorkloadError


@dataclass(frozen=True)
class CommSpec:
    """One communication requirement: a collective and its payload size."""

    op: CollectiveOp = CollectiveOp.NONE
    size_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.op is CollectiveOp.NONE and self.size_bytes != 0:
            raise WorkloadError(
                f"NONE communication must have zero size, got {self.size_bytes}"
            )
        if self.op is not CollectiveOp.NONE and self.size_bytes <= 0:
            raise WorkloadError(
                f"{self.op.value} communication needs a positive size"
            )
        if self.size_bytes < 0:
            raise WorkloadError(f"size must be >= 0: {self.size_bytes}")

    @property
    def active(self) -> bool:
        return self.op is not CollectiveOp.NONE and self.size_bytes > 0


NO_COMM = CommSpec()


@dataclass(frozen=True)
class LayerSpec:
    """One DNN layer as the workload layer sees it (Fig. 8 row)."""

    name: str
    forward_cycles: float
    input_grad_cycles: float
    weight_grad_cycles: float
    forward_comm: CommSpec = NO_COMM
    input_grad_comm: CommSpec = NO_COMM
    weight_grad_comm: CommSpec = NO_COMM
    local_update_cycles_per_kb: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("layer name must be non-empty")
        for attr in ("forward_cycles", "input_grad_cycles", "weight_grad_cycles"):
            if getattr(self, attr) < 0:
                raise WorkloadError(f"{attr} must be >= 0 in layer {self.name}")
        if self.local_update_cycles_per_kb < 0:
            raise WorkloadError(f"local update time must be >= 0 in {self.name}")

    @property
    def total_compute_cycles(self) -> float:
        return self.forward_cycles + self.input_grad_cycles + self.weight_grad_cycles

    @property
    def total_comm_bytes(self) -> float:
        return (self.forward_comm.size_bytes + self.input_grad_comm.size_bytes
                + self.weight_grad_comm.size_bytes)
