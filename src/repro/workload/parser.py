"""Reader/writer for the workload input file of Fig. 8.

The text format mirrors the paper's figure: a parallelism header, the
layer count, then a five-line block per layer::

    HYBRID data:local,horizontal model:vertical
    2
    encoder1
    12000 11000 13000
    ALLGATHER ALLREDUCE ALLREDUCE
    4194304 4194304 50331648
    1.0
    encoder2
    ...

Line 1 of a block is the layer name; line 2 the compute times (cycles)
for <Fwd Pass> <Input Grad> <Weight Grad>; line 3 the collective type per
phase; line 4 the communication sizes (bytes) per phase; line 5 the local
update time (cycles per 1 KB of communicated data).
"""

from __future__ import annotations


from repro.collectives.types import CollectiveOp
from repro.errors import WorkloadError
from repro.dims import Dimension
from repro.workload.layer import CommSpec, LayerSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import (
    DATA_PARALLEL,
    MODEL_PARALLEL,
    ParallelismKind,
    ParallelismStrategy,
    hybrid,
)

_OP_TOKENS = {
    "NONE": CollectiveOp.NONE,
    "ALLREDUCE": CollectiveOp.ALL_REDUCE,
    "ALLGATHER": CollectiveOp.ALL_GATHER,
    "REDUCESCATTER": CollectiveOp.REDUCE_SCATTER,
    "ALLTOALL": CollectiveOp.ALL_TO_ALL,
}
_TOKEN_FOR_OP = {op: token for token, op in _OP_TOKENS.items()}


def _parse_op(token: str, line_no: int) -> CollectiveOp:
    try:
        return _OP_TOKENS[token.upper()]
    except KeyError:
        raise WorkloadError(
            f"line {line_no}: unknown collective type {token!r} "
            f"(expected one of {sorted(_OP_TOKENS)})"
        ) from None


def _parse_dims(spec: str, line_no: int) -> tuple[Dimension, ...]:
    dims = []
    for token in spec.split(","):
        token = token.strip().lower()
        try:
            dims.append(Dimension(token))
        except ValueError:
            raise WorkloadError(
                f"line {line_no}: unknown dimension {token!r}"
            ) from None
    return tuple(dims)


def _parse_strategy(line: str, line_no: int) -> ParallelismStrategy:
    parts = line.split()
    kind_token = parts[0].upper()
    if kind_token == "DATA":
        return DATA_PARALLEL
    if kind_token == "MODEL":
        return MODEL_PARALLEL
    if kind_token != "HYBRID":
        raise WorkloadError(
            f"line {line_no}: unknown parallelism {parts[0]!r} "
            "(expected DATA, MODEL or HYBRID)"
        )
    data_dims = model_dims = None
    for part in parts[1:]:
        if part.startswith("data:"):
            data_dims = _parse_dims(part[len("data:"):], line_no)
        elif part.startswith("model:"):
            model_dims = _parse_dims(part[len("model:"):], line_no)
        else:
            raise WorkloadError(f"line {line_no}: unexpected token {part!r}")
    if data_dims is None or model_dims is None:
        raise WorkloadError(
            f"line {line_no}: HYBRID needs 'data:<dims> model:<dims>'"
        )
    return hybrid(data_dims, model_dims)


def _comm(op: CollectiveOp, size: float) -> CommSpec:
    if op is CollectiveOp.NONE:
        return CommSpec()
    return CommSpec(op, size)


def loads(text: str, name: str = "workload", minibatch: int = 32) -> DNNModel:
    """Parse a Fig. 8 workload description into a :class:`DNNModel`."""
    lines: list[tuple[int, str]] = []
    for i, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.split("#", 1)[0].strip()
        if stripped:
            lines.append((i, stripped))
    if len(lines) < 2:
        raise WorkloadError("workload file needs a parallelism line and a layer count")

    cursor = 0

    def next_line() -> tuple[int, str]:
        nonlocal cursor
        if cursor >= len(lines):
            raise WorkloadError("unexpected end of workload file")
        entry = lines[cursor]
        cursor += 1
        return entry

    line_no, strategy_line = next_line()
    strategy = _parse_strategy(strategy_line, line_no)

    line_no, count_line = next_line()
    try:
        num_layers = int(count_line)
    except ValueError:
        raise WorkloadError(f"line {line_no}: bad layer count {count_line!r}") from None
    if num_layers < 1:
        raise WorkloadError(f"line {line_no}: layer count must be >= 1")

    layers = []
    for _ in range(num_layers):
        _, layer_name = next_line()
        line_no, compute_line = next_line()
        try:
            fwd_c, ig_c, wg_c = (float(tok) for tok in compute_line.split())
        except ValueError:
            raise WorkloadError(
                f"line {line_no}: expected three compute times, got {compute_line!r}"
            ) from None
        line_no, ops_line = next_line()
        op_tokens = ops_line.split()
        if len(op_tokens) != 3:
            raise WorkloadError(
                f"line {line_no}: expected three collective types, got {ops_line!r}"
            )
        fwd_op, ig_op, wg_op = (_parse_op(tok, line_no) for tok in op_tokens)
        line_no, sizes_line = next_line()
        try:
            fwd_s, ig_s, wg_s = (float(tok) for tok in sizes_line.split())
        except ValueError:
            raise WorkloadError(
                f"line {line_no}: expected three sizes, got {sizes_line!r}"
            ) from None
        line_no, update_line = next_line()
        try:
            local_update = float(update_line)
        except ValueError:
            raise WorkloadError(
                f"line {line_no}: bad local update time {update_line!r}"
            ) from None

        layers.append(LayerSpec(
            name=layer_name,
            forward_cycles=fwd_c,
            input_grad_cycles=ig_c,
            weight_grad_cycles=wg_c,
            forward_comm=_comm(fwd_op, fwd_s),
            input_grad_comm=_comm(ig_op, ig_s),
            weight_grad_comm=_comm(wg_op, wg_s),
            local_update_cycles_per_kb=local_update,
        ))

    if cursor != len(lines):
        extra = lines[cursor][0]
        raise WorkloadError(f"line {extra}: trailing content after last layer")
    return DNNModel(name=name, layers=tuple(layers), strategy=strategy,
                    minibatch=minibatch)


def load(path, name: str | None = None, minibatch: int = 32) -> DNNModel:
    """Read a workload file from disk."""
    with open(path) as f:
        text = f.read()
    return loads(text, name=name or str(path), minibatch=minibatch)


def dumps(model: DNNModel) -> str:
    """Serialize a model back to the Fig. 8 text format (round-trips with
    :func:`loads` up to floating-point formatting)."""
    strategy = model.strategy
    if strategy.kind is ParallelismKind.HYBRID:
        data = ",".join(str(d) for d in strategy.data_dims)
        mdl = ",".join(str(d) for d in strategy.model_dims)
        header = f"HYBRID data:{data} model:{mdl}"
    else:
        header = strategy.kind.value

    out = [header, str(model.num_layers)]
    for layer in model.layers:
        out.append(layer.name)
        out.append(f"{layer.forward_cycles:.17g} {layer.input_grad_cycles:.17g} "
                   f"{layer.weight_grad_cycles:.17g}")
        out.append(" ".join(_TOKEN_FOR_OP[c.op] for c in (
            layer.forward_comm, layer.input_grad_comm, layer.weight_grad_comm)))
        out.append(f"{layer.forward_comm.size_bytes:.17g} "
                   f"{layer.input_grad_comm.size_bytes:.17g} "
                   f"{layer.weight_grad_comm.size_bytes:.17g}")
        out.append(f"{layer.local_update_cycles_per_kb:.17g}")
    return "\n".join(out) + "\n"


def dump(model: DNNModel, path) -> None:
    with open(path, "w") as f:
        f.write(dumps(model))
