"""Workload layer: layers, models, parallelism, parser, training loop."""

from repro.workload.layer import NO_COMM, CommSpec, LayerSpec
from repro.workload.memory import (
    DEFAULT_HBM_BYTES,
    MemoryFootprint,
    estimate_footprint,
    validate_fits,
)
from repro.workload.model import DNNModel
from repro.workload.parallelism import (
    DATA_PARALLEL,
    MODEL_PARALLEL,
    TRANSFORMER_HYBRID,
    ParallelismKind,
    ParallelismStrategy,
    TrainingPhase,
    hybrid,
)
from repro.workload.generator import GeneratorSpec, synthetic_model
from repro.workload.parser import dump, dumps, load, loads
from repro.workload.pipeline import (
    PipelineReport,
    PipelineSchedule,
    PipelineStage,
    PipelineTrainingLoop,
    partition_model,
)
from repro.workload.training_loop import LayerReport, TrainingLoop, TrainingReport

__all__ = [
    "CommSpec",
    "DATA_PARALLEL",
    "DEFAULT_HBM_BYTES",
    "DNNModel",
    "MemoryFootprint",
    "GeneratorSpec",
    "LayerReport",
    "LayerSpec",
    "MODEL_PARALLEL",
    "NO_COMM",
    "ParallelismKind",
    "ParallelismStrategy",
    "PipelineReport",
    "PipelineSchedule",
    "PipelineStage",
    "PipelineTrainingLoop",
    "partition_model",
    "TRANSFORMER_HYBRID",
    "TrainingLoop",
    "TrainingPhase",
    "TrainingReport",
    "dump",
    "dumps",
    "hybrid",
    "load",
    "loads",
    "estimate_footprint",
    "synthetic_model",
    "validate_fits",
]
