"""The workload layer's training loop (Sec. IV-A).

Drives ``num_iterations`` of synchronous training over a
:class:`repro.system.System`:

* **Forward pass** — layer by layer; before computing layer *i* the loop
  must wait for that layer's weight-gradient collective from the previous
  iteration (this wait is the *exposed* communication of Fig. 15);
  model/hybrid-parallel layers then exchange output activations, which
  blocks the next layer.
* **Back-propagation** — from the last layer backwards; each layer
  computes its weight gradient, issues the weight-gradient collective
  *asynchronously* (overlapping with the remaining back-propagation,
  Sec. III-E), computes its input gradient, and — for model/hybrid
  parallelism — blocks on the input-gradient exchange before moving on.

The loop is written in continuation-passing style over the simulator's
event queue: every wait is a callback, so communication genuinely
overlaps compute inside the discrete-event simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError
from repro.system.collective_set import CollectiveSet
from repro.system.sys_layer import System
from repro.workload.layer import CommSpec
from repro.workload.model import DNNModel
from repro.workload.parallelism import TrainingPhase


@dataclass
class LayerReport:
    """Per-layer accounting across the whole run (all iterations)."""

    name: str
    compute_cycles: dict[TrainingPhase, float] = field(
        default_factory=lambda: {p: 0.0 for p in TrainingPhase}
    )
    comm_cycles: dict[TrainingPhase, float] = field(
        default_factory=lambda: {p: 0.0 for p in TrainingPhase}
    )
    comm_bytes: dict[TrainingPhase, float] = field(
        default_factory=lambda: {p: 0.0 for p in TrainingPhase}
    )
    exposed_cycles: float = 0.0
    sets: list[CollectiveSet] = field(default_factory=list)

    @property
    def total_compute_cycles(self) -> float:
        return sum(self.compute_cycles.values())

    @property
    def total_comm_cycles(self) -> float:
        """Raw communication time (Figs. 13/14): the sum of this layer's
        collective durations, whether or not they overlapped compute."""
        return sum(self.comm_cycles.values())


@dataclass
class TrainingReport:
    """The run-level result returned by :meth:`TrainingLoop.run`."""

    model_name: str
    num_iterations: int
    total_cycles: float
    layers: list[LayerReport]
    iteration_ends: list[float]

    @property
    def total_compute_cycles(self) -> float:
        return sum(layer.total_compute_cycles for layer in self.layers)

    @property
    def total_exposed_cycles(self) -> float:
        return sum(layer.exposed_cycles for layer in self.layers)

    @property
    def total_comm_cycles(self) -> float:
        return sum(layer.total_comm_cycles for layer in self.layers)

    @property
    def exposed_comm_ratio(self) -> float:
        """Exposed communication share of busy time (Figs. 17/18)."""
        busy = self.total_compute_cycles + self.total_exposed_cycles
        return self.total_exposed_cycles / busy if busy else 0.0


class TrainingLoop:
    """Runs a DNN training workload on a simulated platform."""

    def __init__(self, system: System, model: DNNModel, num_iterations: int = 1):
        if num_iterations < 1:
            raise WorkloadError(f"num_iterations must be >= 1, got {num_iterations}")
        self.system = system
        self.model = model
        self.num_iterations = num_iterations
        self._reports = [LayerReport(layer.name) for layer in model.layers]
        self._wg_pending: dict[int, CollectiveSet] = {}
        self._iteration = 0
        self._iteration_ends: list[float] = []
        self._finished = False

    # -- public -----------------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> TrainingReport:
        """Run all iterations to completion and return the report."""
        self._start_forward(0)
        self.system.events.run(max_events=max_events)
        if not self._finished:
            raise WorkloadError(
                "event queue drained before the training loop finished "
                "(a collective never completed — likely a deadlock)"
            )
        return TrainingReport(
            model_name=self.model.name,
            num_iterations=self.num_iterations,
            total_cycles=self.system.now,
            layers=self._reports,
            iteration_ends=self._iteration_ends,
        )

    # -- forward pass -------------------------------------------------------------------

    def _start_forward(self, index: int) -> None:
        pending = self._wg_pending.pop(index, None)
        if pending is not None and not pending.done:
            self._blocked_on(pending, index, lambda: self._forward_compute(index))
        else:
            self._forward_compute(index)

    def _forward_compute(self, index: int) -> None:
        layer = self.model.layers[index]
        self._reports[index].compute_cycles[TrainingPhase.FORWARD] += layer.forward_cycles
        self.system.schedule(layer.forward_cycles, lambda: self._forward_comm(index))

    def _forward_comm(self, index: int) -> None:
        layer = self.model.layers[index]
        collective = self._issue(index, TrainingPhase.FORWARD, layer.forward_comm)
        if collective is not None:
            # Output activations block the next layer (Sec. III-E).
            self._blocked_on(collective, index, lambda: self._after_forward(index))
        else:
            self._after_forward(index)

    def _after_forward(self, index: int) -> None:
        if index + 1 < self.model.num_layers:
            self._start_forward(index + 1)
        else:
            self._start_backward(self.model.num_layers - 1)

    # -- back-propagation ------------------------------------------------------------------

    def _start_backward(self, index: int) -> None:
        layer = self.model.layers[index]
        self._reports[index].compute_cycles[TrainingPhase.WEIGHT_GRAD] += (
            layer.weight_grad_cycles
        )
        self.system.schedule(
            layer.weight_grad_cycles, lambda: self._weight_grad_comm(index)
        )

    def _weight_grad_comm(self, index: int) -> None:
        layer = self.model.layers[index]
        collective = self._issue(index, TrainingPhase.WEIGHT_GRAD, layer.weight_grad_comm)
        if collective is not None:
            # Asynchronous: awaited by the next iteration's forward pass.
            self._wg_pending[index] = collective
        self._input_grad_compute(index)

    def _input_grad_compute(self, index: int) -> None:
        layer = self.model.layers[index]
        self._reports[index].compute_cycles[TrainingPhase.INPUT_GRAD] += (
            layer.input_grad_cycles
        )
        self.system.schedule(layer.input_grad_cycles, lambda: self._input_grad_comm(index))

    def _input_grad_comm(self, index: int) -> None:
        layer = self.model.layers[index]
        collective = self._issue(index, TrainingPhase.INPUT_GRAD, layer.input_grad_comm)
        if collective is not None:
            # Input gradients feed the previous layer's back-propagation:
            # blocking (Sec. III-E).
            self._blocked_on(collective, index, lambda: self._after_backward(index))
        else:
            self._after_backward(index)

    def _after_backward(self, index: int) -> None:
        if index > 0:
            self._start_backward(index - 1)
        else:
            self._end_iteration()

    # -- iteration boundaries ------------------------------------------------------------------

    def _end_iteration(self) -> None:
        self._iteration_ends.append(self.system.now)
        self._iteration += 1
        if self._iteration < self.num_iterations:
            self._start_forward(0)
        else:
            self._drain(0)

    def _drain(self, index: int) -> None:
        """Wait out the final iteration's outstanding weight-gradient
        collectives in layer order — exactly what iteration N+1's forward
        pass would do — charging the waits as exposed communication."""
        if index >= self.model.num_layers:
            self._finished = True
            return
        pending = self._wg_pending.pop(index, None)
        if pending is not None and not pending.done:
            self._blocked_on(pending, index, lambda: self._drain(index + 1))
        else:
            self._drain(index + 1)

    # -- helpers -----------------------------------------------------------------------------

    def _issue(
        self, index: int, phase: TrainingPhase, comm: CommSpec
    ) -> Optional[CollectiveSet]:
        if not comm.active or not self.model.strategy.communicates(phase):
            return None
        layer = self.model.layers[index]
        scope = self.model.strategy.scope(phase)
        collective = self.system.request_collective(
            comm.op,
            comm.size_bytes,
            scope=scope,
            layer_id=index,
            name=f"{layer.name}/{phase.value}",
            reduction_cycles_per_kb=layer.local_update_cycles_per_kb,
        )
        report = self._reports[index]
        report.sets.append(collective)
        report.comm_bytes[phase] += comm.size_bytes
        collective.on_complete(
            lambda c, r=report, p=phase: self._account_comm(r, p, c)
        )
        return collective

    @staticmethod
    def _account_comm(report: LayerReport, phase: TrainingPhase, collective) -> None:
        report.comm_cycles[phase] += collective.duration_cycles

    def _blocked_on(self, collective: CollectiveSet, index: int, resume) -> None:
        wait_start = self.system.now
        report = self._reports[index]

        def unblock(_c) -> None:
            # det: allow[float-accumulation] one layer blocks at most once per pass
            report.exposed_cycles += self.system.now - wait_start
            resume()

        collective.on_complete(unblock)
