"""Pipeline parallelism (Sec. III-A lists it alongside data and model
parallelism as a core partitioning strategy).

A GPipe-style schedule: the model's layers are partitioned into
contiguous *stages*, each pinned to one NPU; a minibatch splits into
microbatches that stream through the stages.  Activations flow forward
and gradients backward as point-to-point transfers over the fabric's
routed paths, and each stage is a serial compute resource — so the
simulation reproduces the pipeline *bubble*: for uniform stages the idle
fraction approaches (S-1)/(M+S-1).

The loop is dependency-driven: a stage executes ready tasks in arrival
order, a forward task becomes ready when its activation lands, a backward
task when its output gradient lands.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.system.sys_layer import System
from repro.workload.model import DNNModel


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: its NPU and per-microbatch costs."""

    index: int
    node: int
    forward_cycles: float
    backward_cycles: float
    #: Activation bytes sent to the next stage per microbatch (unused for
    #: the last stage); the gradient flowing back is the same size.
    activation_bytes: float

    def __post_init__(self) -> None:
        if self.forward_cycles < 0 or self.backward_cycles < 0:
            raise WorkloadError(f"stage {self.index}: compute must be >= 0")
        if self.activation_bytes < 0:
            raise WorkloadError(f"stage {self.index}: activation bytes < 0")


class PipelineSchedule(str, enum.Enum):
    """Microbatch schedules.

    GPIPE admits every microbatch into the pipeline immediately (all
    forwards stream in, backwards follow) — maximal throughput, O(M)
    stashed activations on the early stages.  ONE_F_ONE_B caps each
    stage's in-flight forwards at its pipeline depth (S - index) and
    prefers a ready backward over a ready forward, bounding stashed
    activations at O(S) per stage with the same steady-state throughput.
    """

    GPIPE = "gpipe"
    ONE_F_ONE_B = "1f1b"


@dataclass
class StageReport:
    """Per-stage accounting across the run."""

    index: int
    node: int
    busy_cycles: float = 0.0
    forward_tasks: int = 0
    backward_tasks: int = 0
    #: Peak number of microbatches forwarded but not yet backwarded here —
    #: the activation-stash high-water mark (the 1F1B motivation).
    peak_stashed_activations: int = 0


@dataclass
class PipelineReport:
    """The result of a pipeline-parallel run."""

    num_stages: int
    num_microbatches: int
    num_iterations: int
    total_cycles: float
    stages: list[StageReport]
    comm_cycles: float

    @property
    def busy_cycles(self) -> float:
        return sum(s.busy_cycles for s in self.stages)

    @property
    def bubble_fraction(self) -> float:
        """Mean per-stage idle fraction — the pipeline bubble."""
        capacity = self.num_stages * self.total_cycles
        return 1.0 - self.busy_cycles / capacity if capacity else 0.0

    @property
    def ideal_bubble_fraction(self) -> float:
        """GPipe's (S-1)/(M+S-1) for uniform stages and free communication."""
        s, m = self.num_stages, self.num_microbatches
        return (s - 1) / (m + s - 1)


@dataclass
class _Task:
    kind: str  # "fwd" | "bwd"
    microbatch: int
    seq: int = 0


class PipelineTrainingLoop:
    """Runs GPipe-style pipeline-parallel training on a simulated system."""

    def __init__(
        self,
        system: System,
        stages: Sequence[PipelineStage],
        num_microbatches: int,
        num_iterations: int = 1,
        schedule: PipelineSchedule = PipelineSchedule.GPIPE,
    ):
        if len(stages) < 2:
            raise WorkloadError("a pipeline needs >= 2 stages")
        if num_microbatches < 1:
            raise WorkloadError("num_microbatches must be >= 1")
        if num_iterations < 1:
            raise WorkloadError("num_iterations must be >= 1")
        indices = [s.index for s in stages]
        if indices != list(range(len(stages))):
            raise WorkloadError(f"stage indices must be 0..S-1, got {indices}")
        nodes = [s.node for s in stages]
        if len(set(nodes)) != len(nodes):
            raise WorkloadError(f"stages must map to distinct NPUs: {nodes}")
        self.system = system
        self.stages = list(stages)
        self.num_microbatches = num_microbatches
        self.num_iterations = num_iterations
        self.schedule = schedule

        self._queues: list[deque[_Task]] = [deque() for _ in stages]
        self._busy: list[bool] = [False] * len(stages)
        self._reports = [StageReport(s.index, s.node) for s in stages]
        self._completed_microbatches = 0
        self._iteration = 0
        self._finished = False
        self._comm_cycles = 0.0
        self._seq = 0
        self._admitted = 0
        self._stashed = [0] * len(stages)

    # -- public ---------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> PipelineReport:
        self._start_iteration()
        self.system.events.run(max_events=max_events)
        if not self._finished:
            raise WorkloadError(
                "event queue drained before the pipeline finished "
                "(a transfer or task never completed)"
            )
        return PipelineReport(
            num_stages=len(self.stages),
            num_microbatches=self.num_microbatches,
            num_iterations=self.num_iterations,
            total_cycles=self.system.now,
            stages=self._reports,
            comm_cycles=self._comm_cycles,
        )

    # -- scheduling ------------------------------------------------------------

    def _start_iteration(self) -> None:
        if self.schedule is PipelineSchedule.GPIPE:
            for m in range(self.num_microbatches):
                self._admit(m)
        else:
            # 1F1B warm-up: fill the pipeline depth, then pace admissions
            # off backward completions at stage 0.
            for m in range(min(len(self.stages), self.num_microbatches)):
                self._admit(m)

    def _admit(self, microbatch: int) -> None:
        self._admitted += 1
        self._enqueue(0, _Task("fwd", microbatch))

    def _maybe_admit_next(self) -> None:
        if (self.schedule is PipelineSchedule.ONE_F_ONE_B
                and self._admitted < self.num_microbatches * (self._iteration + 1)):
            self._admit(self._admitted % self.num_microbatches)

    def _enqueue(self, stage_idx: int, task: _Task) -> None:
        task.seq = self._seq
        self._seq += 1
        self._queues[stage_idx].append(task)
        self._maybe_start(stage_idx)

    def _pick_task(self, stage_idx: int) -> _Task:
        queue = self._queues[stage_idx]
        if self.schedule is PipelineSchedule.ONE_F_ONE_B:
            for i, task in enumerate(queue):
                if task.kind == "bwd":
                    del queue[i]
                    return task
        return queue.popleft()

    def _maybe_start(self, stage_idx: int) -> None:
        if self._busy[stage_idx] or not self._queues[stage_idx]:
            return
        task = self._pick_task(stage_idx)
        stage = self.stages[stage_idx]
        cycles = (stage.forward_cycles if task.kind == "fwd"
                  else stage.backward_cycles)
        self._busy[stage_idx] = True
        report = self._reports[stage_idx]
        # det: allow[float-accumulation] one stage = one sequential task stream
        report.busy_cycles += cycles
        if task.kind == "fwd":
            report.forward_tasks += 1
        else:
            report.backward_tasks += 1
        self.system.schedule(
            cycles, lambda: self._task_done(stage_idx, task)
        )

    def _task_done(self, stage_idx: int, task: _Task) -> None:
        self._busy[stage_idx] = False
        if task.kind == "fwd":
            self._after_forward(stage_idx, task.microbatch)
        else:
            self._after_backward(stage_idx, task.microbatch)
        self._maybe_start(stage_idx)

    def _after_forward(self, stage_idx: int, microbatch: int) -> None:
        self._stashed[stage_idx] += 1
        report = self._reports[stage_idx]
        report.peak_stashed_activations = max(
            report.peak_stashed_activations, self._stashed[stage_idx])
        stage = self.stages[stage_idx]
        if stage_idx + 1 < len(self.stages):
            transfer = self.system.request_p2p(
                stage.node, self.stages[stage_idx + 1].node,
                stage.activation_bytes,
                name=f"act(s{stage_idx}->s{stage_idx + 1}, m{microbatch})",
            )
            transfer.on_complete(
                lambda t, s=stage_idx + 1, m=microbatch: self._on_activation(s, m, t)
            )
        else:
            # Last stage: loss computed, backward of this microbatch is ready.
            self._enqueue(stage_idx, _Task("bwd", microbatch))

    def _on_activation(self, stage_idx: int, microbatch: int, transfer) -> None:
        # det: allow[float-accumulation] per-stage transfers complete sequentially
        self._comm_cycles += transfer.duration_cycles
        self._enqueue(stage_idx, _Task("fwd", microbatch))

    def _after_backward(self, stage_idx: int, microbatch: int) -> None:
        self._stashed[stage_idx] -= 1
        if stage_idx > 0:
            prev = self.stages[stage_idx - 1]
            transfer = self.system.request_p2p(
                self.stages[stage_idx].node, prev.node,
                prev.activation_bytes,
                name=f"grad(s{stage_idx}->s{stage_idx - 1}, m{microbatch})",
            )
            transfer.on_complete(
                lambda t, s=stage_idx - 1, m=microbatch: self._on_gradient(s, m, t)
            )
        else:
            self._completed_microbatches += 1
            self._maybe_admit_next()
            if self._completed_microbatches == self.num_microbatches:
                self._end_iteration()

    def _on_gradient(self, stage_idx: int, microbatch: int, transfer) -> None:
        # det: allow[float-accumulation] per-stage transfers complete sequentially
        self._comm_cycles += transfer.duration_cycles
        self._enqueue(stage_idx, _Task("bwd", microbatch))

    def _end_iteration(self) -> None:
        self._iteration += 1
        self._completed_microbatches = 0
        self._admitted = self.num_microbatches * self._iteration
        if self._iteration < self.num_iterations:
            self._start_iteration()
        else:
            self._finished = True


def partition_model(
    model: DNNModel,
    nodes: Sequence[int],
    num_microbatches: int,
    activation_bytes: float,
) -> list[PipelineStage]:
    """Partition a model's layers into balanced contiguous stages.

    Greedy split on cumulative compute: each stage takes layers until it
    reaches its share of the total.  Per-microbatch compute is the stage's
    minibatch compute divided by the microbatch count; backward combines
    the input- and weight-gradient passes.
    """
    if len(nodes) < 2:
        raise WorkloadError("need >= 2 stage nodes")
    if num_microbatches < 1:
        raise WorkloadError("num_microbatches must be >= 1")
    if activation_bytes <= 0:
        raise WorkloadError("activation_bytes must be positive")
    if len(nodes) > model.num_layers:
        raise WorkloadError(
            f"{len(nodes)} stages need at least that many layers "
            f"(model has {model.num_layers})"
        )

    total = model.total_compute_cycles
    share = total / len(nodes)
    stages = []
    layer_iter = iter(model.layers)
    current: list = []
    accumulated = 0.0
    remaining_layers = model.num_layers
    remaining_stages = len(nodes)
    for layer in model.layers:
        current.append(layer)
        accumulated += layer.total_compute_cycles
        remaining_layers -= 1
        boundary = accumulated >= share * (len(stages) + 1)
        must_close = remaining_layers == remaining_stages - len(stages) - 1
        if (boundary or must_close) and len(stages) < len(nodes) - 1:
            stages.append(current)
            current = []
    stages.append(current)

    out = []
    for idx, (node, layers) in enumerate(zip(nodes, stages)):
        fwd = sum(l.forward_cycles for l in layers) / num_microbatches
        bwd = sum(l.input_grad_cycles + l.weight_grad_cycles
                  for l in layers) / num_microbatches
        out.append(PipelineStage(
            index=idx,
            node=node,
            forward_cycles=fwd,
            backward_cycles=bwd,
            activation_bytes=activation_bytes / num_microbatches,
        ))
    return out
