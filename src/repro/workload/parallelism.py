"""Parallelization strategies and their communication behaviour (Sec. III-A).

Table I of the paper:

============  =======================  ================  ===============
Parallelism   Activations (forward)    Weight gradients  Input gradients
============  =======================  ================  ===============
Data          --                       yes               --
Model         yes                      --                yes
Hybrid        partially                partially         partially
============  =======================  ================  ===============

A strategy answers two questions for the training loop: over which
topology dimensions does each training-phase communication run, and is it
blocking (activations / input gradients stall the next layer) or
overlappable (weight gradients are only needed by the next iteration).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import WorkloadError
from repro.dims import Dimension


class TrainingPhase(enum.Enum):
    """The three per-layer phases of the training task (Sec. II)."""

    FORWARD = "fwd"
    INPUT_GRAD = "input_grad"
    WEIGHT_GRAD = "weight_grad"


class ParallelismKind(enum.Enum):
    DATA = "DATA"
    MODEL = "MODEL"
    HYBRID = "HYBRID"


@dataclass(frozen=True)
class ParallelismStrategy:
    """Maps training-phase communications to topology-dimension scopes.

    ``data_dims`` / ``model_dims``: topology dimensions across which the
    strategy replicates the model / splits the model.  ``None`` means all
    dimensions (pure data or pure model parallelism).  The Fig. 13
    Transformer setup is hybrid: data-parallel across local and
    horizontal, model-parallel across vertical.
    """

    kind: ParallelismKind
    data_dims: Optional[tuple[Dimension, ...]] = None
    model_dims: Optional[tuple[Dimension, ...]] = None

    def __post_init__(self) -> None:
        if self.kind is ParallelismKind.HYBRID:
            if not self.data_dims or not self.model_dims:
                raise WorkloadError(
                    "hybrid parallelism must name both data_dims and model_dims"
                )
            overlap = set(self.data_dims) & set(self.model_dims)
            if overlap:
                raise WorkloadError(
                    "dimensions in both groups: "
                    f"{sorted(d.value for d in overlap)}")
        if self.kind is ParallelismKind.DATA and self.model_dims:
            raise WorkloadError("data parallelism takes no model_dims")
        if self.kind is ParallelismKind.MODEL and self.data_dims:
            raise WorkloadError("model parallelism takes no data_dims")

    # -- per-phase behaviour -------------------------------------------------------

    def communicates(self, phase: TrainingPhase) -> bool:
        """Table I: does this strategy exchange data in ``phase`` at all?"""
        if self.kind is ParallelismKind.DATA:
            return phase is TrainingPhase.WEIGHT_GRAD
        if self.kind is ParallelismKind.MODEL:
            return phase in (TrainingPhase.FORWARD, TrainingPhase.INPUT_GRAD)
        return True  # hybrid: partially, in every phase

    def scope(self, phase: TrainingPhase) -> Optional[tuple[Dimension, ...]]:
        """Topology dimensions the ``phase`` communication spans
        (``None`` = all dimensions)."""
        if self.kind is ParallelismKind.DATA:
            return None
        if self.kind is ParallelismKind.MODEL:
            return None
        if phase is TrainingPhase.WEIGHT_GRAD:
            return self.data_dims
        return self.model_dims

    def blocking(self, phase: TrainingPhase) -> bool:
        """Activation and input-gradient exchanges block the dependent
        layer; weight gradients overlap with ongoing back-propagation and
        are awaited only by the next iteration (Sec. III-E)."""
        return phase is not TrainingPhase.WEIGHT_GRAD


DATA_PARALLEL = ParallelismStrategy(ParallelismKind.DATA)
MODEL_PARALLEL = ParallelismStrategy(ParallelismKind.MODEL)


def hybrid(data_dims: tuple[Dimension, ...], model_dims: tuple[Dimension, ...]) -> ParallelismStrategy:
    """The hybrid strategy splitting the topology dimensions in two groups."""
    return ParallelismStrategy(ParallelismKind.HYBRID, data_dims, model_dims)


#: The paper's Fig. 13 Transformer configuration: data-parallel across the
#: local and horizontal dimensions, model-parallel across vertical.
TRANSFORMER_HYBRID = hybrid(
    data_dims=(Dimension.LOCAL, Dimension.HORIZONTAL),
    model_dims=(Dimension.VERTICAL,),
)
