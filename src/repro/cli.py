"""The ``astra-repro`` command line interface.

Exposes the Table III input parameters and the predefined workloads::

    astra-repro train --model resnet50 --topology Torus --shape 2x4x4 \\
        --algorithm enhanced --scheduling-policy LIFO --num-passes 2

    astra-repro collective --op allreduce --size-mb 8 --topology Torus \\
        --shape 4x4x4 --algorithm enhanced

    astra-repro workload-file my_dnn.txt --shape 2x2x2
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.report import RunSummary, format_breakdown, format_layer_table
from repro.collectives.types import CollectiveOp
from repro.config.parameters import (
    AllToAllShape,
    CollectiveAlgorithm,
    SchedulingPolicy,
    TopologyKind,
    TorusShape,
)
from repro.config.units import MB
from repro.errors import (
    EXIT_CONFIG,
    EXIT_OK,
    EXIT_PARTIAL,
    ConfigError,
    ReproError,
)
from repro.harness.runners import (
    alltoall_platform,
    run_training,
    torus_platform,
)
from repro.models import dlrm, mlp, resnet50, transformer
from repro.workload import parser as workload_parser

_MODELS = {
    "resnet50": lambda compute: resnet50(compute=compute),
    "transformer": lambda compute: transformer(compute=compute),
    "dlrm": lambda compute: dlrm(compute=compute),
    "mlp": lambda compute: mlp(compute=compute),
}

_OPS = {
    "allreduce": CollectiveOp.ALL_REDUCE,
    "allgather": CollectiveOp.ALL_GATHER,
    "reducescatter": CollectiveOp.REDUCE_SCATTER,
    "alltoall": CollectiveOp.ALL_TO_ALL,
}


def _parse_shape(spec: str) -> tuple[int, ...]:
    try:
        dims = tuple(int(tok) for tok in spec.lower().split("x"))
    except ValueError:
        raise ConfigError(f"bad shape {spec!r}; expected e.g. 2x4x4 or 4x16") from None
    if len(dims) not in (2, 3):
        raise ConfigError(f"shape {spec!r} must have 2 (alltoall) or 3 (torus) dims")
    return dims


def _build_platform(args: argparse.Namespace):
    topology = TopologyKind(args.topology)
    algorithm = CollectiveAlgorithm(args.algorithm)
    policy = SchedulingPolicy(args.scheduling_policy)
    dims = _parse_shape(args.shape)
    if topology is TopologyKind.TORUS:
        if len(dims) != 3:
            raise ConfigError("Torus shapes are MxNxK, e.g. 2x4x4")
        spec = torus_platform(
            TorusShape(*dims),
            algorithm=algorithm,
            scheduling_policy=policy,
            symmetric=args.symmetric,
            local_rings=args.local_rings,
            horizontal_rings=args.horizontal_rings,
            vertical_rings=args.vertical_rings,
            compute_scale=args.compute_scale,
            preferred_set_splits=args.preferred_set_splits,
        )
    else:
        if len(dims) != 2:
            raise ConfigError("AllToAll shapes are MxN, e.g. 4x16")
        spec = alltoall_platform(
            AllToAllShape(*dims),
            algorithm=algorithm,
            symmetric=args.symmetric,
            local_rings=args.local_rings,
            global_switches=args.global_switches,
            preferred_set_splits=args.preferred_set_splits,
        )
    return _apply_resilience_args(_apply_fault_args(spec, args), args)


def _apply_fault_args(spec, args: argparse.Namespace):
    """Attach --fault-schedule / --transport to a platform spec.

    A fault schedule implies the reliable transport (an unprotected run
    would deadlock on the first dropped message).
    """
    if getattr(args, "fault_schedule", None):
        from repro.network.fault_schedule import FaultSchedule

        spec.fault_schedule = FaultSchedule.from_file(args.fault_schedule)
    if (getattr(args, "transport", False) or spec.fault_schedule is not None) \
            and spec.config.system.transport is None:
        from dataclasses import replace

        from repro.config.parameters import TransportConfig

        spec.config = replace(
            spec.config,
            system=replace(spec.config.system, transport=TransportConfig()),
        )
    return spec


def _apply_resilience_args(spec, args: argparse.Namespace):
    """Attach --checkpoint-every / --resume-from / --watchdog to a spec.

    Any of the three builds a :class:`repro.resilience.ResilienceConfig`;
    the monitor observes through the event queue's watcher hook, so the
    simulated trajectory is identical with or without these flags
    (docs/RESILIENCE.md).
    """
    checkpoint = watchdog = None
    if getattr(args, "checkpoint_every", None):
        from repro.resilience import CheckpointConfig

        checkpoint = CheckpointConfig(every_cycles=args.checkpoint_every,
                                      directory=args.checkpoint_dir)
    if getattr(args, "watchdog", False):
        from repro.resilience import WatchdogConfig

        watchdog = WatchdogConfig(stall_cycles=args.watchdog_stall_cycles,
                                  bundle_dir=getattr(args, "bundle_dir", None))
    resume = getattr(args, "resume_from", None)
    if checkpoint is not None or watchdog is not None or resume:
        from repro.resilience import ResilienceConfig
        from repro.resilience.monitor import install_signal_handler

        spec.resilience = ResilienceConfig(
            checkpoint=checkpoint, watchdog=watchdog, resume_from=resume,
            label=spec.name)
        if checkpoint is not None:
            install_signal_handler()
    return spec


def _print_transport_stats(stats) -> None:
    if stats is not None:
        print(stats.summary())


def _record_profile(system) -> None:
    """Feed a finished system's event counters to the --profile output."""
    from repro.profiling import active_profile

    profile = active_profile()
    if profile is not None and system is not None:
        profile.record_system(system)


def _print_resilience(system) -> None:
    monitor = getattr(system, "resilience", None)
    if monitor is None:
        return
    if monitor.saved_paths:
        print(f"checkpoints: {len(monitor.saved_paths)} saved, last "
              f"{monitor.saved_paths[-1]}")
    if monitor.resume_checkpoint is not None and monitor.resume_verified:
        ckpt = monitor.resume_checkpoint
        print(f"resume verified: replay matched the checkpoint at "
              f"t={ckpt.cycle:,.0f} ({ckpt.events_processed} events)")


def _add_execution_args(p: argparse.ArgumentParser) -> None:
    """Mirror the root --jobs/--cache-dir/--no-cache/--profile flags on a
    subcommand so they work in either position (``astra-repro chaos
    --jobs 4`` and ``astra-repro --jobs 4 chaos``).  SUPPRESS defaults:
    an omitted subcommand flag must not clobber a root-level value."""
    p.add_argument("--jobs", type=int, metavar="N", default=argparse.SUPPRESS,
                   help="worker processes for independent simulation points")
    p.add_argument("--cache-dir", metavar="DIR", default=argparse.SUPPRESS,
                   help="content-addressed run cache directory")
    p.add_argument("--no-cache", action="store_true", default=argparse.SUPPRESS,
                   help="ignore --cache-dir (always simulate fresh)")
    p.add_argument("--profile", action="store_true", default=argparse.SUPPRESS,
                   help="print per-phase wall-clock and events/sec")
    _add_supervision_args(p, default=argparse.SUPPRESS)


def _add_supervision_args(p: argparse.ArgumentParser, default=None) -> None:
    """The supervised-execution flags (docs/SUPERVISION.md).  Added to
    the root parser with real ``None`` defaults and mirrored on
    subcommands with SUPPRESS, like the execution flags above."""
    p.add_argument("--supervise", action="store_true",
                   default=default if default is argparse.SUPPRESS else False,
                   help="run design points crash-isolated: worker deaths "
                        "retry with seeded backoff, poison points are "
                        "quarantined and the batch continues "
                        "(docs/SUPERVISION.md)")
    p.add_argument("--point-timeout", type=float, default=default,
                   metavar="SECONDS",
                   help="wall-clock deadline per design point; a point that "
                        "exceeds it is reaped and charged a retry "
                        "(implies --supervise)")
    p.add_argument("--point-event-budget", type=int, default=default,
                   metavar="N",
                   help="max simulated events per design point attempt "
                        "(implies --supervise)")
    p.add_argument("--max-point-retries", type=int, default=default,
                   metavar="N",
                   help="failed attempts re-run up to N times before the "
                        "point is quarantined (default 2; implies "
                        "--supervise)")
    p.add_argument("--on-poison", choices=("quarantine", "fail"),
                   default=default,
                   help="quarantine: record the poison point and continue "
                        "(exit 1); fail: abort the whole batch (implies "
                        "--supervise)")
    p.add_argument("--journal", default=default, metavar="PATH",
                   help="append every point outcome to this JSONL journal; "
                        "a re-run resumes past completed AND quarantined "
                        "points (implies --supervise)")
    p.add_argument("--quarantine-dir", default=default, metavar="DIR",
                   help="write poison-point diagnostic bundles and the "
                        "quarantine report into DIR (implies --supervise)")


def _supervision_from_args(args: argparse.Namespace):
    """(policy, journal_path, quarantine_dir) when any supervision flag
    was given; (None, None, None) → plain unsupervised executor."""
    given = (getattr(args, "supervise", False)
             or any(getattr(args, key, None) is not None
                    for key in ("point_timeout", "point_event_budget",
                                "max_point_retries", "on_poison", "journal",
                                "quarantine_dir")))
    if not given:
        return None, None, None
    from repro.parallel import SupervisionPolicy

    retries = getattr(args, "max_point_retries", None)
    policy = SupervisionPolicy(
        point_timeout_s=getattr(args, "point_timeout", None),
        point_event_budget=getattr(args, "point_event_budget", None),
        max_retries=retries if retries is not None else 2,
        on_poison=getattr(args, "on_poison", None) or "quarantine",
    )
    return (policy, getattr(args, "journal", None),
            getattr(args, "quarantine_dir", None))


def _add_platform_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--topology", choices=[k.value for k in TopologyKind],
                   default="Torus", help="logical topology (Table III #8)")
    p.add_argument("--shape", default="2x4x4",
                   help="MxNxK torus (local x horizontal x vertical) or MxN alltoall")
    p.add_argument("--algorithm", choices=[a.value for a in CollectiveAlgorithm],
                   default="baseline", help="collective algorithm (Table III #3)")
    p.add_argument("--scheduling-policy", choices=[s.value for s in SchedulingPolicy],
                   default="LIFO", help="ready-queue order (Table III #7)")
    p.add_argument("--symmetric", action="store_true",
                   help="equalize local links to inter-package bandwidth")
    p.add_argument("--local-rings", type=int, default=2, help="Table III #9")
    p.add_argument("--horizontal-rings", type=int, default=1, help="Table III #11")
    p.add_argument("--vertical-rings", type=int, default=1, help="Table III #10")
    p.add_argument("--global-switches", type=int, default=2, help="Table III #12")
    p.add_argument("--preferred-set-splits", type=int, default=16,
                   help="chunks per collective set (Table III #16)")
    p.add_argument("--compute-scale", type=float, default=1.0,
                   help="NPU compute-power multiplier (Fig. 18)")
    p.add_argument("--sanitize", action="store_true",
                   help="enable the runtime invariant sanitizer (time-travel, "
                        "livelock, flit/credit conservation, barrier checks)")
    p.add_argument("--fault-schedule", default=None, metavar="PATH",
                   help="JSON fault schedule injecting timed link/node "
                        "failures mid-run (docs/FAULTS.md); implies "
                        "--transport")
    p.add_argument("--transport", action="store_true",
                   help="wrap the network in the reliable transport "
                        "(timeouts, retransmission with backoff)")
    p.add_argument("--checkpoint-every", type=float, default=None,
                   metavar="CYCLES",
                   help="take a verified-replay checkpoint every CYCLES "
                        "simulated cycles (docs/RESILIENCE.md); SIGUSR1 "
                        "also snapshots on demand")
    p.add_argument("--checkpoint-dir", default="checkpoints", metavar="DIR",
                   help="directory checkpoint files are written into")
    p.add_argument("--resume-from", default=None, metavar="PATH",
                   help="replay through PATH's checkpoint, verify the run "
                        "is cycle-identical, then continue")
    p.add_argument("--watchdog", action="store_true",
                   help="abort with a StallError and a diagnostic bundle "
                        "when no progress happens for --watchdog-stall-cycles")
    p.add_argument("--watchdog-stall-cycles", type=float, default=2_000_000.0,
                   metavar="CYCLES",
                   help="no-progress window before the watchdog trips")
    p.add_argument("--bundle-dir", default=None, metavar="DIR",
                   help="write watchdog diagnostic bundles into DIR")


def _cmd_train(args: argparse.Namespace) -> int:
    platform = _build_platform(args)
    if args.workload_file:
        model = workload_parser.load(args.workload_file)
    else:
        model = _MODELS[args.model](platform.config.compute)
    report, system = run_training(model, platform, num_iterations=args.num_passes,
                                  sanitize=args.sanitize)
    print(RunSummary.from_report(report).format())
    _record_profile(system)
    _print_transport_stats(system.transport_stats())
    _print_resilience(system)
    if args.layer_table:
        print()
        print(format_layer_table(report))
    if args.breakdown:
        print()
        print(format_breakdown(system.breakdown))
    return EXIT_OK


def _cmd_collective(args: argparse.Namespace) -> int:
    from repro.parallel import RunPoint, default_executor

    # One design-space point through the executor: pure runs hit the
    # --cache-dir store; anything impure (faults, resilience, transport,
    # --sanitize) executes fresh in-process with its system kept live.
    point = RunPoint(builder=lambda: _build_platform(args), op=_OPS[args.op],
                     size_bytes=args.size_mb * MB, sanitize=args.sanitize)
    outcome = default_executor().run_outcomes([point])[0]
    if not outcome.ok:
        # Supervised run quarantined the point: the partial-result
        # contract (exit 1) is applied by main() from the quarantine.
        print(f"{args.op} of {args.size_mb} MB: point "
              f"{outcome.status.value} ({outcome.failure_class}) after "
              f"{outcome.attempts} attempt(s)")
        return EXIT_PARTIAL
    result = outcome.result
    print(f"{args.op} of {args.size_mb} MB on {result.label} "
          f"({result.num_npus} NPUs): {result.duration_cycles:,.0f} cycles")
    _record_profile(result.system)
    _print_transport_stats(result.transport_stats)
    _print_resilience(result.system)
    if args.breakdown:
        print()
        print(format_breakdown(result.breakdown))
    if args.check_schedule:
        from repro.sanitize.schedule import CollectiveProbe, run_schedule_trials

        probe = CollectiveProbe(
            label=f"collective/{args.op}",
            platform_builder=lambda: _build_platform(args),
            op=_OPS[args.op],
            size_bytes=args.size_mb * MB,
        )
        report = run_schedule_trials(probe, trials=args.schedule_trials,
                                     seed=args.schedule_seed)
        print(report.summary())
        if not report.identical:
            return EXIT_PARTIAL
    return EXIT_OK


def _cmd_bandwidth(args: argparse.Namespace) -> int:
    from repro.harness.bandwidth_test import format_points, measure

    try:
        sizes = [float(tok) * MB for tok in args.sizes_mb.split(",")]
    except ValueError:
        raise ConfigError(f"bad --sizes-mb list: {args.sizes_mb!r}") from None
    points = measure(lambda: _build_platform(args), _OPS[args.op], sizes,
                     sanitize=args.sanitize)
    print(f"{args.op} bandwidth test on {_build_platform(args).name}:")
    print(format_points(points))
    return EXIT_OK


def _cmd_search(args: argparse.Namespace) -> int:
    import os

    from repro.parallel import default_executor
    from repro.search import (
        SearchReport,
        SearchSpace,
        load_trajectory,
        make_objective,
        make_strategy,
        rank_frontier,
        run_search,
    )

    space = SearchSpace.from_file(args.space)
    objective = make_objective(args.objective, space.cost_table, space.size_bytes)
    strategy = make_strategy(args.strategy, space, args.seed,
                             generation_size=args.generation_size,
                             mu=args.mu, lam=args.lam,
                             mutation_rate=args.mutation_rate)
    executor = default_executor()
    simulations_before = executor.simulations_run

    # On resume, prior evaluations re-enter the frontier (run_search
    # preloads them into its memo so they cost no budget and no sims).
    prior = {}
    if args.resume and args.trajectory and os.path.exists(args.trajectory):
        prior = load_trajectory(args.trajectory, space, objective)

    trajectory = run_search(space, objective, strategy, budget=args.budget,
                            executor=executor,
                            trajectory_path=args.trajectory,
                            resume=args.resume)
    report = SearchReport(
        space=space.name,
        num_npus=space.num_npus,
        collective=space.collective.value,
        size_bytes=space.size_bytes,
        objective=objective.name,
        strategy=strategy.name,
        seed=args.seed,
        budget=args.budget,
        frontier=rank_frontier(trajectory, prior),
        evaluations=len(trajectory),
        simulations=executor.simulations_run - simulations_before,
        cache_summary=(executor.cache.summary()
                       if executor.cache is not None else None),
    )
    print(report.format_table(top=args.top))
    if args.out:
        report.write_json(args.out)
        print(f"report written to {args.out}")
    if args.trajectory:
        print(f"trajectory log: {args.trajectory}")
    return EXIT_OK


#: Shared exit-code contract of the checking subcommands (lint, analyze),
#: rendered into their --help epilogs.
_EXIT_CODES_DOC = """\
exit status:
  0  clean: no findings at severity ERROR (nor WARNING, under --strict)
  1  findings at severity ERROR (or WARNING with --strict)
  2  usage or configuration error
"""

#: Exit-code contract of supervised runs (docs/SUPERVISION.md), rendered
#: into the root --help epilog.
_SUPERVISED_EXIT_CODES_DOC = """\
exit status (supervised runs; docs/SUPERVISION.md):
  0  every design point completed
  1  partial results: at least one point was quarantined
     (crash / deadline / poison) — completed points are still reported
  2  usage or configuration error
"""


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.sanitize import lint_presets, lint_spec_file
    from repro.sanitize.findings import reports_to_json

    reports = []
    if args.presets or not args.specs:
        reports.extend(lint_presets())
    for path in args.specs:
        reports.append(lint_spec_file(path))

    if args.json:
        print(reports_to_json(reports))
    else:
        for report in reports:
            if report.findings:
                print(report.format())
            else:
                print(f"{report.source}: ok")

    clean = all(report.ok(strict=args.strict) for report in reports)
    return EXIT_OK if clean else EXIT_PARTIAL


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.sanitize.findings import reports_to_json

    # With no mode flag, run both analyses (the CI gate's default).
    modes_given = (args.source is not None or args.schedule
                   or args.inject_race)
    do_source = args.source is not None or not modes_given
    do_schedule = args.schedule or args.inject_race or not modes_given

    source_reports = []
    schedule_reports = []
    finding_reports = []

    if do_source:
        from repro.sanitize.source_lint import (
            default_source_root,
            lint_source_tree,
        )

        source_root = args.source or default_source_root()
        source_reports = lint_source_tree(source_root)
        finding_reports.extend(source_reports)

    if do_schedule:
        from repro.sanitize.schedule import run_schedule_trials

        probes = []
        if not args.inject_race or args.schedule:
            from repro.harness import fig09, fig12

            probes.extend(fig09.schedule_probes())
            probes.extend(fig12.schedule_probes())
        if args.inject_race:
            from repro.sanitize.schedule import InjectedRaceProbe

            probes.append(InjectedRaceProbe())
        for probe in probes:
            report = run_schedule_trials(
                probe, trials=args.schedule_trials, seed=args.schedule_seed)
            schedule_reports.append(report)
            finding_reports.append(report.to_findings())

    if args.json:
        print(reports_to_json(finding_reports))
    else:
        if do_source:
            flagged = [r for r in source_reports if r.findings]
            for report in flagged:
                print(report.format())
            total = sum(len(r.findings) for r in source_reports)
            print(f"source lint: {len(source_reports)} files, "
                  f"{total} findings")
        for report in schedule_reports:
            print(report.summary())

    if args.report:
        import json

        payload = {
            "source": [r.to_dict() for r in source_reports],
            "schedule": [r.to_dict() for r in schedule_reports],
        }
        with open(args.report, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"report written to {args.report}")

    clean = all(r.ok(strict=args.strict) for r in finding_reports)
    return EXIT_OK if clean else EXIT_PARTIAL


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.resilience import ChaosConfig, run_chaos

    backends = tuple(tok.strip() for tok in args.backends.split(",") if tok.strip())
    config = ChaosConfig(
        iterations=args.iterations,
        seed=args.seed,
        backends=backends,
        max_events=args.max_events,
        bundle_dir=args.bundle_dir,
    )
    report = run_chaos(config, log=print if args.verbose else None)
    print(report.format())
    if args.report:
        import json

        with open(args.report, "w") as f:
            json.dump(report.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"report written to {args.report}")
    return EXIT_OK if report.ok else EXIT_PARTIAL


def _cmd_memory(args: argparse.Namespace) -> int:
    from repro.config.units import GB
    from repro.workload.memory import estimate_footprint

    model = _MODELS[args.model](None)
    footprint = estimate_footprint(
        model, model_parallel_degree=args.model_parallel_degree)
    capacity = args.hbm_gb * GB
    print(f"{args.model}: per-NPU memory footprint")
    print(f"  parameters : {footprint.parameter_bytes / GB:8.2f} GB")
    print(f"  gradients  : {footprint.gradient_bytes / GB:8.2f} GB")
    print(f"  optimizer  : {footprint.optimizer_bytes / GB:8.2f} GB")
    print(f"  activations: {footprint.activation_bytes / GB:8.2f} GB")
    print(f"  total      : {footprint.total_bytes / GB:8.2f} GB "
          f"({footprint.utilization(capacity):.1%} of {args.hbm_gb:g} GB HBM)")
    if not footprint.fits(capacity):
        print("  WARNING: does not fit the configured HBM capacity")
        return EXIT_PARTIAL
    return EXIT_OK


#: Default per-job wall-clock deadline when ``serve`` runs without any
#: supervision flags — a daemon must never let one hung payload wedge
#: its single worker forever.
_SERVE_DEFAULT_TIMEOUT_S = 300.0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.parallel import SupervisionPolicy
    from repro.service import ServiceConfig, ServiceDaemon

    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    policy, journal_path, quarantine_dir = _supervision_from_args(args)
    if policy is None:
        policy = SupervisionPolicy(point_timeout_s=_SERVE_DEFAULT_TIMEOUT_S)
    config = ServiceConfig(
        host=args.host, port=args.port, state_dir=args.state_dir,
        queue_limit=args.queue_limit, retry_after_s=args.retry_after,
        policy=policy, progress_every_events=args.progress_every_events,
        journal_path=journal_path, cache_dir=args.cache_dir,
        quarantine_dir=quarantine_dir)
    daemon = ServiceDaemon(config)
    host, port = daemon.address
    print(f"astra-repro serve listening on http://{host}:{port}")
    print(f"state: journal={config.resolved_journal()} "
          f"cache={config.resolved_cache_dir()} "
          f"quarantine={config.resolved_quarantine_dir()}")
    service = daemon.service
    if service.replayed_done or service.resumed_jobs:
        print(f"journal replay: {service.replayed_done} completed job(s) "
              f"restored, {service.resumed_jobs} re-enqueued")
    return daemon.serve_until_signal()


def build_arg_parser() -> argparse.ArgumentParser:
    root = argparse.ArgumentParser(
        prog="astra-repro",
        description="ASTRA-SIM reproduction: distributed DL training simulator",
        epilog=_SUPERVISED_EXIT_CODES_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    root.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="fan independent simulation points (sweep sizes, "
                           "chaos iterations) across N worker processes; "
                           "results are bit-identical at any N")
    root.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="content-addressed run cache: completed pure "
                           "points are stored in DIR and re-served instead "
                           "of re-simulated (docs/PERFORMANCE.md)")
    root.add_argument("--no-cache", action="store_true",
                      help="ignore --cache-dir (always simulate fresh)")
    root.add_argument("--profile", action="store_true",
                      help="print per-phase wall-clock and events/sec after "
                           "the command")
    _add_supervision_args(root)
    sub = root.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="simulate a DNN training workload")
    _add_execution_args(train)
    _add_platform_args(train)
    train.add_argument("--model", choices=sorted(_MODELS), default="resnet50",
                       help="predefined DNN workload (Table III #1)")
    train.add_argument("--workload-file", default=None,
                       help="Fig. 8 workload file (overrides --model)")
    train.add_argument("--num-passes", type=int, default=2,
                       help="training iterations to simulate (Table III #2)")
    train.add_argument("--layer-table", action="store_true",
                       help="print the per-layer compute/comm table (Figs. 14/15)")
    train.add_argument("--breakdown", action="store_true",
                       help="print the queue/network delay breakdown (Fig. 12b)")
    train.set_defaults(func=_cmd_train)

    coll = sub.add_parser("collective", help="time a single collective operation")
    _add_execution_args(coll)
    _add_platform_args(coll)
    coll.add_argument("--op", choices=sorted(_OPS), default="allreduce")
    coll.add_argument("--size-mb", type=float, default=8.0,
                      help="collective payload in MB")
    coll.add_argument("--breakdown", action="store_true")
    coll.add_argument("--check-schedule", action="store_true",
                      help="after the run, verify the result is bit-identical "
                           "under permuted same-timestamp event orders "
                           "(exit 1 on divergence; docs/DETERMINISM.md)")
    coll.add_argument("--schedule-trials", type=int, default=8, metavar="N",
                      help="permuted schedules for --check-schedule")
    coll.add_argument("--schedule-seed", type=int, default=2020, metavar="SEED",
                      help="base permutation seed for --check-schedule")
    coll.set_defaults(func=_cmd_collective)

    bw = sub.add_parser("bandwidth",
                        help="collective bandwidth test (algbw/busbw table)")
    _add_execution_args(bw)
    _add_platform_args(bw)
    bw.add_argument("--op", choices=sorted(_OPS), default="allreduce")
    bw.add_argument("--sizes-mb", default="0.0625,0.5,4,32",
                    help="comma-separated payload sizes in MB")
    bw.set_defaults(func=_cmd_bandwidth)

    from repro.search import OBJECTIVE_NAMES, STRATEGY_NAMES

    search = sub.add_parser(
        "search",
        help="optimizer-driven design-space search over topology x BW x "
             "collective x scheduler (docs/SEARCH.md)")
    _add_execution_args(search)
    search.add_argument("--space", required=True, metavar="PATH",
                        help="search-space JSON (axes, constraints, cost "
                             "table; docs/SEARCH.md)")
    search.add_argument("--objective", choices=OBJECTIVE_NAMES, default="time",
                        help="scoring: raw cycles, amortized $/step, or "
                             "negated GB/s per interconnect dollar")
    search.add_argument("--strategy", choices=STRATEGY_NAMES,
                        default="evolutionary",
                        help="seeded proposal loop")
    search.add_argument("--budget", type=int, default=32, metavar="N",
                        help="unique design points to evaluate")
    search.add_argument("--seed", type=int, default=2020,
                        help="strategy seed; same seed = same trajectory "
                             "at any --jobs value")
    search.add_argument("--generation-size", type=int, default=None,
                        metavar="N", help="random strategy: points per "
                                          "generation (default 8)")
    search.add_argument("--mu", type=int, default=None,
                        help="evolutionary: survivors per generation "
                             "(default 4)")
    search.add_argument("--lambda", dest="lam", type=int, default=None,
                        help="evolutionary: offspring per generation "
                             "(default 8)")
    search.add_argument("--mutation-rate", type=float, default=None,
                        help="evolutionary: per-gene mutation probability "
                             "(default 0.25)")
    search.add_argument("--top", type=int, default=10, metavar="N",
                        help="frontier rows to print")
    search.add_argument("--out", default=None, metavar="PATH",
                        help="write the full ranked frontier as JSON")
    search.add_argument("--trajectory", default=None, metavar="PATH",
                        help="append every evaluation to this JSONL log "
                             "(resumable with --resume)")
    search.add_argument("--resume", action="store_true",
                        help="preload --trajectory so prior evaluations "
                             "cost no budget and no simulations")
    search.set_defaults(func=_cmd_search)

    lint = sub.add_parser(
        "lint", help="statically check run-spec / config files before simulating",
        epilog=_EXIT_CODES_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    lint.add_argument("specs", nargs="*",
                      help="run-spec or config JSON files (default: lint the "
                           "shipped paper presets)")
    lint.add_argument("--presets", action="store_true",
                      help="also lint the shipped paper presets")
    lint.add_argument("--json", action="store_true",
                      help="emit machine-readable findings as JSON")
    lint.add_argument("--strict", action="store_true",
                      help="treat warnings as errors (exit nonzero)")
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="determinism analysis: AST source lint + schedule-perturbation "
             "race detection (docs/DETERMINISM.md)",
        epilog=_EXIT_CODES_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    analyze.add_argument("--source", nargs="?", const="", default=None,
                         metavar="PATH",
                         help="lint Python sources under PATH for "
                              "nondeterminism (default: the installed repro "
                              "package)")
    analyze.add_argument("--schedule", action="store_true",
                         help="run the schedule-perturbation race detector on "
                              "the Fig. 9/12 probe configs: results must be "
                              "bit-identical under permuted same-timestamp "
                              "event order")
    analyze.add_argument("--schedule-trials", type=int, default=8, metavar="N",
                         help="permuted schedules per probe (default 8)")
    analyze.add_argument("--schedule-seed", type=int, default=2020,
                         metavar="SEED",
                         help="base seed the per-trial permutations derive "
                              "from (results must be identical under every "
                              "seed)")
    analyze.add_argument("--inject-race", action="store_true",
                         help="also run the deliberately order-sensitive "
                              "self-test probe; the detector must flag it "
                              "(exits 1 by design)")
    analyze.add_argument("--json", action="store_true",
                         help="emit machine-readable findings as JSON")
    analyze.add_argument("--report", default=None, metavar="PATH",
                         help="write the full analysis (per-file findings + "
                              "per-probe trial fingerprints and any "
                              "divergence bundle) as JSON")
    analyze.add_argument("--strict", action="store_true",
                         help="treat warnings as errors (exit nonzero)")
    analyze.set_defaults(func=_cmd_analyze)

    chaos = sub.add_parser(
        "chaos",
        help="fuzz seeded fault schedules + transport configs; every run "
             "must end classified (success / graceful failure / diagnosed "
             "stall), never in a silent hang")
    _add_execution_args(chaos)
    chaos.add_argument("--iterations", type=int, default=25,
                       help="fuzzed runs (round-robin across --backends)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed; same seed = same schedules")
    chaos.add_argument("--backends", default="fast,detailed",
                       help="comma list of backends to exercise")
    chaos.add_argument("--max-events", type=int, default=5_000_000,
                       help="livelock guard per run (the watchdog should "
                            "always trip first)")
    chaos.add_argument("--bundle-dir", default=None, metavar="DIR",
                       help="write stall diagnostic bundles into DIR")
    chaos.add_argument("--report", default=None, metavar="PATH",
                       help="write the full classified report as JSON")
    chaos.add_argument("--verbose", action="store_true",
                       help="print each run as it finishes")
    chaos.set_defaults(func=_cmd_chaos)

    mem = sub.add_parser("memory",
                         help="estimate per-NPU memory footprint of a model")
    mem.add_argument("--model", choices=sorted(_MODELS), default="resnet50")
    mem.add_argument("--hbm-gb", type=float, default=32.0,
                     help="HBM capacity per NPU in GB")
    mem.add_argument("--model-parallel-degree", type=int, default=1)
    mem.set_defaults(func=_cmd_memory)

    serve = sub.add_parser(
        "serve",
        help="run the fault-tolerant simulation service: validated "
             "payloads, bounded queue with backpressure, supervised "
             "execution, journal-backed crash recovery (docs/SERVICE.md)",
        epilog=_SUPERVISED_EXIT_CODES_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    _add_execution_args(serve)
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default loopback only)")
    serve.add_argument("--port", type=int, default=8421,
                       help="bind port; 0 picks a free port")
    serve.add_argument("--state-dir", default="serve-state", metavar="DIR",
                       help="durable daemon state: journal, run cache, "
                            "quarantine bundles, progress spool — restart "
                            "against the same DIR to resume after a crash")
    serve.add_argument("--queue-limit", type=int, default=16, metavar="N",
                       help="bounded job-queue capacity; a full queue "
                            "answers 429 with Retry-After")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       metavar="SECONDS",
                       help="Retry-After hint sent with 429 responses")
    serve.add_argument("--progress-every-events", type=int, default=4096,
                       metavar="N",
                       help="progress-vector snapshot cadence in executed "
                            "events")
    serve.add_argument("--verbose", action="store_true",
                       help="per-request debug logging")
    serve.set_defaults(func=_cmd_serve)

    return root


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    from repro.parallel import PoisonPointError, configure_default, set_default_executor
    from repro.profiling import RunProfile, set_active_profile

    try:
        policy, journal_path, quarantine_dir = _supervision_from_args(args)
        executor = configure_default(jobs=args.jobs, cache_dir=args.cache_dir,
                                     use_cache=not args.no_cache,
                                     supervision=policy,
                                     journal_path=journal_path,
                                     quarantine_dir=quarantine_dir)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    profile = RunProfile(name=args.command) if args.profile else None
    set_active_profile(profile)
    try:
        if profile is not None:
            with profile.phase("command"):
                rc = args.func(args)
        else:
            rc = args.func(args)
    except PoisonPointError as exc:
        # --on-poison=fail: the batch aborted on its first poison point.
        print(f"error: {exc}", file=sys.stderr)
        _report_quarantine(executor)
        return EXIT_PARTIAL
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG
    finally:
        set_default_executor(None)
        executor.close()
        set_active_profile(None)
    if executor.cache is not None:
        print(executor.cache_summary())
    if profile is not None:
        print(profile.format())
    if _report_quarantine(executor):
        # Partial results: completed points were reported above, but at
        # least one point is in quarantine (docs/SUPERVISION.md).
        rc = max(rc, EXIT_PARTIAL)
    return rc


def _report_quarantine(executor) -> bool:
    """Print the quarantine summary (and write the report file when a
    quarantine dir is configured); True when anything was quarantined."""
    import os

    if not getattr(executor, "quarantine", None):
        return False
    summary = executor.quarantine_summary()
    if summary:
        print(summary, file=sys.stderr)
    if executor.quarantine_dir:
        path = executor.write_quarantine_report(
            os.path.join(executor.quarantine_dir, "quarantine-report.json"))
        print(f"quarantine report: {path}", file=sys.stderr)
    return True


if __name__ == "__main__":
    raise SystemExit(main())
