"""GEMM shapes and the im2col lowering of convolutions.

The workload layer describes every DNN layer's compute as one or more
GEMMs (Sec. IV-A: the compute model "computes only the GEMM delay").
Convolutions lower to GEMMs via im2col: ``M = batch * out_h * out_w``,
``K = in_channels * kernel_h * kernel_w``, ``N = out_channels``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class GemmShape:
    """An (M x K) @ (K x N) matrix multiply."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.k < 1 or self.n < 1:
            raise WorkloadError(f"GEMM dims must be >= 1: {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count."""
        return self.m * self.k * self.n

    def bytes_touched(self, bytes_per_element: int = 4) -> int:
        """Input + weight + output bytes (single pass, no reuse model)."""
        return (self.m * self.k + self.k * self.n + self.m * self.n) * bytes_per_element

    @property
    def transposed(self) -> "GemmShape":
        return GemmShape(self.n, self.k, self.m)

    def backward_shapes(self) -> tuple["GemmShape", "GemmShape"]:
        """(input-gradient GEMM, weight-gradient GEMM) for a forward GEMM
        out[M,N] = in[M,K] @ w[K,N]:

        * d_in[M,K]  = d_out[M,N] @ w.T[N,K]   -> GEMM(M, N, K)
        * d_w[K,N]   = in.T[K,M] @ d_out[M,N]  -> GEMM(K, M, N)
        """
        return GemmShape(self.m, self.n, self.k), GemmShape(self.k, self.m, self.n)


@dataclass(frozen=True)
class ConvSpec:
    """A 2-D convolution layer, lowered to a GEMM with im2col."""

    in_channels: int
    out_channels: int
    kernel: int
    stride: int
    in_size: int  # spatial height == width
    padding: int = 0

    def __post_init__(self) -> None:
        if self.in_channels < 1 or self.out_channels < 1:
            raise WorkloadError(f"channels must be >= 1: {self}")
        if self.kernel < 1 or self.stride < 1 or self.in_size < 1:
            raise WorkloadError(f"kernel/stride/size must be >= 1: {self}")
        if self.padding < 0:
            raise WorkloadError(f"padding must be >= 0: {self}")
        if self.out_size < 1:
            raise WorkloadError(f"convolution produces empty output: {self}")

    @property
    def out_size(self) -> int:
        return (self.in_size + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def weight_count(self) -> int:
        return self.in_channels * self.out_channels * self.kernel * self.kernel

    def gemm(self, batch: int) -> GemmShape:
        if batch < 1:
            raise WorkloadError(f"batch must be >= 1, got {batch}")
        return GemmShape(
            m=batch * self.out_size * self.out_size,
            k=self.in_channels * self.kernel * self.kernel,
            n=self.out_channels,
        )

    def activation_count(self, batch: int) -> int:
        """Output activation element count for a minibatch."""
        return batch * self.out_channels * self.out_size * self.out_size


@dataclass(frozen=True)
class LinearSpec:
    """A fully connected layer (batch x in_features -> batch x out_features)."""

    in_features: int
    out_features: int

    def __post_init__(self) -> None:
        if self.in_features < 1 or self.out_features < 1:
            raise WorkloadError(f"features must be >= 1: {self}")

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features

    def gemm(self, batch: int) -> GemmShape:
        if batch < 1:
            raise WorkloadError(f"batch must be >= 1, got {batch}")
        return GemmShape(m=batch, k=self.in_features, n=self.out_features)

    def activation_count(self, batch: int) -> int:
        return batch * self.out_features
