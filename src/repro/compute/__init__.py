"""Analytical NPU compute model: GEMM shapes + systolic-array delays."""

from repro.compute.gemm import ConvSpec, GemmShape, LinearSpec
from repro.compute.gpu import GpuComputeModel, GpuConfig
from repro.compute.systolic import ComputeEstimate, SystolicArrayModel

__all__ = [
    "ComputeEstimate",
    "ConvSpec",
    "GemmShape",
    "GpuComputeModel",
    "GpuConfig",
    "LinearSpec",
    "SystolicArrayModel",
]
